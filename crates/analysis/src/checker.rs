//! The persist-state automaton and its [`TraceSink`] adapter.
//!
//! Each PM cacheline moves through `Dirty → FlushIssued → Accepted →
//! Persisted` as the instruction stream arrives; each simulated thread
//! carries an epoch counter (fences completed). A line is only judged
//! when the stream ends (power failure or `finish`) — bulk-build code
//! that stores many lines and flushes them once at the end is clean, no
//! matter how many fences other lines crossed in between. The rules are
//! deliberately aligned with what
//! `optane_core::Machine` actually does — in particular, in this machine
//! model a flush persists at WPQ acceptance whether or not it is fenced,
//! so a missing fence is reported as an *ordering* bug, not as data loss,
//! and only still-`Dirty` lines appear in
//! [`Report::predicted_lost_lines`](crate::Report::predicted_lost_lines).
//!
//! The model is per-thread: cross-thread flush/fence interleavings are
//! tracked per line but a fence only completes persists the *same* thread
//! issued, exactly as `sfence` only waits on the issuing thread's
//! outstanding accepts.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use optane_core::{FenceKind, FlushKind, Machine, MachineConfig, MemRegion, TraceEvent, TraceSink};
use simbase::{addr::cachelines_covering, Addr, Cycles};

use crate::report::{DiagKind, Diagnostic, Report};

/// Checker parameters, normally derived from the machine's
/// [`MachineConfig`] at attach time so the analysis agrees with the
/// simulation it observes.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Whether loads can bypass an invalidating flush (the G1
    /// `clwb + sfence` effect); enables unpersisted-read detection.
    pub sfence_load_bypass: bool,
    /// Length of the bypass window, in cycles.
    pub load_bypass_window: Cycles,
    /// Whether `clwb` drops the cached copy (G1) or retains it (G2);
    /// on G2 a retained line cannot produce an unpersisted read.
    pub clwb_invalidates: bool,
}

impl CheckerConfig {
    /// Derives the checker parameters from a machine configuration.
    pub fn from_machine(cfg: &MachineConfig) -> Self {
        CheckerConfig {
            sfence_load_bypass: cfg.sfence_load_bypass,
            load_bypass_window: cfg.load_bypass_window,
            clwb_invalidates: cfg.clwb_invalidates(),
        }
    }
}

/// Persist state of one PM cacheline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Stored through the cache; not yet flushed.
    Dirty,
    /// A `clwb`/`clflushopt` was issued; not yet ordered by a fence.
    FlushIssued,
    /// An nt-store was accepted by the WPQ; not yet ordered by a fence.
    Accepted,
    /// Flushed/accepted and ordered by a fence (or by `clflush`'s own
    /// completion wait).
    Persisted,
}

// Once-per-line dedup bits, so a buggy loop yields one finding per line
// rather than one per iteration.
const F_MISSING_FLUSH: u8 = 1 << 0;
const F_MISSING_FENCE: u8 = 1 << 1;
const F_REDUNDANT_FLUSH: u8 = 1 << 2;
const F_UNPERSISTED_READ: u8 = 1 << 3;

#[derive(Debug, Clone)]
struct LineInfo {
    state: LineState,
    /// Thread of the most recent store (for diagnostics and for finding
    /// the dirty-epoch bucket the line sits in).
    store_owner: usize,
    /// That thread's epoch at the most recent store.
    store_epoch: u64,
    /// A dirty eviction wrote this line back: durable by luck.
    evicted_since_store: bool,
    /// Most recent *invalidating* flush of a dirty copy — mirrors the
    /// machine's `recent_flush` bookkeeping for bypass detection.
    last_inval_flush_at: Option<Cycles>,
    flagged: u8,
}

impl LineInfo {
    fn new(state: LineState, owner: usize, epoch: u64) -> Self {
        LineInfo {
            state,
            store_owner: owner,
            store_epoch: epoch,
            evicted_since_store: false,
            last_inval_flush_at: None,
            flagged: 0,
        }
    }
}

#[derive(Debug, Default)]
struct ThreadState {
    /// Fences completed by this thread.
    epoch: u64,
    /// Flushes + nt-stores issued since the last fence (any region — the
    /// machine's fences wait on DRAM accepts too).
    pending_persists: u64,
    /// PM lines this thread flushed or nt-stored, awaiting its next fence.
    unfenced_lines: Vec<u64>,
    /// Issue time of this thread's last `mfence` (clears load bypass).
    last_mfence_at: Cycles,
}

/// The automaton. Shared between the machine's boxed sink and the
/// [`PmCheck`] handle via `Rc<RefCell<_>>`.
#[derive(Debug)]
pub(crate) struct Checker {
    cfg: CheckerConfig,
    workload: String,
    lines: BTreeMap<u64, LineInfo>,
    threads: Vec<ThreadState>,
    seq: u64,
    events: u64,
    flushes: u64,
    fences: u64,
    lines_ever: u64,
    diags: Vec<Diagnostic>,
    predicted_lost: Vec<u64>,
}

impl Checker {
    fn new(cfg: CheckerConfig, workload: &str) -> Self {
        Checker {
            cfg,
            workload: workload.to_string(),
            lines: BTreeMap::new(),
            threads: Vec::new(),
            seq: 0,
            events: 0,
            flushes: 0,
            fences: 0,
            lines_ever: 0,
            diags: Vec::new(),
            predicted_lost: Vec::new(),
        }
    }

    fn thread(&mut self, tid: usize) -> &mut ThreadState {
        if self.threads.len() <= tid {
            self.threads.resize_with(tid + 1, ThreadState::default);
        }
        &mut self.threads[tid]
    }

    fn diag(
        &mut self,
        kind: DiagKind,
        thread: usize,
        line: Option<u64>,
        at: Cycles,
        message: String,
        survived_by_eviction: bool,
    ) {
        let epoch = self.threads.get(thread).map_or(0, |t| t.epoch);
        self.diags.push(Diagnostic {
            kind,
            thread,
            line,
            epoch,
            at,
            seq: self.seq,
            message,
            survived_by_eviction,
        });
    }

    fn on_store(&mut self, tid: usize, addr: Addr, len: u64, at: Cycles, non_temporal: bool) {
        let covered: Vec<u64> = cachelines_covering(addr, len).map(|cl| cl.0).collect();
        let epoch = self.thread(tid).epoch;

        for &l in &covered {
            // Store-after-unfenced-persist: the earlier flush/nt-store to
            // this line never reached a fence, so its durability point was
            // never established before the line changed again.
            let fence_msg = {
                let li = self.lines.entry(l).or_insert_with(|| {
                    LineInfo::new(LineState::Persisted, tid, epoch) // placeholder
                });
                if matches!(li.state, LineState::FlushIssued | LineState::Accepted)
                    && li.flagged & F_MISSING_FENCE == 0
                {
                    li.flagged |= F_MISSING_FENCE;
                    let what = if li.state == LineState::FlushIssued {
                        "flush"
                    } else {
                        "nt-store"
                    };
                    Some(format!(
                        "{what} was never ordered by a fence before the line was re-stored"
                    ))
                } else {
                    None
                }
            };
            if let Some(msg) = fence_msg {
                self.diag(DiagKind::MissingFence, tid, Some(l), at, msg, false);
            }
            let li = self.lines.get_mut(&l).expect("just inserted");
            li.state = if non_temporal {
                LineState::Accepted
            } else {
                LineState::Dirty
            };
            li.store_owner = tid;
            li.store_epoch = epoch;
            li.evicted_since_store = false;
            li.last_inval_flush_at = None;
        }

        if non_temporal {
            let t = self.thread(tid);
            t.pending_persists += 1;
            t.unfenced_lines.extend(covered.iter().copied());
        }
    }

    fn on_flush(&mut self, tid: usize, line: Addr, kind: FlushKind, dirty: bool, at: Cycles) {
        self.flushes += 1;
        let invalidating = match kind {
            FlushKind::Clwb => self.cfg.clwb_invalidates,
            FlushKind::Clflushopt | FlushKind::Clflush => true,
        };
        let l = line.0;
        let state = self.lines.get(&l).map(|li| li.state);
        match state {
            Some(LineState::Dirty) => {
                let li = self.lines.get_mut(&l).expect("state probed");
                li.state = if kind == FlushKind::Clflush {
                    // clflush itself waits for WPQ acceptance; no fence
                    // is needed to reach durability.
                    LineState::Persisted
                } else {
                    LineState::FlushIssued
                };
                if invalidating && dirty {
                    li.last_inval_flush_at = Some(at);
                }
                if kind != FlushKind::Clflush {
                    let t = self.thread(tid);
                    t.pending_persists += 1;
                    t.unfenced_lines.push(l);
                }
            }
            Some(LineState::FlushIssued) => {
                let li = self.lines.get_mut(&l).expect("state probed");
                let already = li.flagged & F_REDUNDANT_FLUSH != 0;
                li.flagged |= F_REDUNDANT_FLUSH;
                if !already {
                    self.diag(
                        DiagKind::RedundantFlush,
                        tid,
                        Some(l),
                        at,
                        "line was already flushed in this epoch (double flush)".to_string(),
                        false,
                    );
                }
                if kind == FlushKind::Clflush {
                    self.lines.get_mut(&l).expect("state probed").state = LineState::Persisted;
                }
            }
            Some(LineState::Accepted) | Some(LineState::Persisted) | None => {
                let reason = match state {
                    Some(LineState::Accepted) => "line was already accepted via an nt-store",
                    Some(LineState::Persisted) => "line is already persisted",
                    _ => "line was never stored to",
                };
                let already = match self.lines.get_mut(&l) {
                    Some(li) => {
                        let a = li.flagged & F_REDUNDANT_FLUSH != 0;
                        li.flagged |= F_REDUNDANT_FLUSH;
                        a
                    }
                    // An untracked line can only be flushed redundantly;
                    // don't start tracking it, but report once per call
                    // site pattern is overkill — report each.
                    None => false,
                };
                if !already {
                    self.diag(
                        DiagKind::RedundantFlush,
                        tid,
                        Some(l),
                        at,
                        format!("{reason}; this flush cannot persist anything new"),
                        false,
                    );
                }
            }
        }
    }

    /// The drain half of a fence (or locked RMW): completes in-flight
    /// persists, advances the thread's epoch, and (for full barriers)
    /// records the load-ordering point. Returns how many persists were
    /// pending, for the caller's redundancy diagnostics.
    fn drain_thread(&mut self, tid: usize, full_barrier: bool, at: Cycles) -> u64 {
        let t = self.thread(tid);
        let pending = t.pending_persists;
        let unfenced = std::mem::take(&mut t.unfenced_lines);
        t.pending_persists = 0;
        t.epoch += 1;
        if full_barrier {
            t.last_mfence_at = at;
        }
        for l in unfenced {
            if let Some(li) = self.lines.get_mut(&l) {
                // Only complete persists still in flight: a line re-stored
                // after its flush went back to Dirty and stays there.
                if matches!(li.state, LineState::FlushIssued | LineState::Accepted) {
                    li.state = LineState::Persisted;
                    li.evicted_since_store = false;
                }
            }
        }
        pending
    }

    fn on_fence(&mut self, tid: usize, kind: FenceKind, at: Cycles) {
        self.fences += 1;
        let pending = self.drain_thread(tid, kind == FenceKind::Mfence, at);
        if pending == 0 {
            let name = match kind {
                FenceKind::Sfence => "sfence",
                FenceKind::Mfence => "mfence",
            };
            self.diag(
                DiagKind::RedundantFence,
                tid,
                None,
                at,
                format!("{name} with no flush or nt-store outstanding since the previous fence"),
                false,
            );
        }
    }

    /// A locked RMW (`cas`/`xadd`): a full barrier that is *never*
    /// redundant (the lock prefix's ordering is inherent, not a persist
    /// directive the programmer chose), followed — when the RMW wrote —
    /// by a cached 8-byte store. Draining first mirrors x86: an earlier
    /// flush of the same line *is* ordered by the lock prefix, so the
    /// re-store must not be flagged as fence-less.
    fn on_locked_rmw(
        &mut self,
        tid: usize,
        addr: Addr,
        region: MemRegion,
        wrote: bool,
        at: Cycles,
    ) {
        self.drain_thread(tid, true, at);
        if wrote && region == MemRegion::Pm {
            self.on_store(tid, addr, 8, at, false);
        }
    }

    fn on_load(&mut self, tid: usize, addr: Addr, len: u64, at: Cycles) {
        if !self.cfg.sfence_load_bypass || self.cfg.load_bypass_window == 0 {
            return;
        }
        let last_mfence = self.thread(tid).last_mfence_at;
        let window = self.cfg.load_bypass_window;
        let covered: Vec<u64> = cachelines_covering(addr, len).map(|cl| cl.0).collect();
        for l in covered {
            let hazard = match self.lines.get_mut(&l) {
                Some(li) => match li.last_inval_flush_at {
                    Some(f)
                        if f > last_mfence
                            && at < f + window
                            && li.flagged & F_UNPERSISTED_READ == 0 =>
                    {
                        li.flagged |= F_UNPERSISTED_READ;
                        Some(f)
                    }
                    _ => None,
                },
                None => None,
            };
            if let Some(f) = hazard {
                self.diag(
                    DiagKind::UnpersistedRead,
                    tid,
                    Some(l),
                    at,
                    format!(
                        "load served from the stale cached copy {} cycles after an \
                         invalidating flush, inside the bypass window (no mfence since)",
                        at.saturating_sub(f)
                    ),
                    false,
                );
            }
        }
    }

    fn on_writeback(&mut self, line: Addr) {
        if let Some(li) = self.lines.get_mut(&line.0) {
            if li.state == LineState::Dirty {
                li.evicted_since_store = true;
            }
        }
    }

    /// End-of-stream / power-failure sweep: anything not `Persisted` is a
    /// finding, and still-`Dirty` non-evicted lines are predicted lost.
    fn sweep(&mut self, reason: &str, at: Cycles) {
        let snapshot: Vec<(u64, LineState, u8, bool, usize, u64)> = self
            .lines
            .iter()
            .map(|(&l, li)| {
                (
                    l,
                    li.state,
                    li.flagged,
                    li.evicted_since_store,
                    li.store_owner,
                    li.store_epoch,
                )
            })
            .collect();
        for (l, state, flagged, evicted, owner, store_epoch) in snapshot {
            match state {
                LineState::Dirty => {
                    if !evicted {
                        self.predicted_lost.push(l);
                    }
                    if flagged & F_MISSING_FLUSH == 0 {
                        let crossed = self
                            .threads
                            .get(owner)
                            .map_or(0, |t| t.epoch.saturating_sub(store_epoch));
                        let msg = if crossed > 0 {
                            format!(
                                "stored but never flushed; {crossed} fence(s) passed \
                                 without covering this line before {reason}"
                            )
                        } else {
                            format!("stored but never flushed before {reason}")
                        };
                        self.diag(DiagKind::MissingFlush, owner, Some(l), at, msg, evicted);
                    }
                }
                LineState::FlushIssued => {
                    if flagged & F_MISSING_FENCE == 0 {
                        self.diag(
                            DiagKind::MissingFence,
                            owner,
                            Some(l),
                            at,
                            format!("flush was never ordered by a fence before {reason}"),
                            false,
                        );
                    }
                }
                LineState::Accepted => {
                    if flagged & F_MISSING_FENCE == 0 {
                        self.diag(
                            DiagKind::MissingFence,
                            owner,
                            Some(l),
                            at,
                            format!("nt-store was never ordered by a fence before {reason}"),
                            false,
                        );
                    }
                }
                LineState::Persisted => {}
            }
        }
        self.predicted_lost.sort_unstable();
        self.predicted_lost.dedup();
    }

    fn on_power_fail(&mut self, at: Cycles) {
        self.sweep("power failure", at);
        // The machine resets dirty state at a crash; mirror it. Findings
        // and counters survive, line/epoch tracking starts over.
        self.lines.clear();
        for t in &mut self.threads {
            t.pending_persists = 0;
            t.unfenced_lines.clear();
        }
    }

    fn on_event(&mut self, ev: &TraceEvent) {
        self.events += 1;
        self.seq += 1;
        match *ev {
            TraceEvent::Store {
                tid,
                addr,
                len,
                region,
                at,
            } => match region {
                MemRegion::Pm => self.on_store(tid.0, addr, len, at, false),
                MemRegion::Dram => {}
            },
            TraceEvent::NtStore {
                tid,
                addr,
                len,
                region,
                at,
            } => match region {
                MemRegion::Pm => self.on_store(tid.0, addr, len, at, true),
                MemRegion::Dram => {
                    // The machine's fences wait on DRAM accepts too, so
                    // this still arms the next fence as non-redundant.
                    self.thread(tid.0).pending_persists += 1;
                }
            },
            TraceEvent::Flush {
                tid,
                line,
                kind,
                region,
                dirty,
                at,
            } => match region {
                MemRegion::Pm => self.on_flush(tid.0, line, kind, dirty, at),
                MemRegion::Dram => {
                    self.flushes += 1;
                    if dirty && kind != FlushKind::Clflush {
                        self.thread(tid.0).pending_persists += 1;
                    }
                }
            },
            TraceEvent::Fence { tid, kind, at } => self.on_fence(tid.0, kind, at),
            TraceEvent::Load {
                tid,
                addr,
                len,
                region,
                at,
            } => {
                if region == MemRegion::Pm {
                    self.on_load(tid.0, addr, len, at);
                }
            }
            TraceEvent::WriteBack { line, .. } => self.on_writeback(line),
            TraceEvent::PowerFail { at } => self.on_power_fail(at),
            TraceEvent::Cas {
                tid,
                addr,
                region,
                success,
                at,
            } => self.on_locked_rmw(tid.0, addr, region, success, at),
            TraceEvent::FetchAdd {
                tid,
                addr,
                region,
                at,
                ..
            } => self.on_locked_rmw(tid.0, addr, region, true, at),
        }
        self.lines_ever = self.lines_ever.max(self.lines.len() as u64);
    }

    fn build_report(&self) -> Report {
        Report {
            workload: self.workload.clone(),
            diagnostics: self.diags.clone(),
            events: self.events,
            lines_tracked: self.lines_ever,
            fences: self.fences,
            flushes: self.flushes,
            predicted_lost: self.predicted_lost.clone(),
        }
    }
}

/// The sink half: a shared handle boxed into the machine.
struct SinkHandle(Rc<RefCell<Checker>>);

impl TraceSink for SinkHandle {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.0.borrow_mut().on_event(ev);
    }
}

/// An attached persist-ordering checker.
///
/// [`PmCheck::attach`] installs the checker as the machine's trace sink;
/// run any workload, then call [`PmCheck::finish`] to detach and obtain
/// the [`Report`]. If the machine suffers a [`Machine::power_fail`] while
/// attached, the checker sweeps its state at that instant — so a report
/// taken after a crash says which lines were predicted lost *at the
/// crash*, ready to compare against actual recovery divergence.
pub struct PmCheck {
    shared: Rc<RefCell<Checker>>,
}

impl PmCheck {
    /// Attaches a checker (replacing any existing sink), deriving its
    /// configuration from the machine's.
    pub fn attach(m: &mut Machine) -> Self {
        Self::attach_named(m, "unnamed")
    }

    /// Like [`PmCheck::attach`], labelling the report with a workload
    /// name.
    pub fn attach_named(m: &mut Machine, workload: &str) -> Self {
        let cfg = CheckerConfig::from_machine(m.config());
        let shared = Rc::new(RefCell::new(Checker::new(cfg, workload)));
        m.set_trace_sink(Box::new(SinkHandle(Rc::clone(&shared))));
        PmCheck { shared }
    }

    /// Snapshot of the findings so far, *without* the end-of-stream sweep:
    /// lines legitimately mid-persist are not flagged.
    pub fn report(&self) -> Report {
        self.shared.borrow().build_report()
    }

    /// Detaches the sink and produces the final report, sweeping any line
    /// still short of `Persisted` (no-op after a power failure, which
    /// already swept).
    pub fn finish(self, m: &mut Machine) -> Report {
        drop(m.take_trace_sink());
        let mut c = self.shared.borrow_mut();
        let at = c.diags.last().map_or(0, |d| d.at);
        c.sweep("the end of the analysed run", at);
        c.build_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::CrashPolicy;

    fn g1() -> Machine {
        Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1))
    }

    #[test]
    fn clean_persist_has_no_findings() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(256, 64);
        let check = PmCheck::attach_named(&mut m, "clean");
        for i in 0..4 {
            m.store_u64(t, Addr(a.0 + 64 * i), i);
            m.clwb(t, Addr(a.0 + 64 * i));
            m.sfence(t);
        }
        let report = check.finish(&mut m);
        assert!(
            report.is_clean(),
            "unexpected findings:\n{}",
            report.to_text()
        );
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.fences, 4);
        assert!(report.predicted_lost_lines().is_empty());
    }

    #[test]
    fn missing_flush_found_at_dependent_store() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let b = m.alloc_pm(64, 64);
        let check = PmCheck::attach(&mut m);
        m.store_u64(t, a, 1); // never flushed
        m.sfence(t); // epoch boundary orders... nothing for `a`
        m.store_u64(t, b, 2); // dependent store in a later epoch
        m.clwb(t, b);
        m.sfence(t);
        let report = check.finish(&mut m);
        assert_eq!(report.count(DiagKind::MissingFlush), 1);
        assert_eq!(report.predicted_lost_lines(), &[a.cacheline().0]);
    }

    #[test]
    fn missing_flush_found_at_power_fail_and_matches_machine() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let b = m.alloc_pm(64, 64);
        let check = PmCheck::attach(&mut m);
        m.store_u64(t, a, 7);
        m.clwb(t, a);
        m.sfence(t);
        m.store_u64(t, b, 9); // dirty at the crash
        m.power_fail(CrashPolicy::LoseUnflushed);
        let report = check.finish(&mut m);
        assert_eq!(report.count(DiagKind::MissingFlush), 1);
        assert_eq!(report.predicted_lost_lines(), &[b.cacheline().0]);
        // The machine agrees: the flushed line survived, the dirty one
        // did not.
        assert_eq!(m.peek_u64(a), 7);
        assert_eq!(m.peek_u64(b), 0);
    }

    #[test]
    fn missing_fence_on_restore_and_at_crash() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let b = m.alloc_pm(64, 64);
        let check = PmCheck::attach(&mut m);
        m.store_u64(t, a, 1);
        m.clwb(t, a);
        m.store_u64(t, a, 2); // re-store with the flush still unfenced
        m.clwb(t, a);
        m.store_u64(t, b, 3);
        m.clwb(t, b);
        // No fence at all: both flushes are unfenced at the crash.
        m.power_fail(CrashPolicy::LoseUnflushed);
        let report = check.finish(&mut m);
        // One finding for the re-store of `a` (flagged lines are not
        // reported again by the sweep), one for `b` at the crash.
        assert_eq!(
            report.count(DiagKind::MissingFence),
            2,
            "{}",
            report.to_text()
        );
        // In this machine model the WPQ drains flushes even without the
        // fence, so nothing is predicted (or actually) lost.
        assert!(report.predicted_lost_lines().is_empty());
        assert_eq!(m.peek_u64(a), 2);
        assert_eq!(m.peek_u64(b), 3);
    }

    #[test]
    fn redundant_flush_and_fence_are_perf_findings() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let check = PmCheck::attach(&mut m);
        m.store_u64(t, a, 1);
        m.clwb(t, a);
        m.clwb(t, a); // double flush, same epoch
        m.sfence(t);
        m.sfence(t); // nothing outstanding
        let report = check.finish(&mut m);
        assert_eq!(
            report.count(DiagKind::RedundantFlush),
            1,
            "{}",
            report.to_text()
        );
        assert_eq!(report.count(DiagKind::RedundantFence), 1);
        assert!(report.is_clean(), "perf findings only");
    }

    #[test]
    fn unpersisted_read_inside_bypass_window() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let check = PmCheck::attach(&mut m);
        m.store_u64(t, a, 1);
        m.clwb(t, a);
        m.sfence(t);
        let _ = m.load_u64(t, a); // G1: served from the stale cached copy
        let report = check.finish(&mut m);
        assert_eq!(
            report.count(DiagKind::UnpersistedRead),
            1,
            "{}",
            report.to_text()
        );
        assert!(report.is_clean(), "info finding only");
    }

    #[test]
    fn nt_store_needs_a_fence_for_ordering_but_survives_crash() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let check = PmCheck::attach(&mut m);
        let bytes = 42u64.to_le_bytes();
        m.nt_store(t, a, &bytes); // accepted, never fenced
        m.power_fail(CrashPolicy::LoseUnflushed);
        let report = check.finish(&mut m);
        assert_eq!(report.count(DiagKind::MissingFence), 1);
        // Accepted data is inside the ADR domain: not predicted lost, and
        // the machine indeed keeps it.
        assert!(report.predicted_lost_lines().is_empty());
        assert_eq!(m.peek_u64(a), 42);
    }

    #[test]
    fn clflush_is_durable_without_a_fence() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let check = PmCheck::attach(&mut m);
        m.store_u64(t, a, 5);
        m.clflush(t, a); // strongly ordered: no fence required
        m.power_fail(CrashPolicy::LoseUnflushed);
        let report = check.finish(&mut m);
        assert!(report.is_clean(), "{}", report.to_text());
        assert_eq!(m.peek_u64(a), 5);
    }
}
