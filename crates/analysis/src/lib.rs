//! `pmcheck`: persist-ordering and crash-consistency analysis of the
//! simulated instruction stream.
//!
//! Persistent-memory code silently gets *persist ordering* wrong — exactly
//! the property the paper's RAP/WPQ findings hinge on, and exactly what
//! the simulator can observe with perfect fidelity where real hardware
//! cannot. This crate attaches to [`optane_core::Machine`] as a
//! [`TraceSink`](optane_core::TraceSink) and feeds every observed
//! `store`/`nt_store`/`clwb`/`clflushopt`/`clflush`/`sfence`/`mfence`
//! event into a per-cacheline persist-state automaton
//! (`Dirty → FlushIssued → Accepted → Persisted`) plus a per-thread epoch
//! model (an epoch is the span between two fences). It reports:
//!
//! - **missing-flush** — a store whose cacheline is still unflushed when
//!   the run ends or the power fails; the diagnostic records how many
//!   fences passed without covering the line. These lines are *predicted
//!   lost* under `CrashPolicy::LoseUnflushed` (unless a chance dirty
//!   eviction persisted them — the report says which).
//! - **missing-fence** — a flush or nt-store not ordered by a fence before
//!   either a re-store of the same line or a power failure. Durable in
//!   this machine model (the WPQ always drains) but an ordering bug: the
//!   program has no point at which it may *conclude* the data is durable.
//! - **redundant-flush / redundant-fence** — performance diagnostics:
//!   double `clwb` to the same line in one epoch, flushes of clean or
//!   already-persisted lines, fences with no persist work outstanding.
//! - **unpersisted-read** — a load served inside the G1 `clwb + sfence`
//!   bypass window (the machine's `recent_flush` bookkeeping): the read
//!   returns the stale pre-invalidation cached copy while the persist is
//!   still in flight.
//!
//! The checker is *validated by the simulator itself*: `repro pmcheck`
//! cross-checks every missing-flush verdict against an actual
//! `power_fail(LoseUnflushed)` plus recovery divergence (see
//! `experiments::e10_pmcheck`).
//!
//! # Example
//!
//! ```
//! use cpucache::PrefetchConfig;
//! use optane_core::{Machine, MachineConfig};
//! use pmcheck::{DiagKind, PmCheck};
//!
//! let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
//! let t = m.spawn(0);
//! let a = m.alloc_pm(64, 64);
//! let check = PmCheck::attach(&mut m);
//!
//! m.store_u64(t, a, 1);
//! m.clwb(t, a);
//! m.sfence(t); // clean persist: no findings
//!
//! let b = m.alloc_pm(64, 64);
//! m.store_u64(t, b, 2); // never flushed...
//! m.sfence(t);
//! m.store_u64(t, a, 3); // ...but a later epoch depends on it
//! m.clwb(t, a);
//! m.sfence(t);
//!
//! let report = check.finish(&mut m);
//! assert_eq!(report.count(DiagKind::MissingFlush), 1);
//! ```

#![forbid(unsafe_code)]

mod checker;
mod report;

pub use checker::{CheckerConfig, PmCheck};
pub use report::{DiagKind, Diagnostic, Report, Severity};
