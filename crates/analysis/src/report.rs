//! Structured checker output: diagnostics, severities, and the report
//! with JSON and human-readable renderings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simbase::Cycles;

/// What kind of finding a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagKind {
    /// A store whose cacheline was never flushed before a dependent store
    /// in a later epoch or before a power failure.
    MissingFlush,
    /// A flush or nt-store never ordered by a fence before the line was
    /// re-stored or the power failed.
    MissingFence,
    /// A flush that could not have persisted anything new (double flush in
    /// one epoch, or flush of a clean/already-persisted line).
    RedundantFlush,
    /// A fence with no flush or nt-store outstanding since the previous
    /// fence.
    RedundantFence,
    /// A load served from the stale cached copy inside the G1
    /// `clwb + sfence` bypass window, while the persist is in flight.
    UnpersistedRead,
}

impl DiagKind {
    /// Stable machine-readable name (used in the JSON report).
    pub fn name(self) -> &'static str {
        match self {
            DiagKind::MissingFlush => "missing-flush",
            DiagKind::MissingFence => "missing-fence",
            DiagKind::RedundantFlush => "redundant-flush",
            DiagKind::RedundantFence => "redundant-fence",
            DiagKind::UnpersistedRead => "unpersisted-read",
        }
    }

    /// The severity class this kind always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagKind::MissingFlush | DiagKind::MissingFence => Severity::Error,
            DiagKind::RedundantFlush | DiagKind::RedundantFence => Severity::Perf,
            DiagKind::UnpersistedRead => Severity::Info,
        }
    }

    fn all() -> [DiagKind; 5] {
        [
            DiagKind::MissingFlush,
            DiagKind::MissingFence,
            DiagKind::RedundantFlush,
            DiagKind::RedundantFence,
            DiagKind::UnpersistedRead,
        ]
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Crash-consistency bug: recovery can observe lost or unordered data.
    Error,
    /// Correct but wasteful: extra persist work on the critical path.
    Perf,
    /// Hazard worth knowing about; functionally benign in this model.
    Info,
}

impl Severity {
    /// Stable machine-readable name (used in the JSON report).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Perf => "perf",
            Severity::Info => "info",
        }
    }
}

/// One checker finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// What kind of finding.
    pub kind: DiagKind,
    /// Index of the simulated thread whose instruction triggered it.
    pub thread: usize,
    /// The cacheline concerned, if the finding is line-specific.
    pub line: Option<u64>,
    /// The triggering thread's epoch (fences completed) at detection.
    pub epoch: u64,
    /// Simulated time of the triggering event.
    pub at: Cycles,
    /// Event sequence number of the triggering event.
    pub seq: u64,
    /// Human-readable explanation.
    pub message: String,
    /// For missing-flush: the line happened to be persisted anyway by a
    /// dirty cache eviction, so it would survive a crash despite the bug.
    pub survived_by_eviction: bool,
}

impl Diagnostic {
    /// Severity of this finding.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

/// The checker's verdict over one attached run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Label naming the analysed workload.
    pub workload: String,
    /// All findings, in detection order.
    pub diagnostics: Vec<Diagnostic>,
    /// Total trace events processed.
    pub events: u64,
    /// Distinct PM cachelines tracked.
    pub lines_tracked: u64,
    /// Fences observed.
    pub fences: u64,
    /// Flushes observed.
    pub flushes: u64,
    /// Cachelines predicted lost under `CrashPolicy::LoseUnflushed`,
    /// filled by the final sweep (power failure or `finish`): lines still
    /// dirty with no flush and no saving eviction. Unlike the diagnostics
    /// list this reflects the state at sweep time, so a line flagged by
    /// the epoch rule but properly persisted later is not in it.
    pub predicted_lost: Vec<u64>,
}

impl Report {
    /// Number of findings of `kind`.
    pub fn count(&self, kind: DiagKind) -> usize {
        self.diagnostics.iter().filter(|d| d.kind == kind).count()
    }

    /// True when there are no error-severity findings.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// Cachelines the checker predicts would be lost by
    /// `power_fail(CrashPolicy::LoseUnflushed)`: missing-flush lines not
    /// saved by a chance eviction, as of the final sweep.
    pub fn predicted_lost_lines(&self) -> &[u64] {
        &self.predicted_lost
    }

    /// Per-kind finding counts.
    pub fn counts(&self) -> BTreeMap<DiagKind, usize> {
        let mut m = BTreeMap::new();
        for d in &self.diagnostics {
            *m.entry(d.kind).or_insert(0) += 1;
        }
        m
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "pmcheck report: {}", self.workload);
        let _ = writeln!(
            out,
            "  events: {}  pm-lines: {}  flushes: {}  fences: {}",
            self.events, self.lines_tracked, self.flushes, self.fences
        );
        let counts = self.counts();
        if counts.is_empty() {
            let _ = writeln!(out, "  verdict: CLEAN (no findings)");
            return out;
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.is_clean() {
                "clean (perf/info findings only)"
            } else {
                "ORDERING BUGS FOUND"
            }
        );
        for kind in DiagKind::all() {
            if let Some(&n) = counts.get(&kind) {
                let _ = writeln!(
                    out,
                    "  {:>4} x {} [{}]",
                    n,
                    kind.name(),
                    kind.severity().name()
                );
            }
        }
        for d in &self.diagnostics {
            let line = match d.line {
                Some(l) => format!("line {l:#x}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  [{}] {} t{} epoch {} cycle {} {}: {}{}",
                d.severity().name(),
                d.kind.name(),
                d.thread,
                d.epoch,
                d.at,
                line,
                d.message,
                if d.survived_by_eviction {
                    " (survived by chance eviction)"
                } else {
                    ""
                }
            );
        }
        out
    }

    /// Renders the report as JSON (no external dependencies; see
    /// `DESIGN.md`, "Offline builds").
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"workload\": {},", json_str(&self.workload));
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"lines_tracked\": {},", self.lines_tracked);
        let _ = writeln!(out, "  \"flushes\": {},", self.flushes);
        let _ = writeln!(out, "  \"fences\": {},", self.fences);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"counts\": {");
        let counts = self.counts();
        let mut first = true;
        for (kind, n) in &counts {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\": {}", kind.name(), n);
        }
        out.push_str("},\n");
        out.push_str("  \"predicted_lost_lines\": [");
        for (i, l) in self.predicted_lost.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{l}");
        }
        out.push_str("],\n");
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"kind\": \"{}\", \"severity\": \"{}\", \"thread\": {}, \"line\": {}, \
                 \"epoch\": {}, \"at\": {}, \"seq\": {}, \"survived_by_eviction\": {}, \
                 \"message\": {}}}",
                d.kind.name(),
                d.severity().name(),
                d.thread,
                match d.line {
                    Some(l) => l.to_string(),
                    None => "null".to_string(),
                },
                d.epoch,
                d.at,
                d.seq,
                d.survived_by_eviction,
                json_str(&d.message)
            );
            out.push_str(if i + 1 < self.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(kind: DiagKind, line: u64) -> Diagnostic {
        Diagnostic {
            kind,
            thread: 0,
            line: Some(line),
            epoch: 1,
            at: 10,
            seq: 3,
            message: "test \"quoted\" message".into(),
            survived_by_eviction: false,
        }
    }

    #[test]
    fn clean_report_renders() {
        let r = Report {
            workload: "w".into(),
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.to_text().contains("CLEAN"));
        assert!(r.to_json().contains("\"clean\": true"));
    }

    #[test]
    fn error_findings_make_the_report_unclean() {
        let mut r = Report::default();
        r.diagnostics.push(diag(DiagKind::MissingFlush, 0x40));
        r.diagnostics.push(diag(DiagKind::RedundantFlush, 0xc0));
        r.predicted_lost.push(0x40);
        assert_eq!(r.predicted_lost_lines(), &[0x40]);
        assert!(!r.is_clean());
        assert_eq!(r.count(DiagKind::MissingFlush), 1);
    }

    #[test]
    fn json_escapes_strings() {
        let r = Report {
            workload: "a\"b\\c\nd".into(),
            ..Report::default()
        };
        assert!(r.to_json().contains("a\\\"b\\\\c\\nd"));
    }
}
