//! Ablation benches for the design choices called out in `DESIGN.md`:
//! each knob is toggled and a representative workload's *simulated* cost
//! is reported via a Criterion throughput proxy (host time scales with
//! simulated work). The printed simulated-cycle deltas are the actual
//! ablation result; see EXPERIMENTS.md for the recorded numbers.

use cpucache::PrefetchConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optane_core::{Machine, MachineConfig};
use pmds::{Cceh, ChaseList, FastFair, UpdateStrategy, WriteKind};
use pmem::{PersistMode, PmemEnv, SimEnv};
use simbase::SplitMix64;
use workloads::AccessOrder;

/// Ablation: read-buffer capacity (paper value 64 lines vs halved and
/// doubled) on the strided-read workload.
fn read_buffer_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_read_buffer_lines");
    for lines in [32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(lines), &lines, |b, &lines| {
            b.iter(|| {
                let mut cfg = MachineConfig::g1(PrefetchConfig::none(), 1);
                cfg.pm.dimm.read_buffer_lines = lines;
                let mut m = Machine::new(cfg);
                let t = m.spawn(0);
                let base = m.alloc_pm(16 << 10, 256);
                for pass in 0..4u64 {
                    for x in 0..64u64 {
                        let a = base.add_xplines(x).add_cachelines(pass);
                        m.load_u64(t, a);
                        m.clflushopt(t, a);
                    }
                }
                m.metrics().telemetry.read_amplification()
            })
        });
    }
    group.finish();
}

/// Ablation: G1 periodic full-line write-back on/off under full-line
/// nt-stores.
fn periodic_writeback(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_periodic_writeback");
    for (name, period) in [("on", Some(5000u64)), ("off", None)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &period, |b, period| {
            b.iter(|| {
                let mut cfg = MachineConfig::g1(PrefetchConfig::none(), 1);
                cfg.pm.dimm.writeback_period = *period;
                let mut m = Machine::new(cfg);
                let t = m.spawn(0);
                let base = m.alloc_pm(4 << 10, 256);
                for round in 0..20u64 {
                    for x in 0..16u64 {
                        for cl in 0..4u64 {
                            m.nt_store(
                                t,
                                base.add_xplines(x).add_cachelines(cl),
                                &round.to_le_bytes(),
                            );
                        }
                    }
                    m.sfence(t);
                }
                m.metrics().telemetry.write_amplification()
            })
        });
    }
    group.finish();
}

/// Ablation: eADR vs ADR on strict-persistency chase writes (with eADR no
/// flushes would be required; here it changes only crash semantics, so the
/// bench pins that the timing paths stay identical).
fn eadr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eadr");
    for (name, eadr) in [("adr", false), ("eadr", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &eadr, |b, &eadr| {
            b.iter(|| {
                let mut cfg = MachineConfig::g2(PrefetchConfig::all(), 1);
                cfg.eadr = eadr;
                let mut m = Machine::new(cfg);
                let t = m.spawn(0);
                let mut env = SimEnv::new(&mut m, t);
                let list = ChaseList::build(&mut env, 256, AccessOrder::Random, 1);
                list.lap_write(&mut env, WriteKind::Clwb, PersistMode::Strict, 1)
            })
        });
    }
    group.finish();
}

/// Ablation: prefetcher configurations on a sequential chase (the benefit
/// side of prefetching, complementing Figure 6's cost side).
fn prefetchers_on_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prefetch_sequential_chase");
    let configs = [
        ("none", PrefetchConfig::none()),
        ("all", PrefetchConfig::all()),
    ];
    for (name, pf) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pf, |b, &pf| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::g1(pf, 1));
                let t = m.spawn(0);
                let mut env = SimEnv::new(&mut m, t);
                // 1 MB sequential chase: beyond the read buffer.
                let list = ChaseList::build(&mut env, 4096, AccessOrder::Sequential, 2);
                list.lap_read(&mut env)
            })
        });
    }
    group.finish();
}

/// Ablation: ring-redo-log capacity (reclaim frequency) on B+-tree
/// inserts.
fn ring_log_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fastfair_strategy");
    for strategy in [UpdateStrategy::InPlace, UpdateStrategy::RedoLog] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
                    let t = m.spawn(0);
                    let mut env = SimEnv::new(&mut m, t);
                    let mut tree = FastFair::create(&mut env, strategy);
                    let mut keys: Vec<u64> = (1..=800).collect();
                    SplitMix64::new(3).shuffle(&mut keys);
                    for &k in &keys {
                        tree.insert(&mut env, k, k);
                    }
                    env.now()
                })
            },
        );
    }
    group.finish();
}

/// Ablation: CCEH probe window (spatial locality on the read buffer).
fn cceh_insert_cost(c: &mut Criterion) {
    c.bench_function("ablation_cceh_insert_1dimm_vs_6dimm", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for dimms in [1usize, 6] {
                let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), dimms));
                let t = m.spawn(0);
                let mut env = SimEnv::new(&mut m, t);
                let mut table = Cceh::create(&mut env, 8);
                for k in 1..=500u64 {
                    table.insert(&mut env, (k * 0x9E37_79B9) | 1, k);
                }
                total += env.now();
            }
            total
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = read_buffer_capacity, periodic_writeback, eadr,
              prefetchers_on_sequential, ring_log_capacity, cceh_insert_cost
}
criterion_main!(ablations);
