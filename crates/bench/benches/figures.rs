//! One Criterion group per paper table/figure: each benchmark regenerates
//! a representative point of the corresponding experiment, so `cargo
//! bench` both times the harness and continuously exercises every
//! reproduction path. Full-resolution figure regeneration is `repro`'s
//! job (`cargo run --release -p experiments --bin repro -- all`).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{
    e1_read_buffer, e2_prefetch, e3_write_amp, e4_wb_hit, e5_rap, e6_latency, e7_cceh, e8_btree,
    e9_redirect, table1,
};
use optane_core::Generation;

fn fig02_read_buffer(c: &mut Criterion) {
    c.bench_function("fig02_read_buffer_ra_sweep", |b| {
        b.iter(|| {
            e1_read_buffer::run(&e1_read_buffer::E1Params {
                generation: Generation::G1,
                wss_points: vec![8 << 10, 24 << 10],
                rounds: 2,
                metrics: None,
                seed: 0,
            })
        })
    });
}

fn fig03_write_amp(c: &mut Criterion) {
    c.bench_function("fig03_write_amplification", |b| {
        b.iter(|| {
            e3_write_amp::run(&e3_write_amp::E3Params {
                generation: Generation::G1,
                wss_points: vec![8 << 10, 24 << 10],
                rounds: 4,
                metrics: None,
                seed: 0,
            })
        })
    });
}

fn fig04_wb_hit(c: &mut Criterion) {
    c.bench_function("fig04_write_buffer_hit_ratio", |b| {
        b.iter(|| {
            e4_wb_hit::run(&e4_wb_hit::E4Params {
                wss_points: vec![8 << 10, 20 << 10],
                writes: 4000,
            })
        })
    });
}

fn fig06_prefetch(c: &mut Criterion) {
    c.bench_function("fig06_prefetch_read_ratios", |b| {
        b.iter(|| {
            e2_prefetch::run(&e2_prefetch::E2Params {
                generation: Generation::G1,
                wss_points: vec![8 << 10, 1 << 20],
                intra_reps: 2,
                rounds: 1,
                max_blocks_per_round: 2048,
            })
        })
    });
}

fn fig07_rap(c: &mut Criterion) {
    c.bench_function("fig07_read_after_persist", |b| {
        b.iter(|| {
            e5_rap::run(&e5_rap::E5Params {
                generation: Generation::G1,
                distances: vec![0, 8],
                iters: 200,
            })
        })
    });
}

fn fig08_latency(c: &mut Criterion) {
    c.bench_function("fig08_chase_latency", |b| {
        b.iter(|| {
            e6_latency::run(&e6_latency::E6Params {
                generation: Generation::G1,
                wss_points: vec![64 << 10],
                laps: 1,
            })
        })
    });
}

fn tab01_cceh_breakdown(c: &mut Criterion) {
    c.bench_function("tab01_cceh_insert_breakdown", |b| {
        b.iter(|| {
            table1::run(&table1::Table1Params {
                inserts: 2000,
                cases: vec![(1, 1)],
                initial_depth: 12,
            })
        })
    });
}

fn fig10_cceh(c: &mut Criterion) {
    c.bench_function("fig10_cceh_helper_prefetch", |b| {
        b.iter(|| {
            e7_cceh::run(&e7_cceh::E7Params {
                inserts_per_worker: 1000,
                workers: vec![1],
                ..e7_cceh::E7Params::default()
            })
        })
    });
}

fn fig12_btree(c: &mut Criterion) {
    c.bench_function("fig12_fastfair_strategies", |b| {
        b.iter(|| {
            e8_btree::run(&e8_btree::E8Params {
                inserts: 2000,
                threads: vec![1],
                generations: vec![Generation::G1],
                dimms: 1,
            })
        })
    });
}

fn fig13_14_redirect(c: &mut Criterion) {
    c.bench_function("fig13_14_streaming_redirect", |b| {
        b.iter(|| {
            let p = e9_redirect::E9Params {
                wss_points: vec![4 << 20],
                visits: 2000,
                threads: vec![1, 8],
                visits_per_thread: 500,
                fig14_wss: 4 << 20,
                ..e9_redirect::E9Params::default()
            };
            let f13 = e9_redirect::run_fig13(&p);
            let f14 = e9_redirect::run_fig14(&p);
            (f13, f14)
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig02_read_buffer, fig03_write_amp, fig04_wb_hit, fig06_prefetch,
              fig07_rap, fig08_latency, tab01_cceh_breakdown, fig10_cceh,
              fig12_btree, fig13_14_redirect
}
criterion_main!(figures);
