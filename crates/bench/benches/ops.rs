//! Micro-benchmarks of the library itself (host-time performance of the
//! simulator's hot paths and of the data structures on the untimed host
//! backend). These guard the simulator's own throughput: experiments
//! execute hundreds of millions of simulated operations, so regressions
//! here directly inflate figure-regeneration time.

use cpucache::PrefetchConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optane_core::{Machine, MachineConfig};
use pmds::{Cceh, FastFair, UpdateStrategy};
use pmem::{HostEnv, SimEnv};

fn sim_load_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_ops");
    group.throughput(Throughput::Elements(1));
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
    let t = m.spawn(0);
    let a = m.alloc_pm(64, 64);
    m.store_u64(t, a, 1);
    group.bench_function("load_l1_hit", |b| {
        b.iter(|| m.load_u64(t, a));
    });
    group.bench_function("store_l1_hit", |b| {
        b.iter(|| m.store_u64(t, a, 2));
    });
    group.bench_function("clwb_sfence", |b| {
        b.iter(|| {
            m.store_u64(t, a, 3);
            m.clwb(t, a);
            m.sfence(t);
        });
    });
    group.bench_function("nt_store_sfence", |b| {
        b.iter(|| {
            m.nt_store(t, a, &4u64.to_le_bytes());
            m.sfence(t);
        });
    });
    group.finish();
}

fn sim_load_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_ops_miss");
    group.throughput(Throughput::Elements(1));
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
    let t = m.spawn(0);
    let base = m.alloc_pm(64 << 20, 256);
    let mut i = 0u64;
    group.bench_function("load_media_miss", |b| {
        b.iter(|| {
            i = (i + 97) % (1 << 20);
            m.load_u64(t, base.add_xplines(i))
        });
    });
    group.finish();
}

fn host_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_structures");
    group.throughput(Throughput::Elements(1));
    {
        let mut env = HostEnv::new();
        let mut table = Cceh::create(&mut env, 8);
        let mut k = 0u64;
        group.bench_function("cceh_insert", |b| {
            b.iter(|| {
                k += 1;
                table.insert(&mut env, k | 1, k);
            });
        });
        group.bench_function("cceh_get", |b| {
            b.iter(|| table.get(&mut env, (k / 2) | 1));
        });
    }
    {
        let mut env = HostEnv::new();
        let mut tree = FastFair::create(&mut env, UpdateStrategy::InPlace);
        let mut k = 0u64;
        group.bench_function("fastfair_insert", |b| {
            b.iter(|| {
                k += 1;
                tree.insert(&mut env, k.wrapping_mul(0x9E37_79B9) | 1, k);
            });
        });
    }
    group.finish();
}

fn sim_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_structures");
    group.throughput(Throughput::Elements(1));
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
    let t = m.spawn(0);
    let mut env = SimEnv::new(&mut m, t);
    let mut table = Cceh::create(&mut env, 10);
    let mut k = 0u64;
    group.bench_function("cceh_insert_simulated", |b| {
        b.iter(|| {
            k += 1;
            table.insert(&mut env, k | 1, k);
        });
    });
    group.finish();
}

criterion_group! {
    name = ops;
    config = Criterion::default().sample_size(20);
    targets = sim_load_hit, sim_load_miss, host_structures, sim_structures
}
criterion_main!(ops);
