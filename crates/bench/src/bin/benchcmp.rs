//! CI gate over deterministic BENCH reports.
//!
//! ```text
//! benchcmp <baseline.json> <candidate.json> [--tolerance 0.15]
//! ```
//!
//! Parses two deterministic BENCH files (flat e12/e13 shape or the
//! multi-scenario `BENCH_sim.json` shape), compares the
//! `sim_ops_per_mcycle` of every baseline scenario against the
//! candidate, and exits nonzero when any scenario regressed beyond the
//! relative tolerance band or disappeared. Improvements always pass —
//! the gate is one-sided by design (a faster simulator is not a bug,
//! it is a reminder to refresh the checked-in baseline).

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: benchcmp <baseline.json> <candidate.json> [--tolerance FRAC]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.15f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                tolerance = v;
            }
            "--help" | "-h" => return usage(),
            _ => paths.push(a.clone()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        return usage();
    };
    let read = |p: &str| -> Result<Vec<bench::BenchEntry>, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        bench::parse_bench(&text).map_err(|e| format!("{p}: {e}"))
    };
    let (base, cand) = match (read(base_path), read(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchcmp: {e}");
            return ExitCode::from(2);
        }
    };
    let report = bench::compare(&base, &cand, tolerance);
    println!(
        "benchcmp: tolerance {:.0}% on sim_ops_per_mcycle ({} scenarios)",
        tolerance * 100.0,
        report.len()
    );
    for c in &report {
        let line = match c.verdict {
            bench::Verdict::Ok(ratio) => format!(
                "  ok        {:<28} {:>12.3} -> {:>12.3}  ({:+.1}%)",
                c.name,
                c.baseline,
                c.candidate,
                (ratio - 1.0) * 100.0
            ),
            bench::Verdict::Regressed(ratio) => format!(
                "  REGRESSED {:<28} {:>12.3} -> {:>12.3}  ({:+.1}%)",
                c.name,
                c.baseline,
                c.candidate,
                (ratio - 1.0) * 100.0
            ),
            bench::Verdict::Missing => {
                format!(
                    "  MISSING   {:<28} {:>12.3} -> (absent)",
                    c.name, c.baseline
                )
            }
        };
        println!("{line}");
    }
    if bench::all_pass(&report) {
        println!("benchcmp: all scenarios within tolerance");
        ExitCode::SUCCESS
    } else {
        println!("benchcmp: throughput regression beyond tolerance");
        ExitCode::FAILURE
    }
}
