//! Criterion benchmark harness crate (see `benches/`).
//!
//! - `benches/figures.rs`: one group per paper table/figure;
//! - `benches/ablations.rs`: design-knob ablations from `DESIGN.md`;
//! - `benches/ops.rs`: host-time micro-benchmarks of the simulator and
//!   the data structures.

#![forbid(unsafe_code)]
