//! Shared sim-speed accounting and `BENCH_*.json` plumbing.
//!
//! Every benchmark writer in the workspace (the cluster drill, the
//! rebalance drill, and the `e14_simspeed` suite) splits its report in
//! two files so CI can byte-compare what is deterministic and tolerate
//! what is not:
//!
//! - **deterministic part** (`BENCH_cluster.json`, `BENCH_sim.json`, …):
//!   `sim_ops`, `sim_cycles`, and the derived `sim_ops_per_mcycle` — a
//!   pure function of the seed, byte-identical across runs and hosts;
//! - **wall-clock sidecar** (`BENCH_*_wall.json`): `wall_us` and
//!   `sim_ops_per_wall_sec` — host-dependent by design, excluded from
//!   the `diff -r` byte-identity checks. Microsecond resolution: at
//!   millisecond granularity a ~50 ms scenario quantizes its rate into
//!   ~2% cliffs, and sub-millisecond scenarios report no rate at all.
//!
//! The `benchcmp` binary (`src/bin/benchcmp.rs`) parses two
//! deterministic reports and fails on a relative `sim_ops_per_mcycle`
//! regression beyond a tolerance band; CI runs it against the
//! checked-in `BENCH_sim.json`.
//!
//! The criterion micro-benchmarks live in `benches/` and pull the
//! simulator in as dev-dependencies; this library is dependency-free so
//! `experiments` can use it without a cycle.

#![forbid(unsafe_code)]

/// Simulated operations per simulated megacycle.
///
/// The deterministic throughput figure: unlike wall-clock rates it is a
/// pure function of the instruction stream, so CI can gate on it with a
/// tolerance band. Returns `0.0` when `sim_cycles` is zero (a run that
/// never advanced the clock has no meaningful rate).
pub fn ops_per_mcycle(sim_ops: u64, sim_cycles: u64) -> f64 {
    let mcycles = sim_cycles as f64 / 1e6;
    if mcycles > 0.0 {
        sim_ops as f64 / mcycles
    } else {
        0.0
    }
}

/// Simulated operations per wall-clock second (host-dependent).
///
/// Returns `0.0` when `wall_us` is zero: sub-microsecond runs round to
/// zero and must not divide by it (the zero-wall guard).
pub fn ops_per_wall_sec(sim_ops: u64, wall_us: u64) -> f64 {
    if wall_us > 0 {
        sim_ops as f64 * 1_000_000.0 / wall_us as f64
    } else {
        0.0
    }
}

/// One measured scenario: the deterministic fields plus the wall-clock
/// microseconds kept aside for the sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable scenario id (e.g. `"e0_stream_nosink"`).
    pub name: String,
    /// Simulated operations completed.
    pub sim_ops: u64,
    /// Simulated cycles elapsed (makespan across threads).
    pub sim_cycles: u64,
    /// Trace events observed by the attached sink (0 when none).
    pub trace_events: u64,
    /// Host microseconds spent simulating (sidecar only).
    pub wall_us: u64,
}

/// Renders the deterministic part of a single-scenario report (the
/// e12/e13 shape: flat object, no `scenarios` array).
pub fn render_flat(experiment: &str, sim_ops: u64, sim_cycles: u64) -> String {
    format!(
        "{{\n  \"experiment\": \"{}\",\n  \"sim_ops\": {},\n  \"sim_cycles\": {},\n  \"sim_ops_per_mcycle\": {:.3}\n}}\n",
        experiment,
        sim_ops,
        sim_cycles,
        ops_per_mcycle(sim_ops, sim_cycles)
    )
}

/// Renders the wall-clock sidecar of a single-scenario report.
pub fn render_flat_wall(experiment: &str, sim_ops: u64, wall_us: u64) -> String {
    format!(
        "{{\n  \"experiment\": \"{}\",\n  \"wall_us\": {},\n  \"sim_ops_per_wall_sec\": {:.0}\n}}\n",
        experiment,
        wall_us,
        ops_per_wall_sec(sim_ops, wall_us)
    )
}

/// Renders the deterministic part of a multi-scenario report (the
/// `BENCH_sim.json` shape).
pub fn render_multi(experiment: &str, scenarios: &[Scenario]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
        s.push_str(&format!("      \"sim_ops\": {},\n", sc.sim_ops));
        s.push_str(&format!("      \"sim_cycles\": {},\n", sc.sim_cycles));
        s.push_str(&format!("      \"trace_events\": {},\n", sc.trace_events));
        s.push_str(&format!(
            "      \"sim_ops_per_mcycle\": {:.3}\n",
            ops_per_mcycle(sc.sim_ops, sc.sim_cycles)
        ));
        s.push_str(if i + 1 == scenarios.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the wall-clock sidecar of a multi-scenario report.
pub fn render_multi_wall(experiment: &str, scenarios: &[Scenario]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
        s.push_str(&format!("      \"wall_us\": {},\n", sc.wall_us));
        s.push_str(&format!(
            "      \"sim_ops_per_wall_sec\": {:.0}\n",
            ops_per_wall_sec(sc.sim_ops, sc.wall_us)
        ));
        s.push_str(if i + 1 == scenarios.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// One parsed row of a deterministic BENCH report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Scenario name (multi-scenario) or experiment name (flat).
    pub name: String,
    /// Simulated operations completed.
    pub sim_ops: u64,
    /// Simulated cycles elapsed.
    pub sim_cycles: u64,
    /// The gated throughput figure as written in the file.
    pub ops_per_mcycle: f64,
}

fn quoted_value(line: &str) -> Option<&str> {
    let (_, rest) = line.split_once(':')?;
    let rest = rest.trim().trim_end_matches(',');
    rest.strip_prefix('"')?.strip_suffix('"')
}

fn numeric_value(line: &str) -> Option<&str> {
    let (_, rest) = line.split_once(':')?;
    Some(rest.trim().trim_end_matches(','))
}

/// Parses a deterministic BENCH report — flat (e12/e13) or
/// multi-scenario (`BENCH_sim.json`) — into comparable entries.
///
/// The format is the line-oriented JSON this crate renders; the parser
/// is a small state machine over `"key": value` lines, not a general
/// JSON parser.
pub fn parse_bench(text: &str) -> Result<Vec<BenchEntry>, String> {
    let mut entries = Vec::new();
    let mut experiment = String::new();
    let mut cur: Option<BenchEntry> = None;
    let mut seen = (false, false, false);

    let fresh = |name: &str| BenchEntry {
        name: name.to_string(),
        sim_ops: 0,
        sim_cycles: 0,
        ops_per_mcycle: 0.0,
    };

    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        let bad = |what: &str| format!("line {}: bad {what}: {trimmed:?}", lineno + 1);
        if trimmed.starts_with("\"experiment\"") {
            experiment = quoted_value(trimmed)
                .ok_or_else(|| bad("experiment"))?
                .to_string();
        } else if trimmed.starts_with("\"name\"") {
            if let Some(done) = cur.take() {
                if seen.0 || seen.1 || seen.2 {
                    entries.push(done);
                }
            }
            cur = Some(fresh(quoted_value(trimmed).ok_or_else(|| bad("name"))?));
            seen = (false, false, false);
        } else if trimmed.starts_with("\"sim_ops_per_mcycle\"") {
            let v = numeric_value(trimmed)
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| bad("sim_ops_per_mcycle"))?;
            cur.get_or_insert_with(|| fresh(&experiment)).ops_per_mcycle = v;
            seen.2 = true;
        } else if trimmed.starts_with("\"sim_ops\"") {
            let v = numeric_value(trimmed)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| bad("sim_ops"))?;
            cur.get_or_insert_with(|| fresh(&experiment)).sim_ops = v;
            seen.0 = true;
        } else if trimmed.starts_with("\"sim_cycles\"") {
            let v = numeric_value(trimmed)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| bad("sim_cycles"))?;
            cur.get_or_insert_with(|| fresh(&experiment)).sim_cycles = v;
            seen.1 = true;
        }
    }
    if let Some(mut done) = cur.take() {
        if seen.0 || seen.1 || seen.2 {
            if done.name.is_empty() {
                done.name = experiment.clone();
            }
            entries.push(done);
        }
    }
    if entries.is_empty() {
        return Err("no benchmark entries found".to_string());
    }
    for e in &mut entries {
        if e.name.is_empty() {
            e.name = experiment.clone();
        }
    }
    Ok(entries)
}

/// Verdict of one scenario comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Candidate throughput within the band (or better). Carries the
    /// candidate/baseline ratio.
    Ok(f64),
    /// Candidate regressed beyond tolerance. Carries the ratio.
    Regressed(f64),
    /// The scenario is present in the baseline but not the candidate.
    Missing,
}

/// One line of a comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Scenario name.
    pub name: String,
    /// Baseline `sim_ops_per_mcycle`.
    pub baseline: f64,
    /// Candidate `sim_ops_per_mcycle` (0 when missing).
    pub candidate: f64,
    /// The per-scenario verdict.
    pub verdict: Verdict,
}

/// Compares candidate throughput against a baseline with a relative
/// tolerance band: a scenario passes when
/// `candidate >= baseline * (1 - tolerance)`. Improvements always pass.
/// Scenarios only in the candidate are ignored (a new benchmark must
/// first land its baseline).
pub fn compare(
    baseline: &[BenchEntry],
    candidate: &[BenchEntry],
    tolerance: f64,
) -> Vec<Comparison> {
    baseline
        .iter()
        .map(|b| {
            let cand = candidate.iter().find(|c| c.name == b.name);
            match cand {
                None => Comparison {
                    name: b.name.clone(),
                    baseline: b.ops_per_mcycle,
                    candidate: 0.0,
                    verdict: Verdict::Missing,
                },
                Some(c) => {
                    let ratio = if b.ops_per_mcycle > 0.0 {
                        c.ops_per_mcycle / b.ops_per_mcycle
                    } else {
                        1.0
                    };
                    let verdict = if ratio + 1e-9 >= 1.0 - tolerance {
                        Verdict::Ok(ratio)
                    } else {
                        Verdict::Regressed(ratio)
                    };
                    Comparison {
                        name: b.name.clone(),
                        baseline: b.ops_per_mcycle,
                        candidate: c.ops_per_mcycle,
                        verdict,
                    }
                }
            }
        })
        .collect()
}

/// `true` when every comparison passed.
pub fn all_pass(report: &[Comparison]) -> bool {
    report.iter().all(|c| matches!(c.verdict, Verdict::Ok(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_per_mcycle_is_plain_arithmetic() {
        // 3_000 ops over 2_000_000 cycles = 1500 ops/Mcycle.
        assert!((ops_per_mcycle(3_000, 2_000_000) - 1_500.0).abs() < 1e-9);
        // Zero-cycle guard: no rate, not a NaN/inf.
        assert_eq!(ops_per_mcycle(3_000, 0), 0.0);
        assert_eq!(ops_per_mcycle(0, 0), 0.0);
    }

    #[test]
    fn ops_per_wall_sec_guards_zero_wall_us() {
        assert!((ops_per_wall_sec(500, 250_000) - 2_000.0).abs() < 1e-9);
        // Sub-microsecond runs round wall_us to 0; the rate must not
        // divide by it.
        assert_eq!(ops_per_wall_sec(500, 0), 0.0);
    }

    #[test]
    fn flat_render_parses_back() {
        let text = render_flat("e12_cluster", 6_000, 4_000_000);
        let entries = parse_bench(&text).expect("parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "e12_cluster");
        assert_eq!(entries[0].sim_ops, 6_000);
        assert_eq!(entries[0].sim_cycles, 4_000_000);
        assert!((entries[0].ops_per_mcycle - 1_500.0).abs() < 1e-9);
        // The deterministic part never carries wall-clock fields.
        assert!(!text.contains("wall"));
    }

    #[test]
    fn multi_render_parses_back() {
        let scenarios = vec![
            Scenario {
                name: "e0_stream_nosink".into(),
                sim_ops: 100,
                sim_cycles: 1_000_000,
                trace_events: 0,
                wall_us: 3_000,
            },
            Scenario {
                name: "e0_stream_sink".into(),
                sim_ops: 100,
                sim_cycles: 1_000_000,
                trace_events: 500,
                wall_us: 4_000,
            },
        ];
        let text = render_multi("e14_simspeed", &scenarios);
        let entries = parse_bench(&text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "e0_stream_nosink");
        assert_eq!(entries[1].name, "e0_stream_sink");
        assert_eq!(entries[1].sim_ops, 100);
        assert!(!text.contains("wall"));
        // Sidecar carries only the host-dependent fields.
        let wall = render_multi_wall("e14_simspeed", &scenarios);
        assert!(wall.contains("\"wall_us\": 3000"));
        assert!(!wall.contains("sim_cycles"));
    }

    #[test]
    fn compare_applies_the_tolerance_band() {
        let base = vec![BenchEntry {
            name: "a".into(),
            sim_ops: 100,
            sim_cycles: 1_000_000,
            ops_per_mcycle: 100.0,
        }];
        let mut cand = base.clone();
        // 10% down with 15% tolerance: passes.
        cand[0].ops_per_mcycle = 90.0;
        assert!(all_pass(&compare(&base, &cand, 0.15)));
        // 20% down: fails.
        cand[0].ops_per_mcycle = 80.0;
        let report = compare(&base, &cand, 0.15);
        assert!(!all_pass(&report));
        assert!(matches!(report[0].verdict, Verdict::Regressed(_)));
        // Improvements always pass.
        cand[0].ops_per_mcycle = 500.0;
        assert!(all_pass(&compare(&base, &cand, 0.15)));
        // Missing scenario fails.
        assert!(!all_pass(&compare(&base, &[], 0.15)));
    }
}
