//! CPU cache hierarchy and hardware prefetchers.
//!
//! The paper repeatedly shows that Optane-visible behaviour cannot be
//! understood without modelling the CPU side: the on-DIMM read buffer is
//! exclusive with the caches (§3.1), on-DIMM prefetching is entirely driven
//! by CPU prefetchers (§3.4), and the G1→G2 `clwb` change (invalidate vs.
//! retain) flips the read-after-persist behaviour of Figure 7.
//!
//! This crate models:
//!
//! - set-associative, write-back, write-allocate L1d and L2 caches per core
//!   and a shared victim-style L3 ([`setassoc::Cache`], [`system::CacheSystem`]);
//! - the three Intel prefetchers the paper toggles through BIOS
//!   ([`prefetch`]): the DCU streamer (L1), the adjacent-cacheline
//!   prefetcher (L2), and the L2 hardware stream prefetcher;
//! - flush semantics: `clflushopt` (invalidate), G1 `clwb` (write back and
//!   invalidate, like the paper observes on Cascade Lake), and G2 `clwb`
//!   (write back, retain line).
//!
//! Caches hold only metadata (tags, dirty bits); functional bytes live in
//! the machine-level stores. Timing is returned to the machine layer, which
//! owns the clocks.

#![forbid(unsafe_code)]
// The determinism/robustness contract (DESIGN.md) double-enforces the
// simlint no-unwrap rule with stock tooling in the sim crates; tests are
// exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod prefetch;
pub mod setassoc;
pub mod system;

pub use prefetch::{PrefetchConfig, PrefetcherStats, Prefetchers, SuggestionList};
pub use setassoc::{Cache, Evicted};
pub use system::{
    AccessResult, CacheHierarchyStats, CacheLevelStats, CacheParams, CacheSystem, FlushMode,
    HitLevel,
};
