//! Hardware prefetcher models.
//!
//! Intel server CPUs expose three relevant prefetchers, individually
//! switchable via BIOS (as the paper does in §3.4):
//!
//! - the **DCU streamer** (L1): follows ascending access runs and fetches
//!   the next line, triggering on hits as well as misses — the most
//!   aggressive of the three and the one with the highest misprefetch cost
//!   in Figure 6(d);
//! - the **adjacent-cacheline prefetcher** (L2): fetches the other half of
//!   a 128-byte aligned pair on a demand miss, with an aggressive
//!   sector-continuation behaviour across pair boundaries — Figure 6(c);
//! - the **L2 hardware stream prefetcher**: trains on two consecutive
//!   ascending misses within a 4 KB page and then prefetches a small depth
//!   ahead — the mildest, Figure 6(b).
//!
//! The *shapes* in Figure 6 (where the iMC and media read ratios diverge
//! and at which working-set sizes) emerge from the cache/buffer
//! interaction; the per-prefetcher *aggressiveness* — how often a prefetch
//! runs past a 256 B block boundary — is calibrated with deterministic
//! trigger gates so the three panels land in the paper's relative order
//! (DCU > adjacent > stream). The gates are documented model knobs, not
//! claims about the real microarchitecture.

use simbase::{Addr, CACHELINE_BYTES};

/// Which prefetchers are enabled (the paper's BIOS switches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// L1 DCU streamer.
    pub dcu_streamer: bool,
    /// L2 adjacent ("buddy") cacheline prefetcher.
    pub adjacent_line: bool,
    /// L2 hardware stream prefetcher.
    pub l2_stream: bool,
}

impl PrefetchConfig {
    /// All prefetchers disabled (Figure 6 (a)/(e)).
    pub fn none() -> Self {
        Self::default()
    }

    /// All prefetchers enabled (the default BIOS configuration).
    pub fn all() -> Self {
        PrefetchConfig {
            dcu_streamer: true,
            adjacent_line: true,
            l2_stream: true,
        }
    }

    /// Only the DCU streamer.
    pub fn dcu_only() -> Self {
        PrefetchConfig {
            dcu_streamer: true,
            ..Self::default()
        }
    }

    /// Only the adjacent-line prefetcher.
    pub fn adjacent_only() -> Self {
        PrefetchConfig {
            adjacent_line: true,
            ..Self::default()
        }
    }

    /// Only the L2 stream prefetcher.
    pub fn stream_only() -> Self {
        PrefetchConfig {
            l2_stream: true,
            ..Self::default()
        }
    }
}

/// Fraction of sector-continuation opportunities the adjacent-line
/// prefetcher takes (fires on `ADJ_GATE_NUM` out of `ADJ_GATE_DEN`).
const ADJ_GATE_NUM: u64 = 4;
const ADJ_GATE_DEN: u64 = 5;

/// Fraction of trained streams on which the L2 streamer extends its depth
/// past the trained run (1 out of `STREAM_GATE_DEN`).
const STREAM_GATE_DEN: u64 = 3;

/// Lines per 4 KB page, the L2 streamer's training scope.
const LINES_PER_PAGE: u64 = 4096 / CACHELINE_BYTES;

/// Capacity of [`SuggestionList`]: one demand access can suggest at most
/// one DCU line, an adjacent buddy plus one sector continuation, and up
/// to three stream lines — six, rounded up for headroom.
const MAX_SUGGESTIONS: usize = 8;

/// A fixed-capacity list of prefetch target addresses.
///
/// Demand accesses are the simulator's hottest path, and most of them
/// carry at least one prefetch suggestion; an inline array keeps the
/// suggest-then-filter step free of heap traffic. Dereferences to
/// `[Addr]`, so call sites treat it like a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuggestionList {
    items: [Addr; MAX_SUGGESTIONS],
    len: u8,
}

impl Default for SuggestionList {
    fn default() -> Self {
        SuggestionList {
            items: [Addr(0); MAX_SUGGESTIONS],
            len: 0,
        }
    }
}

impl SuggestionList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an address.
    ///
    /// # Panics
    ///
    /// Panics if the list is full; [`MAX_SUGGESTIONS`] bounds the number
    /// of suggestions a single access can produce, so a full list means a
    /// prefetcher model grew past that bound without raising it.
    #[inline]
    pub fn push(&mut self, a: Addr) {
        assert!(
            (self.len as usize) < MAX_SUGGESTIONS,
            "suggestion list capacity exceeded"
        );
        self.items[self.len as usize] = a;
        self.len += 1;
    }

    /// Returns the suggestions as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Addr] {
        &self.items[..self.len as usize]
    }
}

impl std::ops::Deref for SuggestionList {
    type Target = [Addr];

    #[inline]
    fn deref(&self) -> &[Addr] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a SuggestionList {
    type Item = &'a Addr;
    type IntoIter = std::slice::Iter<'a, Addr>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Per-prefetcher issue counters: how many prefetch suggestions each of
/// the three BIOS-switchable prefetchers produced.
///
/// The paper's §3.4 attributes on-DIMM prefetch traffic entirely to the CPU
/// prefetchers; separating the three lets simwatch show which engine drives
/// the iMC read traffic of each Figure 6 panel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetcherStats {
    /// Lines suggested by the L1 DCU streamer.
    pub dcu: u64,
    /// Lines suggested by the L2 adjacent-line prefetcher (buddy fetches
    /// plus sector continuations).
    pub adjacent: u64,
    /// Lines suggested by the L2 hardware stream prefetcher.
    pub stream: u64,
}

impl PrefetcherStats {
    /// Returns the total suggestions across all three prefetchers.
    pub fn total(&self) -> u64 {
        self.dcu + self.adjacent + self.stream
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &PrefetcherStats) {
        self.dcu += other.dcu;
        self.adjacent += other.adjacent;
        self.stream += other.stream;
    }
}

/// Per-core prefetcher state.
#[derive(Debug, Clone)]
pub struct Prefetchers {
    config: PrefetchConfig,
    /// Last demand-accessed line number (DCU run detection).
    last_line: Option<u64>,
    /// Length of the current ascending run, including the latest access.
    run_len: u32,
    /// Last line number that missed L2 (stream training).
    last_miss_line: Option<u64>,
    adj_gate: u64,
    stream_gate: u64,
    issued: PrefetcherStats,
}

impl Prefetchers {
    /// Creates prefetcher state for one core.
    pub fn new(config: PrefetchConfig) -> Self {
        Prefetchers {
            config,
            last_line: None,
            run_len: 0,
            last_miss_line: None,
            adj_gate: 0,
            stream_gate: 0,
            issued: PrefetcherStats::default(),
        }
    }

    /// Returns the active configuration.
    pub fn config(&self) -> PrefetchConfig {
        self.config
    }

    /// Observes one demand access and returns suggested prefetch targets
    /// (cacheline-aligned). `l2_miss` is `true` when the access missed both
    /// private levels.
    ///
    /// The caller is responsible for dropping suggestions that are already
    /// resident or in flight.
    pub fn on_demand_access(&mut self, addr: Addr, l2_miss: bool) -> SuggestionList {
        let line = addr.cacheline().0 / CACHELINE_BYTES;
        let ascending = self.last_line == Some(line.wrapping_sub(1));
        self.run_len = if ascending { self.run_len + 1 } else { 1 };
        let mut out = SuggestionList::new();

        if self.config.dcu_streamer && ascending {
            // DCU streamer: follow any ascending run, one line ahead,
            // triggering on hits too.
            out.push(Addr((line + 1) * CACHELINE_BYTES));
            self.issued.dcu += 1;
        }

        if self.config.adjacent_line {
            if l2_miss {
                // Fetch the 128 B buddy of the missing line.
                out.push(Addr((line ^ 1) * CACHELINE_BYTES));
                self.issued.adjacent += 1;
            }
            // Sector continuation: after a fully traversed ascending run
            // reaching the last line of a 256 B sector, cross into the next
            // sector on most (ADJ_GATE_NUM/ADJ_GATE_DEN) opportunities.
            if self.run_len >= 3 && line % 4 == 3 {
                self.adj_gate += 1;
                if self.adj_gate % ADJ_GATE_DEN < ADJ_GATE_NUM {
                    out.push(Addr((line + 1) * CACHELINE_BYTES));
                    self.issued.adjacent += 1;
                }
            }
        }

        if self.config.l2_stream && l2_miss {
            let same_page = self
                .last_miss_line
                .is_some_and(|l| l / LINES_PER_PAGE == line / LINES_PER_PAGE);
            if same_page && line > 0 && self.last_miss_line == Some(line - 1) {
                // Trained: prefetch two ahead, occasionally three.
                out.push(Addr((line + 1) * CACHELINE_BYTES));
                out.push(Addr((line + 2) * CACHELINE_BYTES));
                self.issued.stream += 2;
                self.stream_gate += 1;
                if self.stream_gate.is_multiple_of(STREAM_GATE_DEN) {
                    out.push(Addr((line + 3) * CACHELINE_BYTES));
                    self.issued.stream += 1;
                }
            }
            self.last_miss_line = Some(line);
        }

        self.last_line = Some(line);
        out
    }

    /// Returns per-prefetcher issue counters.
    pub fn stats(&self) -> PrefetcherStats {
        self.issued
    }

    /// Returns the number of prefetch suggestions issued so far, summed
    /// over the three prefetchers.
    pub fn issued(&self) -> u64 {
        self.issued.total()
    }

    /// Clears the issue counters (keeps configuration, history, and gate
    /// phases).
    pub fn reset_stats(&mut self) {
        self.issued = PrefetcherStats::default();
    }

    /// Clears history (keeps configuration and gate phases).
    pub fn reset_history(&mut self) {
        self.last_line = None;
        self.run_len = 0;
        self.last_miss_line = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(suggestions: &[Addr]) -> Vec<u64> {
        suggestions.iter().map(|a| a.0 / CACHELINE_BYTES).collect()
    }

    #[test]
    fn disabled_prefetchers_stay_silent() {
        let mut p = Prefetchers::new(PrefetchConfig::none());
        for i in 0..16u64 {
            assert!(p.on_demand_access(Addr(i * 64), true).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn dcu_follows_ascending_runs() {
        let mut p = Prefetchers::new(PrefetchConfig::dcu_only());
        assert!(p.on_demand_access(Addr(0), false).is_empty());
        assert_eq!(lines(&p.on_demand_access(Addr(64), false)), vec![2]);
        assert_eq!(lines(&p.on_demand_access(Addr(128), false)), vec![3]);
        // A jump breaks the run.
        assert!(p.on_demand_access(Addr(1024), false).is_empty());
    }

    #[test]
    fn dcu_triggers_on_hits_too() {
        let mut p = Prefetchers::new(PrefetchConfig::dcu_only());
        p.on_demand_access(Addr(0), false);
        let s = p.on_demand_access(Addr(64), false); // hit: l2_miss = false
        assert_eq!(lines(&s), vec![2]);
    }

    #[test]
    fn adjacent_fetches_buddy_on_miss() {
        let mut p = Prefetchers::new(PrefetchConfig::adjacent_only());
        let s = p.on_demand_access(Addr(0), true);
        assert_eq!(lines(&s), vec![1]);
        // Odd line's buddy is the even line.
        p.reset_history();
        let s = p.on_demand_access(Addr(64), true);
        assert_eq!(lines(&s), vec![0]);
        // No suggestion without a miss.
        let s = p.on_demand_access(Addr(256), false);
        assert!(s.is_empty());
    }

    #[test]
    fn adjacent_sector_continuation_crosses_boundary_most_of_the_time() {
        let mut p = Prefetchers::new(PrefetchConfig::adjacent_only());
        let mut crossings = 0;
        let trials = 100;
        for block in 0..trials {
            let base = block * 256;
            for cl in 0..4u64 {
                let s = p.on_demand_access(Addr(base + cl * 64), cl % 2 == 0);
                if s.iter().any(|a| a.0 == base + 256) {
                    crossings += 1;
                }
            }
        }
        assert_eq!(crossings, trials * ADJ_GATE_NUM / ADJ_GATE_DEN);
    }

    #[test]
    fn stream_requires_training() {
        let mut p = Prefetchers::new(PrefetchConfig::stream_only());
        assert!(p.on_demand_access(Addr(0), true).is_empty());
        let s = p.on_demand_access(Addr(64), true);
        assert!(lines(&s).contains(&2));
        assert!(lines(&s).contains(&3));
    }

    #[test]
    fn stream_does_not_train_across_pages() {
        let mut p = Prefetchers::new(PrefetchConfig::stream_only());
        // Last line of page 0, first line of page 1: consecutive lines but
        // different pages.
        p.on_demand_access(Addr(4096 - 64), true);
        let s = p.on_demand_access(Addr(4096), true);
        assert!(s.is_empty(), "training is per 4 KB page");
    }

    #[test]
    fn stream_occasionally_extends_depth() {
        let mut p = Prefetchers::new(PrefetchConfig::stream_only());
        let mut deep = 0;
        let trials = 30;
        for t in 0..trials {
            // Place each trained pair in its own page.
            let base = t * 4096;
            p.on_demand_access(Addr(base), true);
            let s = p.on_demand_access(Addr(base + 64), true);
            if s.len() == 3 {
                deep += 1;
            }
        }
        assert_eq!(deep as u64, trials / STREAM_GATE_DEN);
    }

    #[test]
    fn combined_config_merges_suggestions() {
        let mut p = Prefetchers::new(PrefetchConfig::all());
        p.on_demand_access(Addr(0), true);
        let s = p.on_demand_access(Addr(64), true);
        let l = lines(&s);
        assert!(l.contains(&2), "dcu/stream ahead");
        assert!(l.contains(&0), "adjacent buddy");
    }

    #[test]
    fn per_prefetcher_counters_attribute_every_suggestion() {
        let mut p = Prefetchers::new(PrefetchConfig::all());
        let mut total = 0u64;
        for i in 0..64u64 {
            total += p.on_demand_access(Addr(i * 64), i % 2 == 0).len() as u64;
        }
        let s = p.stats();
        assert_eq!(s.total(), total, "counters account for every push");
        assert_eq!(p.issued(), total);
        assert!(s.dcu > 0, "ascending run drives the DCU streamer");
        assert!(s.adjacent > 0, "misses drive the buddy fetch");

        p.reset_stats();
        assert_eq!(p.stats(), PrefetcherStats::default());
    }
}
