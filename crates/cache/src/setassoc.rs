//! A set-associative cache of cacheline metadata.
//!
//! Lines carry a tag, a dirty bit, and an LRU timestamp. Functional data is
//! not stored here — the machine keeps bytes in its volatile overlay and
//! persistent image; the cache only decides hits, misses, evictions, and
//! write-backs.

use simbase::{Addr, HitMiss, CACHELINE_BYTES};

/// Metadata for one resident cacheline.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    last_use: u64,
}

/// A line evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Cacheline-aligned address of the victim.
    pub addr: Addr,
    /// Whether the victim held modified data.
    pub dirty: bool,
}

/// Set-associative, LRU, write-back cache (metadata only).
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// The number of sets is `capacity / (ways * 64)`, rounded down to at
    /// least 1; odd capacities (such as the 27.5 MB G1 L3) therefore work.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or the capacity holds fewer lines than one
    /// way.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity_bytes / CACHELINE_BYTES;
        let num_sets = (lines / ways as u64).max(1) as usize;
        assert!(lines >= ways as u64, "capacity smaller than one set");
        Cache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.cacheline().0 / CACHELINE_BYTES;
        let num_sets = self.sets.len() as u64;
        ((line % num_sets) as usize, line / num_sets)
    }

    /// Looks up `addr`; on a hit, refreshes LRU and optionally marks dirty.
    ///
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: Addr, mark_dirty: bool) -> bool {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        if let Some(l) = self.sets[set_idx].iter_mut().find(|l| l.tag == tag) {
            l.last_use = tick;
            l.dirty |= mark_dirty;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Returns `true` if `addr` is resident, without touching LRU or stats.
    pub fn peek(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Inserts `addr` (refreshing it if already resident), returning the
    /// evicted victim if the set overflowed.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        let ways = self.ways;
        let num_sets = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(l) = set.iter_mut().find(|l| l.tag == tag) {
            l.last_use = tick;
            l.dirty |= dirty;
            return None;
        }
        let mut evicted = None;
        // A full set always yields an LRU victim; the if-let keeps the
        // invariant local instead of asserting it.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_use)
            .map(|(i, _)| i)
            .filter(|_| set.len() >= ways);
        if let Some(victim_idx) = victim {
            let v = set.swap_remove(victim_idx);
            let line_no = v.tag * num_sets + set_idx as u64;
            evicted = Some(Evicted {
                addr: Addr(line_no * CACHELINE_BYTES),
                dirty: v.dirty,
            });
        }
        set.push(Line {
            tag,
            dirty,
            last_use: tick,
        });
        evicted
    }

    /// Removes `addr` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.tag == tag)?;
        Some(set.swap_remove(pos).dirty)
    }

    /// Cleans `addr` if resident (write-back without invalidation),
    /// returning whether it was dirty.
    pub fn clean(&mut self, addr: Addr) -> Option<bool> {
        let (set_idx, tag) = self.set_and_tag(addr);
        let l = self.sets[set_idx].iter_mut().find(|l| l.tag == tag)?;
        let was = l.dirty;
        l.dirty = false;
        Some(was)
    }

    /// Drains the whole cache, returning the addresses of dirty lines.
    pub fn drain_dirty(&mut self) -> Vec<Addr> {
        let num_sets = self.sets.len() as u64;
        let mut dirty = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for l in set.drain(..) {
                if l.dirty {
                    let line_no = l.tag * num_sets + set_idx as u64;
                    dirty.push(Addr(line_no * CACHELINE_BYTES));
                }
            }
        }
        dirty
    }

    /// Returns the hit/miss counters observed so far.
    pub fn counters(&self) -> HitMiss {
        HitMiss::of(self.hits, self.misses)
    }

    /// Returns `(hits, misses)` observed so far.
    #[deprecated(since = "0.1.0", note = "use `counters()`, which returns named fields")]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Returns the number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Clears hit/miss statistics without disturbing resident lines.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4096, 4);
        assert!(!c.access(Addr(0), false));
        c.fill(Addr(0), false);
        assert!(c.access(Addr(0), false));
        assert_eq!(c.counters(), HitMiss::of(1, 1));
    }

    #[test]
    #[allow(deprecated)]
    fn stats_shim_agrees_with_counters() {
        let mut c = Cache::new(4096, 4);
        c.access(Addr(0), false);
        c.fill(Addr(0), false);
        c.access(Addr(0), false);
        let hm = c.counters();
        assert_eq!(c.stats(), (hm.hits, hm.misses));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(4096, 4);
        c.access(Addr(0), false);
        c.fill(Addr(0), false);
        c.access(Addr(0), false);
        c.reset_stats();
        assert_eq!(c.counters(), HitMiss::new());
        assert!(c.peek(Addr(0)), "resident lines survive a stats reset");
    }

    #[test]
    fn lru_eviction_within_set() {
        // Direct-mapped-ish: 2 ways, force collisions in one set.
        let lines = 4u64; // 2 sets x 2 ways
        let mut c = Cache::new(lines * 64, 2);
        // Addresses mapping to set 0: line numbers 0, 2, 4 (mod 2 == 0).
        c.fill(Addr(0), false);
        c.fill(Addr(128), false);
        c.access(Addr(0), false); // refresh line 0
        let ev = c.fill(Addr(256), false).expect("set overflow");
        assert_eq!(ev.addr, Addr(128), "LRU victim");
        assert!(!ev.dirty);
    }

    #[test]
    fn dirty_bit_propagates_to_eviction() {
        let mut c = Cache::new(2 * 64, 1);
        c.fill(Addr(0), false);
        c.access(Addr(0), true); // store
        let ev = c.fill(Addr(128), false).expect("evicts line 0");
        assert_eq!(ev.addr, Addr(0));
        assert!(ev.dirty);
    }

    #[test]
    fn refill_merges_dirtiness() {
        let mut c = Cache::new(4096, 4);
        c.fill(Addr(0), true);
        assert!(c.fill(Addr(0), false).is_none());
        let ev = c.invalidate(Addr(0));
        assert_eq!(ev, Some(true), "dirty survives a clean refill");
    }

    #[test]
    fn clean_clears_dirty_but_keeps_line() {
        let mut c = Cache::new(4096, 4);
        c.fill(Addr(0), true);
        assert_eq!(c.clean(Addr(0)), Some(true));
        assert_eq!(c.clean(Addr(0)), Some(false));
        assert!(c.peek(Addr(0)));
    }

    #[test]
    fn invalidate_missing_line_is_none() {
        let mut c = Cache::new(4096, 4);
        assert_eq!(c.invalidate(Addr(0)), None);
    }

    #[test]
    fn victim_address_reconstruction() {
        // Many sets: ensure the evicted address is reconstructed exactly.
        let mut c = Cache::new(1 << 16, 2); // 512 sets
        let a = Addr(0xABC00);
        c.fill(a, true);
        // Collide twice in the same set: line numbers differing by num_sets.
        let num_sets = 512u64;
        let b = Addr(a.0 + num_sets * 64);
        let d = Addr(a.0 + 2 * num_sets * 64);
        c.fill(b, false);
        let ev = c.fill(d, false).expect("overflow");
        assert_eq!(ev.addr, a);
        assert!(ev.dirty);
    }

    #[test]
    fn drain_dirty_returns_only_dirty() {
        let mut c = Cache::new(4096, 4);
        c.fill(Addr(0), true);
        c.fill(Addr(64), false);
        c.fill(Addr(128), true);
        let mut d = c.drain_dirty();
        d.sort();
        assert_eq!(d, vec![Addr(0), Addr(128)]);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_stats_or_lru() {
        let mut c = Cache::new(2 * 64, 1);
        c.fill(Addr(0), false);
        assert!(c.peek(Addr(0)));
        assert!(!c.peek(Addr(64)));
        assert_eq!(c.counters(), HitMiss::new());
    }

    #[test]
    fn capacity_behaviour_working_set_sweep() {
        // A working set within capacity hits steadily; beyond capacity with
        // LRU and a sequential scan, it thrashes.
        let mut c = Cache::new(64 * 64, 8);
        // In-capacity: 32 lines.
        for _ in 0..3 {
            for i in 0..32u64 {
                if !c.access(Addr(i * 64), false) {
                    c.fill(Addr(i * 64), false);
                }
            }
        }
        assert_eq!(c.counters().hits, 64, "two warm passes fully hit");
        // Over-capacity sequential scan: every access misses.
        let mut c = Cache::new(64 * 64, 8);
        for _ in 0..3 {
            for i in 0..128u64 {
                if !c.access(Addr(i * 64), false) {
                    c.fill(Addr(i * 64), false);
                }
            }
        }
        let hm = c.counters();
        assert_eq!(
            hm.hits, 0,
            "sequential over-capacity scan never hits with LRU"
        );
        assert_eq!(hm.misses, 384);
    }
}
