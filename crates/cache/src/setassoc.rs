//! A set-associative cache of cacheline metadata.
//!
//! Lines carry a tag, a dirty bit, and an LRU timestamp. Functional data is
//! not stored here — the machine keeps bytes in its volatile overlay and
//! persistent image; the cache only decides hits, misses, evictions, and
//! write-backs.
//!
//! Storage is a single flat slot table (`num_sets * ways` entries, set-major)
//! rather than a `Vec` per set: one allocation per cache, and a set lookup is
//! a bounded scan of `ways` contiguous slots. A live-line counter makes
//! emptiness checks O(1), which the flush path relies on to skip the many
//! per-core caches that hold nothing.

use simbase::{Addr, HitMiss, CACHELINE_BYTES};

/// Metadata for one resident cacheline slot.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_use: u64,
    dirty: bool,
    valid: bool,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    last_use: 0,
    dirty: false,
    valid: false,
};

/// A line evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Cacheline-aligned address of the victim.
    pub addr: Addr,
    /// Whether the victim held modified data.
    pub dirty: bool,
}

/// Set-associative, LRU, write-back cache (metadata only).
#[derive(Debug, Clone)]
pub struct Cache {
    /// Flat slot table: set `s` owns `slots[s*ways .. (s+1)*ways]`.
    slots: Vec<Line>,
    num_sets: usize,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Number of valid slots; `is_empty` must stay O(1) for the flush path.
    live: usize,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// The number of sets is `capacity / (ways * 64)`, rounded down to at
    /// least 1; odd capacities (such as the 27.5 MB G1 L3) therefore work.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or the capacity holds fewer lines than one
    /// way.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity_bytes / CACHELINE_BYTES;
        let num_sets = (lines / ways as u64).max(1) as usize;
        assert!(lines >= ways as u64, "capacity smaller than one set");
        Cache {
            slots: vec![EMPTY_LINE; num_sets * ways],
            num_sets,
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
            live: 0,
        }
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.cacheline().0 / CACHELINE_BYTES;
        let num_sets = self.num_sets as u64;
        ((line % num_sets) as usize, line / num_sets)
    }

    #[inline]
    fn set_slots(&mut self, set_idx: usize) -> &mut [Line] {
        &mut self.slots[set_idx * self.ways..(set_idx + 1) * self.ways]
    }

    /// Looks up `addr`; on a hit, refreshes LRU and optionally marks dirty.
    ///
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: Addr, mark_dirty: bool) -> bool {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        if let Some(l) = self
            .set_slots(set_idx)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            l.last_use = tick;
            l.dirty |= mark_dirty;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Returns `true` if `addr` is resident, without touching LRU or stats.
    pub fn peek(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.slots[set_idx * self.ways..(set_idx + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Inserts `addr` (refreshing it if already resident), returning the
    /// evicted victim if the set overflowed.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        let num_sets = self.num_sets as u64;
        let set = self.set_slots(set_idx);
        // One pass: find the resident line, a free slot, and the LRU victim.
        let mut free = None;
        let mut victim = None;
        let mut victim_use = u64::MAX;
        for (i, l) in set.iter_mut().enumerate() {
            if !l.valid {
                if free.is_none() {
                    free = Some(i);
                }
                continue;
            }
            if l.tag == tag {
                l.last_use = tick;
                l.dirty |= dirty;
                return None;
            }
            // LRU timestamps are unique (each touch consumes a fresh tick),
            // so the victim does not depend on slot order.
            if l.last_use < victim_use {
                victim_use = l.last_use;
                victim = Some(i);
            }
        }
        let fresh = Line {
            tag,
            last_use: tick,
            dirty,
            valid: true,
        };
        if let Some(i) = free {
            set[i] = fresh;
            self.live += 1;
            return None;
        }
        // A full set always yields an LRU victim.
        let victim_idx = victim?;
        let v = set[victim_idx];
        set[victim_idx] = fresh;
        let line_no = v.tag * num_sets + set_idx as u64;
        Some(Evicted {
            addr: Addr(line_no * CACHELINE_BYTES),
            dirty: v.dirty,
        })
    }

    /// Removes `addr` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        if self.live == 0 {
            return None;
        }
        let (set_idx, tag) = self.set_and_tag(addr);
        let l = self
            .set_slots(set_idx)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)?;
        let dirty = l.dirty;
        *l = EMPTY_LINE;
        self.live -= 1;
        Some(dirty)
    }

    /// Cleans `addr` if resident (write-back without invalidation),
    /// returning whether it was dirty.
    pub fn clean(&mut self, addr: Addr) -> Option<bool> {
        if self.live == 0 {
            return None;
        }
        let (set_idx, tag) = self.set_and_tag(addr);
        let l = self
            .set_slots(set_idx)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)?;
        let was = l.dirty;
        l.dirty = false;
        Some(was)
    }

    /// Drains the whole cache, returning the addresses of dirty lines.
    ///
    /// Addresses come out in slot order, which is not sorted; callers that
    /// need a canonical order (power-fail replay) sort them.
    pub fn drain_dirty(&mut self) -> Vec<Addr> {
        let num_sets = self.num_sets as u64;
        let ways = self.ways;
        let mut dirty = Vec::new();
        if self.live == 0 {
            return dirty;
        }
        for (slot_idx, l) in self.slots.iter_mut().enumerate() {
            if l.valid {
                if l.dirty {
                    let set_idx = (slot_idx / ways) as u64;
                    let line_no = l.tag * num_sets + set_idx;
                    dirty.push(Addr(line_no * CACHELINE_BYTES));
                }
                *l = EMPTY_LINE;
            }
        }
        self.live = 0;
        dirty
    }

    /// Returns the hit/miss counters observed so far.
    pub fn counters(&self) -> HitMiss {
        HitMiss::of(self.hits, self.misses)
    }

    /// Returns the number of resident lines.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no lines are resident. O(1): a counter, not a scan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Clears hit/miss statistics without disturbing resident lines.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        if self.live > 0 {
            self.slots.fill(EMPTY_LINE);
        }
        self.live = 0;
        self.hits = 0;
        self.misses = 0;
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4096, 4);
        assert!(!c.access(Addr(0), false));
        c.fill(Addr(0), false);
        assert!(c.access(Addr(0), false));
        assert_eq!(c.counters(), HitMiss::of(1, 1));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(4096, 4);
        c.access(Addr(0), false);
        c.fill(Addr(0), false);
        c.access(Addr(0), false);
        c.reset_stats();
        assert_eq!(c.counters(), HitMiss::new());
        assert!(c.peek(Addr(0)), "resident lines survive a stats reset");
    }

    #[test]
    fn lru_eviction_within_set() {
        // Direct-mapped-ish: 2 ways, force collisions in one set.
        let lines = 4u64; // 2 sets x 2 ways
        let mut c = Cache::new(lines * 64, 2);
        // Addresses mapping to set 0: line numbers 0, 2, 4 (mod 2 == 0).
        c.fill(Addr(0), false);
        c.fill(Addr(128), false);
        c.access(Addr(0), false); // refresh line 0
        let ev = c.fill(Addr(256), false).expect("set overflow");
        assert_eq!(ev.addr, Addr(128), "LRU victim");
        assert!(!ev.dirty);
    }

    #[test]
    fn dirty_bit_propagates_to_eviction() {
        let mut c = Cache::new(2 * 64, 1);
        c.fill(Addr(0), false);
        c.access(Addr(0), true); // store
        let ev = c.fill(Addr(128), false).expect("evicts line 0");
        assert_eq!(ev.addr, Addr(0));
        assert!(ev.dirty);
    }

    #[test]
    fn refill_merges_dirtiness() {
        let mut c = Cache::new(4096, 4);
        c.fill(Addr(0), true);
        assert!(c.fill(Addr(0), false).is_none());
        let ev = c.invalidate(Addr(0));
        assert_eq!(ev, Some(true), "dirty survives a clean refill");
    }

    #[test]
    fn clean_clears_dirty_but_keeps_line() {
        let mut c = Cache::new(4096, 4);
        c.fill(Addr(0), true);
        assert_eq!(c.clean(Addr(0)), Some(true));
        assert_eq!(c.clean(Addr(0)), Some(false));
        assert!(c.peek(Addr(0)));
    }

    #[test]
    fn invalidate_missing_line_is_none() {
        let mut c = Cache::new(4096, 4);
        assert_eq!(c.invalidate(Addr(0)), None);
    }

    #[test]
    fn victim_address_reconstruction() {
        // Many sets: ensure the evicted address is reconstructed exactly.
        let mut c = Cache::new(1 << 16, 2); // 512 sets
        let a = Addr(0xABC00);
        c.fill(a, true);
        // Collide twice in the same set: line numbers differing by num_sets.
        let num_sets = 512u64;
        let b = Addr(a.0 + num_sets * 64);
        let d = Addr(a.0 + 2 * num_sets * 64);
        c.fill(b, false);
        let ev = c.fill(d, false).expect("overflow");
        assert_eq!(ev.addr, a);
        assert!(ev.dirty);
    }

    #[test]
    fn drain_dirty_returns_only_dirty() {
        let mut c = Cache::new(4096, 4);
        c.fill(Addr(0), true);
        c.fill(Addr(64), false);
        c.fill(Addr(128), true);
        let mut d = c.drain_dirty();
        d.sort();
        assert_eq!(d, vec![Addr(0), Addr(128)]);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_stats_or_lru() {
        let mut c = Cache::new(2 * 64, 1);
        c.fill(Addr(0), false);
        assert!(c.peek(Addr(0)));
        assert!(!c.peek(Addr(64)));
        assert_eq!(c.counters(), HitMiss::new());
    }

    #[test]
    fn live_counter_tracks_fills_evictions_and_invalidations() {
        // Exercise every transition that touches occupancy and check that
        // the O(1) counter agrees with a slot-by-slot census throughout.
        let mut c = Cache::new(8 * 64, 2); // 4 sets x 2 ways
        let census = |c: &Cache| {
            let mut n = 0;
            for line in 0..64u64 {
                if c.peek(Addr(line * 64)) {
                    n += 1;
                }
            }
            n
        };
        assert!(c.is_empty());
        for i in 0..16u64 {
            c.fill(Addr(i * 64), i % 3 == 0);
            assert_eq!(c.len(), census(&c), "after fill {i}");
        }
        assert_eq!(c.len(), 8, "evictions keep occupancy at capacity");
        c.fill(Addr(0), false); // conflict fill: evicts line 8, takes its slot
        assert_eq!(c.len(), census(&c));
        c.fill(Addr(0), true); // refill of a resident line: no change
        assert_eq!(c.len(), census(&c));
        c.invalidate(Addr(0));
        for i in 8..16u64 {
            c.invalidate(Addr(i * 64));
            assert_eq!(c.len(), census(&c), "after invalidate {i}");
        }
        assert!(c.is_empty(), "all residents invalidated");
        c.fill(Addr(0), true);
        c.drain_dirty();
        assert!(c.is_empty());
        c.fill(Addr(64), true);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(census(&c), 0);
    }

    #[test]
    fn capacity_behaviour_working_set_sweep() {
        // A working set within capacity hits steadily; beyond capacity with
        // LRU and a sequential scan, it thrashes.
        let mut c = Cache::new(64 * 64, 8);
        // In-capacity: 32 lines.
        for _ in 0..3 {
            for i in 0..32u64 {
                if !c.access(Addr(i * 64), false) {
                    c.fill(Addr(i * 64), false);
                }
            }
        }
        assert_eq!(c.counters().hits, 64, "two warm passes fully hit");
        // Over-capacity sequential scan: every access misses.
        let mut c = Cache::new(64 * 64, 8);
        for _ in 0..3 {
            for i in 0..128u64 {
                if !c.access(Addr(i * 64), false) {
                    c.fill(Addr(i * 64), false);
                }
            }
        }
        let hm = c.counters();
        assert_eq!(
            hm.hits, 0,
            "sequential over-capacity scan never hits with LRU"
        );
        assert_eq!(hm.misses, 384);
    }

    #[test]
    fn refill_semantics_after_eviction_churn() {
        // An LRU victim identified by timestamp, not slot position: churn a
        // set through evictions and check residency plus victim identity.
        let mut c = Cache::new(2 * 64, 2); // 1 set, 2 ways
        c.fill(Addr(0), false); // tick 1
        c.fill(Addr(64), false); // tick 2
        let ev = c.fill(Addr(128), true).expect("evicts line 0 (LRU)");
        assert_eq!(ev.addr, Addr(0));
        c.access(Addr(64), false); // refresh 64 past 128
        let ev = c.fill(Addr(192), false).expect("now 128 is LRU");
        assert_eq!(ev.addr, Addr(128));
        assert!(ev.dirty, "dirtiness rides with the victim");
        assert!(c.peek(Addr(64)) && c.peek(Addr(192)));
        assert_eq!(c.len(), 2);
    }
}
