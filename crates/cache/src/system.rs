//! The multi-core cache hierarchy.
//!
//! Per-core private L1d and L2 plus a shared L3. The L3 is non-inclusive
//! and absorbs L2 victims (clean and dirty), like Skylake-and-later server
//! parts; dirty L3 victims are reported to the caller as memory
//! write-backs. Stores are write-back/write-allocate: dirtiness rides with
//! the line as it moves down the hierarchy.
//!
//! Cross-core coherence is intentionally simplified: private caches never
//! see remote invalidations except through explicit flushes, which act on
//! every core. None of the reproduced figures depends on sub-operation
//! coherence races (see `DESIGN.md` §4); the flush path is what matters for
//! persistence semantics and is modelled faithfully, including the G1/G2
//! `clwb` difference.

use simbase::{Addr, Cycles, HitMiss};

use crate::prefetch::{PrefetchConfig, PrefetcherStats, Prefetchers, SuggestionList};
use crate::setassoc::Cache;

/// Geometry and latency of the cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// L1 data cache capacity per core, in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 capacity per core, in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Shared L3 capacity, in bytes.
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L1 hit latency.
    pub l1_latency: Cycles,
    /// L2 hit latency.
    pub l2_latency: Cycles,
    /// L3 hit latency.
    pub l3_latency: Cycles,
}

impl Default for CacheParams {
    fn default() -> Self {
        // G1 (Cascade Lake) flavoured defaults.
        CacheParams {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 1 << 20,
            l2_ways: 16,
            l3_bytes: 27_500 << 10,
            l3_ways: 11,
            l1_latency: 4,
            l2_latency: 14,
            l3_latency: 48,
        }
    }
}

/// The cache level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the core's L1d.
    L1,
    /// Served by the core's L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Missed the whole hierarchy; memory must supply the line.
    Miss,
}

/// How a flush instruction treats the cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// `clflushopt`, and `clwb` on G1 parts (the paper observes G1 `clwb`
    /// evicting the line).
    Invalidate,
    /// `clwb` on G2 parts: write back dirty data but retain the line.
    WriteBackRetain,
}

/// Result of one demand access.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// Which level served the access.
    pub level: HitLevel,
    /// Dirty lines pushed out of the L3 to memory by this access.
    pub writebacks: Vec<Addr>,
    /// Prefetch targets suggested by the core's prefetchers, already
    /// filtered to lines not resident for this core. Inline storage: most
    /// accesses suggest something, and the demand path must not allocate.
    pub prefetch: SuggestionList,
}

/// Aggregated counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Demand accesses served by this level.
    pub hits: u64,
    /// Demand accesses this level could not serve.
    pub misses: u64,
    /// Lines installed into this level by the hardware prefetchers rather
    /// than by demand fills. Prefetches land in L2 (a later demand access
    /// promotes them), so this is zero for L1 and L3.
    pub prefetch_fills: u64,
}

impl CacheLevelStats {
    /// Builds level stats from a hit/miss pair and a prefetch-fill count.
    pub fn from_parts(hm: HitMiss, prefetch_fills: u64) -> Self {
        CacheLevelStats {
            hits: hm.hits,
            misses: hm.misses,
            prefetch_fills,
        }
    }

    /// Returns the demand hit/miss counters as a pair-structure.
    pub fn hit_miss(&self) -> HitMiss {
        HitMiss::of(self.hits, self.misses)
    }

    /// Returns `hits / (hits + misses)`, or 0 when nothing was recorded.
    pub fn hit_ratio(&self) -> f64 {
        self.hit_miss().hit_ratio()
    }

    /// Adds another level's counters into this one.
    pub fn merge(&mut self, other: &CacheLevelStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.prefetch_fills += other.prefetch_fills;
    }
}

/// Aggregated counters for a whole socket's hierarchy: the three levels
/// plus the per-prefetcher issue counts, summed over cores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheHierarchyStats {
    /// Per-core L1d, aggregated.
    pub l1: CacheLevelStats,
    /// Per-core L2, aggregated.
    pub l2: CacheLevelStats,
    /// The shared L3.
    pub l3: CacheLevelStats,
    /// Prefetch suggestions issued, per prefetcher, aggregated over cores.
    pub prefetch: PrefetcherStats,
}

impl CacheHierarchyStats {
    /// Adds another hierarchy's counters into this one (multi-socket
    /// aggregation).
    pub fn merge(&mut self, other: &CacheHierarchyStats) {
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.l3.merge(&other.l3);
        self.prefetch.merge(&other.prefetch);
    }
}

#[derive(Debug, Clone)]
struct CoreCaches {
    l1: Cache,
    l2: Cache,
    pf: Prefetchers,
}

/// One socket's cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheSystem {
    cores: Vec<CoreCaches>,
    l3: Cache,
    params: CacheParams,
    /// Prefetched lines installed into L2 via [`CacheSystem::fill_prefetch`].
    prefetch_fills: u64,
    /// Total lines resident across every core's private L1 and L2.
    /// Zero means `flush` can skip the per-core scan entirely — the
    /// common case in streaming-write phases, where nt-stores bypass the
    /// caches and nothing private is ever filled.
    private_live: usize,
}

impl CacheSystem {
    /// Creates a hierarchy with `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(params: CacheParams, num_cores: usize, pf: PrefetchConfig) -> Self {
        assert!(num_cores > 0, "need at least one core");
        let cores = (0..num_cores)
            .map(|_| CoreCaches {
                l1: Cache::new(params.l1_bytes, params.l1_ways),
                l2: Cache::new(params.l2_bytes, params.l2_ways),
                pf: Prefetchers::new(pf),
            })
            .collect();
        CacheSystem {
            cores,
            l3: Cache::new(params.l3_bytes, params.l3_ways),
            params,
            prefetch_fills: 0,
            private_live: 0,
        }
    }

    /// Returns the number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Returns the configured parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Returns the hit latency of `level`, or `None` for a miss.
    pub fn latency_of(&self, level: HitLevel) -> Option<Cycles> {
        match level {
            HitLevel::L1 => Some(self.params.l1_latency),
            HitLevel::L2 => Some(self.params.l2_latency),
            HitLevel::L3 => Some(self.params.l3_latency),
            HitLevel::Miss => None,
        }
    }

    /// Performs a demand access from `core`.
    ///
    /// On a miss (`level == HitLevel::Miss`) the line is assumed to be
    /// supplied by memory and is filled into L1 and L2. Dirty L3 victims
    /// displaced by the fills are returned as memory write-backs.
    pub fn access(&mut self, core: usize, addr: Addr, write: bool) -> AccessResult {
        let addr = addr.cacheline();
        let mut writebacks = Vec::new();
        let level;
        if self.cores[core].l1.access(addr, write) {
            level = HitLevel::L1;
        } else if self.cores[core].l2.access(addr, false) {
            // Promote into L1; dirtiness of a write rides in L1.
            self.promote_to_l1(core, addr, write, &mut writebacks);
            level = HitLevel::L2;
        } else if self.l3.access(addr, false) {
            self.fill_private(core, addr, write, &mut writebacks);
            level = HitLevel::L3;
        } else {
            self.fill_private(core, addr, write, &mut writebacks);
            level = HitLevel::Miss;
        }
        let l2_miss = matches!(level, HitLevel::L3 | HitLevel::Miss);
        let suggestions = self.cores[core].pf.on_demand_access(addr, l2_miss);
        let mut prefetch = SuggestionList::new();
        for &a in suggestions.as_slice() {
            if self.contains(core, a).is_none() {
                prefetch.push(a);
            }
        }
        AccessResult {
            level,
            writebacks,
            prefetch,
        }
    }

    fn promote_to_l1(&mut self, core: usize, addr: Addr, dirty: bool, wb: &mut Vec<Addr>) {
        // `fill` returning an eviction (or refreshing a resident line)
        // leaves occupancy unchanged; only a free-slot insert grows it.
        // The before/after length delta captures exactly that.
        let before = self.cores[core].l1.len();
        if let Some(ev) = self.cores[core].l1.fill(addr, dirty) {
            self.private_live += self.cores[core].l1.len() - before;
            self.insert_l2(core, ev.addr, ev.dirty, wb);
        } else {
            self.private_live += self.cores[core].l1.len() - before;
        }
    }

    fn insert_l2(&mut self, core: usize, addr: Addr, dirty: bool, wb: &mut Vec<Addr>) {
        let before = self.cores[core].l2.len();
        if let Some(ev) = self.cores[core].l2.fill(addr, dirty) {
            self.private_live += self.cores[core].l2.len() - before;
            self.insert_l3(ev.addr, ev.dirty, wb);
        } else {
            self.private_live += self.cores[core].l2.len() - before;
        }
    }

    fn insert_l3(&mut self, addr: Addr, dirty: bool, wb: &mut Vec<Addr>) {
        if let Some(ev) = self.l3.fill(addr, dirty) {
            if ev.dirty {
                wb.push(ev.addr);
            }
        }
    }

    fn fill_private(&mut self, core: usize, addr: Addr, dirty: bool, wb: &mut Vec<Addr>) {
        self.insert_l2(core, addr, false, wb);
        self.promote_to_l1(core, addr, dirty, wb);
    }

    /// Fills a prefetched line into the core's L2 (and records nothing in
    /// L1: a later demand access promotes it).
    ///
    /// Returns dirty L3 victims displaced by the fill.
    pub fn fill_prefetch(&mut self, core: usize, addr: Addr) -> Vec<Addr> {
        let mut wb = Vec::new();
        self.insert_l2(core, addr.cacheline(), false, &mut wb);
        self.prefetch_fills += 1;
        wb
    }

    /// Installs a line into the core's private levels without a memory
    /// fetch (full-cacheline stores, streaming-copy destinations).
    ///
    /// Returns dirty L3 victims displaced by the fills.
    pub fn install(&mut self, core: usize, addr: Addr, dirty: bool) -> Vec<Addr> {
        let mut wb = Vec::new();
        self.fill_private(core, addr.cacheline(), dirty, &mut wb);
        wb
    }

    /// Flushes `addr` from every core and the L3.
    ///
    /// Returns `true` if any copy was dirty (a write-back to memory is
    /// required). A flush instruction acts on every core's private caches,
    /// but most of them are empty in single-threaded phases — the O(1)
    /// emptiness check keeps this hot path from scanning ~2×`num_cores`
    /// sets per flushed line.
    pub fn flush(&mut self, addr: Addr, mode: FlushMode) -> bool {
        let addr = addr.cacheline();
        let mut dirty = false;
        match mode {
            FlushMode::Invalidate => {
                if self.private_live > 0 {
                    for c in &mut self.cores {
                        if !c.l1.is_empty() {
                            if let Some(d) = c.l1.invalidate(addr) {
                                dirty |= d;
                                self.private_live -= 1;
                            }
                        }
                        if !c.l2.is_empty() {
                            if let Some(d) = c.l2.invalidate(addr) {
                                dirty |= d;
                                self.private_live -= 1;
                            }
                        }
                    }
                }
                if !self.l3.is_empty() {
                    dirty |= self.l3.invalidate(addr).unwrap_or(false);
                }
            }
            FlushMode::WriteBackRetain => {
                if self.private_live > 0 {
                    for c in &mut self.cores {
                        if !c.l1.is_empty() {
                            dirty |= c.l1.clean(addr).unwrap_or(false);
                        }
                        if !c.l2.is_empty() {
                            dirty |= c.l2.clean(addr).unwrap_or(false);
                        }
                    }
                }
                if !self.l3.is_empty() {
                    dirty |= self.l3.clean(addr).unwrap_or(false);
                }
            }
        }
        dirty
    }

    /// Returns the closest level at which `core` can see `addr`, without
    /// disturbing LRU state.
    pub fn contains(&self, core: usize, addr: Addr) -> Option<HitLevel> {
        let addr = addr.cacheline();
        if self.cores[core].l1.peek(addr) {
            Some(HitLevel::L1)
        } else if self.cores[core].l2.peek(addr) {
            Some(HitLevel::L2)
        } else if self.l3.peek(addr) {
            Some(HitLevel::L3)
        } else {
            None
        }
    }

    /// Drops every cached line (simulated power failure), returning the
    /// addresses of lines that held dirty data.
    pub fn drop_all(&mut self) -> Vec<Addr> {
        let mut dirty = Vec::new();
        for c in &mut self.cores {
            dirty.extend(c.l1.drain_dirty());
            dirty.extend(c.l2.drain_dirty());
        }
        dirty.extend(self.l3.drain_dirty());
        dirty.sort();
        dirty.dedup();
        self.private_live = 0;
        dirty
    }

    /// Returns per-level and per-prefetcher counters aggregated over all
    /// cores.
    pub fn hierarchy_stats(&self) -> CacheHierarchyStats {
        let mut l1 = HitMiss::new();
        let mut l2 = HitMiss::new();
        let mut prefetch = PrefetcherStats::default();
        for c in &self.cores {
            l1.merge(&c.l1.counters());
            l2.merge(&c.l2.counters());
            prefetch.merge(&c.pf.stats());
        }
        CacheHierarchyStats {
            l1: CacheLevelStats::from_parts(l1, 0),
            l2: CacheLevelStats::from_parts(l2, self.prefetch_fills),
            l3: CacheLevelStats::from_parts(self.l3.counters(), 0),
            prefetch,
        }
    }

    /// Clears every hit/miss and prefetch counter without disturbing
    /// resident lines or prefetcher training state.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.l1.reset_stats();
            c.l2.reset_stats();
            c.pf.reset_stats();
        }
        self.l3.reset_stats();
        self.prefetch_fills = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(pf: PrefetchConfig) -> CacheSystem {
        CacheSystem::new(
            CacheParams {
                l1_bytes: 256,
                l1_ways: 2,
                l2_bytes: 1024,
                l2_ways: 4,
                l3_bytes: 4096,
                l3_ways: 4,
                l1_latency: 4,
                l2_latency: 14,
                l3_latency: 48,
            },
            2,
            pf,
        )
    }

    #[test]
    fn miss_fill_hit_sequence() {
        let mut s = small_system(PrefetchConfig::none());
        let r = s.access(0, Addr(0), false);
        assert_eq!(r.level, HitLevel::Miss);
        let r = s.access(0, Addr(0), false);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn caches_are_core_private() {
        let mut s = small_system(PrefetchConfig::none());
        s.access(0, Addr(0), false);
        let r = s.access(1, Addr(0), false);
        assert_eq!(r.level, HitLevel::Miss, "core 1 does not see core 0's L1");
    }

    #[test]
    fn dirty_line_written_back_on_l3_eviction() {
        let mut s = small_system(PrefetchConfig::none());
        s.access(0, Addr(0), true); // dirty in L1
                                    // Thrash everything with a long stream of distinct lines.
        let mut wrote_back = false;
        for i in 1..400u64 {
            let r = s.access(0, Addr(i * 64), false);
            if r.writebacks.contains(&Addr(0)) {
                wrote_back = true;
            }
        }
        assert!(wrote_back, "dirty line must eventually reach memory");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut s = small_system(PrefetchConfig::none());
        s.access(0, Addr(0), false);
        // L1 has 4 lines (256 B); push line 0 out of L1 but not L2.
        for i in 1..5u64 {
            s.access(0, Addr(i * 64), false);
        }
        let r = s.access(0, Addr(0), false);
        assert!(
            matches!(r.level, HitLevel::L1 | HitLevel::L2),
            "line survives in L2, got {:?}",
            r.level
        );
        assert_ne!(r.level, HitLevel::L1);
    }

    #[test]
    fn flush_invalidate_reports_dirty_and_removes() {
        let mut s = small_system(PrefetchConfig::none());
        s.access(0, Addr(0), true);
        assert!(s.flush(Addr(0), FlushMode::Invalidate));
        assert_eq!(s.contains(0, Addr(0)), None);
        // Second flush: nothing left.
        assert!(!s.flush(Addr(0), FlushMode::Invalidate));
    }

    #[test]
    fn flush_retain_keeps_line_clean() {
        let mut s = small_system(PrefetchConfig::none());
        s.access(0, Addr(0), true);
        assert!(s.flush(Addr(0), FlushMode::WriteBackRetain));
        assert_eq!(s.contains(0, Addr(0)), Some(HitLevel::L1));
        // Clean now: a second clwb writes back nothing.
        assert!(!s.flush(Addr(0), FlushMode::WriteBackRetain));
        let r = s.access(0, Addr(0), false);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn flush_acts_across_cores() {
        let mut s = small_system(PrefetchConfig::none());
        s.access(0, Addr(0), true);
        s.access(1, Addr(0), false);
        assert!(s.flush(Addr(0), FlushMode::Invalidate));
        assert_eq!(s.contains(0, Addr(0)), None);
        assert_eq!(s.contains(1, Addr(0)), None);
    }

    #[test]
    fn flush_finds_lines_after_eviction_churn() {
        // Stress the private-occupancy accounting: far-past-capacity fills
        // take the eviction path (occupancy deltas of zero), interleaved
        // with invalidating flushes. If the live accounting undercounted,
        // flush would skip the scan and leave the dirty line resident.
        let mut s = small_system(PrefetchConfig::none());
        for i in 0..400u64 {
            s.access(0, Addr(i * 64), i % 7 == 0);
            if i % 13 == 0 {
                s.flush(Addr((i / 2) * 64), FlushMode::Invalidate);
            }
        }
        s.access(1, Addr(64 * 1000), true);
        assert!(s.flush(Addr(64 * 1000), FlushMode::Invalidate));
        assert_eq!(s.contains(1, Addr(64 * 1000)), None);
    }

    #[test]
    fn prefetch_suggestions_are_filtered_to_nonresident() {
        let mut s = small_system(PrefetchConfig::dcu_only());
        s.access(0, Addr(0), false);
        let r = s.access(0, Addr(64), false);
        assert_eq!(r.prefetch.as_slice(), [Addr(128)]);
        // Fill it; an identical run should not resuggest a resident line.
        let wb = s.fill_prefetch(0, Addr(128));
        assert!(wb.is_empty());
        let r = s.access(0, Addr(128), false);
        assert!(matches!(r.level, HitLevel::L2));
        assert_eq!(r.prefetch.as_slice(), [Addr(192)]);
    }

    #[test]
    fn drop_all_returns_dirty_lines_once() {
        let mut s = small_system(PrefetchConfig::none());
        s.access(0, Addr(0), true);
        s.access(0, Addr(64), false);
        s.access(1, Addr(128), true);
        let dirty = s.drop_all();
        assert_eq!(dirty, vec![Addr(0), Addr(128)]);
        assert_eq!(s.contains(0, Addr(0)), None);
        assert_eq!(s.contains(1, Addr(128)), None);
    }

    #[test]
    fn working_set_larger_than_l3_misses() {
        let mut s = small_system(PrefetchConfig::none());
        // Total hierarchy ≈ 4 KB L3 + privates; use an 16 KB working set.
        let lines = 256u64;
        for _ in 0..2 {
            for i in 0..lines {
                s.access(0, Addr(i * 64), false);
            }
        }
        let l3 = s.hierarchy_stats().l3;
        assert!(
            l3.hits < lines / 4,
            "sequential over-capacity scan should mostly miss L3, hits={}",
            l3.hits
        );
    }

    #[test]
    fn hierarchy_stats_aggregate_cores_and_attribute_prefetch_fills() {
        let mut s = small_system(PrefetchConfig::dcu_only());
        s.access(0, Addr(0), false);
        s.access(1, Addr(0), false);
        let r = s.access(0, Addr(64), false);
        assert!(!r.prefetch.is_empty());
        for &a in &r.prefetch {
            s.fill_prefetch(0, a);
        }
        let st = s.hierarchy_stats();
        assert_eq!(st.l1.misses, 3, "both cores' L1 misses aggregate");
        assert_eq!(st.l2.prefetch_fills, r.prefetch.len() as u64);
        assert_eq!(st.l1.prefetch_fills, 0, "prefetches land in L2");
        assert_eq!(st.prefetch.dcu, r.prefetch.len() as u64);
        assert_eq!(st.prefetch.total(), st.prefetch.dcu);

        s.reset_stats();
        let st = s.hierarchy_stats();
        assert_eq!(st, CacheHierarchyStats::default());
        assert_eq!(
            s.contains(0, Addr(0)),
            Some(HitLevel::L1),
            "stats reset keeps contents"
        );
    }

    #[test]
    fn latency_lookup() {
        let s = small_system(PrefetchConfig::none());
        assert_eq!(s.latency_of(HitLevel::L1), Some(4));
        assert_eq!(s.latency_of(HitLevel::Miss), None);
    }
}
