//! Property tests for the cache model: the set-associative cache against
//! a reference model, and hierarchy invariants under random traffic.

use std::collections::HashMap;

use cpucache::{Cache, CacheParams, CacheSystem, FlushMode, PrefetchConfig};
use proptest::prelude::*;
use simbase::Addr;

/// Reference model of a set-associative LRU cache.
struct ModelCache {
    sets: HashMap<u64, Vec<(u64, bool)>>, // set -> [(line, dirty)] in LRU order
    num_sets: u64,
    ways: usize,
}

impl ModelCache {
    fn new(capacity_bytes: u64, ways: usize) -> Self {
        ModelCache {
            sets: HashMap::new(),
            num_sets: (capacity_bytes / 64 / ways as u64).max(1),
            ways,
        }
    }

    fn set_of(&self, addr: Addr) -> u64 {
        (addr.cacheline().0 / 64) % self.num_sets
    }

    fn access(&mut self, addr: Addr, dirty: bool) -> bool {
        let line = addr.cacheline().0;
        let set = self.sets.entry(self.set_of(addr)).or_default();
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, d) = set.remove(pos);
            set.push((l, d || dirty));
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: Addr, dirty: bool) -> Option<(u64, bool)> {
        let line = addr.cacheline().0;
        let ways = self.ways;
        let set_idx = self.set_of(addr);
        let set = self.sets.entry(set_idx).or_default();
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, d) = set.remove(pos);
            set.push((l, d || dirty));
            return None;
        }
        let evicted = if set.len() >= ways {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((line, dirty));
        evicted
    }
}

proptest! {
    #[test]
    fn cache_matches_lru_model(
        ops in prop::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..300),
    ) {
        // 16 lines, 4 ways: small enough to stress eviction constantly.
        let mut cache = Cache::new(16 * 64, 4);
        let mut model = ModelCache::new(16 * 64, 4);
        for (line, dirty, is_fill) in ops {
            let addr = Addr(line * 64);
            if is_fill {
                let got = cache.fill(addr, dirty);
                let want = model.fill(addr, dirty);
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some((wl, wd))) => {
                        prop_assert_eq!(g.addr, Addr(wl));
                        prop_assert_eq!(g.dirty, wd);
                    }
                    other => prop_assert!(false, "eviction mismatch: {:?}", other),
                }
            } else {
                prop_assert_eq!(cache.access(addr, dirty), model.access(addr, dirty));
            }
        }
        // Final residency agrees.
        for line in 0..64u64 {
            let addr = Addr(line * 64);
            let model_has = model
                .sets
                .get(&model.set_of(addr))
                .is_some_and(|s| s.iter().any(|&(l, _)| l == line * 64));
            prop_assert_eq!(cache.peek(addr), model_has, "line {}", line);
        }
    }

    #[test]
    fn hierarchy_never_loses_dirty_data_silently(
        lines in prop::collection::vec(0u64..4096, 1..400),
    ) {
        // Every dirty line must either still be resident somewhere or have
        // been reported as a memory write-back.
        let mut sys = CacheSystem::new(
            CacheParams {
                l1_bytes: 512,
                l1_ways: 2,
                l2_bytes: 2048,
                l2_ways: 4,
                l3_bytes: 8192,
                l3_ways: 4,
                l1_latency: 4,
                l2_latency: 14,
                l3_latency: 48,
            },
            1,
            PrefetchConfig::none(),
        );
        let mut written_back: Vec<u64> = Vec::new();
        let mut dirtied: Vec<u64> = Vec::new();
        for &line in &lines {
            let addr = Addr(line * 64);
            let res = sys.access(0, addr, true);
            dirtied.push(addr.0);
            written_back.extend(res.writebacks.iter().map(|a| a.0));
        }
        written_back.extend(sys.drop_all().iter().map(|a| a.0));
        written_back.sort_unstable();
        written_back.dedup();
        dirtied.sort_unstable();
        dirtied.dedup();
        for d in dirtied {
            prop_assert!(
                written_back.binary_search(&d).is_ok(),
                "dirty line {:#x} vanished",
                d
            );
        }
    }

    #[test]
    fn flush_always_empties_the_line(
        lines in prop::collection::vec(0u64..256, 1..100),
        flush_line in 0u64..256,
    ) {
        let mut sys = CacheSystem::new(CacheParams::default(), 2, PrefetchConfig::all());
        for (i, &line) in lines.iter().enumerate() {
            sys.access(i % 2, Addr(line * 64), i % 3 == 0);
        }
        sys.flush(Addr(flush_line * 64), FlushMode::Invalidate);
        prop_assert_eq!(sys.contains(0, Addr(flush_line * 64)), None);
        prop_assert_eq!(sys.contains(1, Addr(flush_line * 64)), None);
        // Flushing again reports clean.
        prop_assert!(!sys.flush(Addr(flush_line * 64), FlushMode::Invalidate));
    }

    #[test]
    fn clean_flush_preserves_read_hits(
        lines in prop::collection::vec(0u64..8, 1..40),
    ) {
        let mut sys = CacheSystem::new(CacheParams::default(), 1, PrefetchConfig::none());
        for &line in &lines {
            sys.access(0, Addr(line * 64), true);
            sys.flush(Addr(line * 64), FlushMode::WriteBackRetain);
            // G2 semantics: the line stays resident after clwb.
            prop_assert!(sys.contains(0, Addr(line * 64)).is_some());
        }
    }
}

/// The saved regression seed from `props.proptest-regressions`
/// (`lines = [1, 0, 0], flush_line = 0` for `flush_always_empties_the_line`),
/// pinned as a plain deterministic test. The vendored offline `proptest`
/// stand-in does not replay regression files, so this case must be spelled
/// out to keep running in CI.
#[test]
fn flush_regression_seed_line_zero_accessed_on_both_threads() {
    let mut sys = CacheSystem::new(CacheParams::default(), 2, PrefetchConfig::all());
    for (i, &line) in [1u64, 0, 0].iter().enumerate() {
        sys.access(i % 2, Addr(line * 64), i % 3 == 0);
    }
    sys.flush(Addr(0), FlushMode::Invalidate);
    assert_eq!(sys.contains(0, Addr(0)), None);
    assert_eq!(sys.contains(1, Addr(0)), None);
    assert!(
        !sys.flush(Addr(0), FlushMode::Invalidate),
        "second flush must report the line clean"
    );
}
