//! Per-shard circuit breaker with half-open probing.
//!
//! The breaker sits in the router, one per shard. Consecutive attempt
//! failures (timeouts, delivery losses) trip it open; while open the
//! router routes around the shard (degraded path) instead of queueing
//! more doomed work. After a cooldown the breaker admits exactly one
//! probe request (half-open); a probe success closes the breaker and
//! reintegrates the shard, a probe failure re-opens it for another
//! cooldown.

use crate::retry::Ticks;

/// Breaker state machine. See DESIGN.md, "Cluster fault model".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: all requests rejected until the cooldown deadline.
    Open { until: Ticks },
    /// Cooldown elapsed: exactly one in-flight probe decides the outcome.
    HalfOpen,
}

/// What the breaker says about admitting one attempt right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: attempt proceeds normally.
    Normal,
    /// Half-open: attempt proceeds and doubles as the recovery probe.
    Probe,
    /// Open (or a probe already in flight): route around the shard.
    Reject,
}

#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    probe_inflight: bool,
    /// Consecutive failures that trip Closed -> Open.
    pub trip_threshold: u32,
    /// Ticks spent Open before the first probe is admitted.
    pub cooldown: Ticks,
    /// Lifetime count of Closed -> Open transitions.
    pub trips: u64,
}

impl CircuitBreaker {
    pub fn new(trip_threshold: u32, cooldown: Ticks) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_inflight: false,
            trip_threshold: trip_threshold.max(1),
            cooldown,
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Ask to admit one attempt at simulated time `now`. An `Open`
    /// breaker whose cooldown has elapsed transitions to `HalfOpen`
    /// here, so callers need no separate timer.
    pub fn admit(&mut self, now: Ticks) -> Admission {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
                self.probe_inflight = false;
            }
        }
        match self.state {
            BreakerState::Closed => Admission::Normal,
            BreakerState::Open { .. } => Admission::Reject,
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    Admission::Reject
                } else {
                    self.probe_inflight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Record a successful attempt outcome.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.probe_inflight = false;
        self.state = BreakerState::Closed;
    }

    /// Record a failed attempt outcome (timeout or shard-down loss).
    pub fn on_failure(&mut self, now: Ticks) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                if self.consecutive_failures >= self.trip_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                // Probe failed: straight back to Open for another cooldown.
                self.trip(now);
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Force the breaker open (used when the fault plan power-fails the
    /// shard and the router learns of it via timeouts — calling this on
    /// explicit down-detection keeps trip accounting consistent).
    fn trip(&mut self, now: Ticks) {
        self.state = BreakerState::Open {
            until: now.saturating_add(self.cooldown),
        };
        self.consecutive_failures = 0;
        self.probe_inflight = false;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_reopens_on_probe_failure() {
        let mut b = CircuitBreaker::new(3, 100);
        assert_eq!(b.admit(0), Admission::Normal);
        b.on_failure(10);
        b.on_failure(11);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(12);
        assert_eq!(b.state(), BreakerState::Open { until: 112 });
        assert_eq!(b.trips, 1);
        assert_eq!(b.admit(50), Admission::Reject);

        // Cooldown elapsed: one probe, further attempts rejected.
        assert_eq!(b.admit(112), Admission::Probe);
        assert_eq!(b.admit(113), Admission::Reject);

        // Probe fails: back to Open, trips counted.
        b.on_failure(120);
        assert_eq!(b.state(), BreakerState::Open { until: 220 });
        assert_eq!(b.trips, 2);

        // Next probe succeeds: closed and healthy.
        assert_eq!(b.admit(220), Admission::Probe);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(221), Admission::Normal);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(3, 100);
        b.on_failure(1);
        b.on_failure(2);
        b.on_success();
        b.on_failure(3);
        b.on_failure(4);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(5);
        assert!(matches!(b.state(), BreakerState::Open { .. }));
    }
}
