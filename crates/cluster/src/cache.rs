//! Bounded DRAM front-cache for graceful degradation, epoch-fenced.
//!
//! While a shard's breaker is open, reads for its keys are answered
//! from this cache (marked degraded) instead of being shed. The cache
//! is write-through: every successful Get/Put refreshes it, so entries
//! are never staler than the last acknowledged value the client saw —
//! *within an epoch*. Every entry is tagged with the routing-table
//! epoch at insertion; a lookup passes the slice's epoch floor and
//! entries older than the floor are rejected. The router bumps a
//! slice's floor whenever its ownership changes (migration flip) or an
//! owner rejoins after power-fail recovery, so a degraded read can
//! never serve a value cached before the world changed underneath it.
//! Keyed state lives in a `BTreeMap` and eviction is FIFO via an
//! insertion queue — both deterministic per the simlint contract.

use std::collections::{BTreeMap, VecDeque};

#[derive(Debug)]
pub struct FrontCache {
    /// key -> (value, insertion epoch).
    map: BTreeMap<u64, (u64, u64)>,
    fifo: VecDeque<u64>,
    capacity: usize,
    pub hits: u64,
    pub misses: u64,
    /// Lookups rejected because the entry predates the epoch floor.
    pub stale_rejects: u64,
}

impl FrontCache {
    pub fn new(capacity: usize) -> Self {
        FrontCache {
            map: BTreeMap::new(),
            fifo: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            stale_rejects: 0,
        }
    }

    /// Insert or refresh a key at the given routing epoch. Evicts the
    /// oldest insertion when full.
    pub fn put(&mut self, key: u64, value: u64, epoch: u64) {
        if self.map.insert(key, (value, epoch)).is_none() {
            self.fifo.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.fifo.pop_front() {
                    self.map.remove(&old);
                } else {
                    break;
                }
            }
        }
    }

    /// Degraded-path lookup: an entry cached before `epoch_floor` is a
    /// stale-epoch reject (counted separately from plain misses) — the
    /// regression this guards is a post-recovery degraded read serving
    /// the pre-crash value.
    pub fn get(&mut self, key: u64, epoch_floor: u64) -> Option<u64> {
        match self.map.get(&key) {
            Some(&(v, e)) if e >= epoch_floor => {
                self.hits += 1;
                Some(v)
            }
            Some(_) => {
                self.stale_rejects += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut c = FrontCache::new(3);
        for k in 0..10u64 {
            c.put(k, k * 2, 1);
        }
        assert_eq!(c.len(), 3);
        // Oldest evicted, newest retained.
        assert_eq!(c.get(0, 1), None);
        assert_eq!(c.get(9, 1), Some(18));
        assert_eq!(c.get(7, 1), Some(14));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn refresh_does_not_duplicate_fifo_entry() {
        let mut c = FrontCache::new(2);
        c.put(1, 10, 1);
        c.put(1, 11, 1);
        c.put(2, 20, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1, 1), Some(11));
        assert_eq!(c.get(2, 1), Some(20));
    }

    /// Regression: before epoch tagging, an entry cached at epoch 1
    /// was served after the owner recovered (or the slice migrated)
    /// at epoch 2 — `get(k)` returned the stale pre-crash value. The
    /// epoch floor must reject it.
    #[test]
    fn pre_recovery_epoch_entries_are_rejected() {
        let mut c = FrontCache::new(8);
        c.put(5, 111, 1);
        // Pre-fix behavior: this lookup served 111. Now the slice's
        // floor moved to 2 (owner rejoined), so the entry is dead.
        assert_eq!(c.get(5, 2), None, "stale-epoch entry must not serve");
        assert_eq!(c.stale_rejects, 1);
        assert_eq!(c.misses, 1);
        // Same-epoch and newer entries still serve.
        c.put(5, 222, 2);
        assert_eq!(c.get(5, 2), Some(222));
        c.put(6, 333, 3);
        assert_eq!(c.get(6, 2), Some(333), "newer-than-floor serves");
        assert_eq!(c.hits, 2);
    }
}
