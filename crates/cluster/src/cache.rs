//! Bounded DRAM front-cache for graceful degradation.
//!
//! While a shard's breaker is open, reads for its keys are answered
//! from this cache (marked degraded) instead of being shed. The cache
//! is write-through: every successful Get/Put refreshes it, so entries
//! are never staler than the last acknowledged value the client saw.
//! Keyed state lives in a `BTreeMap` and eviction is FIFO via an
//! insertion queue — both deterministic per the simlint contract.

use std::collections::{BTreeMap, VecDeque};

#[derive(Debug)]
pub struct FrontCache {
    map: BTreeMap<u64, u64>,
    fifo: VecDeque<u64>,
    capacity: usize,
    pub hits: u64,
    pub misses: u64,
}

impl FrontCache {
    pub fn new(capacity: usize) -> Self {
        FrontCache {
            map: BTreeMap::new(),
            fifo: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Insert or refresh a key. Evicts the oldest insertion when full.
    pub fn put(&mut self, key: u64, value: u64) {
        if self.map.insert(key, value).is_none() {
            self.fifo.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.fifo.pop_front() {
                    self.map.remove(&old);
                } else {
                    break;
                }
            }
        }
    }

    /// Degraded-path lookup; counts hit/miss.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        match self.map.get(&key) {
            Some(&v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut c = FrontCache::new(3);
        for k in 0..10u64 {
            c.put(k, k * 2);
        }
        assert_eq!(c.len(), 3);
        // Oldest evicted, newest retained.
        assert_eq!(c.get(0), None);
        assert_eq!(c.get(9), Some(18));
        assert_eq!(c.get(7), Some(14));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn refresh_does_not_duplicate_fifo_entry() {
        let mut c = FrontCache::new(2);
        c.put(1, 10);
        c.put(1, 11);
        c.put(2, 20);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.get(2), Some(20));
    }
}
