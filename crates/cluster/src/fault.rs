//! Cluster-level fault plans: shard power failures and network degrade
//! windows, scheduled against simulated time.
//!
//! This is faultsim's idea — declarative fault schedules driven by
//! seeded randomness — lifted to the cluster layer. A
//! [`ClusterFaultPlan`] names *what* fails and *when*; the event loop
//! in [`crate::sim`] owns *how*: it marks the shard down, lets in-flight
//! deliveries die, trips the breaker via timeouts, and schedules the
//! recovery (crash image -> survivor draw -> replay -> reintegration)
//! after the outage elapses.

use crate::migrate::MigrationPhase;
use crate::net::DegradeParams;
use crate::retry::Ticks;

/// Power-fail one shard mid-traffic.
#[derive(Debug, Clone, Copy)]
pub struct ShardPowerFail {
    /// Which shard dies.
    pub shard: usize,
    /// Simulated instant the power drops.
    pub at: Ticks,
    /// Ticks from power drop until the recovered shard is back online
    /// (models reboot + media scan; log replay cycles add on top).
    pub outage: Ticks,
    /// Per-uncertain-line survival probability for the crash image's
    /// volatile overlay (drawn from the plan's survivor seed).
    pub survivor_bias: f64,
}

/// Degrade the network for a window (drops, reorders, added delay).
#[derive(Debug, Clone, Copy)]
pub struct NetDegrade {
    pub start: Ticks,
    pub end: Ticks,
    pub params: DegradeParams,
}

/// Which migration participant the seeded fault power-fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationFailTarget {
    Source,
    Dest,
    Both,
}

/// Power-fail a migration participant at a protocol phase boundary —
/// right after that phase's first persisted control record (or first
/// copy chunk, for `Copy`), the most adversarial instant: the record
/// is durable but nothing after it is. Fires once, on the first slice
/// that reaches the phase.
#[derive(Debug, Clone, Copy)]
pub struct MigrationFail {
    /// Phase boundary to strike at (`Idle` never fires).
    pub phase: MigrationPhase,
    pub target: MigrationFailTarget,
    /// Ticks from power drop until the shard is back online.
    pub outage: Ticks,
    /// Per-uncertain-line survival probability for the crash image.
    pub survivor_bias: f64,
}

impl MigrationFail {
    /// Default drill: strike `target` at `phase` with a mid-length
    /// outage and an even survivor draw.
    pub fn at(phase: MigrationPhase, target: MigrationFailTarget) -> Self {
        MigrationFail {
            phase,
            target,
            outage: 80_000,
            survivor_bias: 0.5,
        }
    }
}

/// The full cluster fault schedule for one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterFaultPlan {
    pub power_fail: Option<ShardPowerFail>,
    pub net_degrade: Option<NetDegrade>,
    pub migration_fail: Option<MigrationFail>,
}

impl ClusterFaultPlan {
    /// No faults: the availability baseline.
    pub fn none() -> Self {
        ClusterFaultPlan::default()
    }

    /// The e12 headline schedule: shard `shard` power-fails at `at` for
    /// `outage` ticks, with the network flapping around the event
    /// (drops and reorders from one net-delay before until one after).
    pub fn power_fail_with_flap(shard: usize, at: Ticks, outage: Ticks) -> Self {
        ClusterFaultPlan {
            power_fail: Some(ShardPowerFail {
                shard,
                at,
                outage,
                survivor_bias: 0.5,
            }),
            net_degrade: Some(NetDegrade {
                start: at.saturating_sub(outage / 4),
                end: at.saturating_add(outage),
                params: DegradeParams {
                    extra_drop_prob: 0.10,
                    extra_reorder_prob: 0.10,
                    extra_delay: 1_000,
                },
            }),
            migration_fail: None,
        }
    }

    /// The e13 headline schedule: power-fail `target` at migration
    /// `phase`, with the network flapping in a window around `flap_at`.
    pub fn migration_fail_with_flap(
        phase: MigrationPhase,
        target: MigrationFailTarget,
        flap_at: Ticks,
        flap_len: Ticks,
    ) -> Self {
        ClusterFaultPlan {
            power_fail: None,
            net_degrade: Some(NetDegrade {
                start: flap_at,
                end: flap_at.saturating_add(flap_len),
                params: DegradeParams {
                    extra_drop_prob: 0.05,
                    extra_reorder_prob: 0.10,
                    extra_delay: 800,
                },
            }),
            migration_fail: Some(MigrationFail::at(phase, target)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_window_brackets_the_outage() {
        let p = ClusterFaultPlan::power_fail_with_flap(2, 100_000, 40_000);
        let pf = p.power_fail.expect("power fail scheduled");
        let nd = p.net_degrade.expect("degrade scheduled");
        assert_eq!(pf.shard, 2);
        assert!(nd.start < pf.at);
        assert!(nd.end >= pf.at + pf.outage);
    }
}
