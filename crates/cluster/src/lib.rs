//! Fault-tolerant sharded PM cluster on simulated machines.
//!
//! This crate scales the single-[`Machine`](optane_core::Machine)
//! simulation out to a service: N shards (alternating G1/G2 DIMM
//! generations) behind a router, serving an open-loop zipfian client
//! stream over a deterministic simulated network. The robustness
//! machinery is the point:
//!
//! - per-request deadlines with seeded-jitter exponential-backoff
//!   retries ([`RetryPolicy`]) and hedged reads,
//! - per-shard circuit breakers with half-open probing
//!   ([`CircuitBreaker`]),
//! - router admission control: bounded per-shard queues with typed
//!   overload rejections,
//! - graceful degradation to a DRAM front-cache ([`FrontCache`]) while
//!   a shard is down,
//! - cluster-level fault plans ([`ClusterFaultPlan`]): a shard
//!   power-fails mid-traffic and recovers through the crash-image +
//!   checkpoint path while the network drops/delays/reorders messages,
//! - epoch-fenced replicated routing ([`RoutingTable`]): keyslices with
//!   replica sets, quorum-acked writes, read rotation, and typed
//!   `StaleEpoch` rejection so a retired owner can never ack,
//! - crash-safe keyspace migration ([`MigrationPlan`]): the persisted
//!   `Prepare -> Copy -> CatchUp -> Flip -> Retire` state machine with
//!   power-fail drills at every phase boundary (`repro rebalance`),
//! - idempotent retries: puts carry req-ids into a per-shard dedup
//!   window that survives recovery via log replay,
//! - anti-entropy repair: per-slice FNV checksums compared across
//!   replicas on a sim-clock cadence, divergence read-repaired from
//!   the per-key maximum.
//!
//! Everything is deterministic per seed: same parameters, same seed,
//! byte-identical [`ClusterReport`] — the crate is under the simlint
//! determinism contract and the dual-process divergence witness
//! (`repro divergence e12`).
//!
//! The correctness invariant the whole stack hangs on: a Put is only
//! acknowledged after `store_full_cacheline` + `clwb` + `sfence`
//! completes on the shard, so an acked record is inside the ADR domain
//! of any crash image captured later — zero acknowledged-write loss
//! across any seeded fault schedule (see `tests/failover_props.rs`).

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod breaker;
pub mod cache;
pub mod fault;
pub mod metrics;
pub mod migrate;
pub mod net;
pub mod replica;
pub mod retry;
pub mod shard;
pub mod sim;
pub mod workload;

pub use breaker::{Admission, BreakerState, CircuitBreaker};
pub use cache::FrontCache;
pub use fault::{ClusterFaultPlan, MigrationFail, MigrationFailTarget, NetDegrade, ShardPowerFail};
pub use metrics::{cluster_registry, percentile, GLOBAL_COLUMNS, PER_SHARD_COLUMNS};
pub use migrate::{ControlKind, MigrationPhase, MigrationPlan, MigrationReport};
pub use net::{DegradeParams, NetParams, NetSim, NetStats};
pub use replica::{fnv1a, ReplicationParams, RoutingTable, SliceId, FNV_OFFSET};
pub use retry::{RetryPolicy, Ticks};
pub use shard::{
    decode_slot, LogRecord, RecoveryOutcome, RouteMeta, ShardConfig, ShardError, ShardOp,
    ShardReply, ShardServer, DEDUP_WINDOW, RECORD_BYTES,
};
pub use sim::{
    run, run_traced, shard_generation, ClusterError, ClusterParams, ClusterReport, LatencySummary,
    RecoveryReport,
};
pub use workload::{ClientConfig, ClientGen};
