//! Fleet metrics: the cluster's simwatch registry and histogram helpers.
//!
//! One registry covers the whole fleet — global request counters first,
//! then a fixed per-shard column block (`s{i}_...`) so the JSONL/CSV
//! schema is a pure function of the shard count. Sampling happens in
//! the event loop on cluster time, so two same-seed runs emit
//! byte-identical series.

use obs::{Histogram, MetricKind, Registry};

/// Global columns, in registry order (see [`cluster_registry`]).
pub const GLOBAL_COLUMNS: usize = 18;

/// Per-shard columns appended after the globals.
pub const PER_SHARD_COLUMNS: usize = 5;

/// Builds the fleet registry for `n_shards` shards.
pub fn cluster_registry(n_shards: usize) -> Registry {
    let mut r = Registry::new();
    let c = |r: &mut Registry, name: &str, help: &str| {
        r.register(name, MetricKind::Counter, help);
    };
    c(&mut r, "arrivals", "client requests generated");
    c(&mut r, "served_ok", "requests served from a live shard");
    c(
        &mut r,
        "served_degraded",
        "reads served from the DRAM front-cache while the shard was down",
    );
    c(
        &mut r,
        "shed_overload",
        "requests rejected by router admission control (bounded queue full)",
    );
    c(
        &mut r,
        "shed_unavailable",
        "requests rejected because the shard was down and not cacheable",
    );
    c(
        &mut r,
        "deadline_exceeded",
        "requests answered with a deadline error after retries ran out",
    );
    c(
        &mut r,
        "retries",
        "attempt retries scheduled (backoff path)",
    );
    c(&mut r, "hedges", "hedged read attempts launched");
    c(
        &mut r,
        "duplicate_replies",
        "late replies discarded after the request already completed",
    );
    c(
        &mut r,
        "breaker_trips",
        "circuit breaker Closed->Open transitions",
    );
    c(
        &mut r,
        "net_sent",
        "messages offered to the simulated network",
    );
    c(
        &mut r,
        "net_dropped",
        "messages dropped by the simulated network",
    );
    c(
        &mut r,
        "net_reordered",
        "messages held back by the reorder fault",
    );
    c(
        &mut r,
        "acked_writes",
        "writes acknowledged durable to clients (quorum reached)",
    );
    c(
        &mut r,
        "stale_epoch_rejections",
        "attempts rejected by a shard's epoch fence",
    );
    c(
        &mut r,
        "dedup_hits",
        "duplicate put deliveries answered from the idempotency window",
    );
    c(
        &mut r,
        "repair_bytes",
        "bytes written by anti-entropy read-repair",
    );
    c(
        &mut r,
        "divergent_slices",
        "divergent slice comparisons found by anti-entropy",
    );
    for i in 0..n_shards {
        r.register(
            format!("s{i}_up"),
            MetricKind::Gauge,
            format!("shard {i} online (1) or powered off (0)"),
        );
        r.register(
            format!("s{i}_queue_depth"),
            MetricKind::Gauge,
            format!("shard {i} admitted in-flight requests at the router"),
        );
        r.register(
            format!("s{i}_served"),
            MetricKind::Counter,
            format!("operations shard {i} completed"),
        );
        r.register(
            format!("s{i}_rpq_max_depth"),
            MetricKind::Gauge,
            format!("shard {i} iMC read-pending-queue high-water mark"),
        );
        r.register(
            format!("s{i}_wpq_max_depth"),
            MetricKind::Gauge,
            format!("shard {i} iMC write-pending-queue high-water mark"),
        );
    }
    r
}

/// Approximate percentile from a power-of-two bucket histogram: returns
/// the upper bound of the bucket containing the `p`-quantile sample
/// (`p` in `[0, 1]`). Zero for an empty histogram.
pub fn percentile(h: &Histogram, p: f64) -> u64 {
    let total = h.count();
    if total == 0 {
        return 0;
    }
    let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (upper, count) in h.buckets() {
        seen += count;
        if seen >= rank {
            return upper;
        }
    }
    h.max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_schema_scales_with_shard_count() {
        let r = cluster_registry(4);
        assert_eq!(r.len(), GLOBAL_COLUMNS + 4 * PER_SHARD_COLUMNS);
        assert_eq!(r.defs()[0].name, "arrivals");
        assert_eq!(r.defs()[GLOBAL_COLUMNS].name, "s0_up");
        assert_eq!(r.defs()[r.len() - 1].name, "s3_wpq_max_depth");
    }

    #[test]
    fn percentile_brackets_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = percentile(&h, 0.50);
        let p99 = percentile(&h, 0.99);
        assert!((256..=1024).contains(&p50), "p50 bucket bound: {p50}");
        assert!(p99 >= p50, "p99 {p99} below p50 {p50}");
        assert_eq!(percentile(&Histogram::new(), 0.5), 0);
    }
}
