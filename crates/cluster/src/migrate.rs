//! Crash-safe keyspace migration: the `Prepare -> Copy -> CatchUp ->
//! Flip -> Retire` state machine and its persisted control records.
//!
//! A migration moves keyslices from a source shard to a destination
//! shard under live traffic. Every phase transition is itself a
//! persisted control record (ADR recipe, same as data records) on the
//! participating shard's log, so a power-fail at any byte of the
//! protocol is recoverable by log-prefix replay:
//!
//! - `Prepare` (source): the slice is being drained; the copy cursor
//!   starts at slot 0 and the head at prepare time is remembered.
//! - `Copy`: the driver streams data records `[cursor, head)` from the
//!   source log into the destination via idempotent `ingest` (per-key
//!   last-writer-wins on the globally monotone value, plus the req-id
//!   dedup window), charging real machine cycles on both ends — the
//!   copy stream competes with foreground traffic for the media.
//! - `CatchUp` (source): the cursor reached the prepare-time head;
//!   records appended since are chased the same way.
//! - `Flip`: when the cursor reaches the *live* head inside one event
//!   (no new writes can interleave), the destination persists
//!   `FlipAcquire` — **the atomic commit point** — then the source
//!   persists `FlipRetire`, the routing table swaps ownership, and the
//!   epoch bumps. A crash between the two records is resolved at
//!   recovery by asking the destination whether `FlipAcquire` is in its
//!   durable log: present means commit (finish the source record and
//!   the table swap), absent means abort.
//! - `Retire` (source): a `Retire` record drops the slice's index
//!   entries; replay re-drops them, so a retired slice can never
//!   resurrect through recovery.
//!
//! Crash rules, by phase of the in-flight slice:
//!
//! | crash target        | Prepare/Copy/CatchUp | Flip            | Retire  |
//! |---------------------|----------------------|-----------------|---------|
//! | destination         | abort slice          | commit if       | finish  |
//! | source              | resume (cursor = 0)  | `FlipAcquire`   | retire  |
//! | both                | abort slice          | durable on dest | finish  |
//!
//! Resume restarts the copy from slot 0: `ingest` is idempotent, so a
//! re-copy can never double-apply. Abort leaves ownership with the
//! source (orphan records on the destination are fenced off by the
//! ownership check and never served).

use crate::replica::SliceId;
use crate::retry::Ticks;

/// Persisted control-record kinds (the `code` field of a control
/// record; see `shard::decode_slot`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Source: slice drain announced, copy about to start.
    Prepare,
    /// Source: copy reached the prepare-time head; chasing the tail.
    CatchUp,
    /// Destination: ownership acquired — the migration commit point.
    FlipAcquire,
    /// Source: ownership released; every served record was copied.
    FlipRetire,
    /// Source: migration of this slice abandoned, ownership unchanged.
    Abort,
    /// Source: slice data dropped from the index (post-flip cleanup).
    Retire,
}

impl ControlKind {
    pub fn code(self) -> u64 {
        match self {
            ControlKind::Prepare => 1,
            ControlKind::CatchUp => 2,
            ControlKind::FlipAcquire => 3,
            ControlKind::FlipRetire => 4,
            ControlKind::Abort => 5,
            ControlKind::Retire => 6,
        }
    }

    pub fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            1 => ControlKind::Prepare,
            2 => ControlKind::CatchUp,
            3 => ControlKind::FlipAcquire,
            4 => ControlKind::FlipRetire,
            5 => ControlKind::Abort,
            6 => ControlKind::Retire,
            _ => return None,
        })
    }
}

/// Migration protocol phase for the in-flight slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Between slices (or before the first / after the last).
    Idle,
    Prepare,
    Copy,
    CatchUp,
    /// `FlipAcquire` persisted on the destination; source record and
    /// table swap pending. A crash here is the torn-flip case.
    Flip,
    /// Ownership swapped; source cleanup pending.
    Retire,
}

/// A declarative migration: drain slices from `from` onto `to`.
#[derive(Debug, Clone, Copy)]
pub struct MigrationPlan {
    pub from: usize,
    pub to: usize,
    /// Simulated instant the drain starts.
    pub start_at: Ticks,
    /// Max slices to move (0 = every slice `from` owns at start).
    pub max_slices: usize,
    /// Log records copied per driver step.
    pub chunk_records: u64,
    /// Ticks between driver steps (copy-stream pacing).
    pub step_interval: Ticks,
}

impl MigrationPlan {
    /// Drain everything `from` owns onto `to`, starting at `start_at`.
    pub fn drain(from: usize, to: usize, start_at: Ticks) -> Self {
        MigrationPlan {
            from,
            to,
            start_at,
            max_slices: 0,
            chunk_records: 64,
            step_interval: 4_000,
        }
    }
}

/// What one run's migration accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Slices whose ownership reached the destination.
    pub slices_moved: u64,
    /// Slices abandoned (destination crashed pre-flip); ownership
    /// stayed with the source.
    pub slices_aborted: u64,
    /// Copy streams restarted from slot 0 after a source crash.
    pub copies_resumed: u64,
    /// Torn flips committed at recovery via the destination's durable
    /// `FlipAcquire`.
    pub flips_recovered: u64,
    /// Data records ingested by the destination (re-copies included).
    pub records_copied: u64,
    /// Control records persisted across both shards.
    pub control_records: u64,
}

/// Volatile driver state for the in-flight migration. The *durable*
/// truth lives in the shard logs as control records; this struct only
/// paces the copy stream and remembers where the cursor is.
#[derive(Debug, Clone)]
pub struct MigrationDriver {
    pub plan: MigrationPlan,
    /// Slices still to move, in ascending order; `queue[qi]` is next.
    pub queue: Vec<SliceId>,
    pub qi: usize,
    pub current: Option<SliceId>,
    pub phase: MigrationPhase,
    /// Next source log slot to scan.
    pub cursor: u64,
    /// Source log head when `Prepare` was persisted.
    pub head_at_prepare: u64,
    /// Set while source/destination are down; the driver parks until
    /// `RecoveryDone` resolves the crash.
    pub waiting_recovery: bool,
    /// The destination was among the crashed shards (decides abort vs
    /// resume when recovery resolves the parked driver).
    pub dest_crashed: bool,
    /// The seeded migration fault already fired (it fires once).
    pub fault_fired: bool,
    /// `MigrateStep` events currently scheduled; recovery only
    /// reschedules the copy stream when this reaches zero, so a crash
    /// can never fork two concurrent step chains.
    pub pending_steps: u32,
    pub done: bool,
    pub report: MigrationReport,
}

impl MigrationDriver {
    pub fn new(plan: MigrationPlan) -> Self {
        MigrationDriver {
            plan,
            queue: Vec::new(),
            qi: 0,
            current: None,
            phase: MigrationPhase::Idle,
            cursor: 0,
            head_at_prepare: 0,
            waiting_recovery: false,
            dest_crashed: false,
            fault_fired: false,
            pending_steps: 0,
            done: false,
            report: MigrationReport::default(),
        }
    }

    /// Move on to the next queued slice (or finish).
    pub fn advance_slice(&mut self) {
        self.current = None;
        self.phase = MigrationPhase::Idle;
        self.cursor = 0;
        self.head_at_prepare = 0;
        if self.qi >= self.queue.len() {
            self.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_codes_round_trip() {
        for k in [
            ControlKind::Prepare,
            ControlKind::CatchUp,
            ControlKind::FlipAcquire,
            ControlKind::FlipRetire,
            ControlKind::Abort,
            ControlKind::Retire,
        ] {
            assert_eq!(ControlKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ControlKind::from_code(0), None);
        assert_eq!(ControlKind::from_code(7), None);
    }

    #[test]
    fn driver_finishes_when_queue_is_exhausted() {
        let mut d = MigrationDriver::new(MigrationPlan::drain(0, 1, 100));
        d.queue = vec![0, 4];
        d.qi = 2;
        d.advance_slice();
        assert!(d.done);
        assert_eq!(d.phase, MigrationPhase::Idle);
    }
}
