//! Deterministic simulated network between router and shards.
//!
//! Every message transit draws its fate from a seeded [`SplitMix64`]:
//! dropped (never delivered), reordered (held back an extra delay so a
//! later send can overtake it), or delivered after `base_delay` plus
//! uniform jitter. A degrade window — scheduled by the cluster fault
//! plan — multiplies drop probability and delay while active, modeling
//! a flapping link during a shard's power event.

use crate::retry::Ticks;
use simbase::SplitMix64;

/// Static network parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Minimum one-way transit time.
    pub base_delay: Ticks,
    /// Uniform extra delay in `[0, jitter]`.
    pub jitter: Ticks,
    /// Probability a message is dropped outright.
    pub drop_prob: f64,
    /// Probability a delivered message is held back an extra
    /// `reorder_delay`, letting later traffic overtake it.
    pub reorder_prob: f64,
    /// Hold-back applied to reordered messages.
    pub reorder_delay: Ticks,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            base_delay: 2_000,
            jitter: 500,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: 3_000,
        }
    }
}

/// Delivery counters, reported per run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    pub sent: u64,
    pub dropped: u64,
    pub reordered: u64,
}

/// Seeded network simulator. One instance serves the whole cluster so
/// the RNG stream — and therefore every drop/reorder decision — is a
/// pure function of the seed and the order of `transit` calls.
#[derive(Debug)]
pub struct NetSim {
    params: NetParams,
    rng: SplitMix64,
    /// Active degrade window `[start, end)`, if any.
    degrade: Option<(Ticks, Ticks, DegradeParams)>,
    pub stats: NetStats,
}

/// Multipliers applied while a degrade window is active.
#[derive(Debug, Clone, Copy)]
pub struct DegradeParams {
    /// Added to `drop_prob` (clamped to 1.0).
    pub extra_drop_prob: f64,
    /// Added to `reorder_prob` (clamped to 1.0).
    pub extra_reorder_prob: f64,
    /// Added to `base_delay`.
    pub extra_delay: Ticks,
}

impl NetSim {
    pub fn new(params: NetParams, seed: u64) -> Self {
        NetSim {
            params,
            rng: SplitMix64::new(seed ^ 0x6e65_7473_696d_u64),
            degrade: None,
            stats: NetStats::default(),
        }
    }

    /// Install a degrade window; the fault plan schedules this around a
    /// shard power event.
    pub fn set_degrade(&mut self, start: Ticks, end: Ticks, params: DegradeParams) {
        self.degrade = Some((start, end, params));
    }

    /// Decide one message's fate at send time `now`. Returns the
    /// delivery time, or `None` if the message is dropped.
    pub fn transit(&mut self, now: Ticks) -> Option<Ticks> {
        self.stats.sent += 1;
        let (mut drop_p, mut reorder_p, mut delay) = (
            self.params.drop_prob,
            self.params.reorder_prob,
            self.params.base_delay,
        );
        if let Some((start, end, d)) = self.degrade {
            if now >= start && now < end {
                drop_p = (drop_p + d.extra_drop_prob).min(1.0);
                reorder_p = (reorder_p + d.extra_reorder_prob).min(1.0);
                delay = delay.saturating_add(d.extra_delay);
            }
        }
        if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
            self.stats.dropped += 1;
            return None;
        }
        if self.params.jitter > 0 {
            delay = delay.saturating_add(self.rng.gen_range(self.params.jitter + 1));
        }
        if reorder_p > 0.0 && self.rng.gen_bool(reorder_p) {
            self.stats.reordered += 1;
            delay = delay.saturating_add(self.params.reorder_delay);
        }
        Some(now.saturating_add(delay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fates() {
        let p = NetParams {
            drop_prob: 0.2,
            reorder_prob: 0.2,
            ..NetParams::default()
        };
        let mut a = NetSim::new(p, 42);
        let mut b = NetSim::new(p, 42);
        for t in 0..500 {
            assert_eq!(a.transit(t * 10), b.transit(t * 10));
        }
        assert_eq!(a.stats.sent, 500);
        assert_eq!(a.stats.dropped, b.stats.dropped);
        assert!(a.stats.dropped > 0, "0.2 drop prob should drop some");
    }

    #[test]
    fn degrade_window_raises_drop_rate() {
        let p = NetParams::default(); // zero baseline drop
        let mut n = NetSim::new(p, 7);
        n.set_degrade(
            1_000,
            2_000,
            DegradeParams {
                extra_drop_prob: 1.0,
                extra_reorder_prob: 0.0,
                extra_delay: 0,
            },
        );
        assert!(n.transit(500).is_some(), "before window: delivered");
        assert!(n.transit(1_500).is_none(), "inside window: dropped");
        assert!(n.transit(2_500).is_some(), "after window: delivered");
    }

    #[test]
    fn delivery_time_is_after_send() {
        let mut n = NetSim::new(NetParams::default(), 3);
        for t in 0..100 {
            let d = n.transit(t * 100);
            assert!(d.is_some_and(|d| d > t * 100));
        }
    }
}
