//! Replication: keyslices, the epoch-fenced routing table, and
//! anti-entropy checksums.
//!
//! The key space is partitioned into `n_slices` keyslices (`slice =
//! key % n_slices`); each slice is owned by a replica set of `replicas`
//! distinct shards — `owners[0]` is the primary, the rest are
//! followers. The router fences every attempt with the table's *epoch*:
//! a monotone view number bumped on every ownership change (migration
//! flip) and on every shard recovery. Shards remember the epoch at
//! which they acquired each slice and the epoch at which they retired
//! it, so a request launched against a stale view is rejected with a
//! typed `StaleEpoch` instead of being served — a partitioned router
//! can never collect an acknowledgement from a retired owner.
//!
//! Writes are acknowledged to the client only after a *quorum*
//! (`replicas / 2 + 1`) of owners has individually persisted the
//! record via the ADR recipe. Anti-entropy compares per-slice FNV
//! chain checksums between replicas on a sim-clock cadence and
//! read-repairs divergent slices from the freshest copy (values are
//! globally monotone versions, so per-key max is the merge function).

use std::collections::BTreeSet;

/// Keyslice index, `key % n_slices`.
pub type SliceId = usize;

/// FNV-1a offset basis (shared with the simlint witness constants).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds bytes into a running FNV-1a hash.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Static replication shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationParams {
    /// Keyslice count (0 = one slice per shard, the legacy layout).
    pub n_slices: usize,
    /// Replicas per slice (1 = unreplicated, the legacy layout).
    pub replicas: usize,
}

impl Default for ReplicationParams {
    fn default() -> Self {
        ReplicationParams {
            n_slices: 0,
            replicas: 1,
        }
    }
}

impl ReplicationParams {
    /// Effective slice count for a fleet of `n_shards`.
    pub fn slices(&self, n_shards: usize) -> usize {
        if self.n_slices == 0 {
            n_shards
        } else {
            self.n_slices
        }
    }

    /// Write quorum: a majority of the replica set.
    pub fn quorum(&self) -> usize {
        self.replicas / 2 + 1
    }
}

/// One slice's replica set. `shards[0]` is the primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceOwners {
    pub shards: Vec<usize>,
}

/// The router's view of slice placement, fenced by a monotone epoch.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    epoch: u64,
    owners: Vec<SliceOwners>,
    n_shards: usize,
}

impl RoutingTable {
    /// Initial layout: slice `s` lives on shards `(s + j) % n_shards`
    /// for `j in 0..replicas` — round-robin primaries, ring followers.
    /// With `n_slices == n_shards` and `replicas == 1` this reproduces
    /// the legacy `key % n_shards` routing exactly.
    pub fn new(n_slices: usize, n_shards: usize, replicas: usize) -> Self {
        let r = replicas.clamp(1, n_shards);
        let owners = (0..n_slices)
            .map(|s| SliceOwners {
                shards: (0..r).map(|j| (s + j) % n_shards).collect(),
            })
            .collect();
        RoutingTable {
            epoch: 1,
            owners,
            n_shards,
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn n_slices(&self) -> usize {
        self.owners.len()
    }

    /// Slice of a key.
    pub fn slice_of(&self, key: u64) -> SliceId {
        (key % self.owners.len().max(1) as u64) as usize
    }

    /// Current replica set of a slice (primary first).
    pub fn owners(&self, slice: SliceId) -> &[usize] {
        &self.owners[slice].shards
    }

    /// Bump the view epoch (shard recovery, aborted migration cleanup).
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Commit a migration: replace `from` with `to` in the slice's
    /// replica set and bump the epoch. Returns the post-flip epoch;
    /// `None` if `from` is not an owner or `to` already is.
    pub fn flip(&mut self, slice: SliceId, from: usize, to: usize) -> Option<u64> {
        let set = &mut self.owners[slice].shards;
        if set.contains(&to) {
            return None;
        }
        let pos = set.iter().position(|&s| s == from)?;
        set[pos] = to;
        Some(self.bump_epoch())
    }

    /// Slices currently owned (as any replica) by `shard`, ascending.
    pub fn slices_on(&self, shard: usize) -> Vec<SliceId> {
        (0..self.owners.len())
            .filter(|&s| self.owners[s].shards.contains(&shard))
            .collect()
    }

    /// Exactly-once ownership: every slice has a non-empty replica set
    /// of distinct, in-range shards. (Each slice appears in the table
    /// exactly once by construction; this checks the sets themselves.)
    pub fn ownership_ok(&self) -> bool {
        self.owners.iter().all(|o| {
            !o.shards.is_empty()
                && o.shards.iter().all(|&s| s < self.n_shards)
                && o.shards.iter().collect::<BTreeSet<_>>().len() == o.shards.len()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_layout_matches_mod_routing() {
        let t = RoutingTable::new(4, 4, 1);
        for key in 0..64u64 {
            let s = t.slice_of(key);
            assert_eq!(t.owners(s), &[(key % 4) as usize]);
        }
        assert!(t.ownership_ok());
        assert_eq!(t.epoch(), 1);
    }

    #[test]
    fn replicated_layout_is_distinct_and_ring_shaped() {
        let t = RoutingTable::new(8, 4, 3);
        for s in 0..8 {
            let o = t.owners(s);
            assert_eq!(o.len(), 3);
            assert_eq!(o[0], s % 4, "primary is the ring anchor");
            assert_eq!(o.iter().collect::<BTreeSet<_>>().len(), 3);
        }
        assert!(t.ownership_ok());
    }

    #[test]
    fn flip_replaces_and_bumps_epoch() {
        let mut t = RoutingTable::new(8, 4, 2);
        // slice 0 owned by {0, 1}; move it off shard 0 onto shard 2.
        assert_eq!(t.owners(0), &[0, 1]);
        let e = t.flip(0, 0, 2);
        assert_eq!(e, Some(2));
        assert_eq!(t.owners(0), &[2, 1]);
        assert!(t.ownership_ok());
        // from not an owner / to already an owner are rejected.
        assert_eq!(t.flip(0, 0, 3), None);
        assert_eq!(t.flip(0, 2, 1), None);
    }

    #[test]
    fn quorum_is_majority() {
        let r = |n| ReplicationParams {
            n_slices: 8,
            replicas: n,
        };
        assert_eq!(r(1).quorum(), 1);
        assert_eq!(r(2).quorum(), 2);
        assert_eq!(r(3).quorum(), 2);
        assert_eq!(r(5).quorum(), 3);
    }

    #[test]
    fn slices_on_tracks_membership() {
        let mut t = RoutingTable::new(4, 4, 2);
        assert_eq!(t.slices_on(0), vec![0, 3]);
        t.flip(0, 0, 2);
        assert_eq!(t.slices_on(0), vec![3]);
    }
}
