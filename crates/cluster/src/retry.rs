//! Per-request retry policy: seeded-jitter exponential backoff.
//!
//! The backoff multiplier saturates instead of overflowing: a request
//! stuck in a retry storm must flatten out at `max_backoff`, never panic
//! in a debug build because `attempt` pushed the shift past the bit width
//! (the same hazard the harness scheduler's `RetryPolicy::backoff_after`
//! clamps against). Jitter is drawn from the caller's seeded RNG, so two
//! runs at the same seed retry at identical simulated instants.

use simbase::SplitMix64;

/// Simulated-time ticks (same unit as machine cycles).
pub type Ticks = u64;

/// Retry policy for one request class.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request, hedges included (1 = no retries).
    pub max_attempts: u32,
    /// Per-attempt response timeout: a reply not delivered within this
    /// window counts the attempt as failed.
    pub attempt_timeout: Ticks,
    /// Backoff before attempt N+1 is `base_backoff * 2^(N-1)`, saturated
    /// at [`RetryPolicy::max_backoff`].
    pub base_backoff: Ticks,
    /// Upper bound on the computed backoff (pre-jitter).
    pub max_backoff: Ticks,
    /// Jitter as a fraction of the computed backoff: the drawn delay is
    /// uniform in `[(1 - f) * b, (1 + f) * b]`.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            attempt_timeout: 40_000,
            base_backoff: 4_000,
            max_backoff: 200_000,
            jitter_frac: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the attempt after the given (1-based) failed one.
    /// The exponential multiplier is computed with a checked shift and
    /// saturates — any attempt count, up to `u32::MAX`, yields a finite
    /// clamped delay.
    pub fn backoff_after(&self, attempt: u32, rng: &mut SplitMix64) -> Ticks {
        let shift = attempt.saturating_sub(1);
        let factor = 1u64.checked_shl(shift).unwrap_or(u64::MAX);
        let raw = self
            .base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff);
        let f = self.jitter_frac.clamp(0.0, 1.0);
        // Uniform in [(1-f)b, (1+f)b], rounded; at least 1 tick so a
        // retry never lands on the failure instant itself.
        let lo = (raw as f64) * (1.0 - f);
        let span = (raw as f64) * 2.0 * f;
        ((lo + span * rng.gen_f64()).round() as Ticks).max(1)
    }

    /// Whether a request that has consumed `attempts` attempts may retry.
    pub fn may_retry(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_saturates() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(p.backoff_after(1, &mut rng), 4_000);
        assert_eq!(p.backoff_after(2, &mut rng), 8_000);
        assert_eq!(p.backoff_after(6, &mut rng), 128_000);
        // Clamped at max_backoff from attempt 7 on.
        assert_eq!(p.backoff_after(7, &mut rng), 200_000);
        assert_eq!(p.backoff_after(8, &mut rng), 200_000);
    }

    #[test]
    fn absurd_attempt_counts_do_not_overflow() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SplitMix64::new(1);
        for attempt in [31, 32, 33, 64, 65, 1000, u32::MAX] {
            assert_eq!(p.backoff_after(attempt, &mut rng), p.max_backoff);
        }
    }

    #[test]
    fn jitter_stays_in_band_and_is_seeded() {
        let p = RetryPolicy {
            base_backoff: 10_000,
            max_backoff: 10_000,
            jitter_frac: 0.5,
            ..RetryPolicy::default()
        };
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for attempt in 1..50 {
            let d = p.backoff_after(attempt, &mut a);
            assert!((5_000..=15_000).contains(&d), "jitter out of band: {d}");
            assert_eq!(d, p.backoff_after(attempt, &mut b), "seeded jitter");
        }
    }

    #[test]
    fn may_retry_respects_budget() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.may_retry(1));
        assert!(p.may_retry(2));
        assert!(!p.may_retry(3));
    }
}
