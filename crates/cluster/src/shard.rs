//! One cluster shard: a [`Machine`] running a PM append-only KV log.
//!
//! Records are one cacheline each and land durably via the ADR recipe —
//! `store_full_cacheline` + `clwb` + `sfence` — *before* the reply is
//! sent. That ordering is the whole correctness story: a reply implies
//! the record is inside the ADR domain, so it is in the certain
//! (`persistent`) part of any [`CrashImage`] captured afterwards and
//! survives every legal survivor subset of the uncertain overlay.
//! Recovery replays the log prefix; acknowledged records are by
//! construction inside that prefix, so zero acked-write loss holds for
//! any seeded fault schedule (the failover proptest checks exactly
//! this).

use std::collections::BTreeMap;

use cpucache::PrefetchConfig;
use optane_core::{
    CrashPolicy, Generation, ImcQueueStats, Machine, MachineConfig, ThreadId, TraceSink,
};
use simbase::{Addr, SplitMix64};

/// Record magic: distinguishes written slots from virgin (zeroed) PM.
const RECORD_MAGIC: u64 = 0x504d_4c4f_4752_4543; // "PMLOGREC"

/// Bytes per log record (one cacheline).
pub const RECORD_BYTES: u64 = 64;

/// Cycles charged for an index lookup that misses (DRAM hash probe).
const INDEX_MISS_COST: u64 = 120;

/// Operations a shard serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOp {
    Get { key: u64 },
    Put { key: u64, value: u64 },
}

impl ShardOp {
    pub fn key(&self) -> u64 {
        match *self {
            ShardOp::Get { key } | ShardOp::Put { key, .. } => key,
        }
    }

    pub fn is_put(&self) -> bool {
        matches!(self, ShardOp::Put { .. })
    }
}

/// Successful replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardReply {
    /// Get result (`None` = key absent).
    Value(Option<u64>),
    /// Put acknowledged: the record at log slot `seq` is durable.
    Acked { seq: u64 },
}

/// Typed shard-side errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The append log is out of slots.
    LogFull,
    /// Checkpoint/restore round-trip failed during recovery.
    SnapshotRoundTrip,
}

/// Static shard parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    pub id: usize,
    pub gen: Generation,
    /// Log capacity in 64 B record slots.
    pub log_slots: u64,
    /// Per-shard seed, XORed into the machine's `crash_seed`.
    pub seed: u64,
}

/// What one crash-and-recover cycle did.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOutcome {
    /// Valid log records replayed into the index.
    pub replayed: u64,
    /// Appended-but-unacknowledged tail records lost to the crash.
    pub lost_tail: u64,
    /// Uncertain cachelines in the crash image (size of the survivor set).
    pub uncertain_lines: u64,
    /// Simulated cycles spent replaying the log on the recovered machine.
    pub replay_cycles: u64,
}

/// A shard server: machine + append log + volatile index.
pub struct ShardServer {
    m: Machine,
    tid: ThreadId,
    cfg: ShardConfig,
    log_base: Addr,
    /// Next log slot to append into.
    next_seq: u64,
    /// Volatile index: key -> (value, log slot of the latest record).
    index: BTreeMap<u64, (u64, u64)>,
    /// Lifetime count of crash/recover cycles.
    pub recoveries: u64,
}

fn record_csum(seq: u64, key: u64, value: u64) -> u64 {
    // SplitMix64 finalizer over the folded fields: cheap, deterministic,
    // and any single-field corruption flips the checksum.
    let mut z = RECORD_MAGIC ^ seq.rotate_left(17) ^ key.rotate_left(31) ^ value;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn encode_record(seq: u64, key: u64, value: u64) -> [u8; 64] {
    let mut line = [0u8; 64];
    line[0..8].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
    line[8..16].copy_from_slice(&seq.to_le_bytes());
    line[16..24].copy_from_slice(&key.to_le_bytes());
    line[24..32].copy_from_slice(&value.to_le_bytes());
    line[32..40].copy_from_slice(&record_csum(seq, key, value).to_le_bytes());
    line
}

fn u64_at(line: &[u8; 64], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&line[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Decodes a log slot; `None` if the slot is virgin or corrupt.
fn decode_record(line: &[u8; 64]) -> Option<(u64, u64, u64)> {
    if u64_at(line, 0) != RECORD_MAGIC {
        return None;
    }
    let (seq, key, value) = (u64_at(line, 8), u64_at(line, 16), u64_at(line, 24));
    if u64_at(line, 32) != record_csum(seq, key, value) {
        return None;
    }
    Some((seq, key, value))
}

impl ShardServer {
    pub fn new(cfg: ShardConfig) -> Self {
        let mut mcfg = MachineConfig::for_generation(cfg.gen, PrefetchConfig::none(), 1);
        mcfg.crash_seed ^= cfg.seed;
        let mut m = Machine::new(mcfg);
        let tid = m.spawn(0);
        let log_base = m.alloc_pm(cfg.log_slots * RECORD_BYTES, RECORD_BYTES);
        ShardServer {
            m,
            tid,
            cfg,
            log_base,
            next_seq: 0,
            index: BTreeMap::new(),
            recoveries: 0,
        }
    }

    pub fn id(&self) -> usize {
        self.cfg.id
    }

    pub fn generation(&self) -> Generation {
        self.cfg.gen
    }

    /// Attach a trace sink (witness tap) to the underlying machine.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        let _ = self.m.set_trace_sink(sink);
    }

    /// Aggregated iMC queue occupancy for fleet metrics.
    pub fn queue_stats(&self) -> ImcQueueStats {
        self.m.metrics().queue_total()
    }

    /// Appended records so far (next log slot).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn slot_addr(&self, seq: u64) -> Addr {
        Addr(self.log_base.0 + seq * RECORD_BYTES)
    }

    /// Serve one operation to completion on the shard's machine.
    /// Returns the reply and the simulated service cycles consumed.
    pub fn serve(&mut self, op: ShardOp) -> (Result<ShardReply, ShardError>, u64) {
        let t0 = self.m.now(self.tid);
        let reply = match op {
            ShardOp::Get { key } => {
                match self.index.get(&key).copied() {
                    Some((value, seq)) => {
                        // Charge the PM read of the record's cacheline:
                        // the load path is where G1/G2 buffering differs.
                        let mut buf = [0u8; 64];
                        let addr = self.slot_addr(seq);
                        self.m.load(self.tid, addr, &mut buf);
                        Ok(ShardReply::Value(Some(value)))
                    }
                    None => {
                        self.m.advance(self.tid, INDEX_MISS_COST);
                        Ok(ShardReply::Value(None))
                    }
                }
            }
            ShardOp::Put { key, value } => {
                if self.next_seq >= self.cfg.log_slots {
                    Err(ShardError::LogFull)
                } else {
                    let seq = self.next_seq;
                    let addr = self.slot_addr(seq);
                    let line = encode_record(seq, key, value);
                    // ADR durability recipe: the reply is only built
                    // after the fence retires, so ack implies durable.
                    self.m.store_full_cacheline(self.tid, addr, &line);
                    self.m.clwb(self.tid, addr);
                    self.m.sfence(self.tid);
                    self.next_seq = seq + 1;
                    self.index.insert(key, (value, seq));
                    Ok(ShardReply::Acked { seq })
                }
            }
        };
        let cycles = self.m.now(self.tid).saturating_sub(t0);
        (reply, cycles)
    }

    /// Append a record without going through the network path — bulk
    /// preload before traffic starts.
    pub fn preload(&mut self, key: u64, value: u64) -> Result<(), ShardError> {
        match self.serve(ShardOp::Put { key, value }).0 {
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Power-fail this shard and drive full recovery:
    ///
    /// 1. capture the crash image (certain bytes + uncertain overlay),
    /// 2. power-fail the old machine (trace visibility for the witness),
    /// 3. draw a survivor subset of the uncertain lines from the seeded
    ///    RNG (`survivor_bias` = per-line survival probability),
    /// 4. materialize the post-crash machine via `from_crash_image`,
    /// 5. replay the log prefix into a fresh index, stopping at the
    ///    first virgin/corrupt/out-of-order slot,
    /// 6. round-trip through `checkpoint`/`restore` (the harness resume
    ///    path) so a recovered shard is indistinguishable from a resumed
    ///    one.
    ///
    /// The previous trace sink (if any) is carried onto the recovered
    /// machine so the witness hash covers recovery traffic too.
    pub fn crash_and_recover(
        &mut self,
        survivor_seed: u64,
        survivor_bias: f64,
    ) -> Result<RecoveryOutcome, ShardError> {
        let image = self.m.capture_crash_image();
        self.m.power_fail(CrashPolicy::LoseUnflushed);
        let sink = self.m.take_trace_sink();

        let mut rng = SplitMix64::new(survivor_seed ^ 0x7375_7276_6976_6f72);
        let survivors: Vec<bool> = image
            .uncertain
            .iter()
            .map(|_| rng.gen_bool(survivor_bias.clamp(0.0, 1.0)))
            .collect();
        let mut m2 = Machine::from_crash_image(&image, &survivors);
        let tid2 = m2.spawn(0);

        // Replay: scan log slots from 0, rebuild the index, stop at the
        // first slot that fails to decode or breaks the seq chain.
        let mut index = BTreeMap::new();
        let mut replayed = 0u64;
        let replay_t0 = m2.now(tid2);
        while replayed < self.cfg.log_slots {
            let mut buf = [0u8; 64];
            let addr = Addr(self.log_base.0 + replayed * RECORD_BYTES);
            m2.load(tid2, addr, &mut buf);
            match decode_record(&buf) {
                Some((seq, key, value)) if seq == replayed => {
                    index.insert(key, (value, seq));
                    replayed += 1;
                }
                _ => break,
            }
        }
        let replay_cycles = m2.now(tid2).saturating_sub(replay_t0);

        // Harness-path round trip: a recovered shard must be resumable.
        let snap = m2.checkpoint();
        let mcfg = m2.config().clone();
        let mut m3 = match Machine::restore(mcfg, &snap) {
            Ok(m) => m,
            Err(_) => return Err(ShardError::SnapshotRoundTrip),
        };
        if let Some(s) = sink {
            let _ = m3.set_trace_sink(s);
        }

        let lost_tail = self.next_seq.saturating_sub(replayed);
        let outcome = RecoveryOutcome {
            replayed,
            lost_tail,
            uncertain_lines: image.uncertain.len() as u64,
            replay_cycles,
        };
        self.tid = tid2;
        self.m = m3;
        self.index = index;
        self.next_seq = replayed;
        self.recoveries += 1;
        Ok(outcome)
    }

    /// Encoded machine checkpoint — the divergence witness folds this
    /// into its state hash at end of run.
    pub fn checkpoint_encode(&mut self) -> Vec<u8> {
        self.m.checkpoint().encode()
    }

    /// Post-mortem check used by the acked-write-loss oracle: is the
    /// record for (`seq`, `key`, `value`) intact in the persistent log?
    pub fn verify_record(&self, seq: u64, key: u64, value: u64) -> bool {
        let mut buf = [0u8; 64];
        self.m.peek(self.slot_addr(seq), &mut buf);
        decode_record(&buf) == Some((seq, key, value))
    }

    /// Index lookup without charging simulated time (oracle use).
    pub fn peek_value(&self, key: u64) -> Option<u64> {
        self.index.get(&key).map(|&(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> ShardServer {
        ShardServer::new(ShardConfig {
            id: 0,
            gen: Generation::G2,
            log_slots: 1024,
            seed: 42,
        })
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut s = shard();
        let (r, c) = s.serve(ShardOp::Put { key: 7, value: 99 });
        assert_eq!(r, Ok(ShardReply::Acked { seq: 0 }));
        assert!(c > 0, "puts must cost simulated time");
        let (r, _) = s.serve(ShardOp::Get { key: 7 });
        assert_eq!(r, Ok(ShardReply::Value(Some(99))));
        let (r, _) = s.serve(ShardOp::Get { key: 8 });
        assert_eq!(r, Ok(ShardReply::Value(None)));
    }

    #[test]
    fn log_full_is_typed() {
        let mut s = ShardServer::new(ShardConfig {
            id: 0,
            gen: Generation::G1,
            log_slots: 2,
            seed: 1,
        });
        assert!(s.serve(ShardOp::Put { key: 1, value: 1 }).0.is_ok());
        assert!(s.serve(ShardOp::Put { key: 2, value: 2 }).0.is_ok());
        assert_eq!(
            s.serve(ShardOp::Put { key: 3, value: 3 }).0,
            Err(ShardError::LogFull)
        );
    }

    #[test]
    fn acked_records_survive_crash_and_recover() {
        let mut s = shard();
        let mut acked = Vec::new();
        for k in 0..50u64 {
            if let (Ok(ShardReply::Acked { seq }), _) = s.serve(ShardOp::Put {
                key: k,
                value: k * 3,
            }) {
                acked.push((seq, k, k * 3));
            }
        }
        let out = s.crash_and_recover(77, 0.5).expect("recovery");
        assert_eq!(out.replayed, 50, "all acked records replay");
        assert_eq!(out.lost_tail, 0);
        for (seq, k, v) in acked {
            assert!(s.verify_record(seq, k, v), "acked record {seq} lost");
            assert_eq!(s.peek_value(k), Some(v), "index rebuilt for key {k}");
        }
        // Shard keeps serving after recovery; next seq continues the log.
        let (r, _) = s.serve(ShardOp::Put { key: 999, value: 1 });
        assert_eq!(r, Ok(ShardReply::Acked { seq: 50 }));
    }

    #[test]
    fn recovery_is_seed_deterministic() {
        let run = || {
            let mut s = shard();
            for k in 0..30u64 {
                let _ = s.serve(ShardOp::Put { key: k, value: k });
            }
            let out = s.crash_and_recover(5, 0.3).expect("recovery");
            (out.replayed, out.uncertain_lines, out.replay_cycles)
        };
        assert_eq!(run(), run());
    }
}
