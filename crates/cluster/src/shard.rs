//! One cluster shard: a [`Machine`] running a PM append-only KV log.
//!
//! Records are one cacheline each and land durably via the ADR recipe —
//! `store_full_cacheline` + `clwb` + `sfence` — *before* the reply is
//! sent. That ordering is the whole correctness story: a reply implies
//! the record is inside the ADR domain, so it is in the certain
//! (`persistent`) part of any [`CrashImage`] captured afterwards and
//! survives every legal survivor subset of the uncertain overlay.
//! Recovery replays the log prefix; acknowledged records are by
//! construction inside that prefix, so zero acked-write loss holds for
//! any seeded fault schedule (the failover proptest checks exactly
//! this).
//!
//! Two record kinds share the log:
//!
//! - **data** records (`magic, seq, key, value, req_id, csum`) carry KV
//!   writes. `req_id` keys the idempotency window: a retried or hedged
//!   put that was already applied returns the original ack instead of
//!   double-appending, and replay rebuilds the window from the log.
//! - **control** records (`magic, seq, code, slice, epoch, csum`) are
//!   the migration state machine's persisted phase transitions
//!   ([`ControlKind`]). Replay re-applies them in log order, so
//!   keyslice ownership — which slices this shard may serve, and at
//!   which epoch it acquired or retired them — survives power failure
//!   exactly as the protocol left it.
//!
//! Every serve is fenced by [`RouteMeta`]: a request for a slice this
//! shard does not own, or carrying an epoch older than the slice's
//! acquisition epoch, is rejected with [`ShardError::StaleEpoch`] —
//! never served, never acked.

use std::collections::{BTreeMap, VecDeque};

use cpucache::PrefetchConfig;
use optane_core::{
    CrashPolicy, Generation, ImcQueueStats, Machine, MachineConfig, ThreadId, TraceSink,
};
use simbase::{Addr, SplitMix64};

use crate::migrate::ControlKind;
use crate::replica::{fnv1a, SliceId, FNV_OFFSET};

/// Data-record magic: distinguishes written slots from virgin PM.
const RECORD_MAGIC: u64 = 0x504d_4c4f_4752_4543; // "PMLOGREC"

/// Control-record magic (migration phase transitions).
const CTRL_MAGIC: u64 = 0x504d_4c4f_4743_5452; // "PMLOGCTR"

/// Bytes per log record (one cacheline).
pub const RECORD_BYTES: u64 = 64;

/// Req-ids remembered by the idempotency window.
pub const DEDUP_WINDOW: usize = 4_096;

/// Cycles charged for an index lookup that misses (DRAM hash probe).
const INDEX_MISS_COST: u64 = 120;

/// Cycles charged for rejecting a stale-epoch request (fence check).
const FENCE_REJECT_COST: u64 = 80;

/// Operations a shard serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOp {
    Get { key: u64 },
    Put { key: u64, value: u64 },
}

impl ShardOp {
    pub fn key(&self) -> u64 {
        match *self {
            ShardOp::Get { key } | ShardOp::Put { key, .. } => key,
        }
    }

    pub fn is_put(&self) -> bool {
        matches!(self, ShardOp::Put { .. })
    }
}

/// Routing metadata fencing one serve: which slice the router thinks
/// the key is in, at which table epoch the attempt was launched, and
/// the request's idempotency key (`0` = not deduplicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteMeta {
    pub slice: SliceId,
    pub epoch: u64,
    pub req_id: u64,
}

impl RouteMeta {
    /// Preload/bootstrap meta: bypasses epoch fencing and dedup.
    pub fn bootstrap(slice: SliceId) -> Self {
        RouteMeta {
            slice,
            epoch: u64::MAX,
            req_id: 0,
        }
    }
}

/// Successful replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardReply {
    /// Get result (`None` = key absent).
    Value(Option<u64>),
    /// Put acknowledged: the record at log slot `seq` is durable.
    Acked { seq: u64 },
}

/// Typed shard-side errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The append log is out of slots.
    LogFull,
    /// Checkpoint/restore round-trip failed during recovery.
    SnapshotRoundTrip,
    /// Epoch fence: this shard does not own the slice at the request's
    /// epoch (never owned it, retired it, or acquired it at a newer
    /// epoch than the request carries). `owned_epoch` is 0 when the
    /// slice is not owned at all.
    StaleEpoch { slice: SliceId, owned_epoch: u64 },
}

/// Static shard parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    pub id: usize,
    pub gen: Generation,
    /// Log capacity in 64 B record slots.
    pub log_slots: u64,
    /// Keyslice modulus (`slice = key % n_slices`).
    pub n_slices: usize,
    /// Per-shard seed, XORed into the machine's `crash_seed`.
    pub seed: u64,
}

/// What one crash-and-recover cycle did.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOutcome {
    /// Valid log records replayed (data + control).
    pub replayed: u64,
    /// Appended-but-unacknowledged tail records lost to the crash.
    pub lost_tail: u64,
    /// Uncertain cachelines in the crash image (size of the survivor set).
    pub uncertain_lines: u64,
    /// Simulated cycles spent replaying the log on the recovered machine.
    pub replay_cycles: u64,
}

/// One decoded log slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogRecord {
    Data {
        seq: u64,
        key: u64,
        value: u64,
        req_id: u64,
    },
    Control {
        seq: u64,
        kind: ControlKind,
        slice: SliceId,
        epoch: u64,
    },
}

/// A shard server: machine + append log + volatile index + ownership.
pub struct ShardServer {
    m: Machine,
    tid: ThreadId,
    cfg: ShardConfig,
    log_base: Addr,
    /// Next log slot to append into.
    next_seq: u64,
    /// Volatile index: key -> (value, log slot of the winning record).
    /// Last-writer-wins on the globally monotone value, so replay and
    /// re-copies converge regardless of delivery order.
    index: BTreeMap<u64, (u64, u64)>,
    /// Idempotency window: req_id -> log slot of the original apply.
    dedup: BTreeMap<u64, u64>,
    dedup_fifo: VecDeque<u64>,
    /// Slices this shard currently owns -> epoch acquired.
    owned: BTreeMap<SliceId, u64>,
    /// Slices this shard retired via a durable `FlipRetire` -> epoch.
    retired: BTreeMap<SliceId, u64>,
    /// `FlipAcquire` records persisted here (dest side) -> epoch.
    flips: BTreeMap<SliceId, u64>,
    /// Ownership baseline for log replay (slices granted at epoch 1).
    initial_owned: Vec<SliceId>,
    /// Lifetime count of crash/recover cycles.
    pub recoveries: u64,
    /// Puts answered from the idempotency window (no double-apply).
    pub dedup_hits: u64,
}

fn record_csum(tag: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    // SplitMix64 finalizer over the folded fields: cheap, deterministic,
    // and any single-field corruption flips the checksum.
    let mut z = tag ^ a.rotate_left(17) ^ b.rotate_left(31) ^ c.rotate_left(43) ^ d;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn encode_fields(magic: u64, a: u64, b: u64, c: u64, d: u64) -> [u8; 64] {
    let mut line = [0u8; 64];
    line[0..8].copy_from_slice(&magic.to_le_bytes());
    line[8..16].copy_from_slice(&a.to_le_bytes());
    line[16..24].copy_from_slice(&b.to_le_bytes());
    line[24..32].copy_from_slice(&c.to_le_bytes());
    line[32..40].copy_from_slice(&d.to_le_bytes());
    line[40..48].copy_from_slice(&record_csum(magic, a, b, c, d).to_le_bytes());
    line
}

fn u64_at(line: &[u8; 64], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&line[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Decodes a log slot; `None` if the slot is virgin or corrupt.
pub fn decode_slot(line: &[u8; 64]) -> Option<LogRecord> {
    let magic = u64_at(line, 0);
    if magic != RECORD_MAGIC && magic != CTRL_MAGIC {
        return None;
    }
    let (a, b, c, d) = (
        u64_at(line, 8),
        u64_at(line, 16),
        u64_at(line, 24),
        u64_at(line, 32),
    );
    if u64_at(line, 40) != record_csum(magic, a, b, c, d) {
        return None;
    }
    if magic == RECORD_MAGIC {
        Some(LogRecord::Data {
            seq: a,
            key: b,
            value: c,
            req_id: d,
        })
    } else {
        Some(LogRecord::Control {
            seq: a,
            kind: ControlKind::from_code(b)?,
            slice: c as SliceId,
            epoch: d,
        })
    }
}

impl ShardServer {
    pub fn new(cfg: ShardConfig) -> Self {
        let mut mcfg = MachineConfig::for_generation(cfg.gen, PrefetchConfig::none(), 1);
        mcfg.crash_seed ^= cfg.seed;
        let mut m = Machine::new(mcfg);
        let tid = m.spawn(0);
        let log_base = m.alloc_pm(cfg.log_slots * RECORD_BYTES, RECORD_BYTES);
        ShardServer {
            m,
            tid,
            cfg,
            log_base,
            next_seq: 0,
            index: BTreeMap::new(),
            dedup: BTreeMap::new(),
            dedup_fifo: VecDeque::new(),
            owned: BTreeMap::new(),
            retired: BTreeMap::new(),
            flips: BTreeMap::new(),
            initial_owned: Vec::new(),
            recoveries: 0,
            dedup_hits: 0,
        }
    }

    pub fn id(&self) -> usize {
        self.cfg.id
    }

    pub fn generation(&self) -> Generation {
        self.cfg.gen
    }

    /// Grant the initial slice set (epoch 1). This baseline is what log
    /// replay starts from before re-applying control records.
    pub fn set_owned(&mut self, slices: &[SliceId]) {
        self.initial_owned = slices.to_vec();
        self.owned = slices.iter().map(|&s| (s, 1)).collect();
    }

    pub fn owns(&self, slice: SliceId) -> bool {
        self.owned.contains_key(&slice)
    }

    /// Epoch at which `slice` was acquired (None = not owned).
    pub fn owned_epoch(&self, slice: SliceId) -> Option<u64> {
        self.owned.get(&slice).copied()
    }

    /// A durable `FlipRetire` exists: the slice was handed off cleanly
    /// (every record this shard ever served for it was copied first).
    pub fn retired_cleanly(&self, slice: SliceId) -> bool {
        self.retired.contains_key(&slice)
    }

    /// A durable `FlipAcquire` exists for `slice` on this shard (dest
    /// side) — the migration commit point the crash resolution queries.
    pub fn has_flip(&self, slice: SliceId) -> bool {
        self.flips.contains_key(&slice)
    }

    fn slice_of(&self, key: u64) -> SliceId {
        (key % self.cfg.n_slices.max(1) as u64) as SliceId
    }

    /// Attach a trace sink (witness tap) to the underlying machine.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        let _ = self.m.set_trace_sink(sink);
    }

    /// Aggregated iMC queue occupancy for fleet metrics.
    pub fn queue_stats(&self) -> ImcQueueStats {
        self.m.metrics().queue_total()
    }

    /// Appended records so far (next log slot).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn slot_addr(&self, seq: u64) -> Addr {
        Addr(self.log_base.0 + seq * RECORD_BYTES)
    }

    fn remember_req(&mut self, req_id: u64, seq: u64) {
        if req_id == 0 {
            return;
        }
        if self.dedup.insert(req_id, seq).is_none() {
            self.dedup_fifo.push_back(req_id);
            while self.dedup.len() > DEDUP_WINDOW {
                if let Some(old) = self.dedup_fifo.pop_front() {
                    self.dedup.remove(&old);
                } else {
                    break;
                }
            }
        }
    }

    /// Last-writer-wins index insert: values are globally monotone, so
    /// the larger value is always the newer write.
    fn index_lww(&mut self, key: u64, value: u64, seq: u64) {
        match self.index.get(&key) {
            Some(&(v, _)) if v >= value => {}
            _ => {
                self.index.insert(key, (value, seq));
            }
        }
    }

    /// Durable append via the ADR recipe. The reply is only built after
    /// the fence retires, so ack implies durable.
    fn append_line(&mut self, line: &[u8; 64]) -> Result<u64, ShardError> {
        if self.next_seq >= self.cfg.log_slots {
            return Err(ShardError::LogFull);
        }
        let seq = self.next_seq;
        let addr = self.slot_addr(seq);
        self.m.store_full_cacheline(self.tid, addr, line);
        self.m.clwb(self.tid, addr);
        self.m.sfence(self.tid);
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Serve one operation to completion on the shard's machine.
    /// Returns the reply and the simulated service cycles consumed.
    pub fn serve(&mut self, op: ShardOp, meta: RouteMeta) -> (Result<ShardReply, ShardError>, u64) {
        let t0 = self.m.now(self.tid);
        let reply = self.serve_inner(op, meta);
        let cycles = self.m.now(self.tid).saturating_sub(t0);
        (reply, cycles)
    }

    fn serve_inner(&mut self, op: ShardOp, meta: RouteMeta) -> Result<ShardReply, ShardError> {
        // Epoch fence first: an un-owned slice, or a request launched
        // against a view older than this shard's acquisition of the
        // slice, is rejected — a retired owner can never ack.
        match self.owned.get(&meta.slice).copied() {
            None => {
                self.m.advance(self.tid, FENCE_REJECT_COST);
                return Err(ShardError::StaleEpoch {
                    slice: meta.slice,
                    owned_epoch: 0,
                });
            }
            Some(acq) if meta.epoch < acq => {
                self.m.advance(self.tid, FENCE_REJECT_COST);
                return Err(ShardError::StaleEpoch {
                    slice: meta.slice,
                    owned_epoch: acq,
                });
            }
            Some(_) => {}
        }
        match op {
            ShardOp::Get { key } => match self.index.get(&key).copied() {
                Some((value, seq)) => {
                    // Charge the PM read of the record's cacheline:
                    // the load path is where G1/G2 buffering differs.
                    let mut buf = [0u8; 64];
                    let addr = self.slot_addr(seq);
                    self.m.load(self.tid, addr, &mut buf);
                    Ok(ShardReply::Value(Some(value)))
                }
                None => {
                    self.m.advance(self.tid, INDEX_MISS_COST);
                    Ok(ShardReply::Value(None))
                }
            },
            ShardOp::Put { key, value } => {
                if meta.req_id != 0 {
                    if let Some(&seq) = self.dedup.get(&meta.req_id) {
                        // Duplicate delivery of an already-applied put:
                        // return the original ack, no second append.
                        self.dedup_hits += 1;
                        self.m.advance(self.tid, INDEX_MISS_COST);
                        return Ok(ShardReply::Acked { seq });
                    }
                }
                let line = encode_fields(RECORD_MAGIC, self.next_seq, key, value, meta.req_id);
                let seq = self.append_line(&line)?;
                self.index_lww(key, value, seq);
                self.remember_req(meta.req_id, seq);
                Ok(ShardReply::Acked { seq })
            }
        }
    }

    /// Append a record without going through the network path — bulk
    /// preload before traffic starts. Bypasses epoch fencing.
    pub fn preload(&mut self, key: u64, value: u64) -> Result<(), ShardError> {
        let meta = RouteMeta::bootstrap(self.slice_of(key));
        match self.serve(ShardOp::Put { key, value }, meta).0 {
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Migration ingest (destination side): apply a copied record
    /// idempotently. Returns whether a record was actually appended and
    /// the machine cycles consumed. A record the index already covers
    /// (same or newer value) or whose req-id is in the dedup window is
    /// skipped — re-copies after a crash can never double-apply.
    pub fn ingest(&mut self, key: u64, value: u64, req_id: u64) -> (Result<bool, ShardError>, u64) {
        let t0 = self.m.now(self.tid);
        let applied = (|| {
            if let Some(&(v, _)) = self.index.get(&key) {
                if v >= value {
                    self.m.advance(self.tid, INDEX_MISS_COST);
                    return Ok(false);
                }
            }
            if req_id != 0 && self.dedup.contains_key(&req_id) {
                self.m.advance(self.tid, INDEX_MISS_COST);
                return Ok(false);
            }
            let line = encode_fields(RECORD_MAGIC, self.next_seq, key, value, req_id);
            let seq = self.append_line(&line)?;
            self.index_lww(key, value, seq);
            self.remember_req(req_id, seq);
            Ok(true)
        })();
        let cycles = self.m.now(self.tid).saturating_sub(t0);
        (applied, cycles)
    }

    /// Read and decode one log slot, charging the PM load (the copy
    /// stream competes with foreground traffic for the media).
    pub fn scan_slot(&mut self, slot: u64) -> (Option<LogRecord>, u64) {
        let t0 = self.m.now(self.tid);
        let mut buf = [0u8; 64];
        let addr = self.slot_addr(slot);
        self.m.load(self.tid, addr, &mut buf);
        let cycles = self.m.now(self.tid).saturating_sub(t0);
        (decode_slot(&buf), cycles)
    }

    /// Persist a migration control record (ADR recipe) and apply its
    /// ownership effect. Returns the cycles consumed.
    pub fn append_control(
        &mut self,
        kind: ControlKind,
        slice: SliceId,
        epoch: u64,
    ) -> (Result<u64, ShardError>, u64) {
        let t0 = self.m.now(self.tid);
        let line = encode_fields(CTRL_MAGIC, self.next_seq, kind.code(), slice as u64, epoch);
        let res = self.append_line(&line);
        if res.is_ok() {
            self.apply_control(kind, slice, epoch);
        }
        let cycles = self.m.now(self.tid).saturating_sub(t0);
        (res, cycles)
    }

    /// Ownership effect of a control record (used at append and replay).
    fn apply_control(&mut self, kind: ControlKind, slice: SliceId, epoch: u64) {
        match kind {
            ControlKind::Prepare | ControlKind::CatchUp | ControlKind::Abort => {}
            ControlKind::FlipAcquire => {
                self.owned.insert(slice, epoch);
                self.flips.insert(slice, epoch);
            }
            ControlKind::FlipRetire => {
                self.owned.remove(&slice);
                self.retired.insert(slice, epoch);
            }
            ControlKind::Retire => {
                let n = self.cfg.n_slices.max(1) as u64;
                self.index.retain(|k, _| (k % n) as SliceId != slice);
            }
        }
    }

    /// Per-slice FNV chain checksum over the index (sorted key order),
    /// the anti-entropy comparison unit. Pure — no simulated time.
    pub fn slice_checksum(&self, slice: SliceId) -> u64 {
        let n = self.cfg.n_slices.max(1) as u64;
        let mut h = FNV_OFFSET;
        for (k, &(v, _)) in &self.index {
            if (k % n) as SliceId == slice {
                h = fnv1a(h, &k.to_le_bytes());
                h = fnv1a(h, &v.to_le_bytes());
            }
        }
        h
    }

    /// Key/value pairs of one slice (read-repair source; oracle use).
    pub fn slice_entries(&self, slice: SliceId) -> Vec<(u64, u64)> {
        let n = self.cfg.n_slices.max(1) as u64;
        self.index
            .iter()
            .filter(|(k, _)| (*k % n) as SliceId == slice)
            .map(|(&k, &(v, _))| (k, v))
            .collect()
    }

    /// Count data records sharing a nonzero req-id (idempotency-oracle
    /// use: must be zero — the dedup window forbids double-applies).
    pub fn duplicate_req_ids(&self) -> u64 {
        let mut seen = BTreeMap::new();
        let mut dups = 0;
        for slot in 0..self.next_seq {
            let mut buf = [0u8; 64];
            self.m.peek(self.slot_addr(slot), &mut buf);
            if let Some(LogRecord::Data { req_id, .. }) = decode_slot(&buf) {
                if req_id != 0 && seen.insert(req_id, slot).is_some() {
                    dups += 1;
                }
            }
        }
        dups
    }

    /// Power-fail this shard and drive full recovery:
    ///
    /// 1. capture the crash image (certain bytes + uncertain overlay),
    /// 2. power-fail the old machine (trace visibility for the witness),
    /// 3. draw a survivor subset of the uncertain lines from the seeded
    ///    RNG (`survivor_bias` = per-line survival probability),
    /// 4. materialize the post-crash machine via `from_crash_image`,
    /// 5. replay the log prefix — data records rebuild the index (LWW)
    ///    and the dedup window, control records rebuild slice ownership
    ///    in log order — stopping at the first virgin/corrupt slot,
    /// 6. round-trip through `checkpoint`/`restore` (the harness resume
    ///    path) so a recovered shard is indistinguishable from a resumed
    ///    one.
    ///
    /// The previous trace sink (if any) is carried onto the recovered
    /// machine so the witness hash covers recovery traffic too.
    pub fn crash_and_recover(
        &mut self,
        survivor_seed: u64,
        survivor_bias: f64,
    ) -> Result<RecoveryOutcome, ShardError> {
        let image = self.m.capture_crash_image();
        self.m.power_fail(CrashPolicy::LoseUnflushed);
        let sink = self.m.take_trace_sink();

        let mut rng = SplitMix64::new(survivor_seed ^ 0x7375_7276_6976_6f72);
        let survivors: Vec<bool> = image
            .uncertain
            .iter()
            .map(|_| rng.gen_bool(survivor_bias.clamp(0.0, 1.0)))
            .collect();
        let mut m2 = Machine::from_crash_image(&image, &survivors);
        let tid2 = m2.spawn(0);

        // Reset volatile state to the replay baseline.
        self.index = BTreeMap::new();
        self.dedup = BTreeMap::new();
        self.dedup_fifo = VecDeque::new();
        self.owned = self.initial_owned.iter().map(|&s| (s, 1)).collect();
        self.retired = BTreeMap::new();
        self.flips = BTreeMap::new();

        // Replay: scan log slots from 0, apply records in order, stop at
        // the first slot that fails to decode or breaks the seq chain.
        let mut replayed = 0u64;
        let replay_t0 = m2.now(tid2);
        while replayed < self.cfg.log_slots {
            let mut buf = [0u8; 64];
            let addr = Addr(self.log_base.0 + replayed * RECORD_BYTES);
            m2.load(tid2, addr, &mut buf);
            match decode_slot(&buf) {
                Some(LogRecord::Data {
                    seq,
                    key,
                    value,
                    req_id,
                }) if seq == replayed => {
                    self.index_lww(key, value, seq);
                    self.remember_req(req_id, seq);
                    replayed += 1;
                }
                Some(LogRecord::Control {
                    seq,
                    kind,
                    slice,
                    epoch,
                }) if seq == replayed => {
                    self.apply_control(kind, slice, epoch);
                    replayed += 1;
                }
                _ => break,
            }
        }
        let replay_cycles = m2.now(tid2).saturating_sub(replay_t0);

        // Harness-path round trip: a recovered shard must be resumable.
        let snap = m2.checkpoint();
        let mcfg = m2.config().clone();
        let mut m3 = match Machine::restore(mcfg, &snap) {
            Ok(m) => m,
            Err(_) => return Err(ShardError::SnapshotRoundTrip),
        };
        if let Some(s) = sink {
            let _ = m3.set_trace_sink(s);
        }

        let lost_tail = self.next_seq.saturating_sub(replayed);
        let outcome = RecoveryOutcome {
            replayed,
            lost_tail,
            uncertain_lines: image.uncertain.len() as u64,
            replay_cycles,
        };
        self.tid = tid2;
        self.m = m3;
        self.next_seq = replayed;
        self.recoveries += 1;
        Ok(outcome)
    }

    /// Encoded machine checkpoint — the divergence witness folds this
    /// into its state hash at end of run.
    pub fn checkpoint_encode(&mut self) -> Vec<u8> {
        self.m.checkpoint().encode()
    }

    /// Post-mortem check used by the acked-write-loss oracle: is the
    /// data record for (`seq`, `key`, `value`) intact in the log?
    pub fn verify_record(&self, seq: u64, key: u64, value: u64) -> bool {
        let mut buf = [0u8; 64];
        self.m.peek(self.slot_addr(seq), &mut buf);
        matches!(
            decode_slot(&buf),
            Some(LogRecord::Data {
                seq: s,
                key: k,
                value: v,
                ..
            }) if s == seq && k == key && v == value
        )
    }

    /// Index lookup without charging simulated time (oracle use).
    pub fn peek_value(&self, key: u64) -> Option<u64> {
        self.index.get(&key).map(|&(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_with(n_slices: usize, owned: &[SliceId]) -> ShardServer {
        let mut s = ShardServer::new(ShardConfig {
            id: 0,
            gen: Generation::G2,
            log_slots: 1024,
            n_slices,
            seed: 42,
        });
        s.set_owned(owned);
        s
    }

    fn shard() -> ShardServer {
        shard_with(1, &[0])
    }

    fn meta(req_id: u64) -> RouteMeta {
        RouteMeta {
            slice: 0,
            epoch: 1,
            req_id,
        }
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut s = shard();
        let (r, c) = s.serve(ShardOp::Put { key: 7, value: 99 }, meta(1));
        assert_eq!(r, Ok(ShardReply::Acked { seq: 0 }));
        assert!(c > 0, "puts must cost simulated time");
        let (r, _) = s.serve(ShardOp::Get { key: 7 }, meta(0));
        assert_eq!(r, Ok(ShardReply::Value(Some(99))));
        let (r, _) = s.serve(ShardOp::Get { key: 8 }, meta(0));
        assert_eq!(r, Ok(ShardReply::Value(None)));
    }

    #[test]
    fn log_full_is_typed() {
        let mut s = ShardServer::new(ShardConfig {
            id: 0,
            gen: Generation::G1,
            log_slots: 2,
            n_slices: 1,
            seed: 1,
        });
        s.set_owned(&[0]);
        assert!(s
            .serve(ShardOp::Put { key: 1, value: 1 }, meta(1))
            .0
            .is_ok());
        assert!(s
            .serve(ShardOp::Put { key: 2, value: 2 }, meta(2))
            .0
            .is_ok());
        assert_eq!(
            s.serve(ShardOp::Put { key: 3, value: 3 }, meta(3)).0,
            Err(ShardError::LogFull)
        );
    }

    #[test]
    fn stale_epoch_is_fenced() {
        let mut s = shard_with(4, &[0, 1]);
        // Un-owned slice: rejected outright.
        let (r, c) = s.serve(
            ShardOp::Get { key: 2 },
            RouteMeta {
                slice: 2,
                epoch: 9,
                req_id: 0,
            },
        );
        assert_eq!(
            r,
            Err(ShardError::StaleEpoch {
                slice: 2,
                owned_epoch: 0
            })
        );
        assert!(c > 0, "fence rejection costs time");
        // Slice acquired at epoch 5 via FlipAcquire: older epochs fenced.
        let (r, _) = s.append_control(ControlKind::FlipAcquire, 2, 5);
        assert!(r.is_ok());
        let (r, _) = s.serve(
            ShardOp::Get { key: 2 },
            RouteMeta {
                slice: 2,
                epoch: 4,
                req_id: 0,
            },
        );
        assert_eq!(
            r,
            Err(ShardError::StaleEpoch {
                slice: 2,
                owned_epoch: 5
            })
        );
        let (r, _) = s.serve(
            ShardOp::Get { key: 2 },
            RouteMeta {
                slice: 2,
                epoch: 5,
                req_id: 0,
            },
        );
        assert_eq!(r, Ok(ShardReply::Value(None)));
    }

    #[test]
    fn duplicate_put_is_deduped() {
        let mut s = shard();
        let (r1, _) = s.serve(ShardOp::Put { key: 5, value: 50 }, meta(77));
        let (r2, _) = s.serve(ShardOp::Put { key: 5, value: 50 }, meta(77));
        assert_eq!(r1, Ok(ShardReply::Acked { seq: 0 }));
        assert_eq!(
            r2,
            Ok(ShardReply::Acked { seq: 0 }),
            "same ack, not re-applied"
        );
        assert_eq!(s.next_seq(), 1, "no second record appended");
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.duplicate_req_ids(), 0);
    }

    #[test]
    fn ingest_is_idempotent_and_lww() {
        let mut s = shard();
        let (r, _) = s.ingest(9, 30, 100);
        assert_eq!(r, Ok(true));
        // Same record again: skipped (index already has >= value).
        let (r, _) = s.ingest(9, 30, 100);
        assert_eq!(r, Ok(false));
        // Older value: skipped.
        let (r, _) = s.ingest(9, 20, 101);
        assert_eq!(r, Ok(false));
        // Newer value: applied.
        let (r, _) = s.ingest(9, 40, 102);
        assert_eq!(r, Ok(true));
        assert_eq!(s.peek_value(9), Some(40));
        assert_eq!(s.next_seq(), 2);
    }

    #[test]
    fn retire_drops_slice_and_replay_keeps_it_dropped() {
        let mut s = shard_with(2, &[0, 1]);
        let m0 = |req| RouteMeta {
            slice: 0,
            epoch: 1,
            req_id: req,
        };
        let m1 = |req| RouteMeta {
            slice: 1,
            epoch: 1,
            req_id: req,
        };
        let _ = s.serve(ShardOp::Put { key: 2, value: 10 }, m0(1)); // slice 0
        let _ = s.serve(ShardOp::Put { key: 3, value: 11 }, m1(2)); // slice 1
        let (r, _) = s.append_control(ControlKind::FlipRetire, 0, 7);
        assert!(r.is_ok());
        let (r, _) = s.append_control(ControlKind::Retire, 0, 7);
        assert!(r.is_ok());
        assert!(!s.owns(0));
        assert!(s.retired_cleanly(0));
        assert_eq!(s.peek_value(2), None, "retired slice data dropped");
        assert_eq!(s.peek_value(3), Some(11));
        // Crash: replay must not resurrect the retired slice.
        let out = s.crash_and_recover(3, 0.5).expect("recovery");
        assert_eq!(out.lost_tail, 0);
        assert!(!s.owns(0), "replayed FlipRetire drops ownership");
        assert!(s.owns(1));
        assert_eq!(s.peek_value(2), None, "replayed Retire re-drops data");
        assert_eq!(s.peek_value(3), Some(11));
        // Post-recovery serves for the retired slice stay fenced.
        let (r, _) = s.serve(ShardOp::Get { key: 2 }, m0(0));
        assert!(matches!(r, Err(ShardError::StaleEpoch { .. })));
    }

    #[test]
    fn acked_records_survive_crash_and_recover() {
        let mut s = shard();
        let mut acked = Vec::new();
        for k in 0..50u64 {
            if let (Ok(ShardReply::Acked { seq }), _) = s.serve(
                ShardOp::Put {
                    key: k,
                    value: k * 3 + 1,
                },
                meta(k + 1),
            ) {
                acked.push((seq, k, k * 3 + 1));
            }
        }
        let out = s.crash_and_recover(77, 0.5).expect("recovery");
        assert_eq!(out.replayed, 50, "all acked records replay");
        assert_eq!(out.lost_tail, 0);
        for (seq, k, v) in acked {
            assert!(s.verify_record(seq, k, v), "acked record {seq} lost");
            assert_eq!(s.peek_value(k), Some(v), "index rebuilt for key {k}");
        }
        // Shard keeps serving after recovery; next seq continues the log.
        let (r, _) = s.serve(
            ShardOp::Put {
                key: 999,
                value: 1000,
            },
            meta(999),
        );
        assert_eq!(r, Ok(ShardReply::Acked { seq: 50 }));
    }

    #[test]
    fn dedup_window_survives_crash() {
        let mut s = shard();
        let _ = s.serve(ShardOp::Put { key: 1, value: 10 }, meta(55));
        let _ = s.crash_and_recover(9, 0.5).expect("recovery");
        // Redelivery of the pre-crash put: still deduped from replay.
        let (r, _) = s.serve(ShardOp::Put { key: 1, value: 10 }, meta(55));
        assert_eq!(r, Ok(ShardReply::Acked { seq: 0 }));
        assert_eq!(s.next_seq(), 1, "replayed dedup window blocks re-apply");
        assert_eq!(s.dedup_hits, 1);
    }

    #[test]
    fn slice_checksums_detect_divergence() {
        let mut a = shard_with(2, &[0, 1]);
        let mut b = shard_with(2, &[0, 1]);
        let m = |slice, req| RouteMeta {
            slice,
            epoch: 1,
            req_id: req,
        };
        let _ = a.serve(ShardOp::Put { key: 2, value: 5 }, m(0, 1));
        let _ = b.serve(ShardOp::Put { key: 2, value: 5 }, m(0, 1));
        assert_eq!(a.slice_checksum(0), b.slice_checksum(0));
        assert_eq!(
            a.slice_checksum(1),
            b.slice_checksum(1),
            "empty slices agree"
        );
        let _ = b.serve(ShardOp::Put { key: 4, value: 9 }, m(0, 2));
        assert_ne!(a.slice_checksum(0), b.slice_checksum(0));
        assert_eq!(
            b.slice_entries(0),
            vec![(2, 5), (4, 9)],
            "entries sorted by key"
        );
    }

    #[test]
    fn recovery_is_seed_deterministic() {
        let run = || {
            let mut s = shard();
            for k in 0..30u64 {
                let _ = s.serve(
                    ShardOp::Put {
                        key: k,
                        value: k + 1,
                    },
                    meta(k + 1),
                );
            }
            let out = s.crash_and_recover(5, 0.3).expect("recovery");
            (out.replayed, out.uncertain_lines, out.replay_cycles)
        };
        assert_eq!(run(), run());
    }
}
