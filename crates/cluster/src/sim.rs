//! The cluster event loop: router, shards, replication, migration,
//! anti-entropy, network, faults, metrics.
//!
//! A single-threaded discrete-event simulation over cluster ticks.
//! Events live in a `BTreeMap<(tick, seq), Event>` — insertion order
//! breaks ties, so the execution schedule is a pure function of the
//! parameters and seed. Shards are sequential state machines: a request
//! is served to completion at delivery-processing time; the shard's
//! `busy_until` horizon shapes reply latency, modeling queueing without
//! intra-shard concurrency.
//!
//! Routing is keyslice-based and epoch-fenced ([`RoutingTable`]): each
//! slice has a replica set, writes fan out to every owner and ack the
//! client only at a *quorum* of durable (ADR-persisted) copies, reads
//! rotate across owners (primary first) with hedging. Every attempt
//! carries the table epoch at launch; a shard that no longer owns the
//! slice at that epoch rejects with a typed `StaleEpoch` — a
//! partitioned router can never collect an ack from a retired owner.
//!
//! A [`MigrationPlan`] drains keyslices from one shard to another under
//! live traffic through the persisted `Prepare -> Copy -> CatchUp ->
//! Flip -> Retire` state machine (see [`crate::migrate`]); the seeded
//! [`MigrationFail`](crate::fault::MigrationFail) fault can power-fail
//! either participant at every phase boundary, and recovery resumes or
//! cleanly aborts via log-prefix replay. Anti-entropy compares
//! per-slice FNV checksums between replicas on a sim-clock cadence and
//! read-repairs divergent slices from the per-key maximum (values are
//! globally monotone, so max is the merge function).
//!
//! Every client request is *answered*: served (possibly degraded from
//! the front-cache), shed with a typed rejection (overload or
//! unavailable), or failed with a deadline error. A request that would
//! otherwise hang is cut off by its unconditional deadline event, so
//! `unanswered` can only be nonzero if the loop itself loses state —
//! which the determinism and failover tests would catch.

use std::collections::BTreeMap;

use obs::{Histogram, Sampler, Value};
use optane_core::{Generation, TraceSink};
use simbase::SplitMix64;

use crate::breaker::{Admission, CircuitBreaker};
use crate::cache::FrontCache;
use crate::fault::{ClusterFaultPlan, MigrationFailTarget};
use crate::metrics::{cluster_registry, percentile};
use crate::migrate::{
    ControlKind, MigrationDriver, MigrationPhase, MigrationPlan, MigrationReport,
};
use crate::net::{NetParams, NetSim, NetStats};
use crate::replica::{ReplicationParams, RoutingTable, SliceId};
use crate::retry::{RetryPolicy, Ticks};
use crate::shard::{
    LogRecord, RouteMeta, ShardConfig, ShardError, ShardOp, ShardReply, ShardServer, RECORD_BYTES,
};
use crate::workload::{ClientConfig, ClientGen};

/// Full cluster run parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterParams {
    /// Shard count; generations alternate G1/G2 starting at G1.
    pub n_shards: usize,
    /// Log slots per shard (size for preload + traffic headroom).
    pub log_slots: u64,
    pub client: ClientConfig,
    pub net: NetParams,
    pub retry: RetryPolicy,
    /// Hedge a read that has not replied after this many ticks
    /// (0 disables hedging).
    pub hedge_after: Ticks,
    /// End-to-end request deadline: the request is answered with a
    /// deadline error at `arrival + deadline` if nothing else resolved it.
    pub deadline: Ticks,
    /// Router admission bound: in-flight requests admitted per shard.
    pub queue_bound: usize,
    /// Breaker: consecutive failures to trip.
    pub breaker_threshold: u32,
    /// Breaker: ticks open before a half-open probe.
    pub breaker_cooldown: Ticks,
    /// DRAM front-cache capacity (entries).
    pub front_cache: usize,
    /// Keyslice / replica-set shape (defaults to the legacy layout:
    /// one slice per shard, one replica).
    pub replication: ReplicationParams,
    /// Optional live keyspace migration.
    pub migration: Option<MigrationPlan>,
    /// Anti-entropy cadence in ticks (None = repair only at end of run).
    pub repair_interval: Option<Ticks>,
    pub fault: ClusterFaultPlan,
    pub seed: u64,
    /// Metrics sampling interval in ticks (None = no series).
    pub metrics_interval: Option<Ticks>,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            n_shards: 4,
            log_slots: 64 * 1024,
            client: ClientConfig::default(),
            net: NetParams::default(),
            retry: RetryPolicy::default(),
            hedge_after: 20_000,
            deadline: 400_000,
            queue_bound: 64,
            breaker_threshold: 5,
            breaker_cooldown: 60_000,
            front_cache: 4_096,
            replication: ReplicationParams::default(),
            migration: None,
            repair_interval: None,
            fault: ClusterFaultPlan::none(),
            seed: 0,
            metrics_interval: None,
        }
    }
}

/// Typed cluster-run failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    BadParams(&'static str),
    Shard(ShardError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BadParams(m) => write!(f, "bad cluster params: {m}"),
            ClusterError::Shard(e) => write!(f, "shard error: {e:?}"),
        }
    }
}

/// One shard recovery, as observed by the cluster.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    pub shard: usize,
    /// Power-drop instant.
    pub at: Ticks,
    /// Configured outage (reboot) ticks.
    pub outage: Ticks,
    /// Log replay cycles on the recovered machine.
    pub replay_cycles: u64,
    /// Records replayed into the rebuilt index.
    pub replayed: u64,
    /// Unacknowledged tail records lost (acked losses are counted
    /// separately by the oracle and must be zero).
    pub lost_tail: u64,
    /// Size of the crash image's uncertain set.
    pub uncertain_lines: u64,
    /// Total down time: outage + replay.
    pub total_ticks: Ticks,
}

/// Latency summary for one generation's served requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
    pub mean: f64,
}

fn summarize(h: &Histogram) -> LatencySummary {
    LatencySummary {
        count: h.count(),
        p50: percentile(h, 0.50),
        p99: percentile(h, 0.99),
        max: h.max(),
        mean: h.mean(),
    }
}

/// Everything one cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    pub arrivals: u64,
    pub served_ok: u64,
    pub served_degraded: u64,
    pub shed_overload: u64,
    pub shed_unavailable: u64,
    pub deadline_exceeded: u64,
    pub retries: u64,
    pub hedges: u64,
    pub duplicate_replies: u64,
    pub breaker_trips: u64,
    /// Attempts rejected by a shard's epoch fence (typed `StaleEpoch`).
    pub stale_epoch_rejections: u64,
    /// Duplicate put deliveries answered from the idempotency window.
    pub dedup_hits: u64,
    /// Data records sharing a nonzero req-id across all shard logs —
    /// the idempotency oracle; must be zero.
    pub duplicate_applies: u64,
    pub net: NetStats,
    pub acked_writes: u64,
    /// Acknowledged writes missing from the post-run persistent state:
    /// a recorded ack whose log record is gone, or whose value is
    /// absent from a current owner after anti-entropy convergence. The
    /// ADR ack ordering plus idempotent copy/repair makes this
    /// structurally zero; the rebalance proptest asserts it for
    /// arbitrary seeded crash schedules.
    pub lost_acked: u64,
    /// Acks collected from a shard that neither owns the slice nor
    /// retired it cleanly (every served record copied first). Must be
    /// zero: the epoch fence forbids acks from retired owners.
    pub stale_epoch_acks: u64,
    /// Requests never finalized (must be zero: every request is served,
    /// shed, or deadline-failed).
    pub unanswered: u64,
    pub recoveries: Vec<RecoveryReport>,
    /// What the migration accomplished, when one was configured.
    pub migration: Option<MigrationReport>,
    /// The configured migration drained its whole queue.
    pub migration_done: bool,
    /// Bytes written by anti-entropy read-repair (end-of-run drain
    /// included).
    pub repair_bytes: u64,
    /// Divergent (slice, comparison) pairs anti-entropy found.
    pub divergent_slices: u64,
    /// Every slice owned exactly once, and shard-local ownership agrees
    /// with the routing table. Must be true after convergence.
    pub ownership_consistent: bool,
    /// Final routing-table epoch.
    pub epoch: u64,
    pub latency_g1: LatencySummary,
    pub latency_g2: LatencySummary,
    pub latency_degraded: LatencySummary,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Front-cache lookups rejected by the epoch floor.
    pub cache_stale_rejects: u64,
    pub shard_served: Vec<u64>,
    /// Simulated tick of the last processed event.
    pub sim_end: Ticks,
    /// Sampled fleet metrics series (JSONL), when enabled.
    pub metrics_jsonl: Option<String>,
    /// Final encoded machine checkpoints, one per shard — populated only
    /// on traced runs so the divergence witness can hash machine state.
    pub checkpoint_blobs: Vec<Vec<u8>>,
}

impl ClusterReport {
    /// Answered requests: everything that got a reply or a typed error.
    pub fn answered(&self) -> u64 {
        self.served_ok
            + self.served_degraded
            + self.shed_overload
            + self.shed_unavailable
            + self.deadline_exceeded
    }

    /// Fraction of arrivals answered (the e12/e13 availability metric).
    pub fn availability(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            self.answered() as f64 / self.arrivals as f64
        }
    }

    /// Fraction of arrivals served with data (not shed, not failed).
    pub fn served_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            (self.served_ok + self.served_degraded) as f64 / self.arrivals as f64
        }
    }

    /// Deterministic plain-text availability report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let mut line = |l: String| {
            s.push_str(&l);
            s.push('\n');
        };
        line("cluster availability report".to_string());
        line(format!("arrivals: {}", self.arrivals));
        line(format!(
            "answered: {} (availability {:.4}%)",
            self.answered(),
            self.availability() * 100.0
        ));
        line(format!(
            "served_ok: {}  served_degraded: {}  shed_overload: {}  shed_unavailable: {}  deadline_exceeded: {}",
            self.served_ok,
            self.served_degraded,
            self.shed_overload,
            self.shed_unavailable,
            self.deadline_exceeded
        ));
        line(format!(
            "retries: {}  hedges: {}  duplicate_replies: {}  breaker_trips: {}",
            self.retries, self.hedges, self.duplicate_replies, self.breaker_trips
        ));
        line(format!(
            "epoch: {}  stale_epoch_rejections: {}  dedup_hits: {}  duplicate_applies: {}",
            self.epoch, self.stale_epoch_rejections, self.dedup_hits, self.duplicate_applies
        ));
        line(format!(
            "net: sent {} dropped {} reordered {}",
            self.net.sent, self.net.dropped, self.net.reordered
        ));
        line(format!(
            "front_cache: hits {} misses {} stale_rejects {}",
            self.cache_hits, self.cache_misses, self.cache_stale_rejects
        ));
        line(format!(
            "repair: divergent_slices {} repair_bytes {}",
            self.divergent_slices, self.repair_bytes
        ));
        if let Some(m) = &self.migration {
            line(format!(
                "migration: moved {} aborted {} resumed {} flips_recovered {} records_copied {} control_records {} done {}",
                m.slices_moved,
                m.slices_aborted,
                m.copies_resumed,
                m.flips_recovered,
                m.records_copied,
                m.control_records,
                self.migration_done
            ));
        }
        for (i, served) in self.shard_served.iter().enumerate() {
            line(format!("shard {i}: served {served}"));
        }
        for r in &self.recoveries {
            line(format!(
                "recovery: shard {} power-fail at {} outage {} replay_cycles {} replayed {} lost_tail {} uncertain {} total {}",
                r.shard, r.at, r.outage, r.replay_cycles, r.replayed, r.lost_tail, r.uncertain_lines, r.total_ticks
            ));
        }
        let lat = |name: &str, l: &LatencySummary| {
            format!(
                "latency {name}: count {} p50 {} p99 {} max {} mean {:.1}",
                l.count, l.p50, l.p99, l.max, l.mean
            )
        };
        line(lat("G1", &self.latency_g1));
        line(lat("G2", &self.latency_g2));
        line(lat("degraded", &self.latency_degraded));
        line(format!("acked_writes: {}", self.acked_writes));
        line(format!(
            "acked-write loss: {} ({})",
            self.lost_acked,
            if self.lost_acked == 0 {
                "zero acknowledged-write loss"
            } else {
                "ACKED WRITES LOST"
            }
        ));
        line(format!("stale_epoch_acks: {}", self.stale_epoch_acks));
        line(format!(
            "ownership_consistent: {}",
            self.ownership_consistent
        ));
        line(format!("unanswered: {}", self.unanswered));
        line(format!("sim_end: {}", self.sim_end));
        s
    }
}

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    ServedOk { value: Option<u64> },
    ServedDegraded { value: u64 },
    ShedOverload,
    ShedUnavailable,
    DeadlineExceeded,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Client request hits the router (op pre-bound in `reqs`).
    Arrival { req: usize },
    /// Request attempt reaches the shard.
    DeliverReq { req: usize, attempt: u32 },
    /// Shard reply reaches the router.
    DeliverReply {
        req: usize,
        attempt: u32,
        reply: ReplyWire,
    },
    /// Attempt response window expired.
    AttemptTimeout { req: usize, attempt: u32 },
    /// Backoff elapsed: launch the next attempt (or put round).
    RetryFire { req: usize },
    /// Hedge window elapsed: maybe launch a duplicate read.
    HedgeFire { req: usize, attempt: u32 },
    /// Request deadline: answer with a typed failure if still open.
    DeadlineFire { req: usize },
    /// Shard power drop (fault plan or migration fault).
    PowerFail {
        shard: usize,
        outage: Ticks,
        survivor_bias: f64,
    },
    /// Recovered shard rejoins the fleet (epoch bumps, floors move).
    RecoveryDone { shard: usize },
    /// Migration driver pacing tick.
    MigrateStep,
    /// Anti-entropy sweep over all slices.
    RepairTick,
    /// Metrics sampling tick.
    MetricsTick,
}

/// Reply payload carried over the simulated network.
#[derive(Debug, Clone, Copy)]
enum ReplyWire {
    Value(Option<u64>),
    Acked {
        seq: u64,
    },
    LogFull,
    /// Epoch fence rejection: relaunch against the refreshed table.
    Stale,
}

struct ReqState {
    op: ShardOp,
    slice: SliceId,
    /// Idempotency key (nonzero for puts; retries/hedges reuse it).
    req_id: u64,
    arrival: Ticks,
    attempts: u32,
    /// Per-attempt "no longer outstanding" flags (replied or timed out).
    settled: Vec<bool>,
    /// Per-attempt target shard.
    attempt_shard: Vec<usize>,
    /// Per-attempt routing epoch at launch.
    attempt_epoch: Vec<u64>,
    /// Round-robin owner cursor for read attempts.
    rr: usize,
    /// Distinct shards that durably acked this put: (shard, log seq).
    acks: Vec<(usize, u64)>,
    /// Admission slot held at this shard (the slice primary at arrival).
    admitted: Option<usize>,
    done: bool,
}

/// An acknowledged write the oracles must find intact post-run.
#[derive(Debug, Clone)]
struct AckedWrite {
    slice: SliceId,
    key: u64,
    value: u64,
    /// The quorum that acked: (shard, log seq) per durable copy.
    acks: Vec<(usize, u64)>,
}

struct Counters {
    arrivals: u64,
    served_ok: u64,
    served_degraded: u64,
    shed_overload: u64,
    shed_unavailable: u64,
    deadline_exceeded: u64,
    retries: u64,
    hedges: u64,
    duplicate_replies: u64,
    acked_writes: u64,
    stale_epoch_rejections: u64,
    repair_bytes: u64,
    divergent_slices: u64,
}

/// The running cluster. Construct once per run via [`run`] /
/// [`run_traced`]; all state is owned, nothing is shared.
struct Cluster<'a> {
    params: ClusterParams,
    table: RoutingTable,
    replicas: usize,
    quorum: usize,
    shards: Vec<ShardServer>,
    up: Vec<bool>,
    busy_until: Vec<Ticks>,
    inflight: Vec<usize>,
    breakers: Vec<CircuitBreaker>,
    shard_served: Vec<u64>,
    net: NetSim,
    cache: FrontCache,
    /// Per-slice front-cache epoch floor: entries older than the floor
    /// never serve (bumped on flips and on owner recovery).
    cache_floor: Vec<u64>,
    gen: ClientGen,
    reqs: Vec<ReqState>,
    acked: Vec<AckedWrite>,
    counters: Counters,
    events: BTreeMap<(Ticks, u64), Event>,
    next_seq: u64,
    /// Heap entries that are not metrics/repair ticks — when this hits
    /// zero the periodic samplers stop rescheduling and the run drains.
    live_events: usize,
    backoff_rng: SplitMix64,
    lat_g1: Histogram,
    lat_g2: Histogram,
    lat_degraded: Histogram,
    recoveries: Vec<RecoveryReport>,
    mig: Option<MigrationDriver>,
    sampler: Option<Sampler>,
    sink_factory: Option<&'a dyn Fn(usize) -> Box<dyn TraceSink>>,
    now: Ticks,
}

/// Generation of shard `i` under the alternating layout.
pub fn shard_generation(i: usize) -> Generation {
    if i.is_multiple_of(2) {
        Generation::G1
    } else {
        Generation::G2
    }
}

impl<'a> Cluster<'a> {
    fn new(
        params: ClusterParams,
        sink_factory: Option<&'a dyn Fn(usize) -> Box<dyn TraceSink>>,
    ) -> Result<Self, ClusterError> {
        if params.n_shards == 0 {
            return Err(ClusterError::BadParams("n_shards must be > 0"));
        }
        if params.queue_bound == 0 {
            return Err(ClusterError::BadParams("queue_bound must be > 0"));
        }
        if params.retry.max_attempts == 0 {
            return Err(ClusterError::BadParams("max_attempts must be > 0"));
        }
        if params.deadline == 0 {
            return Err(ClusterError::BadParams("deadline must be > 0"));
        }
        if params.replication.replicas == 0 {
            return Err(ClusterError::BadParams("replicas must be > 0"));
        }
        if params.replication.replicas > params.n_shards {
            return Err(ClusterError::BadParams("replicas exceed shard count"));
        }
        if let Some(pf) = params.fault.power_fail {
            if pf.shard >= params.n_shards {
                return Err(ClusterError::BadParams("fault shard out of range"));
            }
        }
        if let Some(plan) = params.migration {
            if plan.from >= params.n_shards || plan.to >= params.n_shards {
                return Err(ClusterError::BadParams("migration shard out of range"));
            }
            if plan.from == plan.to {
                return Err(ClusterError::BadParams("migration from == to"));
            }
            if plan.chunk_records == 0 {
                return Err(ClusterError::BadParams(
                    "migration chunk_records must be > 0",
                ));
            }
        }
        let n = params.n_shards;
        let n_slices = params.replication.slices(n);
        let table = RoutingTable::new(n_slices, n, params.replication.replicas);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let mut s = ShardServer::new(ShardConfig {
                id: i,
                gen: shard_generation(i),
                log_slots: params.log_slots,
                n_slices,
                seed: params.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            });
            s.set_owned(&table.slices_on(i));
            if let Some(f) = sink_factory {
                s.set_trace_sink(f(i));
            }
            shards.push(s);
        }
        let mut net = NetSim::new(params.net, params.seed);
        if let Some(d) = params.fault.net_degrade {
            net.set_degrade(d.start, d.end, d.params);
        }
        let mig = params.migration.map(|plan| {
            let mut d = MigrationDriver::new(plan);
            d.queue = table.slices_on(plan.from);
            if plan.max_slices > 0 {
                d.queue.truncate(plan.max_slices);
            }
            d
        });
        Ok(Cluster {
            shards,
            replicas: params.replication.replicas,
            quorum: params.replication.quorum(),
            up: vec![true; n],
            busy_until: vec![0; n],
            inflight: vec![0; n],
            breakers: vec![
                CircuitBreaker::new(params.breaker_threshold, params.breaker_cooldown);
                n
            ],
            shard_served: vec![0; n],
            net,
            cache: FrontCache::new(params.front_cache),
            cache_floor: vec![0; n_slices],
            gen: ClientGen::new(ClientConfig {
                seed: params.client.seed ^ params.seed,
                ..params.client
            }),
            reqs: Vec::new(),
            acked: Vec::new(),
            counters: Counters {
                arrivals: 0,
                served_ok: 0,
                served_degraded: 0,
                shed_overload: 0,
                shed_unavailable: 0,
                deadline_exceeded: 0,
                retries: 0,
                hedges: 0,
                duplicate_replies: 0,
                acked_writes: 0,
                stale_epoch_rejections: 0,
                repair_bytes: 0,
                divergent_slices: 0,
            },
            events: BTreeMap::new(),
            next_seq: 0,
            live_events: 0,
            backoff_rng: SplitMix64::new(params.seed ^ 0x0062_6163_6b6f_6666),
            lat_g1: Histogram::new(),
            lat_g2: Histogram::new(),
            lat_degraded: Histogram::new(),
            recoveries: Vec::new(),
            mig,
            sampler: params.metrics_interval.map(|iv| {
                let mut s = Sampler::new(cluster_registry(n), iv.max(1));
                s.set_context(format!(
                    "cluster seed={} ia={}",
                    params.seed, params.client.interarrival
                ));
                s
            }),
            sink_factory,
            table,
            params,
            now: 0,
        })
    }

    fn push(&mut self, at: Ticks, ev: Event) {
        if !matches!(ev, Event::MetricsTick | Event::RepairTick) {
            self.live_events += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.insert((at.max(self.now), seq), ev);
    }

    /// Occupy a shard's machine for `cycles` of background work (copy
    /// stream, control records, repair) — it competes with foreground
    /// traffic via the busy horizon.
    fn charge(&mut self, shard: usize, cycles: u64) {
        self.busy_until[shard] = self.busy_until[shard].max(self.now).saturating_add(cycles);
    }

    fn attempt_budget(&self) -> u32 {
        self.params
            .retry
            .max_attempts
            .saturating_mul(self.replicas as u32)
    }

    fn preload(&mut self) -> Result<(), ClusterError> {
        // Preload values count 1..=preload_keys: below every client put
        // value (which start at preload_keys + 1), so the global
        // last-writer-wins order stays monotone across load and run.
        for i in 0..self.params.client.preload_keys {
            let key = self.gen.next_preload_key();
            let slice = self.table.slice_of(key);
            for &shard in &self.table.owners(slice).to_vec() {
                match self.shards[shard].preload(key, i + 1) {
                    Ok(()) => {}
                    Err(e) => return Err(ClusterError::Shard(e)),
                }
            }
        }
        Ok(())
    }

    fn schedule_initial(&mut self) {
        if let Some((at, op)) = self.gen.next_arrival() {
            let req = self.new_req(at, op);
            self.push(at, Event::Arrival { req });
        }
        if let Some(pf) = self.params.fault.power_fail {
            self.push(
                pf.at,
                Event::PowerFail {
                    shard: pf.shard,
                    outage: pf.outage,
                    survivor_bias: pf.survivor_bias,
                },
            );
        }
        let mig_start = self.mig.as_mut().map(|m| {
            m.pending_steps += 1;
            m.plan.start_at
        });
        if let Some(at) = mig_start {
            self.push(at, Event::MigrateStep);
        }
        if let Some(iv) = self.params.repair_interval {
            self.push(iv.max(1), Event::RepairTick);
        }
        if let Some(iv) = self.params.metrics_interval {
            self.push(iv.max(1), Event::MetricsTick);
        }
    }

    fn new_req(&mut self, arrival: Ticks, op: ShardOp) -> usize {
        let slice = self.table.slice_of(op.key());
        // Puts carry a nonzero idempotency key; retried and hedged
        // deliveries reuse it so shards can dedup.
        let req_id = if op.is_put() {
            self.reqs.len() as u64 + 1
        } else {
            0
        };
        self.reqs.push(ReqState {
            op,
            slice,
            req_id,
            arrival,
            attempts: 0,
            settled: Vec::new(),
            attempt_shard: Vec::new(),
            attempt_epoch: Vec::new(),
            rr: 0,
            acks: Vec::new(),
            admitted: None,
            done: false,
        });
        self.reqs.len() - 1
    }

    fn outstanding(&self, req: usize) -> usize {
        self.reqs[req].settled.iter().filter(|s| !**s).count()
    }

    fn finalize(&mut self, req: usize, outcome: Outcome) {
        let (admitted, arrival, op) = {
            let rs = &mut self.reqs[req];
            if rs.done {
                return;
            }
            rs.done = true;
            (rs.admitted.take(), rs.arrival, rs.op)
        };
        if let Some(shard) = admitted {
            self.inflight[shard] = self.inflight[shard].saturating_sub(1);
        }
        let latency = self.now.saturating_sub(arrival);
        match outcome {
            Outcome::ServedOk { value } => {
                self.counters.served_ok += 1;
                // Latency attributed to the slice primary's generation.
                let primary = self.table.owners(self.reqs[req].slice)[0];
                match self.shards[primary].generation() {
                    Generation::G1 => self.lat_g1.record(latency.max(1)),
                    Generation::G2 => self.lat_g2.record(latency.max(1)),
                }
                let epoch = self.table.epoch();
                match op {
                    ShardOp::Put { key, value } => self.cache.put(key, value, epoch),
                    ShardOp::Get { key } => {
                        if let Some(v) = value {
                            self.cache.put(key, v, epoch);
                        }
                    }
                }
            }
            Outcome::ServedDegraded { .. } => {
                self.counters.served_degraded += 1;
                self.lat_degraded.record(latency.max(1));
            }
            Outcome::ShedOverload => self.counters.shed_overload += 1,
            Outcome::ShedUnavailable => self.counters.shed_unavailable += 1,
            Outcome::DeadlineExceeded => self.counters.deadline_exceeded += 1,
        }
    }

    /// Degraded path while breakers reject: reads may hit the DRAM
    /// front-cache (epoch-floored), everything else is a typed
    /// unavailable.
    fn degraded_path(&mut self, req: usize) {
        let (op, slice) = (self.reqs[req].op, self.reqs[req].slice);
        match op {
            ShardOp::Get { key } => match self.cache.get(key, self.cache_floor[slice]) {
                Some(v) => self.finalize(req, Outcome::ServedDegraded { value: v }),
                None => self.finalize(req, Outcome::ShedUnavailable),
            },
            ShardOp::Put { .. } => self.finalize(req, Outcome::ShedUnavailable),
        }
    }

    /// Register one attempt and return its 1-based attempt number.
    fn begin_attempt(&mut self, req: usize, shard: usize, epoch: u64) -> u32 {
        let rs = &mut self.reqs[req];
        rs.attempts += 1;
        rs.settled.push(false);
        rs.attempt_shard.push(shard);
        rs.attempt_epoch.push(epoch);
        rs.attempts
    }

    /// Fan one put round out to every owner that has not acked yet.
    /// Acks accumulate across rounds; the client is answered at quorum.
    fn launch_put_round(&mut self, req: usize) {
        if self.reqs[req].done {
            return;
        }
        let slice = self.reqs[req].slice;
        let epoch = self.table.epoch();
        let owners = self.table.owners(slice).to_vec();
        let budget = self.attempt_budget();
        let mut sent = 0usize;
        let mut rejected = 0usize;
        for shard in owners {
            if self.reqs[req].acks.iter().any(|&(s, _)| s == shard) {
                continue;
            }
            if self.reqs[req].attempts >= budget {
                break;
            }
            match self.breakers[shard].admit(self.now) {
                Admission::Reject => rejected += 1,
                Admission::Normal | Admission::Probe => {
                    let attempt = self.begin_attempt(req, shard, epoch);
                    if let Some(t) = self.net.transit(self.now) {
                        self.push(t, Event::DeliverReq { req, attempt });
                    }
                    self.push(
                        self.now.saturating_add(self.params.retry.attempt_timeout),
                        Event::AttemptTimeout { req, attempt },
                    );
                    sent += 1;
                }
            }
        }
        if sent == 0 && rejected > 0 && self.outstanding(req) == 0 {
            // Every reachable owner's breaker is open and nothing is in
            // flight: answer now instead of burning the deadline.
            self.degraded_path(req);
        }
    }

    /// Launch one read attempt at the next owner in rotation.
    fn launch_get_attempt(&mut self, req: usize) {
        if self.reqs[req].done {
            return;
        }
        let budget = self.attempt_budget();
        if self.reqs[req].attempts >= budget {
            return;
        }
        let slice = self.reqs[req].slice;
        let epoch = self.table.epoch();
        let owners = self.table.owners(slice).to_vec();
        let idx = self.reqs[req].rr % owners.len();
        self.reqs[req].rr += 1;
        let shard = owners[idx];
        match self.breakers[shard].admit(self.now) {
            Admission::Reject => self.degraded_path(req),
            Admission::Normal | Admission::Probe => {
                let attempt = self.begin_attempt(req, shard, epoch);
                if let Some(t) = self.net.transit(self.now) {
                    self.push(t, Event::DeliverReq { req, attempt });
                }
                self.push(
                    self.now.saturating_add(self.params.retry.attempt_timeout),
                    Event::AttemptTimeout { req, attempt },
                );
                if self.params.hedge_after > 0 && self.reqs[req].attempts < budget {
                    self.push(
                        self.now.saturating_add(self.params.hedge_after),
                        Event::HedgeFire { req, attempt },
                    );
                }
            }
        }
    }

    fn launch(&mut self, req: usize) {
        if self.reqs[req].op.is_put() {
            self.launch_put_round(req);
        } else {
            self.launch_get_attempt(req);
        }
    }

    fn on_arrival(&mut self, req: usize) {
        self.counters.arrivals += 1;
        // Next arrival is pulled lazily so the generator stream order
        // matches the event order exactly.
        if let Some((at, op)) = self.gen.next_arrival() {
            let next = self.new_req(at, op);
            self.push(at, Event::Arrival { req: next });
        }
        self.push(
            self.now.saturating_add(self.params.deadline),
            Event::DeadlineFire { req },
        );
        // Admission is bounded at the slice primary.
        let primary = self.table.owners(self.reqs[req].slice)[0];
        if self.inflight[primary] >= self.params.queue_bound {
            self.finalize(req, Outcome::ShedOverload);
            return;
        }
        self.inflight[primary] += 1;
        self.reqs[req].admitted = Some(primary);
        self.launch(req);
    }

    fn on_deliver_req(&mut self, req: usize, attempt: u32) {
        let a = attempt as usize - 1;
        if self.reqs[req].done || self.reqs[req].settled[a] {
            return;
        }
        let shard = self.reqs[req].attempt_shard[a];
        if !self.up[shard] {
            // Delivery into a powered-off shard is lost; the attempt
            // timeout turns this into a breaker failure.
            return;
        }
        let meta = RouteMeta {
            slice: self.reqs[req].slice,
            epoch: self.reqs[req].attempt_epoch[a],
            req_id: self.reqs[req].req_id,
        };
        let op = self.reqs[req].op;
        let start = self.now.max(self.busy_until[shard]);
        let (reply, cycles) = self.shards[shard].serve(op, meta);
        self.shard_served[shard] += 1;
        self.busy_until[shard] = start.saturating_add(cycles.max(1));
        let wire = match reply {
            Ok(ShardReply::Value(v)) => ReplyWire::Value(v),
            Ok(ShardReply::Acked { seq }) => ReplyWire::Acked { seq },
            Err(ShardError::LogFull) | Err(ShardError::SnapshotRoundTrip) => ReplyWire::LogFull,
            Err(ShardError::StaleEpoch { .. }) => ReplyWire::Stale,
        };
        if let Some(t) = self.net.transit(self.busy_until[shard]) {
            self.push(
                t,
                Event::DeliverReply {
                    req,
                    attempt,
                    reply: wire,
                },
            );
        }
    }

    fn on_deliver_reply(&mut self, req: usize, attempt: u32, reply: ReplyWire) {
        let a = attempt as usize - 1;
        if self.reqs[req].done || self.reqs[req].settled[a] {
            // The request already completed or this attempt already
            // timed out: a late duplicate.
            self.counters.duplicate_replies += 1;
            return;
        }
        self.reqs[req].settled[a] = true;
        let shard = self.reqs[req].attempt_shard[a];
        self.breakers[shard].on_success();
        match reply {
            ReplyWire::Stale => {
                // The shard is alive but our view was old: relaunch
                // immediately against the refreshed routing table.
                self.counters.stale_epoch_rejections += 1;
                self.launch(req);
            }
            ReplyWire::Value(v) => self.finalize(req, Outcome::ServedOk { value: v }),
            ReplyWire::Acked { seq } => {
                if let ShardOp::Put { key, value } = self.reqs[req].op {
                    if !self.reqs[req].acks.iter().any(|&(s, _)| s == shard) {
                        self.reqs[req].acks.push((shard, seq));
                    }
                    if self.reqs[req].acks.len() >= self.quorum {
                        self.acked.push(AckedWrite {
                            slice: self.reqs[req].slice,
                            key,
                            value,
                            acks: self.reqs[req].acks.clone(),
                        });
                        self.counters.acked_writes += 1;
                        self.finalize(req, Outcome::ServedOk { value: None });
                    }
                } else {
                    self.finalize(req, Outcome::ServedOk { value: None });
                }
            }
            ReplyWire::LogFull => self.finalize(req, Outcome::ShedUnavailable),
        }
    }

    fn on_attempt_timeout(&mut self, req: usize, attempt: u32) {
        let a = attempt as usize - 1;
        if self.reqs[req].done || self.reqs[req].settled[a] {
            return;
        }
        self.reqs[req].settled[a] = true;
        let shard = self.reqs[req].attempt_shard[a];
        self.breakers[shard].on_failure(self.now);
        if self.reqs[req].attempts < self.attempt_budget() && self.outstanding(req) == 0 {
            self.counters.retries += 1;
            let backoff = self
                .params
                .retry
                .backoff_after(self.reqs[req].attempts, &mut self.backoff_rng);
            self.push(self.now.saturating_add(backoff), Event::RetryFire { req });
        }
        // Otherwise the request waits on outstanding attempts or its
        // deadline event, which answers it with a typed failure.
    }

    fn on_hedge(&mut self, req: usize, attempt: u32) {
        if self.reqs[req].done || self.reqs[req].settled[attempt as usize - 1] {
            return;
        }
        if self.reqs[req].attempts < self.attempt_budget() {
            self.counters.hedges += 1;
            self.launch_get_attempt(req);
        }
    }

    fn on_power_fail(
        &mut self,
        shard: usize,
        outage: Ticks,
        survivor_bias: f64,
    ) -> Result<(), ClusterError> {
        if !self.up[shard] {
            return Ok(());
        }
        self.up[shard] = false;
        let survivor_seed = self.params.seed ^ ((shard as u64 + 1) << 32) ^ 0x70_66;
        let outcome = match self.shards[shard].crash_and_recover(survivor_seed, survivor_bias) {
            Ok(o) => o,
            Err(e) => return Err(ClusterError::Shard(e)),
        };
        // Re-arm the witness tap on the recovered machine if tracing.
        if let Some(f) = self.sink_factory {
            self.shards[shard].set_trace_sink(f(shard));
        }
        let total = outage.saturating_add(outcome.replay_cycles);
        self.recoveries.push(RecoveryReport {
            shard,
            at: self.now,
            outage,
            replay_cycles: outcome.replay_cycles,
            replayed: outcome.replayed,
            lost_tail: outcome.lost_tail,
            uncertain_lines: outcome.uncertain_lines,
            total_ticks: total,
        });
        self.push(
            self.now.saturating_add(total),
            Event::RecoveryDone { shard },
        );
        Ok(())
    }

    fn on_recovery_done(&mut self, shard: usize) {
        self.up[shard] = true;
        // The world changed: bump the routing epoch and move the cache
        // floor of every slice this shard participates in, so degraded
        // reads can never serve a pre-crash cached value.
        let e = self.table.bump_epoch();
        for s in self.table.slices_on(shard) {
            self.cache_floor[s] = e;
        }
        let Some(mut mig) = self.mig.take() else {
            return;
        };
        if mig.waiting_recovery && self.up[mig.plan.from] && self.up[mig.plan.to] {
            self.resolve_migration(&mut mig);
            if !mig.done && mig.pending_steps == 0 {
                mig.pending_steps += 1;
                self.push(
                    self.now.saturating_add(mig.plan.step_interval.max(1)),
                    Event::MigrateStep,
                );
            }
        }
        self.mig = Some(mig);
    }

    /// Fire the seeded migration fault if this phase boundary is its
    /// trigger. Returns true when the crash was scheduled — the caller
    /// must stop stepping and let the power-fail land.
    fn maybe_migration_fault(&mut self, phase: MigrationPhase, mig: &mut MigrationDriver) -> bool {
        let Some(mf) = self.params.fault.migration_fail else {
            return false;
        };
        if mig.fault_fired || mf.phase != phase {
            return false;
        }
        mig.fault_fired = true;
        let (hit_src, hit_dst) = match mf.target {
            MigrationFailTarget::Source => (true, false),
            MigrationFailTarget::Dest => (false, true),
            MigrationFailTarget::Both => (true, true),
        };
        if hit_src {
            self.push(
                self.now,
                Event::PowerFail {
                    shard: mig.plan.from,
                    outage: mf.outage,
                    survivor_bias: mf.survivor_bias,
                },
            );
        }
        if hit_dst {
            self.push(
                self.now,
                Event::PowerFail {
                    shard: mig.plan.to,
                    outage: mf.outage,
                    survivor_bias: mf.survivor_bias,
                },
            );
        }
        mig.waiting_recovery = true;
        mig.dest_crashed = hit_dst;
        true
    }

    /// Copy up to `max_records` source log slots in `[cursor, upto)`
    /// into the destination via idempotent ingest. Returns true when
    /// the cursor reached `upto`.
    fn copy_chunk(
        &mut self,
        mig: &mut MigrationDriver,
        slice: SliceId,
        upto: u64,
        max_records: u64,
    ) -> bool {
        let from = mig.plan.from;
        let to = mig.plan.to;
        let mut n = 0u64;
        while n < max_records && mig.cursor < upto {
            let (rec, cyc) = self.shards[from].scan_slot(mig.cursor);
            self.charge(from, cyc);
            if let Some(LogRecord::Data {
                key, value, req_id, ..
            }) = rec
            {
                if self.table.slice_of(key) == slice {
                    let (res, cyc2) = self.shards[to].ingest(key, value, req_id);
                    self.charge(to, cyc2);
                    if matches!(res, Ok(true)) {
                        mig.report.records_copied += 1;
                    }
                    // LogFull on the destination: skip; the slice will
                    // abort or retry on a later plan. Never fatal.
                }
            }
            mig.cursor += 1;
            n += 1;
        }
        mig.cursor >= upto
    }

    fn append_ctrl(
        &mut self,
        mig: &mut MigrationDriver,
        shard: usize,
        kind: ControlKind,
        slice: SliceId,
        epoch: u64,
    ) {
        let (res, cyc) = self.shards[shard].append_control(kind, slice, epoch);
        self.charge(shard, cyc);
        if res.is_ok() {
            mig.report.control_records += 1;
        }
    }

    /// FlipRetire + table swap + cleanup for the in-flight slice. The
    /// destination's `FlipAcquire` (the commit point) is already
    /// durable when this runs.
    fn complete_flip(
        &mut self,
        mig: &mut MigrationDriver,
        slice: SliceId,
        epoch: u64,
        check_fault: bool,
    ) {
        let from = mig.plan.from;
        let to = mig.plan.to;
        self.append_ctrl(mig, from, ControlKind::FlipRetire, slice, epoch);
        let _ = self.table.flip(slice, from, to);
        self.cache_floor[slice] = self.table.epoch();
        mig.report.slices_moved += 1;
        mig.phase = MigrationPhase::Retire;
        if check_fault && self.maybe_migration_fault(MigrationPhase::Retire, mig) {
            return;
        }
        self.append_ctrl(mig, from, ControlKind::Retire, slice, epoch);
        mig.advance_slice();
    }

    /// One driver step: advance the in-flight slice through the state
    /// machine, persisting each transition before acting on it.
    fn migrate_step_once(&mut self, mig: &mut MigrationDriver) {
        let from = mig.plan.from;
        let to = mig.plan.to;
        if !self.up[from] || !self.up[to] {
            // A participant is down (migration fault or the e12-style
            // plan): park until recovery resolves the slice.
            mig.waiting_recovery = true;
            mig.dest_crashed = mig.dest_crashed || !self.up[to];
            return;
        }
        match mig.phase {
            MigrationPhase::Idle => {
                // Select the next movable slice.
                let mut sel = None;
                while mig.qi < mig.queue.len() {
                    let s = mig.queue[mig.qi];
                    mig.qi += 1;
                    let owners = self.table.owners(s);
                    if owners.contains(&from) && !owners.contains(&to) {
                        sel = Some(s);
                        break;
                    }
                }
                let Some(s) = sel else {
                    mig.done = true;
                    return;
                };
                mig.current = Some(s);
                mig.cursor = 0;
                self.append_ctrl(mig, from, ControlKind::Prepare, s, self.table.epoch());
                mig.head_at_prepare = self.shards[from].next_seq();
                mig.phase = MigrationPhase::Prepare;
                let _ = self.maybe_migration_fault(MigrationPhase::Prepare, mig);
            }
            MigrationPhase::Prepare | MigrationPhase::Copy => {
                let Some(s) = mig.current else {
                    mig.phase = MigrationPhase::Idle;
                    return;
                };
                mig.phase = MigrationPhase::Copy;
                let upto = mig.head_at_prepare;
                let chunk = mig.plan.chunk_records;
                let reached = self.copy_chunk(mig, s, upto, chunk);
                if self.maybe_migration_fault(MigrationPhase::Copy, mig) {
                    return;
                }
                if reached {
                    self.append_ctrl(mig, from, ControlKind::CatchUp, s, self.table.epoch());
                    mig.phase = MigrationPhase::CatchUp;
                    let _ = self.maybe_migration_fault(MigrationPhase::CatchUp, mig);
                }
            }
            MigrationPhase::CatchUp => {
                let Some(s) = mig.current else {
                    mig.phase = MigrationPhase::Idle;
                    return;
                };
                let head = self.shards[from].next_seq();
                if mig.cursor < head {
                    let chunk = mig.plan.chunk_records;
                    if !self.copy_chunk(mig, s, head, chunk) {
                        return; // keep chasing the tail next step
                    }
                }
                // Cursor is at the live head inside this event: no new
                // write can interleave before the flip. Persist the
                // commit point on the destination, then finish.
                let e_next = self.table.epoch() + 1;
                self.append_ctrl(mig, to, ControlKind::FlipAcquire, s, e_next);
                mig.phase = MigrationPhase::Flip;
                if self.maybe_migration_fault(MigrationPhase::Flip, mig) {
                    return; // torn flip: recovery commits via the log
                }
                self.complete_flip(mig, s, e_next, true);
            }
            MigrationPhase::Flip => {
                // Only reachable defensively (torn flips resolve at
                // recovery): the commit point is durable, finish.
                let Some(s) = mig.current else {
                    mig.phase = MigrationPhase::Idle;
                    return;
                };
                let e = self.shards[to]
                    .owned_epoch(s)
                    .unwrap_or(self.table.epoch() + 1);
                self.complete_flip(mig, s, e, false);
            }
            MigrationPhase::Retire => {
                let Some(s) = mig.current else {
                    mig.phase = MigrationPhase::Idle;
                    return;
                };
                self.append_ctrl(mig, from, ControlKind::Retire, s, self.table.epoch());
                mig.advance_slice();
            }
        }
    }

    /// Crash resolution for the parked migration, once both
    /// participants are back up. The durable truth is in the logs:
    /// the destination's `FlipAcquire` decides commit vs abort.
    fn resolve_migration(&mut self, mig: &mut MigrationDriver) {
        mig.waiting_recovery = false;
        let dest_crashed = mig.dest_crashed;
        mig.dest_crashed = false;
        let Some(s) = mig.current else {
            return;
        };
        let from = mig.plan.from;
        let to = mig.plan.to;
        match mig.phase {
            MigrationPhase::Idle => {}
            MigrationPhase::Prepare | MigrationPhase::Copy | MigrationPhase::CatchUp => {
                if dest_crashed {
                    // Destination lost its partial copy before the
                    // commit point: abort the slice, ownership stays
                    // with the source. Orphan records on the
                    // destination are fenced off by ownership.
                    self.append_ctrl(mig, from, ControlKind::Abort, s, self.table.epoch());
                    mig.report.slices_aborted += 1;
                    mig.advance_slice();
                } else {
                    // Source recovered: restart the copy from slot 0.
                    // Ingest is idempotent, so a re-copy never
                    // double-applies.
                    mig.cursor = 0;
                    mig.head_at_prepare = self.shards[from].next_seq();
                    mig.phase = MigrationPhase::Copy;
                    mig.report.copies_resumed += 1;
                }
            }
            MigrationPhase::Flip => {
                if self.shards[to].has_flip(s) {
                    // Committed: the destination's durable FlipAcquire
                    // decides. Final full catch-up first — any record
                    // the source acked between FlipAcquire and the
                    // crash landing is in its replayed log and must
                    // reach the destination before ownership swaps.
                    mig.cursor = 0;
                    let head = self.shards[from].next_seq();
                    let _ = self.copy_chunk(mig, s, head, u64::MAX);
                    mig.report.flips_recovered += 1;
                    let e = self.shards[to]
                        .owned_epoch(s)
                        .unwrap_or(self.table.epoch() + 1);
                    self.complete_flip(mig, s, e, false);
                } else {
                    self.append_ctrl(mig, from, ControlKind::Abort, s, self.table.epoch());
                    mig.report.slices_aborted += 1;
                    mig.advance_slice();
                }
            }
            MigrationPhase::Retire => {
                // The flip already swapped the table pre-crash; only
                // the source-side cleanup record is missing.
                self.append_ctrl(mig, from, ControlKind::Retire, s, self.table.epoch());
                mig.advance_slice();
            }
        }
    }

    fn on_migrate_step(&mut self) {
        let Some(mut mig) = self.mig.take() else {
            return;
        };
        mig.pending_steps = mig.pending_steps.saturating_sub(1);
        if !mig.done && !mig.waiting_recovery {
            self.migrate_step_once(&mut mig);
            if !mig.done && !mig.waiting_recovery && mig.pending_steps == 0 {
                mig.pending_steps += 1;
                self.push(
                    self.now.saturating_add(mig.plan.step_interval.max(1)),
                    Event::MigrateStep,
                );
            }
        }
        self.mig = Some(mig);
    }

    /// Anti-entropy one slice: compare per-replica FNV checksums and
    /// read-repair divergence from the per-key maximum across the
    /// replica set. Returns records applied.
    fn repair_slice(&mut self, slice: SliceId, charge: bool) -> u64 {
        let owners: Vec<usize> = self
            .table
            .owners(slice)
            .iter()
            .copied()
            .filter(|&i| self.up[i])
            .collect();
        if owners.len() < 2 {
            return 0;
        }
        let first = self.shards[owners[0]].slice_checksum(slice);
        if owners[1..]
            .iter()
            .all(|&i| self.shards[i].slice_checksum(slice) == first)
        {
            return 0;
        }
        self.counters.divergent_slices += 1;
        // Merge: per-key max over every replica's view (values are
        // globally monotone versions).
        let mut union: BTreeMap<u64, u64> = BTreeMap::new();
        for &i in &owners {
            for (k, v) in self.shards[i].slice_entries(slice) {
                let e = union.entry(k).or_insert(v);
                if *e < v {
                    *e = v;
                }
            }
        }
        let mut applied = 0u64;
        for &i in &owners {
            for (&k, &v) in &union {
                let missing = !matches!(self.shards[i].peek_value(k), Some(have) if have >= v);
                if missing {
                    let (res, cyc) = self.shards[i].ingest(k, v, 0);
                    if charge {
                        self.charge(i, cyc);
                    }
                    if matches!(res, Ok(true)) {
                        applied += 1;
                        self.counters.repair_bytes += RECORD_BYTES;
                    }
                }
            }
        }
        applied
    }

    fn on_repair_tick(&mut self) {
        for s in 0..self.table.n_slices() {
            let _ = self.repair_slice(s, true);
        }
        if self.live_events > 0 {
            if let Some(iv) = self.params.repair_interval {
                self.push(self.now.saturating_add(iv.max(1)), Event::RepairTick);
            }
        }
    }

    /// End-of-run convergence: drain repairs until a full pass applies
    /// nothing (the value-level oracle runs on the converged state).
    fn drain_repairs(&mut self) {
        for _ in 0..4 {
            let mut total = 0u64;
            for s in 0..self.table.n_slices() {
                total += self.repair_slice(s, false);
            }
            if total == 0 {
                break;
            }
        }
    }

    fn sample_metrics(&mut self, last: bool) {
        let row_now = self.now;
        let dedup_hits: u64 = self.shards.iter().map(|s| s.dedup_hits).sum();
        let Some(sampler) = self.sampler.as_mut() else {
            return;
        };
        let c = &self.counters;
        let net = self.net.stats;
        let trips: u64 = self.breakers.iter().map(|b| b.trips).sum();
        let mut row = vec![
            Value::U64(c.arrivals),
            Value::U64(c.served_ok),
            Value::U64(c.served_degraded),
            Value::U64(c.shed_overload),
            Value::U64(c.shed_unavailable),
            Value::U64(c.deadline_exceeded),
            Value::U64(c.retries),
            Value::U64(c.hedges),
            Value::U64(c.duplicate_replies),
            Value::U64(trips),
            Value::U64(net.sent),
            Value::U64(net.dropped),
            Value::U64(net.reordered),
            Value::U64(c.acked_writes),
            Value::U64(c.stale_epoch_rejections),
            Value::U64(dedup_hits),
            Value::U64(c.repair_bytes),
            Value::U64(c.divergent_slices),
        ];
        for i in 0..self.shards.len() {
            let q = self.shards[i].queue_stats();
            row.push(Value::U64(u64::from(self.up[i])));
            row.push(Value::U64(self.inflight[i] as u64));
            row.push(Value::U64(self.shard_served[i]));
            row.push(Value::U64(q.rpq.max_depth));
            row.push(Value::U64(q.wpq.max_depth));
        }
        if last {
            sampler.record_final(row_now, row);
        } else {
            sampler.record(row_now, row);
        }
    }

    fn on_metrics_tick(&mut self) {
        self.sample_metrics(false);
        if self.live_events > 0 {
            if let Some(iv) = self.params.metrics_interval {
                self.push(self.now.saturating_add(iv.max(1)), Event::MetricsTick);
            }
        }
    }

    fn run_loop(&mut self) -> Result<(), ClusterError> {
        while let Some(((at, _), ev)) = self.events.pop_first() {
            self.now = at;
            if !matches!(ev, Event::MetricsTick | Event::RepairTick) {
                self.live_events -= 1;
            }
            match ev {
                Event::Arrival { req } => self.on_arrival(req),
                Event::DeliverReq { req, attempt } => self.on_deliver_req(req, attempt),
                Event::DeliverReply {
                    req,
                    attempt,
                    reply,
                } => self.on_deliver_reply(req, attempt, reply),
                Event::AttemptTimeout { req, attempt } => self.on_attempt_timeout(req, attempt),
                Event::RetryFire { req } => {
                    if !self.reqs[req].done {
                        self.launch(req);
                    }
                }
                Event::HedgeFire { req, attempt } => self.on_hedge(req, attempt),
                Event::DeadlineFire { req } => {
                    if !self.reqs[req].done {
                        self.finalize(req, Outcome::DeadlineExceeded);
                    }
                }
                Event::PowerFail {
                    shard,
                    outage,
                    survivor_bias,
                } => self.on_power_fail(shard, outage, survivor_bias)?,
                Event::RecoveryDone { shard } => self.on_recovery_done(shard),
                Event::MigrateStep => self.on_migrate_step(),
                Event::RepairTick => self.on_repair_tick(),
                Event::MetricsTick => self.on_metrics_tick(),
            }
        }
        Ok(())
    }

    fn into_report(mut self) -> ClusterReport {
        self.sample_metrics(true);
        // Converge replicas before the value-level oracle.
        self.drain_repairs();
        // Acked-write oracle, two layers: (1) record-level — every
        // (shard, seq) that acked must still hold the intact record in
        // its persistent log; (2) value-level — after convergence,
        // every *current* owner of the slice must index the acked value
        // (or a newer one).
        let mut lost_acked = 0u64;
        let mut stale_epoch_acks = 0u64;
        for w in &self.acked {
            if w.acks
                .iter()
                .any(|&(sh, seq)| !self.shards[sh].verify_record(seq, w.key, w.value))
            {
                lost_acked += 1;
                continue;
            }
            let owners = self.table.owners(w.slice);
            if owners
                .iter()
                .any(|&o| !matches!(self.shards[o].peek_value(w.key), Some(v) if v >= w.value))
            {
                lost_acked += 1;
            }
        }
        // Stale-epoch-ack oracle: every acking shard either still owns
        // the slice or handed it off cleanly (durable FlipRetire, which
        // the protocol only writes after the copy reached the head).
        for w in &self.acked {
            for &(sh, _) in &w.acks {
                if !self.shards[sh].owns(w.slice) && !self.shards[sh].retired_cleanly(w.slice) {
                    stale_epoch_acks += 1;
                }
            }
        }
        // Exactly-once ownership: the table is well-formed and every
        // shard's local view agrees with it.
        let mut ownership_consistent = self.table.ownership_ok();
        for s in 0..self.table.n_slices() {
            for i in 0..self.shards.len() {
                let should = self.table.owners(s).contains(&i);
                if self.shards[i].owns(s) != should {
                    ownership_consistent = false;
                }
            }
        }
        let duplicate_applies: u64 = self.shards.iter().map(|s| s.duplicate_req_ids()).sum();
        let dedup_hits: u64 = self.shards.iter().map(|s| s.dedup_hits).sum();
        let unanswered = self.reqs.iter().filter(|r| !r.done).count() as u64;
        let trips: u64 = self.breakers.iter().map(|b| b.trips).sum();
        let checkpoint_blobs = if self.sink_factory.is_some() {
            self.shards
                .iter_mut()
                .map(|s| s.checkpoint_encode())
                .collect()
        } else {
            Vec::new()
        };
        ClusterReport {
            arrivals: self.counters.arrivals,
            served_ok: self.counters.served_ok,
            served_degraded: self.counters.served_degraded,
            shed_overload: self.counters.shed_overload,
            shed_unavailable: self.counters.shed_unavailable,
            deadline_exceeded: self.counters.deadline_exceeded,
            retries: self.counters.retries,
            hedges: self.counters.hedges,
            duplicate_replies: self.counters.duplicate_replies,
            breaker_trips: trips,
            stale_epoch_rejections: self.counters.stale_epoch_rejections,
            dedup_hits,
            duplicate_applies,
            net: self.net.stats,
            acked_writes: self.counters.acked_writes,
            lost_acked,
            stale_epoch_acks,
            unanswered,
            recoveries: self.recoveries,
            migration: self.mig.as_ref().map(|m| m.report),
            migration_done: self.mig.as_ref().is_none_or(|m| m.done),
            repair_bytes: self.counters.repair_bytes,
            divergent_slices: self.counters.divergent_slices,
            ownership_consistent,
            epoch: self.table.epoch(),
            latency_g1: summarize(&self.lat_g1),
            latency_g2: summarize(&self.lat_g2),
            latency_degraded: summarize(&self.lat_degraded),
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
            cache_stale_rejects: self.cache.stale_rejects,
            shard_served: self.shard_served,
            sim_end: self.now,
            metrics_jsonl: self.sampler.as_ref().map(|s| s.to_jsonl()),
            checkpoint_blobs,
        }
    }
}

/// Run one cluster simulation to completion.
pub fn run(params: ClusterParams) -> Result<ClusterReport, ClusterError> {
    run_traced(params, None)
}

/// Run with an optional per-shard trace-sink factory (the divergence
/// witness taps every shard's machine, including post-recovery ones).
pub fn run_traced(
    params: ClusterParams,
    sink_factory: Option<&dyn Fn(usize) -> Box<dyn TraceSink>>,
) -> Result<ClusterReport, ClusterError> {
    let mut c = Cluster::new(params, sink_factory)?;
    c.preload()?;
    c.schedule_initial();
    c.run_loop()?;
    Ok(c.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ClusterFaultPlan;

    fn smoke_params() -> ClusterParams {
        ClusterParams {
            client: ClientConfig {
                preload_keys: 300,
                ops: 1_500,
                interarrival: 1_200,
                ..ClientConfig::default()
            },
            log_slots: 8_192,
            seed: 11,
            ..ClusterParams::default()
        }
    }

    #[test]
    fn fault_free_run_answers_everything() {
        let r = run(smoke_params()).expect("run");
        assert_eq!(r.arrivals, 1_500);
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.lost_acked, 0);
        assert_eq!(r.stale_epoch_acks, 0);
        assert!(r.ownership_consistent);
        assert!(
            r.availability() >= 0.999,
            "availability {}",
            r.availability()
        );
        assert!(r.served_ok > 0);
        assert!(r.latency_g1.count + r.latency_g2.count > 0);
    }

    #[test]
    fn power_fail_run_degrades_but_answers() {
        let mut p = smoke_params();
        p.fault = ClusterFaultPlan::power_fail_with_flap(0, 300_000, 150_000);
        let r = run(p).expect("run");
        assert_eq!(r.unanswered, 0, "no request may hang");
        assert_eq!(r.lost_acked, 0, "acked writes survive power fail");
        assert_eq!(r.recoveries.len(), 1);
        assert!(r.breaker_trips > 0, "breaker must trip during outage");
        assert!(
            r.availability() >= 0.99,
            "availability {} below bound",
            r.availability()
        );
        assert!(r.net.dropped > 0, "flap window should drop messages");
        assert!(r.epoch > 1, "recovery must bump the routing epoch");
    }

    #[test]
    fn same_seed_same_report() {
        let mut p = smoke_params();
        p.fault = ClusterFaultPlan::power_fail_with_flap(1, 250_000, 100_000);
        p.metrics_interval = Some(50_000);
        let a = run(p).expect("run a");
        let b = run(p).expect("run b");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.metrics_jsonl, b.metrics_jsonl);
    }

    #[test]
    fn overload_sheds_with_typed_rejections() {
        let mut p = smoke_params();
        p.client.interarrival = 10; // far past saturation
        p.client.ops = 3_000;
        p.queue_bound = 8;
        let r = run(p).expect("run");
        assert!(r.shed_overload > 0, "overload must shed");
        assert_eq!(r.unanswered, 0);
        assert!(r.availability() >= 0.99);
    }

    #[test]
    fn bad_params_are_typed() {
        let mut p = smoke_params();
        p.n_shards = 0;
        assert!(matches!(run(p), Err(ClusterError::BadParams(_))));
        let mut p = smoke_params();
        p.replication.replicas = 9; // > n_shards
        assert!(matches!(run(p), Err(ClusterError::BadParams(_))));
        let mut p = smoke_params();
        p.migration = Some(MigrationPlan::drain(0, 0, 1_000));
        assert!(matches!(run(p), Err(ClusterError::BadParams(_))));
    }

    #[test]
    fn replicated_quorum_survives_power_fail_and_repairs() {
        let mut p = smoke_params();
        p.replication = ReplicationParams {
            n_slices: 0,
            replicas: 3,
        };
        p.repair_interval = Some(100_000);
        p.fault = ClusterFaultPlan::power_fail_with_flap(1, 300_000, 150_000);
        let r = run(p).expect("run");
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.lost_acked, 0, "quorum acks survive a replica crash");
        assert_eq!(r.stale_epoch_acks, 0);
        assert!(r.ownership_consistent);
        assert_eq!(r.recoveries.len(), 1);
        assert!(
            r.availability() >= 0.99,
            "availability {} below bound",
            r.availability()
        );
        assert!(
            r.divergent_slices > 0,
            "the crashed replica must diverge and be found"
        );
        assert!(r.repair_bytes > 0, "divergence must be read-repaired");
    }

    #[test]
    fn migration_completes_fault_free() {
        let mut p = smoke_params();
        p.replication = ReplicationParams {
            n_slices: 8,
            replicas: 1,
        };
        p.migration = Some(MigrationPlan::drain(0, 2, 200_000));
        let r = run(p).expect("run");
        let m = r.migration.expect("migration report");
        assert!(r.migration_done, "drain must finish");
        assert_eq!(m.slices_moved, 2, "shard 0 owned slices 0 and 4");
        assert_eq!(m.slices_aborted, 0);
        assert!(m.records_copied > 0);
        assert!(m.control_records >= 2 * 4, "4 control records per slice");
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.lost_acked, 0);
        assert_eq!(r.stale_epoch_acks, 0);
        assert!(r.ownership_consistent);
        assert!(r.epoch > 1, "each flip bumps the epoch");
    }

    #[test]
    fn migration_source_crash_mid_copy_resumes() {
        let mut p = smoke_params();
        p.replication = ReplicationParams {
            n_slices: 8,
            replicas: 1,
        };
        p.migration = Some(MigrationPlan::drain(0, 2, 200_000));
        p.fault = ClusterFaultPlan::migration_fail_with_flap(
            MigrationPhase::Copy,
            MigrationFailTarget::Source,
            200_000,
            100_000,
        );
        let r = run(p).expect("run");
        let m = r.migration.expect("migration report");
        assert!(r.migration_done);
        assert!(m.copies_resumed >= 1, "source crash restarts the copy");
        assert_eq!(m.slices_moved, 2, "resume still drains both slices");
        assert_eq!(m.slices_aborted, 0);
        assert!(!r.recoveries.is_empty());
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.lost_acked, 0);
        assert_eq!(r.stale_epoch_acks, 0);
        assert!(r.ownership_consistent);
    }

    #[test]
    fn migration_dest_crash_mid_copy_aborts_cleanly() {
        let mut p = smoke_params();
        p.replication = ReplicationParams {
            n_slices: 8,
            replicas: 1,
        };
        p.migration = Some(MigrationPlan::drain(0, 2, 200_000));
        p.fault = ClusterFaultPlan::migration_fail_with_flap(
            MigrationPhase::Copy,
            MigrationFailTarget::Dest,
            200_000,
            100_000,
        );
        let r = run(p).expect("run");
        let m = r.migration.expect("migration report");
        assert!(r.migration_done);
        assert_eq!(m.slices_aborted, 1, "in-flight slice aborts");
        assert_eq!(m.slices_moved, 1, "the other slice still drains");
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.lost_acked, 0);
        assert_eq!(r.stale_epoch_acks, 0);
        assert!(r.ownership_consistent, "aborted slice stays with source");
    }

    #[test]
    fn torn_flip_commits_from_the_durable_log() {
        let mut p = smoke_params();
        p.replication = ReplicationParams {
            n_slices: 8,
            replicas: 1,
        };
        p.migration = Some(MigrationPlan::drain(0, 2, 200_000));
        p.fault = ClusterFaultPlan::migration_fail_with_flap(
            MigrationPhase::Flip,
            MigrationFailTarget::Both,
            200_000,
            100_000,
        );
        let r = run(p).expect("run");
        let m = r.migration.expect("migration report");
        assert!(r.migration_done);
        assert_eq!(
            m.flips_recovered, 1,
            "the torn flip must commit via FlipAcquire"
        );
        assert_eq!(m.slices_moved, 2);
        assert_eq!(m.slices_aborted, 0);
        assert_eq!(r.recoveries.len(), 2, "both participants crashed");
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.lost_acked, 0);
        assert_eq!(r.stale_epoch_acks, 0);
        assert!(r.ownership_consistent);
    }

    #[test]
    fn duplicate_deliveries_are_deduped_not_double_applied() {
        let mut p = smoke_params();
        p.client.read_frac = 0.3; // put-heavy so retries redeliver puts
        p.net.drop_prob = 0.20; // drop replies: shard applied, client retries
        let r = run(p).expect("run");
        assert!(
            r.dedup_hits > 0,
            "dropped acks must cause deduped redeliveries"
        );
        assert_eq!(
            r.duplicate_applies, 0,
            "no req-id may appear twice in any log"
        );
        assert_eq!(r.lost_acked, 0);
        assert_eq!(r.unanswered, 0);
    }
}
