//! The cluster event loop: router, shards, network, faults, metrics.
//!
//! A single-threaded discrete-event simulation over cluster ticks.
//! Events live in a `BTreeMap<(tick, seq), Event>` — insertion order
//! breaks ties, so the execution schedule is a pure function of the
//! parameters and seed. Shards are sequential state machines: a request
//! is served to completion at delivery-processing time; the shard's
//! `busy_until` horizon shapes reply latency, modeling queueing without
//! intra-shard concurrency.
//!
//! Every client request is *answered*: served (possibly degraded from
//! the front-cache), shed with a typed rejection (overload or
//! unavailable), or failed with a deadline error. A request that would
//! otherwise hang is cut off by its unconditional deadline event, so
//! `unanswered` can only be nonzero if the loop itself loses state —
//! which the determinism and failover tests would catch.

use std::collections::BTreeMap;

use obs::{Histogram, Sampler, Value};
use optane_core::{Generation, TraceSink};
use simbase::SplitMix64;

use crate::breaker::{Admission, CircuitBreaker};
use crate::cache::FrontCache;
use crate::fault::ClusterFaultPlan;
use crate::metrics::{cluster_registry, percentile};
use crate::net::{NetParams, NetSim, NetStats};
use crate::retry::{RetryPolicy, Ticks};
use crate::shard::{ShardConfig, ShardError, ShardOp, ShardReply, ShardServer};
use crate::workload::{ClientConfig, ClientGen};

/// Full cluster run parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterParams {
    /// Shard count; generations alternate G1/G2 starting at G1.
    pub n_shards: usize,
    /// Log slots per shard (size for preload + traffic headroom).
    pub log_slots: u64,
    pub client: ClientConfig,
    pub net: NetParams,
    pub retry: RetryPolicy,
    /// Hedge a read that has not replied after this many ticks
    /// (0 disables hedging).
    pub hedge_after: Ticks,
    /// End-to-end request deadline: the request is answered with a
    /// deadline error at `arrival + deadline` if nothing else resolved it.
    pub deadline: Ticks,
    /// Router admission bound: in-flight requests admitted per shard.
    pub queue_bound: usize,
    /// Breaker: consecutive failures to trip.
    pub breaker_threshold: u32,
    /// Breaker: ticks open before a half-open probe.
    pub breaker_cooldown: Ticks,
    /// DRAM front-cache capacity (entries).
    pub front_cache: usize,
    pub fault: ClusterFaultPlan,
    pub seed: u64,
    /// Metrics sampling interval in ticks (None = no series).
    pub metrics_interval: Option<Ticks>,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            n_shards: 4,
            log_slots: 64 * 1024,
            client: ClientConfig::default(),
            net: NetParams::default(),
            retry: RetryPolicy::default(),
            hedge_after: 20_000,
            deadline: 400_000,
            queue_bound: 64,
            breaker_threshold: 5,
            breaker_cooldown: 60_000,
            front_cache: 4_096,
            fault: ClusterFaultPlan::none(),
            seed: 0,
            metrics_interval: None,
        }
    }
}

/// Typed cluster-run failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    BadParams(&'static str),
    Shard(ShardError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BadParams(m) => write!(f, "bad cluster params: {m}"),
            ClusterError::Shard(e) => write!(f, "shard error: {e:?}"),
        }
    }
}

/// One shard recovery, as observed by the cluster.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    pub shard: usize,
    /// Power-drop instant.
    pub at: Ticks,
    /// Configured outage (reboot) ticks.
    pub outage: Ticks,
    /// Log replay cycles on the recovered machine.
    pub replay_cycles: u64,
    /// Records replayed into the rebuilt index.
    pub replayed: u64,
    /// Unacknowledged tail records lost (acked losses are counted
    /// separately by the oracle and must be zero).
    pub lost_tail: u64,
    /// Size of the crash image's uncertain set.
    pub uncertain_lines: u64,
    /// Total down time: outage + replay.
    pub total_ticks: Ticks,
}

/// Latency summary for one generation's served requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
    pub mean: f64,
}

fn summarize(h: &Histogram) -> LatencySummary {
    LatencySummary {
        count: h.count(),
        p50: percentile(h, 0.50),
        p99: percentile(h, 0.99),
        max: h.max(),
        mean: h.mean(),
    }
}

/// Everything one cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    pub arrivals: u64,
    pub served_ok: u64,
    pub served_degraded: u64,
    pub shed_overload: u64,
    pub shed_unavailable: u64,
    pub deadline_exceeded: u64,
    pub retries: u64,
    pub hedges: u64,
    pub duplicate_replies: u64,
    pub breaker_trips: u64,
    pub net: NetStats,
    pub acked_writes: u64,
    /// Acknowledged writes missing from the post-run persistent log.
    /// The ADR ack ordering makes this structurally zero; the failover
    /// proptest asserts it for arbitrary seeded fault schedules.
    pub lost_acked: u64,
    /// Requests never finalized (must be zero: every request is served,
    /// shed, or deadline-failed).
    pub unanswered: u64,
    pub recoveries: Vec<RecoveryReport>,
    pub latency_g1: LatencySummary,
    pub latency_g2: LatencySummary,
    pub latency_degraded: LatencySummary,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub shard_served: Vec<u64>,
    /// Simulated tick of the last processed event.
    pub sim_end: Ticks,
    /// Sampled fleet metrics series (JSONL), when enabled.
    pub metrics_jsonl: Option<String>,
    /// Final encoded machine checkpoints, one per shard — populated only
    /// on traced runs so the divergence witness can hash machine state.
    pub checkpoint_blobs: Vec<Vec<u8>>,
}

impl ClusterReport {
    /// Answered requests: everything that got a reply or a typed error.
    pub fn answered(&self) -> u64 {
        self.served_ok
            + self.served_degraded
            + self.shed_overload
            + self.shed_unavailable
            + self.deadline_exceeded
    }

    /// Fraction of arrivals answered (the e12 availability metric).
    pub fn availability(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            self.answered() as f64 / self.arrivals as f64
        }
    }

    /// Fraction of arrivals served with data (not shed, not failed).
    pub fn served_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            (self.served_ok + self.served_degraded) as f64 / self.arrivals as f64
        }
    }

    /// Deterministic plain-text availability report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let mut line = |l: String| {
            s.push_str(&l);
            s.push('\n');
        };
        line("cluster availability report".to_string());
        line(format!("arrivals: {}", self.arrivals));
        line(format!(
            "answered: {} (availability {:.4}%)",
            self.answered(),
            self.availability() * 100.0
        ));
        line(format!(
            "served_ok: {}  served_degraded: {}  shed_overload: {}  shed_unavailable: {}  deadline_exceeded: {}",
            self.served_ok,
            self.served_degraded,
            self.shed_overload,
            self.shed_unavailable,
            self.deadline_exceeded
        ));
        line(format!(
            "retries: {}  hedges: {}  duplicate_replies: {}  breaker_trips: {}",
            self.retries, self.hedges, self.duplicate_replies, self.breaker_trips
        ));
        line(format!(
            "net: sent {} dropped {} reordered {}",
            self.net.sent, self.net.dropped, self.net.reordered
        ));
        line(format!(
            "front_cache: hits {} misses {}",
            self.cache_hits, self.cache_misses
        ));
        for (i, served) in self.shard_served.iter().enumerate() {
            line(format!("shard {i}: served {served}"));
        }
        for r in &self.recoveries {
            line(format!(
                "recovery: shard {} power-fail at {} outage {} replay_cycles {} replayed {} lost_tail {} uncertain {} total {}",
                r.shard, r.at, r.outage, r.replay_cycles, r.replayed, r.lost_tail, r.uncertain_lines, r.total_ticks
            ));
        }
        let lat = |name: &str, l: &LatencySummary| {
            format!(
                "latency {name}: count {} p50 {} p99 {} max {} mean {:.1}",
                l.count, l.p50, l.p99, l.max, l.mean
            )
        };
        line(lat("G1", &self.latency_g1));
        line(lat("G2", &self.latency_g2));
        line(lat("degraded", &self.latency_degraded));
        line(format!("acked_writes: {}", self.acked_writes));
        line(format!(
            "acked-write loss: {} ({})",
            self.lost_acked,
            if self.lost_acked == 0 {
                "zero acknowledged-write loss"
            } else {
                "ACKED WRITES LOST"
            }
        ));
        line(format!("unanswered: {}", self.unanswered));
        line(format!("sim_end: {}", self.sim_end));
        s
    }
}

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    ServedOk { value: Option<u64> },
    ServedDegraded { value: u64 },
    ShedOverload,
    ShedUnavailable,
    DeadlineExceeded,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Client request hits the router (op pre-bound in `reqs`).
    Arrival { req: usize },
    /// Request attempt reaches the shard.
    DeliverReq { req: usize, attempt: u32 },
    /// Shard reply reaches the router.
    DeliverReply {
        req: usize,
        attempt: u32,
        reply: ReplyWire,
    },
    /// Attempt response window expired.
    AttemptTimeout { req: usize, attempt: u32 },
    /// Backoff elapsed: launch the next attempt.
    RetryFire { req: usize },
    /// Hedge window elapsed: maybe launch a duplicate read.
    HedgeFire { req: usize, attempt: u32 },
    /// Request deadline: answer with a typed failure if still open.
    DeadlineFire { req: usize },
    /// Fault plan: shard power drop.
    PowerFail { shard: usize },
    /// Recovered shard rejoins the fleet.
    RecoveryDone { shard: usize },
    /// Metrics sampling tick.
    MetricsTick,
}

/// Reply payload carried over the simulated network.
#[derive(Debug, Clone, Copy)]
enum ReplyWire {
    Value(Option<u64>),
    Acked { seq: u64 },
    LogFull,
}

struct ReqState {
    op: ShardOp,
    shard: usize,
    arrival: Ticks,
    attempts: u32,
    /// Per-attempt "no longer outstanding" flags (replied or timed out).
    settled: Vec<bool>,
    admitted: bool,
    done: bool,
}

/// An acknowledged write the oracle must find intact post-run.
#[derive(Debug, Clone, Copy)]
struct AckedWrite {
    shard: usize,
    seq: u64,
    key: u64,
    value: u64,
}

struct Counters {
    arrivals: u64,
    served_ok: u64,
    served_degraded: u64,
    shed_overload: u64,
    shed_unavailable: u64,
    deadline_exceeded: u64,
    retries: u64,
    hedges: u64,
    duplicate_replies: u64,
    acked_writes: u64,
}

/// The running cluster. Construct once per run via [`run`] /
/// [`run_traced`]; all state is owned, nothing is shared.
struct Cluster<'a> {
    params: ClusterParams,
    shards: Vec<ShardServer>,
    up: Vec<bool>,
    busy_until: Vec<Ticks>,
    inflight: Vec<usize>,
    breakers: Vec<CircuitBreaker>,
    shard_served: Vec<u64>,
    net: NetSim,
    cache: FrontCache,
    gen: ClientGen,
    reqs: Vec<ReqState>,
    acked: Vec<AckedWrite>,
    counters: Counters,
    events: BTreeMap<(Ticks, u64), Event>,
    next_seq: u64,
    /// Heap entries that are not metrics ticks — when this hits zero the
    /// sampler stops rescheduling itself and the run drains.
    live_events: usize,
    backoff_rng: SplitMix64,
    lat_g1: Histogram,
    lat_g2: Histogram,
    lat_degraded: Histogram,
    recoveries: Vec<RecoveryReport>,
    sampler: Option<Sampler>,
    sink_factory: Option<&'a dyn Fn(usize) -> Box<dyn TraceSink>>,
    now: Ticks,
}

/// Generation of shard `i` under the alternating layout.
pub fn shard_generation(i: usize) -> Generation {
    if i.is_multiple_of(2) {
        Generation::G1
    } else {
        Generation::G2
    }
}

impl<'a> Cluster<'a> {
    fn new(
        params: ClusterParams,
        sink_factory: Option<&'a dyn Fn(usize) -> Box<dyn TraceSink>>,
    ) -> Result<Self, ClusterError> {
        if params.n_shards == 0 {
            return Err(ClusterError::BadParams("n_shards must be > 0"));
        }
        if params.queue_bound == 0 {
            return Err(ClusterError::BadParams("queue_bound must be > 0"));
        }
        if params.retry.max_attempts == 0 {
            return Err(ClusterError::BadParams("max_attempts must be > 0"));
        }
        if params.deadline == 0 {
            return Err(ClusterError::BadParams("deadline must be > 0"));
        }
        if let Some(pf) = params.fault.power_fail {
            if pf.shard >= params.n_shards {
                return Err(ClusterError::BadParams("fault shard out of range"));
            }
        }
        let mut shards = Vec::with_capacity(params.n_shards);
        for i in 0..params.n_shards {
            let mut s = ShardServer::new(ShardConfig {
                id: i,
                gen: shard_generation(i),
                log_slots: params.log_slots,
                seed: params.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            });
            if let Some(f) = sink_factory {
                s.set_trace_sink(f(i));
            }
            shards.push(s);
        }
        let mut net = NetSim::new(params.net, params.seed);
        if let Some(d) = params.fault.net_degrade {
            net.set_degrade(d.start, d.end, d.params);
        }
        let n = params.n_shards;
        Ok(Cluster {
            shards,
            up: vec![true; n],
            busy_until: vec![0; n],
            inflight: vec![0; n],
            breakers: vec![
                CircuitBreaker::new(params.breaker_threshold, params.breaker_cooldown);
                n
            ],
            shard_served: vec![0; n],
            net,
            cache: FrontCache::new(params.front_cache),
            gen: ClientGen::new(ClientConfig {
                seed: params.client.seed ^ params.seed,
                ..params.client
            }),
            reqs: Vec::new(),
            acked: Vec::new(),
            counters: Counters {
                arrivals: 0,
                served_ok: 0,
                served_degraded: 0,
                shed_overload: 0,
                shed_unavailable: 0,
                deadline_exceeded: 0,
                retries: 0,
                hedges: 0,
                duplicate_replies: 0,
                acked_writes: 0,
            },
            events: BTreeMap::new(),
            next_seq: 0,
            live_events: 0,
            backoff_rng: SplitMix64::new(params.seed ^ 0x0062_6163_6b6f_6666),
            lat_g1: Histogram::new(),
            lat_g2: Histogram::new(),
            lat_degraded: Histogram::new(),
            recoveries: Vec::new(),
            sampler: params.metrics_interval.map(|iv| {
                let mut s = Sampler::new(cluster_registry(n), iv.max(1));
                s.set_context(format!(
                    "cluster seed={} ia={}",
                    params.seed, params.client.interarrival
                ));
                s
            }),
            sink_factory,
            params,
            now: 0,
        })
    }

    fn push(&mut self, at: Ticks, ev: Event) {
        if !matches!(ev, Event::MetricsTick) {
            self.live_events += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.insert((at.max(self.now), seq), ev);
    }

    fn preload(&mut self) -> Result<(), ClusterError> {
        for _ in 0..self.params.client.preload_keys {
            let key = self.gen.next_preload_key();
            let shard = (key % self.params.n_shards as u64) as usize;
            match self.shards[shard].preload(key, key) {
                Ok(()) => {}
                Err(e) => return Err(ClusterError::Shard(e)),
            }
        }
        Ok(())
    }

    fn schedule_initial(&mut self) {
        if let Some((at, op)) = self.gen.next_arrival() {
            let req = self.new_req(at, op);
            self.push(at, Event::Arrival { req });
        }
        if let Some(pf) = self.params.fault.power_fail {
            self.push(pf.at, Event::PowerFail { shard: pf.shard });
        }
        if let Some(iv) = self.params.metrics_interval {
            self.push(iv.max(1), Event::MetricsTick);
        }
    }

    fn new_req(&mut self, arrival: Ticks, op: ShardOp) -> usize {
        let shard = (op.key() % self.params.n_shards as u64) as usize;
        self.reqs.push(ReqState {
            op,
            shard,
            arrival,
            attempts: 0,
            settled: Vec::new(),
            admitted: false,
            done: false,
        });
        self.reqs.len() - 1
    }

    fn finalize(&mut self, req: usize, outcome: Outcome) {
        let (shard, arrival, admitted, op) = {
            let rs = &mut self.reqs[req];
            if rs.done {
                return;
            }
            rs.done = true;
            (rs.shard, rs.arrival, rs.admitted, rs.op)
        };
        if admitted {
            self.inflight[shard] = self.inflight[shard].saturating_sub(1);
        }
        let latency = self.now.saturating_sub(arrival);
        match outcome {
            Outcome::ServedOk { value } => {
                self.counters.served_ok += 1;
                match self.shards[shard].generation() {
                    Generation::G1 => self.lat_g1.record(latency.max(1)),
                    Generation::G2 => self.lat_g2.record(latency.max(1)),
                }
                match op {
                    ShardOp::Put { key, value } => self.cache.put(key, value),
                    ShardOp::Get { key } => {
                        if let Some(v) = value {
                            self.cache.put(key, v);
                        }
                    }
                }
            }
            Outcome::ServedDegraded { .. } => {
                self.counters.served_degraded += 1;
                self.lat_degraded.record(latency.max(1));
            }
            Outcome::ShedOverload => self.counters.shed_overload += 1,
            Outcome::ShedUnavailable => self.counters.shed_unavailable += 1,
            Outcome::DeadlineExceeded => self.counters.deadline_exceeded += 1,
        }
    }

    /// Degraded path while the shard's breaker rejects: reads may hit
    /// the DRAM front-cache, everything else is a typed unavailable.
    fn degraded_path(&mut self, req: usize) {
        let op = self.reqs[req].op;
        match op {
            ShardOp::Get { key } => match self.cache.get(key) {
                Some(v) => self.finalize(req, Outcome::ServedDegraded { value: v }),
                None => self.finalize(req, Outcome::ShedUnavailable),
            },
            ShardOp::Put { .. } => self.finalize(req, Outcome::ShedUnavailable),
        }
    }

    fn launch_attempt(&mut self, req: usize) {
        let (shard, is_get) = {
            let rs = &mut self.reqs[req];
            rs.attempts += 1;
            rs.settled.push(false);
            (rs.shard, !rs.op.is_put())
        };
        let attempt = self.reqs[req].attempts;
        match self.breakers[shard].admit(self.now) {
            Admission::Reject => {
                self.degraded_path(req);
            }
            Admission::Normal | Admission::Probe => {
                if let Some(t) = self.net.transit(self.now) {
                    self.push(t, Event::DeliverReq { req, attempt });
                }
                self.push(
                    self.now.saturating_add(self.params.retry.attempt_timeout),
                    Event::AttemptTimeout { req, attempt },
                );
                if is_get && self.params.hedge_after > 0 && self.params.retry.may_retry(attempt) {
                    self.push(
                        self.now.saturating_add(self.params.hedge_after),
                        Event::HedgeFire { req, attempt },
                    );
                }
            }
        }
    }

    fn on_arrival(&mut self, req: usize) {
        self.counters.arrivals += 1;
        // Next arrival is pulled lazily so the generator stream order
        // matches the event order exactly.
        if let Some((at, op)) = self.gen.next_arrival() {
            let next = self.new_req(at, op);
            self.push(at, Event::Arrival { req: next });
        }
        self.push(
            self.now.saturating_add(self.params.deadline),
            Event::DeadlineFire { req },
        );
        let shard = self.reqs[req].shard;
        if self.inflight[shard] >= self.params.queue_bound {
            self.finalize(req, Outcome::ShedOverload);
            return;
        }
        self.inflight[shard] += 1;
        self.reqs[req].admitted = true;
        self.launch_attempt(req);
    }

    fn on_deliver_req(&mut self, req: usize, attempt: u32) {
        if self.reqs[req].done || self.reqs[req].settled[attempt as usize - 1] {
            return;
        }
        let shard = self.reqs[req].shard;
        if !self.up[shard] {
            // Delivery into a powered-off shard is lost; the attempt
            // timeout turns this into a breaker failure.
            return;
        }
        let op = self.reqs[req].op;
        let start = self.now.max(self.busy_until[shard]);
        let (reply, cycles) = self.shards[shard].serve(op);
        self.shard_served[shard] += 1;
        self.busy_until[shard] = start.saturating_add(cycles.max(1));
        let wire = match reply {
            Ok(ShardReply::Value(v)) => ReplyWire::Value(v),
            Ok(ShardReply::Acked { seq }) => ReplyWire::Acked { seq },
            Err(ShardError::LogFull) => ReplyWire::LogFull,
            Err(ShardError::SnapshotRoundTrip) => ReplyWire::LogFull,
        };
        if let Some(t) = self.net.transit(self.busy_until[shard]) {
            self.push(
                t,
                Event::DeliverReply {
                    req,
                    attempt,
                    reply: wire,
                },
            );
        }
    }

    fn on_deliver_reply(&mut self, req: usize, attempt: u32, reply: ReplyWire) {
        let shard = self.reqs[req].shard;
        if self.reqs[req].done || self.reqs[req].settled[attempt as usize - 1] {
            // The request already completed or this attempt already
            // timed out: a late duplicate.
            self.counters.duplicate_replies += 1;
            return;
        }
        self.reqs[req].settled[attempt as usize - 1] = true;
        self.breakers[shard].on_success();
        match reply {
            ReplyWire::Value(v) => self.finalize(req, Outcome::ServedOk { value: v }),
            ReplyWire::Acked { seq } => {
                if let ShardOp::Put { key, value } = self.reqs[req].op {
                    self.acked.push(AckedWrite {
                        shard,
                        seq,
                        key,
                        value,
                    });
                    self.counters.acked_writes += 1;
                }
                self.finalize(req, Outcome::ServedOk { value: None });
            }
            ReplyWire::LogFull => self.finalize(req, Outcome::ShedUnavailable),
        }
    }

    fn on_attempt_timeout(&mut self, req: usize, attempt: u32) {
        if self.reqs[req].done || self.reqs[req].settled[attempt as usize - 1] {
            return;
        }
        self.reqs[req].settled[attempt as usize - 1] = true;
        let shard = self.reqs[req].shard;
        self.breakers[shard].on_failure(self.now);
        let attempts = self.reqs[req].attempts;
        if self.params.retry.may_retry(attempts) {
            self.counters.retries += 1;
            let backoff = self
                .params
                .retry
                .backoff_after(attempts, &mut self.backoff_rng);
            self.push(self.now.saturating_add(backoff), Event::RetryFire { req });
        }
        // No retry budget: the request waits for its deadline event,
        // which answers it with a typed failure.
    }

    fn on_hedge(&mut self, req: usize, attempt: u32) {
        if self.reqs[req].done || self.reqs[req].settled[attempt as usize - 1] {
            return;
        }
        if self.params.retry.may_retry(self.reqs[req].attempts) {
            self.counters.hedges += 1;
            self.launch_attempt(req);
        }
    }

    fn on_power_fail(&mut self, shard: usize) -> Result<(), ClusterError> {
        if !self.up[shard] {
            return Ok(());
        }
        let pf = match self.params.fault.power_fail {
            Some(pf) => pf,
            None => return Ok(()),
        };
        self.up[shard] = false;
        let survivor_seed = self.params.seed ^ ((shard as u64 + 1) << 32) ^ 0x70_66;
        let outcome = match self.shards[shard].crash_and_recover(survivor_seed, pf.survivor_bias) {
            Ok(o) => o,
            Err(e) => return Err(ClusterError::Shard(e)),
        };
        // Re-arm the witness tap on the recovered machine if tracing.
        if let Some(f) = self.sink_factory {
            self.shards[shard].set_trace_sink(f(shard));
        }
        let total = pf.outage.saturating_add(outcome.replay_cycles);
        self.recoveries.push(RecoveryReport {
            shard,
            at: self.now,
            outage: pf.outage,
            replay_cycles: outcome.replay_cycles,
            replayed: outcome.replayed,
            lost_tail: outcome.lost_tail,
            uncertain_lines: outcome.uncertain_lines,
            total_ticks: total,
        });
        self.push(
            self.now.saturating_add(total),
            Event::RecoveryDone { shard },
        );
        Ok(())
    }

    fn sample_metrics(&mut self, last: bool) {
        let row_now = self.now;
        let Some(sampler) = self.sampler.as_mut() else {
            return;
        };
        let c = &self.counters;
        let net = self.net.stats;
        let trips: u64 = self.breakers.iter().map(|b| b.trips).sum();
        let mut row = vec![
            Value::U64(c.arrivals),
            Value::U64(c.served_ok),
            Value::U64(c.served_degraded),
            Value::U64(c.shed_overload),
            Value::U64(c.shed_unavailable),
            Value::U64(c.deadline_exceeded),
            Value::U64(c.retries),
            Value::U64(c.hedges),
            Value::U64(c.duplicate_replies),
            Value::U64(trips),
            Value::U64(net.sent),
            Value::U64(net.dropped),
            Value::U64(net.reordered),
            Value::U64(c.acked_writes),
        ];
        for i in 0..self.shards.len() {
            let q = self.shards[i].queue_stats();
            row.push(Value::U64(u64::from(self.up[i])));
            row.push(Value::U64(self.inflight[i] as u64));
            row.push(Value::U64(self.shard_served[i]));
            row.push(Value::U64(q.rpq.max_depth));
            row.push(Value::U64(q.wpq.max_depth));
        }
        if last {
            sampler.record_final(row_now, row);
        } else {
            sampler.record(row_now, row);
        }
    }

    fn on_metrics_tick(&mut self) {
        self.sample_metrics(false);
        if self.live_events > 0 {
            if let Some(iv) = self.params.metrics_interval {
                self.push(self.now.saturating_add(iv.max(1)), Event::MetricsTick);
            }
        }
    }

    fn run_loop(&mut self) -> Result<(), ClusterError> {
        while let Some(((at, _), ev)) = self.events.pop_first() {
            self.now = at;
            if !matches!(ev, Event::MetricsTick) {
                self.live_events -= 1;
            }
            match ev {
                Event::Arrival { req } => self.on_arrival(req),
                Event::DeliverReq { req, attempt } => self.on_deliver_req(req, attempt),
                Event::DeliverReply {
                    req,
                    attempt,
                    reply,
                } => self.on_deliver_reply(req, attempt, reply),
                Event::AttemptTimeout { req, attempt } => self.on_attempt_timeout(req, attempt),
                Event::RetryFire { req } => {
                    if !self.reqs[req].done {
                        self.launch_attempt(req);
                    }
                }
                Event::HedgeFire { req, attempt } => self.on_hedge(req, attempt),
                Event::DeadlineFire { req } => {
                    if !self.reqs[req].done {
                        self.finalize(req, Outcome::DeadlineExceeded);
                    }
                }
                Event::PowerFail { shard } => self.on_power_fail(shard)?,
                Event::RecoveryDone { shard } => self.up[shard] = true,
                Event::MetricsTick => self.on_metrics_tick(),
            }
        }
        Ok(())
    }

    fn into_report(mut self) -> ClusterReport {
        self.sample_metrics(true);
        // Acked-write oracle: every acknowledged record must be intact
        // in its shard's persistent log, post-faults.
        let lost_acked = self
            .acked
            .iter()
            .filter(|w| !self.shards[w.shard].verify_record(w.seq, w.key, w.value))
            .count() as u64;
        let unanswered = self.reqs.iter().filter(|r| !r.done).count() as u64;
        let trips: u64 = self.breakers.iter().map(|b| b.trips).sum();
        let checkpoint_blobs = if self.sink_factory.is_some() {
            self.shards
                .iter_mut()
                .map(|s| s.checkpoint_encode())
                .collect()
        } else {
            Vec::new()
        };
        ClusterReport {
            arrivals: self.counters.arrivals,
            served_ok: self.counters.served_ok,
            served_degraded: self.counters.served_degraded,
            shed_overload: self.counters.shed_overload,
            shed_unavailable: self.counters.shed_unavailable,
            deadline_exceeded: self.counters.deadline_exceeded,
            retries: self.counters.retries,
            hedges: self.counters.hedges,
            duplicate_replies: self.counters.duplicate_replies,
            breaker_trips: trips,
            net: self.net.stats,
            acked_writes: self.counters.acked_writes,
            lost_acked,
            unanswered,
            recoveries: self.recoveries,
            latency_g1: summarize(&self.lat_g1),
            latency_g2: summarize(&self.lat_g2),
            latency_degraded: summarize(&self.lat_degraded),
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
            shard_served: self.shard_served,
            sim_end: self.now,
            metrics_jsonl: self.sampler.as_ref().map(|s| s.to_jsonl()),
            checkpoint_blobs,
        }
    }
}

/// Run one cluster simulation to completion.
pub fn run(params: ClusterParams) -> Result<ClusterReport, ClusterError> {
    run_traced(params, None)
}

/// Run with an optional per-shard trace-sink factory (the divergence
/// witness taps every shard's machine, including post-recovery ones).
pub fn run_traced(
    params: ClusterParams,
    sink_factory: Option<&dyn Fn(usize) -> Box<dyn TraceSink>>,
) -> Result<ClusterReport, ClusterError> {
    let mut c = Cluster::new(params, sink_factory)?;
    c.preload()?;
    c.schedule_initial();
    c.run_loop()?;
    Ok(c.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ClusterFaultPlan;

    fn smoke_params() -> ClusterParams {
        ClusterParams {
            client: ClientConfig {
                preload_keys: 300,
                ops: 1_500,
                interarrival: 1_200,
                ..ClientConfig::default()
            },
            log_slots: 8_192,
            seed: 11,
            ..ClusterParams::default()
        }
    }

    #[test]
    fn fault_free_run_answers_everything() {
        let r = run(smoke_params()).expect("run");
        assert_eq!(r.arrivals, 1_500);
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.lost_acked, 0);
        assert!(
            r.availability() >= 0.999,
            "availability {}",
            r.availability()
        );
        assert!(r.served_ok > 0);
        assert!(r.latency_g1.count + r.latency_g2.count > 0);
    }

    #[test]
    fn power_fail_run_degrades_but_answers() {
        let mut p = smoke_params();
        p.fault = ClusterFaultPlan::power_fail_with_flap(0, 300_000, 150_000);
        let r = run(p).expect("run");
        assert_eq!(r.unanswered, 0, "no request may hang");
        assert_eq!(r.lost_acked, 0, "acked writes survive power fail");
        assert_eq!(r.recoveries.len(), 1);
        assert!(r.breaker_trips > 0, "breaker must trip during outage");
        assert!(
            r.availability() >= 0.99,
            "availability {} below bound",
            r.availability()
        );
        assert!(r.net.dropped > 0, "flap window should drop messages");
    }

    #[test]
    fn same_seed_same_report() {
        let mut p = smoke_params();
        p.fault = ClusterFaultPlan::power_fail_with_flap(1, 250_000, 100_000);
        p.metrics_interval = Some(50_000);
        let a = run(p).expect("run a");
        let b = run(p).expect("run b");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.metrics_jsonl, b.metrics_jsonl);
    }

    #[test]
    fn overload_sheds_with_typed_rejections() {
        let mut p = smoke_params();
        p.client.interarrival = 10; // far past saturation
        p.client.ops = 3_000;
        p.queue_bound = 8;
        let r = run(p).expect("run");
        assert!(r.shed_overload > 0, "overload must shed");
        assert_eq!(r.unanswered, 0);
        assert!(r.availability() >= 0.99);
    }

    #[test]
    fn bad_params_are_typed() {
        let mut p = smoke_params();
        p.n_shards = 0;
        assert!(matches!(run(p), Err(ClusterError::BadParams(_))));
    }
}
