//! Open-loop zipfian client generator.
//!
//! Open-loop means arrivals come from the clock, not from completions:
//! request N+1 arrives `interarrival` (jittered) ticks after request N
//! whether or not N has finished. Under overload the router's bounded
//! queues fill and admission control sheds — which is the behavior the
//! e12 availability curve measures. Closed-loop generators hide that
//! regime entirely.

use simbase::SplitMix64;
use workloads::{KeyDistribution, OpKind, OpMix, YcsbGenerator};

use crate::retry::Ticks;
use crate::shard::ShardOp;

/// Client generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Keys preloaded before traffic starts.
    pub preload_keys: u64,
    /// Requests generated during the run.
    pub ops: u64,
    /// Mean ticks between arrivals (offered load = 1/interarrival).
    pub interarrival: Ticks,
    /// Zipfian skew (0.99 = classic YCSB).
    pub theta: f64,
    /// Read fraction of the mix (rest are updates).
    pub read_frac: f64,
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            preload_keys: 2_000,
            ops: 10_000,
            interarrival: 1_500,
            theta: YcsbGenerator::ZIPFIAN_THETA,
            read_frac: 0.7,
            seed: 0,
        }
    }
}

/// Emits `(arrival_tick, ShardOp)` pairs, deterministically per seed.
pub struct ClientGen {
    gen: YcsbGenerator,
    mix: OpMix,
    cfg: ClientConfig,
    rng: SplitMix64,
    next_arrival: Ticks,
    emitted: u64,
    /// Monotonically increasing value payload: makes every Put unique so
    /// the acked-write oracle can detect value-level loss, not just
    /// key-level. Starts above `preload_keys` so client values always
    /// beat preload values (value = key) under last-writer-wins.
    next_value: u64,
}

impl ClientGen {
    pub fn new(cfg: ClientConfig) -> Self {
        let gen = YcsbGenerator::new(
            cfg.seed ^ 0x636c_6965_6e74,
            KeyDistribution::Zipfian(cfg.theta),
            cfg.preload_keys,
        );
        let read = cfg.read_frac.clamp(0.0, 1.0);
        ClientGen {
            gen,
            mix: OpMix {
                insert: 0.0,
                read,
                update: 1.0 - read,
            },
            cfg,
            rng: SplitMix64::new(cfg.seed ^ 0x6172_7269_7665),
            next_arrival: 0,
            emitted: 0,
            next_value: cfg.preload_keys + 1,
        }
    }

    /// Preload key sequence (call exactly `preload_keys` times before
    /// traffic; mirrors YCSB's load phase).
    pub fn next_preload_key(&mut self) -> u64 {
        self.gen.next_insert_key()
    }

    /// Next request, or `None` once `ops` have been emitted.
    pub fn next_arrival(&mut self) -> Option<(Ticks, ShardOp)> {
        if self.emitted >= self.cfg.ops {
            return None;
        }
        self.emitted += 1;
        let at = self.next_arrival;
        // Jittered open-loop spacing: uniform in [0.5x, 1.5x) of the
        // mean, so bursts and lulls both occur.
        let base = self.cfg.interarrival.max(1);
        let gap = base / 2 + self.rng.gen_range(base.max(1));
        self.next_arrival = at.saturating_add(gap.max(1));
        let (kind, key) = self.gen.next_op(&self.mix);
        let op = match kind {
            OpKind::Read => ShardOp::Get { key },
            OpKind::Insert | OpKind::Update => {
                let value = self.next_value;
                self.next_value += 1;
                ShardOp::Put { key, value }
            }
        };
        Some((at, op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_ops_requests_in_time_order() {
        let mut g = ClientGen::new(ClientConfig {
            ops: 100,
            ..ClientConfig::default()
        });
        let mut last = 0;
        let mut n = 0;
        while let Some((at, _)) = g.next_arrival() {
            assert!(at >= last, "arrivals must be monotone");
            last = at;
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = ClientConfig {
            ops: 200,
            seed: 9,
            ..ClientConfig::default()
        };
        let mut a = ClientGen::new(cfg);
        let mut b = ClientGen::new(cfg);
        loop {
            let (x, y) = (a.next_arrival(), b.next_arrival());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn put_values_are_unique() {
        let mut g = ClientGen::new(ClientConfig {
            ops: 500,
            read_frac: 0.0,
            ..ClientConfig::default()
        });
        let mut seen = std::collections::BTreeSet::new();
        while let Some((_, op)) = g.next_arrival() {
            if let ShardOp::Put { value, .. } = op {
                assert!(seen.insert(value), "duplicate put value {value}");
            }
        }
    }
}
