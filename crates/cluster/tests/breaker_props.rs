//! Property: the circuit breaker never admits work through `Open`, and
//! every reintegration goes through exactly one half-open probe.
//!
//! The proptest drives a [`CircuitBreaker`] with arbitrary sequences of
//! admissions, successes, failures, and clock advances, checking the
//! safety invariants after every step:
//!
//! 1. **Never through Open**: while the state is `Open` and the
//!    cooldown has not elapsed, `admit` always rejects — no attempt
//!    (and so no ack) can flow through a tripped breaker.
//! 2. **Exactly one probe**: once the cooldown elapses, the first
//!    admission is the single `Probe`; every further admission rejects
//!    until that probe resolves (success closes, failure re-opens).
//!    Two probes can never be in flight.
//! 3. **Reintegration only via probe success**: the only path from
//!    tripped back to `Closed` is a success outcome while half-open —
//!    the breaker can never silently self-heal.

use cluster::{Admission, BreakerState, CircuitBreaker};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Ask for an admission at the current clock.
    Admit,
    /// Report the oldest unresolved admitted attempt as a success.
    Success,
    /// Report it as a failure.
    Failure,
    /// Advance the clock.
    Advance(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Admit),
        2 => Just(Op::Success),
        3 => Just(Op::Failure),
        2 => (1u16..5_000).prop_map(Op::Advance),
    ]
}

fn check_sequence(threshold: u32, cooldown: u64, ops: &[Op]) {
    let mut b = CircuitBreaker::new(threshold, cooldown);
    let mut now = 0u64;
    // Probe currently in flight (admitted half-open, not yet resolved).
    let mut probe_open = false;
    // Set when the breaker trips; cleared only by a probe success. While
    // set, reaching Closed any other way is a reintegration violation.
    let mut tripped = false;
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Advance(dt) => now += dt as u64,
            Op::Admit => {
                let pre = b.state();
                let adm = b.admit(now);
                match pre {
                    BreakerState::Open { until } if now < until => {
                        assert_eq!(
                            adm,
                            Admission::Reject,
                            "step {i}: admission through Open (now={now}, until={until})"
                        );
                    }
                    BreakerState::Open { .. } | BreakerState::HalfOpen => {
                        // Cooldown elapsed (or already half-open): the
                        // single probe, or a reject while it's in flight.
                        if probe_open {
                            assert_eq!(
                                adm,
                                Admission::Reject,
                                "step {i}: second probe admitted while one is in flight"
                            );
                        } else {
                            assert_eq!(
                                adm,
                                Admission::Probe,
                                "step {i}: first half-open admission must probe"
                            );
                            probe_open = true;
                        }
                    }
                    BreakerState::Closed => {
                        assert_eq!(
                            adm,
                            Admission::Normal,
                            "step {i}: closed breaker must admit"
                        );
                    }
                }
            }
            Op::Success => {
                // A genuine success (probe or late reply from a live
                // shard) is the one sanctioned path back to Closed.
                b.on_success();
                probe_open = false;
                tripped = false;
                assert_eq!(
                    b.state(),
                    BreakerState::Closed,
                    "step {i}: success must close the breaker"
                );
            }
            Op::Failure => {
                b.on_failure(now);
                probe_open = false;
                if matches!(b.state(), BreakerState::Open { .. }) {
                    tripped = true;
                }
            }
        }
        // Global invariant: a tripped breaker whose cooldown is pending
        // is never Closed without a success having intervened.
        if tripped {
            assert!(
                !matches!(b.state(), BreakerState::Closed),
                "step {i}: breaker closed without reintegration"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_sequences_respect_open_and_probe_invariants(
        threshold in 1u32..6,
        cooldown in 1u64..10_000,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        check_sequence(threshold, cooldown, &ops);
    }
}

/// Pinned reintegration walk: trip, wait out the cooldown, verify the
/// probe is singular, fail it, wait again, succeed it, and confirm the
/// breaker is fully closed (the exact sequence the router runs when a
/// power-failed shard comes back).
#[test]
fn reintegration_is_exactly_one_probe() {
    let mut b = CircuitBreaker::new(2, 1_000);
    b.on_failure(10);
    b.on_failure(20);
    assert!(matches!(b.state(), BreakerState::Open { .. }));
    // Open window: everything rejected.
    for t in [21, 500, 1_019] {
        assert_eq!(b.admit(t), Admission::Reject, "reject at {t}");
    }
    // Cooldown over: one probe, then rejects while it's in flight.
    assert_eq!(b.admit(1_020), Admission::Probe);
    assert_eq!(b.admit(1_021), Admission::Reject);
    assert_eq!(b.admit(2_000), Admission::Reject);
    // Probe fails: another full cooldown, then a fresh single probe.
    b.on_failure(2_100);
    assert_eq!(b.admit(2_101), Admission::Reject);
    assert_eq!(b.admit(3_100), Admission::Probe);
    assert_eq!(b.admit(3_101), Admission::Reject);
    // Probe succeeds: closed, traffic flows, streak forgotten.
    b.on_success();
    assert_eq!(b.state(), BreakerState::Closed);
    assert_eq!(b.admit(3_102), Admission::Normal);
    assert_eq!(b.trips, 2);
}
