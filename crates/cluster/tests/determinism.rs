//! In-process determinism: two cluster runs at the same seed — faults,
//! hedges, metrics series and all — produce byte-identical reports.
//! (The cross-process half of this story is `repro divergence e12`.)

use cluster::{ClientConfig, ClusterFaultPlan, ClusterParams};

fn params(seed: u64) -> ClusterParams {
    ClusterParams {
        client: ClientConfig {
            preload_keys: 250,
            ops: 1_200,
            interarrival: 1_000,
            ..ClientConfig::default()
        },
        log_slots: 8_192,
        fault: ClusterFaultPlan::power_fail_with_flap(1, 200_000, 120_000),
        metrics_interval: Some(40_000),
        seed,
        ..ClusterParams::default()
    }
}

#[test]
fn same_seed_byte_identical_report_and_metrics() {
    for seed in [0u64, 7, 0xfeed_f00d] {
        let a = cluster::run(params(seed)).expect("run a");
        let b = cluster::run(params(seed)).expect("run b");
        assert_eq!(a.render(), b.render(), "report diverged at seed {seed}");
        assert_eq!(
            a.metrics_jsonl, b.metrics_jsonl,
            "metrics series diverged at seed {seed}"
        );
    }
}

#[test]
fn different_seeds_actually_differ() {
    let a = cluster::run(params(1)).expect("run a");
    let b = cluster::run(params(2)).expect("run b");
    assert_ne!(
        a.render(),
        b.render(),
        "distinct seeds should produce distinct traffic"
    );
}
