//! Property: any seeded cluster fault schedule yields zero
//! acknowledged-write loss after recovery, and every request is
//! answered (served, shed, or deadline-failed — never hung).
//!
//! The proptest draws the whole fault surface — run seed, power-fail
//! instant and outage, survivor bias for the crash image's uncertain
//! overlay, and network drop/reorder probabilities — and runs a full
//! cluster simulation through power-fail + recovery + reintegration.
//! The acked-write oracle (`ClusterReport::lost_acked`) then checks
//! every client-acknowledged Put against the shard's post-recovery
//! persistent log. ADR ack ordering (`store_full_cacheline` + `clwb` +
//! `sfence` before the reply) makes loss structurally impossible; this
//! test pins that theorem against arbitrary schedules.

use cluster::fault::{NetDegrade, ShardPowerFail};
use cluster::net::DegradeParams;
use cluster::{ClientConfig, ClusterFaultPlan, ClusterParams, NetParams};
use proptest::prelude::*;

fn run_schedule(
    seed: u64,
    shard_sel: u64,
    fail_at: u64,
    outage: u64,
    survivor_bias: f64,
    drop_prob: f64,
    reorder_prob: f64,
) {
    let n_shards = 3;
    let fail_at = 50_000 + fail_at % 400_000;
    let outage = 20_000 + outage % 150_000;
    let params = ClusterParams {
        n_shards,
        log_slots: 8_192,
        client: ClientConfig {
            preload_keys: 200,
            ops: 800,
            interarrival: 900,
            seed,
            ..ClientConfig::default()
        },
        net: NetParams {
            drop_prob: drop_prob * 0.05,
            reorder_prob: reorder_prob * 0.10,
            ..NetParams::default()
        },
        fault: ClusterFaultPlan {
            power_fail: Some(ShardPowerFail {
                shard: (shard_sel % n_shards as u64) as usize,
                at: fail_at,
                outage,
                survivor_bias,
            }),
            net_degrade: Some(NetDegrade {
                start: fail_at.saturating_sub(10_000),
                end: fail_at + outage,
                params: DegradeParams {
                    extra_drop_prob: drop_prob * 0.3,
                    extra_reorder_prob: reorder_prob * 0.2,
                    extra_delay: 2_000,
                },
            }),
            migration_fail: None,
        },
        seed,
        ..ClusterParams::default()
    };
    let report = cluster::run(params).expect("cluster run");
    assert_eq!(
        report.lost_acked,
        0,
        "acked writes lost under schedule seed={seed} fail_at={fail_at} outage={outage}: \n{}",
        report.render()
    );
    assert_eq!(
        report.unanswered,
        0,
        "hung requests under schedule seed={seed}: \n{}",
        report.render()
    );
    assert_eq!(report.arrivals, 800);
    assert_eq!(report.recoveries.len(), 1, "power fail must drive recovery");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn any_fault_schedule_loses_no_acked_writes(
        seed in any::<u64>(),
        shard_sel in any::<u64>(),
        fail_at in any::<u64>(),
        outage in any::<u64>(),
        survivor_bias in 0.0f64..1.0,
        drop_prob in 0.0f64..1.0,
        reorder_prob in 0.0f64..1.0,
    ) {
        run_schedule(seed, shard_sel, fail_at, outage, survivor_bias, drop_prob, reorder_prob);
    }
}

/// Pinned regression schedules: extremes the random draw may not hit
/// every run (all-lost overlay, all-survive overlay, heavy drops).
#[test]
fn pinned_extreme_schedules() {
    run_schedule(0, 0, 0, 0, 0.0, 1.0, 1.0);
    run_schedule(u64::MAX, 2, u64::MAX, u64::MAX, 1.0, 0.0, 0.0);
    run_schedule(0xdead_beef, 1, 123_456, 99_999, 0.5, 0.5, 0.5);
}
