//! Property: any seeded crash schedule against a live keyspace
//! migration preserves the three rebalance oracles.
//!
//! The proptest draws the whole adversarial surface — run seed,
//! migration phase boundary to strike (`Prepare`/`Copy`/`CatchUp`/
//! `Flip`/`Retire`), which participant dies (source, destination, or
//! both), survivor bias for the crash image's uncertain overlay, the
//! replica count, and network flap probabilities — then runs a full
//! replicated cluster through migration + power-fail + recovery under
//! zipfian load and checks:
//!
//! 1. **Zero acked-write loss** (`lost_acked == 0`): every
//!    client-acknowledged Put verifies against a persistent log AND its
//!    value is present on every current owner after anti-entropy
//!    convergence — a migration can neither drop nor lose a slice.
//! 2. **No stale-epoch ack** (`stale_epoch_acks == 0`): no ack was ever
//!    collected from a shard that neither owns the slice nor retired it
//!    cleanly; the epoch fence holds through flips and recoveries.
//! 3. **Exactly-once ownership** (`ownership_consistent`): after
//!    convergence every slice has exactly one primary replica set in
//!    the routing table and shard-local ownership agrees with it —
//!    a torn flip resolves to exactly one of commit or abort.
//!
//! Plus the standing cluster invariants: every request answered and
//! no req-id double-applied (idempotent retries + re-copies).

use cluster::{
    ClientConfig, ClusterFaultPlan, ClusterParams, MigrationFailTarget, MigrationPhase,
    MigrationPlan, ReplicationParams,
};
use proptest::prelude::*;

const PHASES: [MigrationPhase; 5] = [
    MigrationPhase::Prepare,
    MigrationPhase::Copy,
    MigrationPhase::CatchUp,
    MigrationPhase::Flip,
    MigrationPhase::Retire,
];

const TARGETS: [MigrationFailTarget; 3] = [
    MigrationFailTarget::Source,
    MigrationFailTarget::Dest,
    MigrationFailTarget::Both,
];

fn run_schedule(
    seed: u64,
    phase_sel: u64,
    target_sel: u64,
    replica_sel: u64,
    survivor_bias: f64,
    drop_prob: f64,
    reorder_prob: f64,
) {
    let phase = PHASES[(phase_sel % PHASES.len() as u64) as usize];
    let target = TARGETS[(target_sel % TARGETS.len() as u64) as usize];
    let replicas = 1 + (replica_sel % 2) as usize; // 1 or 2 of 4 shards
    let mut fault = ClusterFaultPlan::migration_fail_with_flap(phase, target, 150_000, 200_000);
    if let Some(mf) = fault.migration_fail.as_mut() {
        mf.survivor_bias = survivor_bias;
    }
    if let Some(nd) = fault.net_degrade.as_mut() {
        nd.params.extra_drop_prob = drop_prob * 0.10;
        nd.params.extra_reorder_prob = reorder_prob * 0.15;
    }
    let params = ClusterParams {
        client: ClientConfig {
            preload_keys: 200,
            ops: 900,
            interarrival: 1_000,
            seed,
            ..ClientConfig::default()
        },
        log_slots: 8_192,
        replication: ReplicationParams {
            n_slices: 8,
            replicas,
        },
        migration: Some(MigrationPlan {
            max_slices: 2,
            ..MigrationPlan::drain(0, 2, 150_000)
        }),
        repair_interval: Some(120_000),
        fault,
        seed,
        ..ClusterParams::default()
    };
    let r = cluster::run(params).expect("cluster run");
    let ctx = format!(
        "schedule seed={seed} phase={phase:?} target={target:?} replicas={replicas}: \n{}",
        r.render()
    );
    assert_eq!(r.lost_acked, 0, "acked writes lost under {ctx}");
    assert_eq!(r.stale_epoch_acks, 0, "stale-epoch ack under {ctx}");
    assert!(r.ownership_consistent, "ownership split under {ctx}");
    assert_eq!(r.unanswered, 0, "hung requests under {ctx}");
    assert_eq!(r.duplicate_applies, 0, "req-id double-applied under {ctx}");
    let m = r.migration.expect("migration configured");
    assert!(
        r.migration_done,
        "migration must finish (moved or aborted every queued slice) under {ctx}"
    );
    assert_eq!(
        m.slices_moved + m.slices_aborted,
        2,
        "every queued slice resolves exactly once under {ctx}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn any_crash_schedule_preserves_the_rebalance_oracles(
        seed in any::<u64>(),
        phase_sel in any::<u64>(),
        target_sel in any::<u64>(),
        replica_sel in any::<u64>(),
        survivor_bias in 0.0f64..1.0,
        drop_prob in 0.0f64..1.0,
        reorder_prob in 0.0f64..1.0,
    ) {
        run_schedule(seed, phase_sel, target_sel, replica_sel, survivor_bias, drop_prob, reorder_prob);
    }
}

/// Exhaustive sweep of the phase x target grid at pinned seeds: the
/// random draw above may skip cells; the torn-flip and both-crash
/// corners must be hit every run.
#[test]
fn every_phase_boundary_and_target_is_survivable() {
    for (pi, _) in PHASES.iter().enumerate() {
        for (ti, _) in TARGETS.iter().enumerate() {
            run_schedule(
                0x5eed ^ ((pi as u64) << 8) ^ ti as u64,
                pi as u64,
                ti as u64,
                pi as u64 + ti as u64,
                0.5,
                0.3,
                0.3,
            );
        }
    }
}
