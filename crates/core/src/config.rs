//! Machine configurations for the two Optane DCPMM generations.
//!
//! The paper evaluates two testbeds (§2.4): a Cascade Lake server with
//! 100-series (G1) DIMMs and an Ice Lake server with 200-series (G2) DIMMs,
//! eADR disabled on both. The presets here encode the architectural
//! differences the paper identifies:
//!
//! | property | G1 | G2 |
//! |---|---|---|
//! | read buffer | 16 KB | 22 KB (§3.1) |
//! | write buffer (effective) | 12 KB | 16 KB (§3.2, E4) |
//! | periodic full-line write-back | ~5000 cycles | disabled (§3.2) |
//! | `clwb` | invalidates the line | retains the line (§3.5) |
//! | on-DIMM buffer hit latency | lower | higher (coherence cost, §3.5) |
//! | L3 | 27.5 MB | 36 MB |
//!
//! Absolute cycle constants are calibrated against the paper's figures; the
//! calibration table lives in `DESIGN.md`.

use cpucache::{CacheParams, FlushMode, PrefetchConfig};
use imc::{DramParams, PmParams};
use simbase::Cycles;
use xpdimm::DimmParams;
use xpmedia::MediaParams;

/// Optane DCPMM generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Generation {
    /// 100-series DIMMs on Cascade Lake (the paper's G1 testbed).
    G1,
    /// 200-series DIMMs on Ice Lake (the paper's G2 testbed).
    G2,
}

impl std::fmt::Display for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Generation::G1 => write!(f, "G1"),
            Generation::G2 => write!(f, "G2"),
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Which generation this configuration models.
    pub generation: Generation,
    /// Cores per socket (each core has two hyperthreads).
    pub cores_per_socket: usize,
    /// Cache hierarchy geometry and latencies.
    pub cache: CacheParams,
    /// Enabled hardware prefetchers.
    pub prefetch: PrefetchConfig,
    /// PM channel (iMC + DIMMs) configuration.
    pub pm: PmParams,
    /// DRAM channel configuration.
    pub dram: DramParams,
    /// What `clwb` does to the cached line (G1: invalidate; G2: retain).
    pub clwb_mode: FlushMode,
    /// Issue cost of a cacheline flush instruction.
    pub flush_issue: Cycles,
    /// Issue cost of a non-temporal store.
    pub ntstore_issue: Cycles,
    /// Base cost of a fence instruction.
    pub fence_cost: Cycles,
    /// Whether loads that are only `sfence`-separated from a flush may
    /// still be served from the (pre-invalidation) cached copy for a short
    /// window — the G1 `clwb + sfence` effect in Figure 7 (a)/(c).
    pub sfence_load_bypass: bool,
    /// Length of that bypass window, in cycles.
    pub load_bypass_window: Cycles,
    /// Added to PM/DRAM read completions for threads on the remote socket.
    pub remote_read_penalty: Cycles,
    /// Added to the persist pipeline for remote-socket writes.
    pub remote_write_penalty: Cycles,
    /// Per-operation penalty when two hyperthreads share a core.
    pub ht_penalty: Cycles,
    /// Extended ADR: CPU caches are inside the persistence domain. The
    /// paper's testbeds have this disabled; it is modelled for ablation.
    pub eadr: bool,
    /// Seed for crash injection.
    pub crash_seed: u64,
}

impl MachineConfig {
    /// Whether `clwb` drops the cached copy on this configuration (true on
    /// G1; G2 retains the line). Exposed so analyses need not depend on
    /// the cache crate's `FlushMode`.
    pub fn clwb_invalidates(&self) -> bool {
        self.clwb_mode == FlushMode::Invalidate
    }

    /// The G1 testbed (§2.4) with the given prefetcher setting and DIMM
    /// population.
    pub fn g1(prefetch: PrefetchConfig, num_dimms: usize) -> Self {
        let media = MediaParams {
            read_latency: 420,
            ait_miss_penalty: 380,
            read_banks: 4,
            write_service: 900,
            ait_coverage_bytes: 16 << 20,
            ait_ways: 16,
        };
        let dimm = DimmParams {
            read_buffer_lines: 64,  // 16 KB
            write_buffer_lines: 48, // 12 KB effective
            rb_hit_latency: 220,
            wcb_hit_latency: 180,
            writeback_period: Some(5000),
            media,
            seed: 0x0D1A_0001,
        };
        MachineConfig {
            generation: Generation::G1,
            cores_per_socket: 20,
            cache: CacheParams {
                l1_bytes: 32 << 10,
                l1_ways: 8,
                l2_bytes: 1 << 20,
                l2_ways: 16,
                l3_bytes: 27_500 << 10,
                l3_ways: 11,
                l1_latency: 4,
                l2_latency: 14,
                l3_latency: 48,
            },
            prefetch,
            pm: PmParams {
                num_dimms,
                interleave_bytes: 4096,
                wpq_drain_interval: 75,
                wpq_capacity: 64,
                persist_pipeline: 2300,
                drain_visible: 1600,
                read_queue_latency: 30,
                write_accept_latency: 230,
                dimm,
            },
            dram: DramParams {
                load_latency: 230,
                store_latency: 60,
                persist_pipeline: 380,
                channels: 4,
                transfer_occupancy: 12,
            },
            clwb_mode: FlushMode::Invalidate,
            flush_issue: 120,
            ntstore_issue: 140,
            fence_cost: 25,
            sfence_load_bypass: true,
            load_bypass_window: 600,
            remote_read_penalty: 170,
            remote_write_penalty: 700,
            ht_penalty: 40,
            eadr: false,
            crash_seed: 0xC4A5_0001,
        }
    }

    /// The G2 testbed (§2.4): larger buffers, no periodic write-back,
    /// retaining `clwb`, higher buffer/DRAM latencies (cache-coherence
    /// cost, §3.5).
    pub fn g2(prefetch: PrefetchConfig, num_dimms: usize) -> Self {
        let media = MediaParams {
            read_latency: 460,
            ait_miss_penalty: 420,
            read_banks: 4,
            write_service: 800,
            ait_coverage_bytes: 16 << 20,
            ait_ways: 16,
        };
        let dimm = DimmParams {
            read_buffer_lines: 88,  // 22 KB
            write_buffer_lines: 64, // 16 KB
            rb_hit_latency: 300,
            wcb_hit_latency: 260,
            writeback_period: None,
            media,
            seed: 0x0D1A_0002,
        };
        MachineConfig {
            generation: Generation::G2,
            cores_per_socket: 12,
            cache: CacheParams {
                l1_bytes: 48 << 10,
                l1_ways: 12,
                l2_bytes: 1_280 << 10,
                l2_ways: 20,
                l3_bytes: 36 << 20,
                l3_ways: 12,
                l1_latency: 5,
                l2_latency: 16,
                l3_latency: 52,
            },
            prefetch,
            pm: PmParams {
                num_dimms,
                interleave_bytes: 4096,
                wpq_drain_interval: 65,
                wpq_capacity: 64,
                persist_pipeline: 2200,
                drain_visible: 1500,
                read_queue_latency: 30,
                write_accept_latency: 220,
                dimm,
            },
            dram: DramParams {
                load_latency: 260,
                store_latency: 60,
                persist_pipeline: 380,
                channels: 4,
                transfer_occupancy: 12,
            },
            clwb_mode: FlushMode::WriteBackRetain,
            flush_issue: 130,
            ntstore_issue: 150,
            fence_cost: 25,
            sfence_load_bypass: true,
            load_bypass_window: 600,
            remote_read_penalty: 170,
            remote_write_penalty: 600,
            ht_penalty: 40,
            eadr: false,
            crash_seed: 0xC4A5_0002,
        }
    }

    /// Convenience constructor by generation.
    pub fn for_generation(gen: Generation, prefetch: PrefetchConfig, num_dimms: usize) -> Self {
        match gen {
            Generation::G1 => Self::g1(prefetch, num_dimms),
            Generation::G2 => Self::g2(prefetch, num_dimms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g1_matches_paper_buffer_sizes() {
        let c = MachineConfig::g1(PrefetchConfig::none(), 1);
        assert_eq!(c.pm.dimm.read_buffer_lines * 256, 16 << 10);
        assert_eq!(c.pm.dimm.write_buffer_lines * 256, 12 << 10);
        assert!(c.pm.dimm.writeback_period.is_some());
        assert_eq!(c.clwb_mode, FlushMode::Invalidate);
    }

    #[test]
    fn g2_matches_paper_differences() {
        let c = MachineConfig::g2(PrefetchConfig::none(), 6);
        assert_eq!(c.pm.dimm.read_buffer_lines * 256, 22 << 10);
        assert_eq!(c.pm.dimm.write_buffer_lines * 256, 16 << 10);
        assert!(c.pm.dimm.writeback_period.is_none());
        assert_eq!(c.clwb_mode, FlushMode::WriteBackRetain);
        assert_eq!(c.pm.num_dimms, 6);
        assert!(
            c.pm.dimm.rb_hit_latency
                > MachineConfig::g1(PrefetchConfig::none(), 1)
                    .pm
                    .dimm
                    .rb_hit_latency,
            "G2 buffer hits are slower (coherence cost)"
        );
    }

    #[test]
    fn for_generation_dispatches() {
        let g1 = MachineConfig::for_generation(Generation::G1, PrefetchConfig::all(), 6);
        assert_eq!(g1.generation, Generation::G1);
        let g2 = MachineConfig::for_generation(Generation::G2, PrefetchConfig::all(), 6);
        assert_eq!(g2.generation, Generation::G2);
    }
}
