//! Crash images: the machine's persistence state frozen at an instant,
//! plus the *uncertain set* a crash-state explorer enumerates over.
//!
//! Under ADR the persistence domain boundary is WPQ acceptance: everything
//! accepted (the persistent image) survives a power failure, everything
//! still in the CPU caches (the volatile overlay) may or may not — a dirty
//! line can have been evicted and accepted moments before the crash, or
//! not. Each overlay entry is therefore an independent boolean in the
//! space of legal crash states: a trace with `n` unpersisted lines has
//! `2^n` legal post-crash images, and a recovery procedure is correct only
//! if it tolerates *all* of them.
//!
//! [`CrashImage`] captures that space compactly: the certain persistent
//! bytes, the sorted uncertain lines with their data, and enough machine
//! state (config, allocator watermarks, poisoned lines) to materialize a
//! runnable post-crash [`Machine`](crate::Machine) for any survivor
//! subset via [`Machine::from_crash_image`](crate::Machine::from_crash_image).

use xpmedia::SparseStore;

use crate::config::MachineConfig;

/// A frozen persistence state with its crash-uncertain set.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// Machine configuration at capture time.
    pub cfg: MachineConfig,
    /// Bytes certainly inside the ADR domain.
    pub persistent: SparseStore,
    /// Cachelines whose data had *not* been accepted into the ADR domain
    /// (the volatile overlay), sorted by address. Any subset of these may
    /// survive a crash at this instant.
    pub uncertain: Vec<(u64, [u8; 64])>,
    /// PM allocator watermark, so recovery-time allocations do not collide
    /// with pre-crash data.
    pub pm_next: u64,
    /// DRAM allocator watermark.
    pub dram_next: u64,
    /// Poisoned (uncorrectable-error) lines at capture time, sorted.
    pub poisoned: Vec<u64>,
}

impl CrashImage {
    /// Returns the addresses of the uncertain lines, sorted.
    pub fn uncertain_lines(&self) -> Vec<u64> {
        self.uncertain.iter().map(|&(cl, _)| cl).collect()
    }
}
