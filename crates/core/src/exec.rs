//! The deterministic multi-thread executor.
//!
//! Every experiment that drives several simulated hardware threads used to
//! hand-roll its own per-`ThreadId` loop, which meant every experiment
//! *was* its own (implicit, round-robin) scheduler. This module makes the
//! interleaving an explicit, seeded, swappable object: a workload is a
//! [`ThreadProgram`] — a bag of per-lane state machines advanced one
//! *step* at a time — and an [`Interleaver`] owns the decision of which
//! lane steps next.
//!
//! A *step* is whatever slice of work the program wants scheduled
//! atomically with respect to other lanes: one insert, one block of
//! nt-stores, one CAS retry loop iteration. Between steps the interleaver
//! may run any other lane; within a step the lane runs alone (the
//! simulation is single-threaded — concurrency is modelled, not real).
//!
//! Determinism is the whole point: given the same machine, program, and
//! [`SchedPolicy`], the executed instruction stream is byte-identical
//! across processes. [`SchedPolicy::RoundRobin`] reproduces the legacy
//! hand-rolled loops exactly (lane 0, lane 1, …, wrap), so migrated
//! experiments keep their pinned results; [`SchedPolicy::SeededRandom`]
//! explores adversarial interleavings reproducibly; and
//! [`SchedPolicy::ClockFair`] steps whichever lane's simulated clock is
//! furthest behind, modelling hardware threads that retire at their own
//! pace instead of in lockstep.

use simbase::SplitMix64;

use crate::machine::{Machine, ThreadId};

/// What a [`ThreadProgram`] reports after one step of one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The lane did work and may be scheduled again.
    Ran,
    /// The lane is finished; the executor will not step it again.
    Done,
}

/// A multi-lane workload the [`Interleaver`] can schedule.
///
/// `lane` is the dense index into the `tids` slice passed to
/// [`Interleaver::run`] (0-based); `tid` is the corresponding simulated
/// hardware thread. Programs that share state across lanes (a common
/// table, one key stream) simply keep it in `self` — the executor hands
/// out steps one at a time, so no synchronization is needed.
pub trait ThreadProgram {
    /// Advances lane `lane` (running as `tid`) by one step.
    ///
    /// Returning [`Step::Done`] retires the lane: `step` will never be
    /// called for it again. A retired lane must not have consumed shared
    /// work it did not process.
    fn step(&mut self, m: &mut Machine, tid: ThreadId, lane: usize) -> Step;
}

/// Closures are programs: `FnMut(&mut Machine, ThreadId, usize) -> Step`.
impl<F> ThreadProgram for F
where
    F: FnMut(&mut Machine, ThreadId, usize) -> Step,
{
    fn step(&mut self, m: &mut Machine, tid: ThreadId, lane: usize) -> Step {
        self(m, tid, lane)
    }
}

/// Which lane runs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Lanes step in index order, wrapping; retired lanes are skipped.
    /// Byte-identical to the legacy hand-rolled `for round { for lane }`
    /// experiment loops.
    RoundRobin,
    /// Each slot picks a uniformly random *live* lane from a
    /// [`SplitMix64`] stream seeded here. Same seed ⇒ same schedule,
    /// in this process and any other.
    SeededRandom {
        /// The schedule seed.
        seed: u64,
    },
    /// Each slot steps the live lane whose simulated clock is furthest
    /// behind (ties break toward the lowest lane index). Models threads
    /// that issue as soon as the hardware lets them rather than in
    /// program-order lockstep.
    ClockFair,
}

/// What an [`Interleaver`] run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecReport {
    /// Steps executed per lane (retirement probes are not counted).
    pub steps_per_lane: Vec<u64>,
    /// Total steps executed.
    pub total_steps: u64,
    /// Whether every lane retired (false only when a step budget ran out).
    pub completed: bool,
}

/// The deterministic scheduler: owns the lane-selection policy and the
/// run loop.
#[derive(Debug, Clone, Copy)]
pub struct Interleaver {
    policy: SchedPolicy,
}

impl Interleaver {
    /// Creates an interleaver with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        Interleaver { policy }
    }

    /// The configured policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Runs `prog` across `tids` until every lane retires.
    pub fn run<P: ThreadProgram + ?Sized>(
        &self,
        m: &mut Machine,
        tids: &[ThreadId],
        prog: &mut P,
    ) -> ExecReport {
        self.run_steps(m, tids, prog, u64::MAX)
    }

    /// Runs `prog` across `tids` until every lane retires or `budget`
    /// steps have executed, whichever comes first. A step that returns
    /// [`Step::Done`] without doing work still retires the lane but does
    /// not count against the budget, so crash-point sweeps indexed by
    /// executed-step count land on real work.
    pub fn run_steps<P: ThreadProgram + ?Sized>(
        &self,
        m: &mut Machine,
        tids: &[ThreadId],
        prog: &mut P,
        budget: u64,
    ) -> ExecReport {
        let lanes = tids.len();
        let mut report = ExecReport {
            steps_per_lane: vec![0; lanes],
            total_steps: 0,
            completed: lanes == 0,
        };
        if lanes == 0 {
            return report;
        }
        let mut done = vec![false; lanes];
        let mut alive = lanes;
        let mut cursor = 0usize; // next lane RoundRobin considers
        let mut rng = match self.policy {
            SchedPolicy::SeededRandom { seed } => Some(SplitMix64::new(seed)),
            _ => None,
        };
        while alive > 0 && report.total_steps < budget {
            let lane = match self.policy {
                SchedPolicy::RoundRobin => {
                    while done[cursor % lanes] {
                        cursor += 1;
                    }
                    let lane = cursor % lanes;
                    cursor += 1;
                    lane
                }
                SchedPolicy::SeededRandom { .. } => {
                    // simlint::allow(unwrap-in-lib, rng is Some exactly
                    // when the policy is SeededRandom)
                    #[allow(clippy::unwrap_used)]
                    let pick = rng.as_mut().unwrap().gen_range(alive as u64) as usize;
                    match (0..lanes).filter(|&l| !done[l]).nth(pick) {
                        Some(lane) => lane,
                        None => break, // unreachable: alive > 0
                    }
                }
                SchedPolicy::ClockFair => {
                    let mut best = usize::MAX;
                    let mut best_now = u64::MAX;
                    for (l, &tid) in tids.iter().enumerate() {
                        if done[l] {
                            continue;
                        }
                        let now = m.now(tid);
                        if now < best_now {
                            best_now = now;
                            best = l;
                        }
                    }
                    best
                }
            };
            match prog.step(m, tids[lane], lane) {
                Step::Ran => {
                    report.steps_per_lane[lane] += 1;
                    report.total_steps += 1;
                }
                Step::Done => {
                    done[lane] = true;
                    alive -= 1;
                }
            }
        }
        report.completed = alive == 0;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use cpucache::PrefetchConfig;

    fn machine_with(threads: usize) -> (Machine, Vec<ThreadId>) {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tids = (0..threads).map(|_| m.spawn(0)).collect();
        (m, tids)
    }

    /// A program whose schedule is observable: each step appends its lane.
    struct Recorder {
        remaining: Vec<u64>,
        order: Vec<usize>,
    }

    impl ThreadProgram for Recorder {
        fn step(&mut self, _m: &mut Machine, _tid: ThreadId, lane: usize) -> Step {
            if self.remaining[lane] == 0 {
                return Step::Done;
            }
            self.remaining[lane] -= 1;
            self.order.push(lane);
            Step::Ran
        }
    }

    #[test]
    fn round_robin_matches_legacy_nested_loop_order() {
        let (mut m, tids) = machine_with(3);
        let mut prog = Recorder {
            remaining: vec![2, 2, 2],
            order: Vec::new(),
        };
        let report = Interleaver::new(SchedPolicy::RoundRobin).run(&mut m, &tids, &mut prog);
        assert_eq!(prog.order, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(report.steps_per_lane, vec![2, 2, 2]);
        assert!(report.completed);
    }

    #[test]
    fn round_robin_skips_retired_lanes() {
        let (mut m, tids) = machine_with(3);
        let mut prog = Recorder {
            remaining: vec![1, 3, 1],
            order: Vec::new(),
        };
        Interleaver::new(SchedPolicy::RoundRobin).run(&mut m, &tids, &mut prog);
        assert_eq!(prog.order, vec![0, 1, 2, 1, 1]);
    }

    #[test]
    fn seeded_random_is_reproducible_and_seed_sensitive() {
        let runs: Vec<Vec<usize>> = [7, 7, 8]
            .iter()
            .map(|&seed| {
                let (mut m, tids) = machine_with(4);
                let mut prog = Recorder {
                    remaining: vec![5; 4],
                    order: Vec::new(),
                };
                Interleaver::new(SchedPolicy::SeededRandom { seed }).run(&mut m, &tids, &mut prog);
                prog.order
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed, same schedule");
        assert_ne!(runs[0], runs[2], "different seed, different schedule");
        assert_eq!(runs[2].len(), 20, "all work still executes");
    }

    #[test]
    fn clock_fair_steps_the_lagging_thread() {
        let (mut m, tids) = machine_with(2);
        // Lane 1 starts far ahead in simulated time; ClockFair must keep
        // stepping lane 0 until it catches up.
        m.advance(tids[1], 1_000_000);
        let a = m.alloc_pm(64 * 64, 64);
        let mut steps = vec![0u64; 2];
        let mut order = Vec::new();
        let mut prog = |mm: &mut Machine, tid: ThreadId, lane: usize| {
            if steps[lane] == 8 {
                return Step::Done;
            }
            steps[lane] += 1;
            order.push(lane);
            mm.nt_store_run(tid, a.add_cachelines(lane as u64 * 32), &[0u8; 64], 4);
            mm.sfence(tid);
            Step::Ran
        };
        Interleaver::new(SchedPolicy::ClockFair).run(&mut m, &tids, &mut prog);
        assert_eq!(order[..4], [0, 0, 0, 0], "lagging lane runs first");
        assert_eq!(steps, vec![8, 8]);
    }

    #[test]
    fn budget_stops_midway_and_done_probes_are_free() {
        let (mut m, tids) = machine_with(2);
        let mut prog = Recorder {
            remaining: vec![3, 3],
            order: Vec::new(),
        };
        let iv = Interleaver::new(SchedPolicy::RoundRobin);
        let report = iv.run_steps(&mut m, &tids, &mut prog, 4);
        assert_eq!(report.total_steps, 4);
        assert!(!report.completed);
        // Resuming with the remaining budget finishes the work.
        let report = iv.run(&mut m, &tids, &mut prog);
        assert!(report.completed);
        assert_eq!(prog.order.len(), 6);
    }

    #[test]
    fn empty_lane_set_is_a_completed_noop() {
        let (mut m, _) = machine_with(1);
        let mut prog = |_: &mut Machine, _: ThreadId, _: usize| Step::Done;
        let report = Interleaver::new(SchedPolicy::RoundRobin).run(&mut m, &[], &mut prog);
        assert!(report.completed);
        assert_eq!(report.total_steps, 0);
    }
}
