//! Hardware fault hooks: the knobs `faultsim` plans turn.
//!
//! The software-level faults (dropped flushes and fences) live in
//! `faultsim`'s environment wrapper and never touch the machine. The
//! *hardware* faults modelled here are below the instruction stream — the
//! program executes every persist correctly and the hardware still loses
//! data — so they must be armed on the [`Machine`](crate::Machine) itself:
//!
//! - **WPQ drop on accept** (`wpq_drop_every_nth`): the iMC acknowledges a
//!   write into the WPQ but the entry is silently discarded before it
//!   drains. The line never reaches the ADR domain even though every
//!   flush/fence the program issued completed. This is the fault class
//!   persist-ordering linting (`pmcheck`) is structurally blind to.
//! - **WPQ partial drain at crash** (`wpq_partial_drain`): ADR's stored
//!   energy fails to finish draining the WPQ; each line still in flight at
//!   the power failure is lost with the given probability. The interrupted
//!   media writes leave uncorrectable errors (poisoned lines).
//! - **XPBuffer partial drain at crash** (`xpbuffer_partial_drain`): the
//!   same failure one layer down — XPLines resident in the on-DIMM
//!   write-combining buffer are interrupted mid media-write; a lost XPLine
//!   poisons all four of its cachelines.
//!
//! All three are seeded and deterministic: the same plan over the same
//! instruction stream injects the same faults.

use std::fmt;

/// Seeded probabilistic line loss applied at a power failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialDrain {
    /// Probability that each vulnerable line is lost.
    pub drop_fraction: f64,
    /// Seed for the per-crash selection of victims.
    pub seed: u64,
}

/// The set of armed hardware faults. [`FaultHooks::default`] arms nothing
/// — the machine behaves exactly as before this module existed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultHooks {
    /// Silently discard every Nth WPQ acceptance (1-indexed; `Some(7)`
    /// drops the 7th, 14th, … accepted PM write).
    pub wpq_drop_every_nth: Option<u64>,
    /// At power failure, lose lines still draining from the WPQ.
    pub wpq_partial_drain: Option<PartialDrain>,
    /// At power failure, lose XPLines resident in the on-DIMM write
    /// buffers.
    pub xpbuffer_partial_drain: Option<PartialDrain>,
}

impl FaultHooks {
    /// No faults armed.
    pub fn none() -> Self {
        FaultHooks::default()
    }

    /// Returns `true` if any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.wpq_drop_every_nth.is_some()
            || self.wpq_partial_drain.is_some()
            || self.xpbuffer_partial_drain.is_some()
    }
}

/// What the armed faults actually did, for oracles and reports.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// PM writes accepted by the iMC (the WPQ-drop counter's clock).
    pub wpq_accepts: u64,
    /// Cachelines whose acceptance was silently discarded, in injection
    /// order.
    pub wpq_dropped: Vec<u64>,
    /// Cachelines poisoned by partial-drain faults at the last power
    /// failure, sorted.
    pub crash_poisoned: Vec<u64>,
}

/// A typed media read error: the requested range covers a poisoned line.
///
/// Plain loads of poisoned lines return the garbled bytes (what a crashed
/// program that ignores machine-check signalling would see); checked loads
/// surface this error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The cacheline at `line` holds an uncorrectable error.
    Poisoned {
        /// Cacheline-aligned address of the poisoned line.
        line: u64,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Poisoned { line } => {
                write!(f, "uncorrectable media error at line {line:#x}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// Result of an address-range scrub ([`Machine::scrub_pm`](crate::Machine::scrub_pm)).
#[derive(Debug, Clone, Default)]
pub struct ScrubOutcome {
    /// Cachelines scanned.
    pub lines_scanned: u64,
    /// Poisoned lines found and repaired (zero-filled), sorted.
    pub repaired: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_arm_nothing() {
        assert!(!FaultHooks::none().is_armed());
        let armed = FaultHooks {
            wpq_drop_every_nth: Some(3),
            ..FaultHooks::none()
        };
        assert!(armed.is_armed());
    }

    #[test]
    fn read_error_displays_the_line() {
        let e = ReadError::Poisoned { line: 0x40 };
        assert!(e.to_string().contains("0x40"));
    }
}
