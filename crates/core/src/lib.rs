//! The simulated machine: the paper's testbed in software.
//!
//! [`Machine`] assembles the substrate crates — CPU caches and prefetchers
//! ([`cpucache`]), the iMC with its WPQ/DDR-T persist pipeline and the DRAM
//! channel ([`imc`]), the on-DIMM buffers ([`xpdimm`]) and the 3D-XPoint
//! media ([`xpmedia`]) — into a two-socket system running simulated
//! hardware threads.
//!
//! The public surface is the x86 persistence vocabulary the paper's
//! microbenchmarks are written in:
//!
//! | operation | machine method |
//! |---|---|
//! | `mov` (load) | [`Machine::load`] |
//! | `mov` (store, write-allocate) | [`Machine::store`] |
//! | full-line store (no ownership read) | [`Machine::store_full_cacheline`] |
//! | `movnt` | [`Machine::nt_store`] |
//! | `clwb` | [`Machine::clwb`] |
//! | `clflushopt` | [`Machine::clflushopt`] |
//! | `sfence` / `mfence` | [`Machine::sfence`] / [`Machine::mfence`] |
//! | AVX streaming XPLine copy (paper Alg. 2) | [`Machine::copy_xpline_streaming`] |
//!
//! Every operation advances the calling simulated thread's cycle clock by
//! the modelled latency. Functional data is real: loads return the bytes
//! stores wrote, a simulated power failure ([`Machine::power_fail`]) keeps
//! exactly the ADR-protected bytes, and recovery code can then be exercised
//! against the surviving image.
//!
//! # Examples
//!
//! ```
//! use cpucache::PrefetchConfig;
//! use optane_core::{CrashPolicy, Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
//! let t = m.spawn(0);
//! let a = m.alloc_pm(64, 64);
//!
//! m.store_u64(t, a, 42);
//! m.clwb(t, a);
//! m.sfence(t); // durable from here
//!
//! m.power_fail(CrashPolicy::LoseUnflushed);
//! assert_eq!(m.peek_u64(a), 42);
//! assert!(m.now(t) > 0, "operations consumed simulated cycles");
//! ```

#![forbid(unsafe_code)]
// The determinism/robustness contract (DESIGN.md) double-enforces the
// simlint no-unwrap rule with stock tooling in the sim crates; tests are
// exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod config;
pub mod crash;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod metrics;
pub mod snapshot;
pub mod telemetry;
pub mod trace;

pub use config::{Generation, MachineConfig};
pub use crash::CrashImage;
pub use exec::{ExecReport, Interleaver, SchedPolicy, Step, ThreadProgram};
pub use fault::{FaultHooks, FaultStats, PartialDrain, ReadError, ScrubOutcome};
pub use imc::ImcQueueStats;
pub use machine::{CrashPolicy, Machine, MemRegion, ThreadId};
pub use metrics::{
    machine_registry, machine_row, machine_schema_json, MachineMetrics, MachineSampler, MtStats,
};
pub use snapshot::{MachineSnapshot, SnapshotError, ThreadSnapshot};
pub use telemetry::TelemetrySnapshot;
pub use trace::{FenceKind, FlushKind, TraceEvent, TraceSink};
