//! The simulated two-socket machine.
//!
//! See the crate docs for the operation table. Design notes:
//!
//! - **Functional state.** PM bytes live in two layers: the *persistent
//!   image* (what survives a power failure) and a *volatile overlay* of
//!   cacheline-sized entries holding store data that has not reached the
//!   ADR domain yet. Flushes, non-temporal stores, and dirty evictions move
//!   overlay entries into the persistent image at WPQ-accept time. DRAM
//!   bytes live in a separate volatile image.
//! - **Timing.** Every simulated hardware thread owns a cycle clock;
//!   operations advance it by the modelled latency. Shared resources
//!   (media banks, WPQ drain, DRAM channels) produce contention through
//!   the controllers' server queues.
//! - **NUMA.** All memory lives on socket 0 (as in the paper's testbeds);
//!   threads on socket 1 pay remote penalties on reads and persists and
//!   use socket 1's own cache hierarchy.

use std::collections::BTreeMap;

use cpucache::{CacheSystem, FlushMode, HitLevel};
use imc::{DramController, PersistWait, PmController};
use simbase::{
    clock::ThreadClock, Addr, ByteCounter, Cycles, SplitMix64, CACHELINE_BYTES, XPLINE_BYTES,
};
use xpmedia::SparseStore;

use crate::config::MachineConfig;
use crate::crash::CrashImage;
use crate::fault::{FaultHooks, FaultStats, ReadError, ScrubOutcome};
use crate::metrics::{MachineMetrics, MtStats};
use crate::snapshot::{MachineSnapshot, SnapshotError, ThreadSnapshot};
use crate::telemetry::TelemetrySnapshot;
use crate::trace::{FenceKind, FlushKind, TraceEvent, TraceSink, TraceSlot};

/// Base of the persistent-memory physical region.
pub const PM_BASE: u64 = 0x0000_1000_0000_0000;
/// Base of the DRAM physical region.
pub const DRAM_BASE: u64 = 0x0000_2000_0000_0000;

/// Which memory device backs an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRegion {
    /// Optane persistent memory.
    Pm,
    /// DRAM.
    Dram,
}

/// Handle to a simulated hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub usize);

/// What happens to dirty (unflushed) PM cachelines at a power failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashPolicy {
    /// Dirty lines are lost; only ADR-protected data survives. The
    /// pessimistic baseline.
    LoseUnflushed,
    /// Each dirty line independently survives with the given probability —
    /// models the uncontrolled eviction order before a crash. Used by
    /// property-based crash-consistency tests.
    PersistDirtyFraction(f64),
    /// Every dirty line survives (what eADR guarantees).
    PersistAllDirty,
}

#[derive(Debug)]
struct HwThread {
    clock: ThreadClock,
    socket: usize,
    core: usize,
    /// Latest WPQ-accept time of an unfenced flush or nt-store.
    outstanding_accept: Cycles,
    /// Time of the thread's most recent `mfence`.
    last_mfence: Cycles,
    /// Simulated store-buffer occupancy: cachelines flushed or nt-stored
    /// since the last drain point (fence or locked RMW). Purely
    /// observational — timing flows through `outstanding_accept`.
    sb_pending: u64,
    /// High-water mark of `sb_pending` since the last metrics reset.
    sb_max: u64,
    /// Completed persist epochs: drain points that retired at least one
    /// pending store-buffer entry.
    persist_epochs: u64,
    /// Locked compare-and-swap operations issued.
    cas_ops: u64,
    /// CAS operations whose compare failed (no write happened).
    cas_failures: u64,
    /// Locked fetch-add operations issued.
    fetch_adds: u64,
}

impl HwThread {
    /// Records one more unfenced persist-pipeline entry.
    #[inline]
    fn sb_push(&mut self, n: u64) {
        self.sb_pending += n;
        self.sb_max = self.sb_max.max(self.sb_pending);
    }

    /// Drains the store buffer at a fence or locked RMW; counts an epoch
    /// only when the drain actually retired something.
    #[inline]
    fn sb_drain(&mut self) {
        if self.sb_pending > 0 {
            self.persist_epochs += 1;
            self.sb_pending = 0;
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FlushRecord {
    issued: Cycles,
    /// `true` for cacheline write-back flushes (`clwb`/`clflushopt`);
    /// `false` for non-temporal stores, which never get the relaxed
    /// `sfence` treatment (Figure 7: nt-store RAP persists on G2).
    was_flush: bool,
}

/// Garbage-collection threshold for the transient per-cacheline maps.
const MAP_GC_THRESHOLD: usize = 1 << 20;

/// Smallest `inflight_fills` length that triggers a prune sweep.
const INFLIGHT_GC_MIN: usize = 1 << 10;

/// Issue cost of one 512-bit streaming (AVX) load in the paper's
/// Algorithm 2 copy loop.
const STREAMING_COPY_LINE_COST: Cycles = 40;

/// Execution cost of the locked read-modify-write micro-op itself
/// (`lock cmpxchg` / `lock xadd`), on top of the cacheline ownership
/// access. Module constant, not a config knob: it does not enter the
/// snapshot config fingerprint.
const LOCKED_RMW_COST: Cycles = 24;

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    /// One cache hierarchy per socket.
    caches: Vec<CacheSystem>,
    pm: PmController,
    dram: DramController,
    persistent: SparseStore,
    /// Ordered so that iteration (crash images, quiesce folds) is
    /// address-ordered and therefore identical across processes; the
    /// determinism contract (DESIGN.md) bans unordered maps in sim state.
    overlay: BTreeMap<u64, [u8; 64]>,
    dram_image: SparseStore,
    threads: Vec<HwThread>,
    /// Hardware threads per (socket, core).
    core_occupancy: Vec<Vec<u8>>,
    next_core: Vec<usize>,
    /// Cacheline -> completion time of an in-flight fill (prefetch or
    /// demand), for prefetch-timing overlap.
    inflight_fills: BTreeMap<u64, Cycles>,
    /// Cacheline -> most recent invalidating flush, for the sfence load
    /// bypass and persist-wait decisions. Only records with
    /// `was_flush == true` are stored: an nt-store record is behaviorally
    /// identical to an absent one (both mean "wait out the full pipeline,
    /// no load bypass"), so nt-stores *remove* entries instead of
    /// inserting tombstones — and when `flushes_in_recent` is zero the
    /// whole map is known empty and the hot paths skip it entirely.
    recent_flush: BTreeMap<u64, FlushRecord>,
    /// Number of entries in `recent_flush` (all have `was_flush == true`).
    flushes_in_recent: usize,
    /// Conservative inclusive bounds on the keys in `recent_flush`:
    /// widened on insert, left alone on remove, reset on clear. A key
    /// outside the bounds is provably absent, which lets streaming loads
    /// (monotonically increasing addresses, flushes always behind the
    /// read front) skip the map walk entirely.
    flush_key_bounds: Option<(u64, u64)>,
    /// Prune `inflight_fills` when it reaches this length. Doubled after
    /// each sweep (amortized O(1)); only entries already complete for
    /// *every* thread's clock are dropped, which no lookup can
    /// distinguish from presence (they all filter on `done > now`).
    inflight_gc_watermark: usize,
    demand: ByteCounter,
    pm_next: u64,
    dram_next: u64,
    crash_rng: SplitMix64,
    trace: TraceSlot,
    faults: FaultHooks,
    fault_stats: FaultStats,
    /// Counters accumulated before the last checkpoint quiesce. The
    /// metrics view is `baseline + live`, which is what lets a restored
    /// machine report the same cumulative numbers as one that never
    /// stopped. `baseline.telemetry.demand` is always zero: the demand
    /// counter itself survives quiescing.
    metrics_baseline: MachineMetrics,
}

/// Garble pattern written over a line whose media cells lost their data.
const POISON_FILL: u8 = 0xBD;

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let caches = (0..2)
            .map(|_| CacheSystem::new(cfg.cache.clone(), cfg.cores_per_socket, cfg.prefetch))
            .collect();
        let pm = PmController::new(cfg.pm.clone());
        let dram = DramController::new(cfg.dram.clone());
        let core_occupancy = vec![vec![0u8; cfg.cores_per_socket]; 2];
        let crash_rng = SplitMix64::new(cfg.crash_seed);
        Machine {
            cfg,
            caches,
            pm,
            dram,
            persistent: SparseStore::new(),
            overlay: BTreeMap::new(),
            dram_image: SparseStore::new(),
            threads: Vec::new(),
            core_occupancy,
            next_core: vec![0; 2],
            inflight_fills: BTreeMap::new(),
            recent_flush: BTreeMap::new(),
            flushes_in_recent: 0,
            flush_key_bounds: None,
            inflight_gc_watermark: INFLIGHT_GC_MIN,
            demand: ByteCounter::new(),
            pm_next: PM_BASE,
            dram_next: DRAM_BASE,
            crash_rng,
            trace: TraceSlot::default(),
            faults: FaultHooks::none(),
            fault_stats: FaultStats::default(),
            metrics_baseline: MachineMetrics::default(),
        }
    }

    /// Attaches an instruction-stream observer. Replaces any previous
    /// sink; returns the replaced sink, if any.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.trace.0.replace(sink)
    }

    /// Detaches and returns the current instruction-stream observer.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.0.take()
    }

    /// Whether a trace sink is attached. Every emit call site checks this
    /// *before* constructing the event, so with no sink the whole hook
    /// costs one inlined branch — no argument construction, no
    /// `region_of`/clock reads on the event's behalf.
    #[inline(always)]
    fn tracing(&self) -> bool {
        self.trace.0.is_some()
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.trace.0.as_mut() {
            sink.on_event(&ev);
        }
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Spawns a hardware thread on the given socket, assigning cores
    /// round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is not 0 or 1.
    pub fn spawn(&mut self, socket: usize) -> ThreadId {
        assert!(socket < 2, "machine has two sockets");
        let core = self.next_core[socket] % self.cfg.cores_per_socket;
        self.next_core[socket] += 1;
        self.spawn_on(socket, core)
    }

    /// Spawns a hardware thread on a specific core.
    ///
    /// # Panics
    ///
    /// Panics if the socket or core index is out of range.
    pub fn spawn_on(&mut self, socket: usize, core: usize) -> ThreadId {
        assert!(socket < 2, "machine has two sockets");
        assert!(core < self.cfg.cores_per_socket, "core index out of range");
        self.core_occupancy[socket][core] += 1;
        self.threads.push(HwThread {
            clock: ThreadClock::new(),
            socket,
            core,
            outstanding_accept: 0,
            last_mfence: 0,
            sb_pending: 0,
            sb_max: 0,
            persist_epochs: 0,
            cas_ops: 0,
            cas_failures: 0,
            fetch_adds: 0,
        });
        ThreadId(self.threads.len() - 1)
    }

    /// Spawns a hyperthread sibling sharing `of`'s core (used by the
    /// helper-thread prefetching case study).
    pub fn spawn_sibling(&mut self, of: ThreadId) -> ThreadId {
        let (socket, core) = {
            let t = &self.threads[of.0];
            (t.socket, t.core)
        };
        self.spawn_on(socket, core)
    }

    /// Returns the thread's current simulated time.
    pub fn now(&self, tid: ThreadId) -> Cycles {
        self.threads[tid.0].clock.now()
    }

    /// Advances the thread's clock by `cycles` of pure compute.
    pub fn advance(&mut self, tid: ThreadId, cycles: Cycles) {
        self.threads[tid.0].clock.advance(cycles);
    }

    /// Moves the thread's clock forward to `t` if it is behind (used by
    /// workload drivers to align interleaved threads).
    pub fn advance_to(&mut self, tid: ThreadId, t: Cycles) {
        self.threads[tid.0].clock.advance_to(t);
    }

    /// Allocates `len` bytes of persistent memory with the given alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_pm(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.pm_next = (self.pm_next + align - 1) & !(align - 1);
        let a = Addr(self.pm_next);
        self.pm_next += len;
        a
    }

    /// Allocates `len` bytes of DRAM with the given alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_dram(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.dram_next = (self.dram_next + align - 1) & !(align - 1);
        let a = Addr(self.dram_next);
        self.dram_next += len;
        a
    }

    /// Returns which device backs `addr`.
    pub fn region_of(&self, addr: Addr) -> MemRegion {
        if addr.0 >= DRAM_BASE {
            MemRegion::Dram
        } else {
            MemRegion::Pm
        }
    }

    // ----- functional byte access -------------------------------------

    fn functional_read(&self, addr: Addr, buf: &mut [u8]) {
        match self.region_of(addr) {
            MemRegion::Dram => self.dram_image.read(addr, buf),
            MemRegion::Pm => {
                // Overlay entries shadow the persistent image per
                // cacheline.
                self.persistent.read(addr, buf);
                let mut pos = 0usize;
                while pos < buf.len() {
                    let a = Addr(addr.0 + pos as u64);
                    let cl = a.cacheline();
                    let off = a.offset_in_cacheline();
                    let chunk = (buf.len() - pos).min(CACHELINE_BYTES as usize - off);
                    if let Some(bytes) = self.overlay.get(&cl.0) {
                        buf[pos..pos + chunk].copy_from_slice(&bytes[off..off + chunk]);
                    }
                    pos += chunk;
                }
            }
        }
    }

    fn overlay_write(&mut self, addr: Addr, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let a = Addr(addr.0 + pos as u64);
            let cl = a.cacheline();
            let off = a.offset_in_cacheline();
            let chunk = (data.len() - pos).min(CACHELINE_BYTES as usize - off);
            let entry = self.overlay.entry(cl.0).or_insert_with(|| {
                let mut init = [0u8; 64];
                self.persistent.read(cl, &mut init);
                init
            });
            entry[off..off + chunk].copy_from_slice(&data[pos..pos + chunk]);
            pos += chunk;
        }
    }

    /// Moves the overlay entry for `cl` into the persistent image (the
    /// data reached the ADR domain).
    fn apply_persist(&mut self, cl: Addr) {
        if let Some(bytes) = self.overlay.remove(&cl.0) {
            self.persistent.write(cl, &bytes);
        }
    }

    /// A PM write accepted by the iMC. Normally the overlay entry reaches
    /// the ADR domain; an armed WPQ-drop fault silently discards the Nth
    /// acceptance — the controller acknowledged data it will never
    /// persist, leaving the line in the crash-uncertain set even though
    /// the program flushed it correctly.
    fn persist_accept(&mut self, cl: Addr) {
        self.fault_stats.wpq_accepts += 1;
        if let Some(n) = self.faults.wpq_drop_every_nth {
            if self.fault_stats.wpq_accepts.is_multiple_of(n) {
                self.fault_stats.wpq_dropped.push(cl.0);
                return;
            }
        }
        self.apply_persist(cl);
    }

    // ----- timing helpers ---------------------------------------------

    fn ht_extra(&self, socket: usize, core: usize) -> Cycles {
        if self.core_occupancy[socket][core] > 1 {
            self.cfg.ht_penalty
        } else {
            0
        }
    }

    fn remote_read_extra(&self, socket: usize) -> Cycles {
        if socket == 0 {
            0
        } else {
            self.cfg.remote_read_penalty
        }
    }

    fn remote_write_extra(&self, socket: usize) -> Cycles {
        if socket == 0 {
            0
        } else {
            self.cfg.remote_write_penalty
        }
    }

    /// Handles dirty lines evicted from an LLC: they are written back to
    /// their backing device and (for PM) become persistent.
    fn handle_writebacks(&mut self, now: Cycles, wbs: &[Addr]) {
        for &cl in wbs {
            match self.region_of(cl) {
                MemRegion::Pm => {
                    self.pm.write(now, cl);
                    self.persist_accept(cl);
                    if self.tracing() {
                        self.emit(TraceEvent::WriteBack { line: cl, at: now });
                    }
                }
                MemRegion::Dram => {
                    self.dram.write(now, cl);
                }
            }
        }
    }

    /// Issues hardware-prefetch fills suggested by a demand access.
    fn issue_prefetches(&mut self, socket: usize, core: usize, now: Cycles, list: &[Addr]) {
        for &pf in list {
            let cl = pf.cacheline();
            if let Some(&done) = self.inflight_fills.get(&cl.0) {
                if done > now {
                    continue;
                }
            }
            let completion = match self.region_of(cl) {
                MemRegion::Pm => self.pm.read(now, cl, PersistWait::Full).0,
                MemRegion::Dram => self.dram.read(now, cl),
            } + self.remote_read_extra(socket);
            let wbs = self.caches[socket].fill_prefetch(core, cl);
            self.handle_writebacks(now, &wbs);
            self.inflight_fills.insert(cl.0, completion);
        }
        if self.inflight_fills.len() >= self.inflight_gc_watermark {
            // Every reader filters on `done > now`, so an entry complete
            // for the slowest thread's clock is indistinguishable from an
            // absent one for every thread, forever (clocks only advance).
            let horizon = self
                .threads
                .iter()
                .map(|t| t.clock.now())
                .min()
                .unwrap_or(now);
            self.inflight_fills.retain(|_, &mut done| done > horizon);
            self.inflight_gc_watermark = (self.inflight_fills.len() * 2).max(INFLIGHT_GC_MIN);
            // Same horizon argument holds for the controller's in-flight
            // write records: every future call passes a thread clock, and
            // all of those are >= horizon.
            self.pm.gc_inflight(horizon);
        }
    }

    /// Offers the PM controller a chance to collect completed in-flight
    /// write records (see [`imc::PmController::gc_inflight`] for why the
    /// min-over-clocks horizon is exact). Called from the store-side hot
    /// paths, which never issue prefetches and would otherwise let the
    /// map grow for an entire write phase.
    fn gc_pm_inflight(&mut self) {
        let Some(horizon) = self.threads.iter().map(|t| t.clock.now()).min() else {
            return;
        };
        self.pm.gc_inflight(horizon);
    }

    /// Decides how a PM read is ordered behind an in-flight persist: reads
    /// separated from the flush only by `sfence`s wait for the WPQ drain;
    /// reads ordered by an `mfence` wait out the whole pipeline, as do
    /// reads after non-temporal stores.
    /// Returns `true` if `recent_flush` could hold `key` — a cheap range
    /// check against the conservative key bounds, so streaming access
    /// patterns never walk the map for provably absent keys.
    #[inline]
    fn recent_flush_may_contain(&self, key: u64) -> bool {
        match self.flush_key_bounds {
            Some((lo, hi)) => (lo..=hi).contains(&key),
            None => false,
        }
    }

    /// Records `key` into the `recent_flush` bounds.
    #[inline]
    fn widen_flush_key_bounds(&mut self, key: u64) {
        self.flush_key_bounds = Some(match self.flush_key_bounds {
            Some((lo, hi)) => (lo.min(key), hi.max(key)),
            None => (key, key),
        });
    }

    fn persist_wait_for(&self, tid: ThreadId, cl: Addr) -> PersistWait {
        if self.flushes_in_recent == 0 || !self.recent_flush_may_contain(cl.0) {
            return PersistWait::Full;
        }
        match self.recent_flush.get(&cl.0) {
            Some(rec) if rec.was_flush && rec.issued > self.threads[tid.0].last_mfence => {
                PersistWait::Drain
            }
            _ => PersistWait::Full,
        }
    }

    /// Checks the G1 `clwb + sfence` load bypass: a load that is not
    /// `mfence`-ordered behind a very recent invalidating flush can still
    /// be served from the pre-invalidation cached copy.
    fn load_bypasses_flush(&self, tid: ThreadId, cl: Addr, now: Cycles) -> bool {
        if !self.cfg.sfence_load_bypass
            || self.flushes_in_recent == 0
            || !self.recent_flush_may_contain(cl.0)
        {
            return false;
        }
        match self.recent_flush.get(&cl.0) {
            Some(rec) => {
                rec.was_flush
                    && rec.issued > self.threads[tid.0].last_mfence
                    && now < rec.issued + self.cfg.load_bypass_window
            }
            None => false,
        }
    }

    /// One cacheline demand access (load or store). Returns the latency.
    fn access_line(&mut self, tid: ThreadId, cl: Addr, write: bool) -> Cycles {
        let (socket, core, now) = {
            let t = &self.threads[tid.0];
            (t.socket, t.core, t.clock.now())
        };
        // The sfence load bypass serves the stale cached copy without
        // touching the hierarchy (the flushed line stays gone).
        if !write && self.load_bypasses_flush(tid, cl, now) {
            return self.cfg.cache.l1_latency + self.ht_extra(socket, core);
        }
        let res = self.caches[socket].access(core, cl, write);
        let mut latency = match res.level {
            HitLevel::Miss => {
                // In-flight fill (e.g. from a prefetch): wait for it
                // instead of issuing a second memory read.
                let fill = self.inflight_fills.get(&cl.0).copied().filter(|&d| d > now);
                match fill {
                    Some(done) => (done - now).max(self.cfg.cache.l1_latency),
                    None => {
                        let wait = self.persist_wait_for(tid, cl);
                        let completion = match self.region_of(cl) {
                            MemRegion::Pm => self.pm.read(now, cl, wait).0,
                            MemRegion::Dram => self.dram.read(now, cl),
                        } + self.remote_read_extra(socket);
                        completion - now
                    }
                }
            }
            level => {
                // simlint::allow(unwrap-in-lib, non-Miss hit levels always
                // carry a configured latency; a None here is a cache-model
                // bug worth aborting on, not a recoverable condition)
                #[allow(clippy::expect_used)]
                let base = self.caches[socket]
                    .latency_of(level)
                    .expect("hit level has a latency");
                // A prefetched line may be resident (metadata) but still in
                // flight; pay the remaining fill time.
                match self.inflight_fills.get(&cl.0).copied().filter(|&d| d > now) {
                    Some(done) => base.max(done - now),
                    None => base,
                }
            }
        };
        latency += self.ht_extra(socket, core);
        self.handle_writebacks(now, &res.writebacks);
        let prefetch = res.prefetch;
        self.issue_prefetches(socket, core, now, &prefetch);
        latency
    }

    // ----- public memory operations -------------------------------------

    /// Loads `buf.len()` bytes from `addr`.
    pub fn load(&mut self, tid: ThreadId, addr: Addr, buf: &mut [u8]) {
        let len = buf.len() as u64;
        if self.tracing() {
            self.emit(TraceEvent::Load {
                tid,
                addr,
                len,
                region: self.region_of(addr),
                at: self.threads[tid.0].clock.now(),
            });
        }
        let mut total = 0;
        for cl in simbase::addr::cachelines_covering(addr, len) {
            total += self.access_line(tid, cl, false);
        }
        self.threads[tid.0].clock.advance(total);
        self.demand.add_read(len);
        self.functional_read(addr, buf);
    }

    /// Loads two independent cachelines concurrently, modelling the
    /// memory-level parallelism an out-of-order core extracts from two
    /// loads with no data dependency (e.g. CCEH's segment-metadata and
    /// bucket reads, which both depend only on the directory entry).
    ///
    /// The thread advances by the *maximum* of the two access latencies;
    /// contention between the two requests still arises naturally in the
    /// shared controllers.
    pub fn load_pair(
        &mut self,
        tid: ThreadId,
        a: Addr,
        b: Addr,
        out_a: &mut [u8],
        out_b: &mut [u8],
    ) {
        let start = self.threads[tid.0].clock.now();
        if self.tracing() {
            self.emit(TraceEvent::Load {
                tid,
                addr: a,
                len: out_a.len() as u64,
                region: self.region_of(a),
                at: start,
            });
            self.emit(TraceEvent::Load {
                tid,
                addr: b,
                len: out_b.len() as u64,
                region: self.region_of(b),
                at: start,
            });
        }
        let lat_a = {
            let mut total = 0;
            for cl in simbase::addr::cachelines_covering(a, out_a.len() as u64) {
                total += self.access_line(tid, cl, false);
            }
            total
        };
        // Issue the second access at the same start time: temporarily
        // rewind is not possible, so compute it before advancing.
        let lat_b = {
            let mut total = 0;
            for cl in simbase::addr::cachelines_covering(b, out_b.len() as u64) {
                total += self.access_line(tid, cl, false);
            }
            total
        };
        self.threads[tid.0].clock.advance(lat_a.max(lat_b));
        self.demand.add_read((out_a.len() + out_b.len()) as u64);
        self.functional_read(a, out_a);
        self.functional_read(b, out_b);
    }

    /// Loads a little-endian `u64` from `addr`.
    pub fn load_u64(&mut self, tid: ThreadId, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.load(tid, addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Stores `data` at `addr` through the cache hierarchy
    /// (write-allocate: a miss fetches the line first).
    pub fn store(&mut self, tid: ThreadId, addr: Addr, data: &[u8]) {
        let len = data.len() as u64;
        if self.tracing() {
            self.emit(TraceEvent::Store {
                tid,
                addr,
                len,
                region: self.region_of(addr),
                at: self.threads[tid.0].clock.now(),
            });
        }
        let mut total = 0;
        for cl in simbase::addr::cachelines_covering(addr, len) {
            total += self.access_line(tid, cl, true);
        }
        self.threads[tid.0].clock.advance(total);
        self.demand.add_write(len);
        match self.region_of(addr) {
            MemRegion::Pm => self.overlay_write(addr, data),
            MemRegion::Dram => self.dram_image.write(addr, data),
        }
    }

    /// Stores a little-endian `u64` at `addr`.
    pub fn store_u64(&mut self, tid: ThreadId, addr: Addr, value: u64) {
        self.store(tid, addr, &value.to_le_bytes());
    }

    /// Stores a full cacheline without the ownership read (models
    /// full-line store optimizations; `addr` must be cacheline-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not cacheline-aligned.
    pub fn store_full_cacheline(&mut self, tid: ThreadId, addr: Addr, data: &[u8; 64]) {
        assert!(
            addr.is_cacheline_aligned(),
            "full-line store must be aligned"
        );
        let (socket, core, now) = {
            let t = &self.threads[tid.0];
            (t.socket, t.core, t.clock.now())
        };
        let latency = if self.caches[socket].contains(core, addr).is_some() {
            // Resident: a plain cached store (which emits its own event).
            return self.store(tid, addr, data);
        } else {
            if self.tracing() {
                self.emit(TraceEvent::Store {
                    tid,
                    addr,
                    len: 64,
                    region: self.region_of(addr),
                    at: now,
                });
            }
            let wbs = self.caches[socket].install(core, addr, true);
            self.handle_writebacks(now, &wbs);
            self.cfg.cache.l1_latency + self.ht_extra(socket, core)
        };
        self.threads[tid.0].clock.advance(latency);
        self.demand.add_write(64);
        match self.region_of(addr) {
            MemRegion::Pm => self.overlay_write(addr, data),
            MemRegion::Dram => self.dram_image.write(addr, data),
        }
    }

    /// Non-temporal store: bypasses the caches and goes straight to the
    /// memory controller. The write is posted — the thread does not wait
    /// for WPQ acceptance; a following fence does.
    pub fn nt_store(&mut self, tid: ThreadId, addr: Addr, data: &[u8]) {
        let len = data.len() as u64;
        if self.tracing() {
            self.emit(TraceEvent::NtStore {
                tid,
                addr,
                len,
                region: self.region_of(addr),
                at: self.threads[tid.0].clock.now(),
            });
        }
        let (socket, core, start) = {
            let t = &self.threads[tid.0];
            (t.socket, t.core, t.clock.now())
        };
        // Per-line costs that cannot change mid-operation, hoisted out of
        // the line loop.
        let per_line = self.cfg.ntstore_issue + self.ht_extra(socket, core);
        let remote_extra = self.remote_write_extra(socket);
        let mut total = 0;
        let mut max_accept = 0;
        let mut nlines = 0u64;
        for cl in simbase::addr::cachelines_covering(addr, len) {
            nlines += 1;
            let now = start + total;
            // Coherence: drop any cached copy (its data is merged through
            // the overlay).
            self.caches[socket].flush(cl, FlushMode::Invalidate);
            match self.region_of(cl) {
                MemRegion::Pm => {
                    let ticket = self.pm.write(now, cl);
                    max_accept = max_accept.max(ticket.accept + remote_extra);
                    // An nt-store supersedes any earlier flush record for
                    // the line (no load bypass, full persist wait — the
                    // same as having no record at all).
                    if self.flushes_in_recent > 0 && self.recent_flush.remove(&cl.0).is_some() {
                        self.flushes_in_recent -= 1;
                    }
                }
                MemRegion::Dram => {
                    let (accept, _) = self.dram.write(now, cl);
                    max_accept = max_accept.max(accept + remote_extra);
                }
            }
            total += per_line;
        }
        let t = &mut self.threads[tid.0];
        t.clock.advance(total);
        t.outstanding_accept = t.outstanding_accept.max(max_accept);
        t.sb_push(nlines);
        self.demand.add_write(len);
        match self.region_of(addr) {
            MemRegion::Pm => {
                if addr.is_cacheline_aligned()
                    && len.is_multiple_of(CACHELINE_BYTES)
                    && self.faults.wpq_drop_every_nth.is_none()
                {
                    // Full-line persist fast path: the accepted data goes
                    // straight into the persistent image, skipping the
                    // overlay round-trip (entry init would read back the
                    // very bytes the store overwrites).
                    for (i, cl) in simbase::addr::cachelines_covering(addr, len).enumerate() {
                        self.fault_stats.wpq_accepts += 1;
                        self.overlay.remove(&cl.0);
                        self.persistent
                            .write(cl, &data[i * CACHELINE_BYTES as usize..][..64]);
                    }
                } else {
                    self.overlay_write(addr, data);
                    for cl in simbase::addr::cachelines_covering(addr, len) {
                        self.persist_accept(cl);
                    }
                }
            }
            MemRegion::Dram => self.dram_image.write(addr, data),
        }
    }

    /// Batched non-temporal stores: writes the 64-byte pattern `line` to
    /// `count` consecutive cachelines starting at `addr`.
    ///
    /// Exactly equivalent — in timing, trace events, and functional state —
    /// to `count` single-cacheline [`Machine::nt_store`] calls, but one
    /// dispatch covers the whole run: per-line constants (issue cost,
    /// hyperthread and NUMA penalties, socket lookup) are hoisted out of
    /// the loop and the clock/fence bookkeeping is settled once.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not cacheline-aligned.
    pub fn nt_store_run(&mut self, tid: ThreadId, addr: Addr, line: &[u8; 64], count: u64) {
        assert!(
            addr.is_cacheline_aligned(),
            "nt-store run must start aligned"
        );
        let (socket, core, start) = {
            let t = &self.threads[tid.0];
            (t.socket, t.core, t.clock.now())
        };
        let per_line = self.cfg.ntstore_issue + self.ht_extra(socket, core);
        let remote_extra = self.remote_write_extra(socket);
        let tracing = self.tracing();
        let fast_persist = self.faults.wpq_drop_every_nth.is_none();
        let mut total = 0;
        let mut max_accept = 0;
        for i in 0..count {
            let cl = addr.add_cachelines(i);
            let now = start + total;
            if tracing {
                self.emit(TraceEvent::NtStore {
                    tid,
                    addr: cl,
                    len: CACHELINE_BYTES,
                    region: self.region_of(cl),
                    at: now,
                });
            }
            self.caches[socket].flush(cl, FlushMode::Invalidate);
            match self.region_of(cl) {
                MemRegion::Pm => {
                    let ticket = self.pm.write(now, cl);
                    max_accept = max_accept.max(ticket.accept + remote_extra);
                    if self.flushes_in_recent > 0 && self.recent_flush.remove(&cl.0).is_some() {
                        self.flushes_in_recent -= 1;
                    }
                    if fast_persist {
                        self.fault_stats.wpq_accepts += 1;
                        self.overlay.remove(&cl.0);
                        self.persistent.write(cl, line);
                    } else {
                        self.overlay_write(cl, line);
                        self.persist_accept(cl);
                    }
                }
                MemRegion::Dram => {
                    let (accept, _) = self.dram.write(now, cl);
                    max_accept = max_accept.max(accept + remote_extra);
                    self.dram_image.write(cl, line);
                }
            }
            total += per_line;
        }
        let t = &mut self.threads[tid.0];
        t.clock.advance(total);
        t.outstanding_accept = t.outstanding_accept.max(max_accept);
        t.sb_push(count);
        self.demand.add_write(CACHELINE_BYTES * count);
        self.gc_pm_inflight();
    }

    /// Batched touch loads: performs a `u64` demand load at the base of
    /// each of `count` consecutive cachelines, discarding the data.
    ///
    /// Timing, trace events, and counters are exactly those of `count`
    /// [`Machine::load_u64`] calls; only the functional read-back (which
    /// has no timing or trace effect) is skipped, since the caller has
    /// declared the values dead.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not cacheline-aligned.
    pub fn load_u64_run(&mut self, tid: ThreadId, addr: Addr, count: u64) {
        assert!(addr.is_cacheline_aligned(), "load run must start aligned");
        let tracing = self.tracing();
        for i in 0..count {
            let cl = addr.add_cachelines(i);
            if tracing {
                self.emit(TraceEvent::Load {
                    tid,
                    addr: cl,
                    len: 8,
                    region: self.region_of(cl),
                    at: self.threads[tid.0].clock.now(),
                });
            }
            let latency = self.access_line(tid, cl, false);
            self.threads[tid.0].clock.advance(latency);
        }
        self.demand.add_read(8 * count);
    }

    /// Batched `clflushopt` over `count` consecutive cachelines.
    ///
    /// Equivalent to `count` [`Machine::clflushopt`] calls, with the
    /// per-line constants hoisted; the transient-map garbage-collection
    /// check runs once per run instead of once per line (observable only
    /// past the GC threshold, where the collection point shifts to the
    /// end of the run).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not cacheline-aligned.
    pub fn clflushopt_run(&mut self, tid: ThreadId, addr: Addr, count: u64) {
        assert!(addr.is_cacheline_aligned(), "flush run must start aligned");
        let (socket, core) = {
            let t = &self.threads[tid.0];
            (t.socket, t.core)
        };
        let issue = self.cfg.flush_issue + self.ht_extra(socket, core);
        let remote_extra = self.remote_write_extra(socket);
        let tracing = self.tracing();
        for i in 0..count {
            let cl = addr.add_cachelines(i);
            let now = self.threads[tid.0].clock.now();
            let dirty = self.caches[socket].flush(cl, FlushMode::Invalidate);
            if tracing {
                self.emit(TraceEvent::Flush {
                    tid,
                    line: cl,
                    kind: FlushKind::Clflushopt,
                    region: self.region_of(cl),
                    dirty,
                    at: now,
                });
            }
            let mut accept = None;
            if dirty {
                match self.region_of(cl) {
                    MemRegion::Pm => {
                        let ticket = self.pm.write(now, cl);
                        accept = Some(ticket.accept + remote_extra);
                        self.persist_accept(cl);
                    }
                    MemRegion::Dram => {
                        let (a, _) = self.dram.write(now, cl);
                        accept = Some(a + remote_extra);
                    }
                }
                let prev = self.recent_flush.insert(
                    cl.0,
                    FlushRecord {
                        issued: now,
                        was_flush: true,
                    },
                );
                if prev.is_none() {
                    self.flushes_in_recent += 1;
                }
                self.widen_flush_key_bounds(cl.0);
            }
            let t = &mut self.threads[tid.0];
            t.clock.advance(issue);
            if let Some(a) = accept {
                t.outstanding_accept = t.outstanding_accept.max(a);
                t.sb_push(1);
            }
        }
        self.gc_recent_flush();
        self.gc_pm_inflight();
    }

    /// `clwb`: writes back the cacheline containing `addr` if dirty. On G1
    /// configurations this also invalidates the line (the behaviour the
    /// paper measures); on G2 the line is retained.
    pub fn clwb(&mut self, tid: ThreadId, addr: Addr) {
        self.flush_line(tid, addr, self.cfg.clwb_mode, FlushKind::Clwb);
    }

    /// `clflushopt`: writes back (if dirty) and invalidates the line.
    pub fn clflushopt(&mut self, tid: ThreadId, addr: Addr) {
        self.flush_line(tid, addr, FlushMode::Invalidate, FlushKind::Clflushopt);
    }

    /// Legacy `clflush`: like [`Machine::clflushopt`], but strongly
    /// ordered — the instruction itself waits until the write-back is
    /// accepted, instead of leaving that to a later fence. This is why
    /// persistent software prefers `clflushopt`/`clwb`.
    pub fn clflush(&mut self, tid: ThreadId, addr: Addr) {
        self.flush_line(tid, addr, FlushMode::Invalidate, FlushKind::Clflush);
        let t = &mut self.threads[tid.0];
        t.clock.advance_to(t.outstanding_accept);
    }

    fn flush_line(&mut self, tid: ThreadId, addr: Addr, mode: FlushMode, kind: FlushKind) {
        let cl = addr.cacheline();
        let (socket, core, now) = {
            let t = &self.threads[tid.0];
            (t.socket, t.core, t.clock.now())
        };
        let dirty = self.caches[socket].flush(cl, mode);
        if self.tracing() {
            self.emit(TraceEvent::Flush {
                tid,
                line: cl,
                kind,
                region: self.region_of(cl),
                dirty,
                at: now,
            });
        }
        let mut accept = None;
        if dirty {
            match self.region_of(cl) {
                MemRegion::Pm => {
                    let ticket = self.pm.write(now, cl);
                    accept = Some(ticket.accept + self.remote_write_extra(socket));
                    self.persist_accept(cl);
                }
                MemRegion::Dram => {
                    let (a, _) = self.dram.write(now, cl);
                    accept = Some(a + self.remote_write_extra(socket));
                }
            }
            if mode == FlushMode::Invalidate {
                let prev = self.recent_flush.insert(
                    cl.0,
                    FlushRecord {
                        issued: now,
                        was_flush: true,
                    },
                );
                if prev.is_none() {
                    self.flushes_in_recent += 1;
                }
                self.widen_flush_key_bounds(cl.0);
            }
        }
        let issue = self.cfg.flush_issue + self.ht_extra(socket, core);
        let t = &mut self.threads[tid.0];
        t.clock.advance(issue);
        if let Some(a) = accept {
            t.outstanding_accept = t.outstanding_accept.max(a);
            t.sb_push(1);
        }
        self.gc_recent_flush();
    }

    fn gc_recent_flush(&mut self) {
        if self.recent_flush.len() >= MAP_GC_THRESHOLD {
            self.recent_flush.clear();
            self.flushes_in_recent = 0;
            self.flush_key_bounds = None;
        }
    }

    /// `sfence`: waits for all of this thread's outstanding flushes and
    /// nt-stores to be accepted into the ADR domain. Does not order
    /// subsequent loads.
    pub fn sfence(&mut self, tid: ThreadId) {
        self.fence(tid, FenceKind::Sfence);
    }

    /// `mfence`: like [`Machine::sfence`], and additionally orders
    /// subsequent loads behind prior flushes.
    pub fn mfence(&mut self, tid: ThreadId) {
        self.fence(tid, FenceKind::Mfence);
    }

    fn fence(&mut self, tid: ThreadId, kind: FenceKind) {
        if self.tracing() {
            self.emit(TraceEvent::Fence {
                tid,
                kind,
                at: self.threads[tid.0].clock.now(),
            });
        }
        let fence_cost = self.cfg.fence_cost;
        let t = &mut self.threads[tid.0];
        t.clock.advance_to(t.outstanding_accept);
        t.clock.advance(fence_cost);
        t.outstanding_accept = 0;
        t.sb_drain();
        if kind == FenceKind::Mfence {
            t.last_mfence = t.clock.now();
        }
    }

    // ----- locked read-modify-write atomics ---------------------------

    /// Simulated `lock cmpxchg` on the aligned `u64` at `addr`: atomically
    /// compares the current value with `expected` and, on match, writes
    /// `new`. Returns the *old* value (compare succeeded iff it equals
    /// `expected`).
    ///
    /// Semantics follow x86: the locked RMW takes the line for ownership
    /// even when the compare fails, and acts as a full barrier — the
    /// thread waits out its outstanding flush/nt-store acceptances and
    /// drains its store buffer, exactly like `mfence`. The written value
    /// lands in the cache (PM overlay): durability still requires an
    /// explicit flush + fence, as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn cas_u64(&mut self, tid: ThreadId, addr: Addr, expected: u64, new: u64) -> u64 {
        let old = self.locked_rmw_begin(tid, addr);
        let success = old == expected;
        if self.tracing() {
            self.emit(TraceEvent::Cas {
                tid,
                addr,
                region: self.region_of(addr),
                success,
                at: self.threads[tid.0].clock.now(),
            });
        }
        self.locked_rmw_finish(tid, addr, if success { Some(new) } else { None });
        let t = &mut self.threads[tid.0];
        t.cas_ops += 1;
        if !success {
            t.cas_failures += 1;
        }
        old
    }

    /// Simulated `lock xadd` on the aligned `u64` at `addr`: atomically
    /// adds `delta` (wrapping) and returns the old value. Same barrier
    /// and durability semantics as [`Machine::cas_u64`].
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn fetch_add_u64(&mut self, tid: ThreadId, addr: Addr, delta: u64) -> u64 {
        let old = self.locked_rmw_begin(tid, addr);
        if self.tracing() {
            self.emit(TraceEvent::FetchAdd {
                tid,
                addr,
                region: self.region_of(addr),
                delta,
                at: self.threads[tid.0].clock.now(),
            });
        }
        self.locked_rmw_finish(tid, addr, Some(old.wrapping_add(delta)));
        self.threads[tid.0].fetch_adds += 1;
        old
    }

    /// Common locked-RMW prologue: alignment check and the functional
    /// read of the current value (timing is charged in the epilogue).
    fn locked_rmw_begin(&mut self, _tid: ThreadId, addr: Addr) -> u64 {
        assert!(
            addr.0.is_multiple_of(8),
            "locked RMW target must be u64-aligned"
        );
        let mut b = [0u8; 8];
        self.functional_read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Common locked-RMW epilogue: ownership access (paid whether or not
    /// the compare succeeded — the lock prefix takes the line either
    /// way), RMW issue cost, full-barrier drain, and the functional
    /// write when `write` carries a value.
    fn locked_rmw_finish(&mut self, tid: ThreadId, addr: Addr, write: Option<u64>) {
        let line_latency = self.access_line(tid, addr.cacheline(), true);
        let t = &mut self.threads[tid.0];
        t.clock.advance(line_latency + LOCKED_RMW_COST);
        // Full barrier: subsequent loads are ordered behind prior persists.
        t.clock.advance_to(t.outstanding_accept);
        t.outstanding_accept = 0;
        t.sb_drain();
        t.last_mfence = t.clock.now();
        self.demand.add_read(8);
        if let Some(value) = write {
            self.demand.add_write(8);
            let data = value.to_le_bytes();
            match self.region_of(addr) {
                MemRegion::Pm => self.overlay_write(addr, &data),
                MemRegion::Dram => self.dram_image.write(addr, &data),
            }
        }
    }

    /// The paper's Algorithm 2: copies one XPLine from PM into a DRAM (or
    /// cache-resident) buffer with streaming SIMD loads that neither
    /// allocate the PM lines in the caches nor train the prefetchers.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not XPLine-aligned or `dst` is not
    /// cacheline-aligned.
    pub fn copy_xpline_streaming(&mut self, tid: ThreadId, src: Addr, dst: Addr) {
        assert!(src.is_xpline_aligned(), "source must be XPLine-aligned");
        assert!(dst.is_cacheline_aligned(), "destination must be aligned");
        if self.tracing() {
            self.emit(TraceEvent::Load {
                tid,
                addr: src,
                len: XPLINE_BYTES,
                region: self.region_of(src),
                at: self.threads[tid.0].clock.now(),
            });
        }
        let socket = self.threads[tid.0].socket;
        let mut total = 0;
        for i in 0..4u64 {
            let now = self.threads[tid.0].clock.now() + total;
            let cl = src.add_cachelines(i);
            let wait = self.persist_wait_for(tid, cl);
            let (done, _) = self.pm.read(now, cl, wait);
            total += done + self.remote_read_extra(socket) - now + STREAMING_COPY_LINE_COST;
        }
        self.threads[tid.0].clock.advance(total);
        self.demand.add_read(XPLINE_BYTES);
        // Stage into the destination buffer with full-line stores.
        let mut bytes = [0u8; 256];
        self.functional_read(src, &mut bytes);
        for i in 0..4usize {
            let mut line = [0u8; 64];
            line.copy_from_slice(&bytes[i * 64..(i + 1) * 64]);
            self.store_full_cacheline(tid, dst.add_cachelines(i as u64), &line);
        }
    }

    // ----- metrics, crash, reset --------------------------------------

    /// Counters accumulated since construction, before any checkpoint
    /// baseline is folded in.
    fn live_metrics(&self) -> MachineMetrics {
        let mut mt = MtStats::default();
        for t in &self.threads {
            mt.cas_ops += t.cas_ops;
            mt.cas_failures += t.cas_failures;
            mt.fetch_adds += t.fetch_adds;
            mt.persist_epochs += t.persist_epochs;
            mt.sb_max_depth = mt.sb_max_depth.max(t.sb_max);
        }
        MachineMetrics {
            telemetry: TelemetrySnapshot {
                imc: self.pm.imc_counters(),
                media: self.pm.media_counters(),
                dram: self.dram.counters(),
                demand: self.demand,
            },
            sockets: self
                .caches
                .iter()
                .map(CacheSystem::hierarchy_stats)
                .collect(),
            dimms: self.pm.dimm_stats(),
            queues: self.pm.queue_stats(),
            mt,
        }
    }

    /// Returns the unified metrics view: byte taps at every boundary,
    /// per-socket cache and prefetcher counters, per-DIMM buffer/AIT
    /// activity, and RPQ/WPQ occupancy.
    ///
    /// Counters are cumulative since construction (or the last
    /// [`Machine::reset_metrics`]) and survive checkpoint/restore.
    pub fn metrics(&self) -> MachineMetrics {
        let mut m = self.live_metrics();
        m.merge(&self.metrics_baseline);
        m
    }

    /// Zeroes every counter in the metrics view, keeping all cache and
    /// buffer *contents* warm. Used between experiment warm-up and
    /// measurement windows.
    pub fn reset_metrics(&mut self) {
        self.metrics_baseline = MachineMetrics::default();
        self.pm.reset_counters();
        self.dram.reset_all();
        self.demand.reset();
        for c in &mut self.caches {
            c.reset_stats();
        }
        for t in &mut self.threads {
            // `sb_pending` is live pipeline state, not a counter: keep it,
            // and restart the high-water mark from it.
            t.sb_max = t.sb_pending;
            t.persist_epochs = 0;
            t.cas_ops = 0;
            t.cas_failures = 0;
            t.fetch_adds = 0;
        }
    }

    /// Simulates a power failure.
    ///
    /// ADR-protected data (everything accepted into the WPQ and on-DIMM
    /// buffers, i.e. the persistent image) survives. Dirty cachelines are
    /// handled per `policy` — unless the machine is configured with eADR,
    /// in which case they all survive. DRAM contents are lost. Thread
    /// clocks continue (the machine reboots in simulated time).
    pub fn power_fail(&mut self, policy: CrashPolicy) {
        let now = self
            .threads
            .iter()
            .map(|t| t.clock.now())
            .max()
            .unwrap_or(0);
        self.emit(TraceEvent::PowerFail { at: now });
        let mut dirty = Vec::new();
        for c in &mut self.caches {
            dirty.extend(c.drop_all());
        }
        for cl in dirty {
            if self.region_of(cl) != MemRegion::Pm {
                continue;
            }
            let survives = self.cfg.eadr
                || match policy {
                    CrashPolicy::LoseUnflushed => false,
                    CrashPolicy::PersistAllDirty => true,
                    CrashPolicy::PersistDirtyFraction(p) => self.crash_rng.gen_bool(p),
                };
            if survives {
                self.apply_persist(cl);
            }
        }
        self.overlay.clear();
        self.dram_image.clear();
        // Armed ADR-violating faults fire now: lines still in the WPQ or
        // the on-DIMM write buffers at the instant of failure lose power
        // mid media-write, and the interrupted cells read back as
        // uncorrectable errors after reboot.
        let mut victims: Vec<u64> = Vec::new();
        if let Some(pd) = self.faults.xpbuffer_partial_drain {
            let mut rng = SplitMix64::new(pd.seed);
            for xp in self.pm.buffered_xplines() {
                if rng.gen_bool(pd.drop_fraction) {
                    victims.extend((xp..xp + XPLINE_BYTES).step_by(CACHELINE_BYTES as usize));
                }
            }
        }
        if let Some(pd) = self.faults.wpq_partial_drain {
            let mut rng = SplitMix64::new(pd.seed);
            for cl in self.pm.undrained_lines(now) {
                if rng.gen_bool(pd.drop_fraction) {
                    victims.push(cl);
                }
            }
        }
        victims.sort_unstable();
        victims.dedup();
        for cl in victims {
            self.poison_line(Addr(cl));
            self.fault_stats.crash_poisoned.push(cl);
        }
        self.pm.power_fail_flush(now);
        self.dram.reset_all();
        self.inflight_fills.clear();
        self.inflight_gc_watermark = INFLIGHT_GC_MIN;
        self.recent_flush.clear();
        self.flushes_in_recent = 0;
        self.flush_key_bounds = None;
        for t in &mut self.threads {
            t.outstanding_accept = 0;
            // Power loss empties the store buffers without completing an
            // epoch; the cumulative counters survive the reboot.
            t.sb_pending = 0;
        }
    }

    /// Cold-resets all timing state (caches, buffers, AIT, queues,
    /// counters) while *keeping functional memory contents*. Used between
    /// experiment data points.
    pub fn cold_reset(&mut self) {
        let cfg = self.cfg.clone();
        self.caches = (0..2)
            .map(|_| CacheSystem::new(cfg.cache.clone(), cfg.cores_per_socket, cfg.prefetch))
            .collect();
        // Flush overlay contents into the persistent image so functional
        // state is preserved across the reset.
        let entries: Vec<u64> = self.overlay.keys().copied().collect();
        for cl in entries {
            self.apply_persist(Addr(cl));
        }
        self.pm.reset_all();
        self.dram.reset_all();
        self.inflight_fills.clear();
        self.inflight_gc_watermark = INFLIGHT_GC_MIN;
        self.recent_flush.clear();
        self.flushes_in_recent = 0;
        self.flush_key_bounds = None;
        self.demand.reset();
        self.metrics_baseline = MachineMetrics::default();
        for t in &mut self.threads {
            t.outstanding_accept = 0;
            t.sb_pending = 0;
            t.sb_max = 0;
            t.persist_epochs = 0;
            t.cas_ops = 0;
            t.cas_failures = 0;
            t.fetch_adds = 0;
        }
    }

    // ----- checkpoint / restore ---------------------------------------

    /// Quiesces the machine and captures a full experiment checkpoint.
    ///
    /// Quiescing folds the volatile overlay into the persistent image and
    /// resets all transient timing state (caches, controller queues,
    /// in-flight fills), exactly like [`Machine::cold_reset`] — but the
    /// demand byte counters are preserved and captured. Armed fault hooks
    /// are disarmed and fault statistics cleared (see the
    /// [`snapshot`](crate::snapshot) module docs).
    ///
    /// After this call, the live machine is in *precisely* the state that
    /// [`Machine::restore`] reproduces from the returned snapshot, so a
    /// run that checkpoints and continues is identical to one that is
    /// killed here and resumed.
    pub fn checkpoint(&mut self) -> MachineSnapshot {
        let demand = self.demand;
        // Fold the live counters into the baseline so the metrics view is
        // continuous across the quiesce. Demand is kept out of the
        // baseline: the counter itself survives (and is captured) below.
        let mut baseline = self.metrics();
        baseline.telemetry.demand = ByteCounter::new();
        self.cold_reset();
        self.demand = demand;
        self.metrics_baseline = baseline.clone();
        self.faults = FaultHooks::none();
        self.fault_stats = FaultStats::default();
        // Re-seat the crash RNG at a recorded state so the continued and
        // the restored machine draw the same stream.
        let rng_state = self.crash_rng.state();
        MachineSnapshot {
            cfg_fingerprint: crate::snapshot::config_fingerprint(&self.cfg),
            persistent: self.persistent.clone(),
            dram_image: self.dram_image.clone(),
            pm_next: self.pm_next,
            dram_next: self.dram_next,
            poisoned: self.pm.poisoned_lines(),
            threads: self
                .threads
                .iter()
                .map(|t| ThreadSnapshot {
                    socket: t.socket,
                    core: t.core,
                    now: t.clock.now(),
                })
                .collect(),
            next_core: [self.next_core[0], self.next_core[1]],
            crash_rng_state: rng_state,
            demand,
            metrics_baseline: baseline,
        }
    }

    /// Materializes a machine from a checkpoint captured by
    /// [`Machine::checkpoint`]. The supplied configuration must match the
    /// capturing machine's (validated by fingerprint); reconstruct it the
    /// same way the original experiment did.
    pub fn restore(cfg: MachineConfig, snap: &MachineSnapshot) -> Result<Machine, SnapshotError> {
        let expected = crate::snapshot::config_fingerprint(&cfg);
        if expected != snap.cfg_fingerprint {
            return Err(SnapshotError::ConfigMismatch {
                expected,
                found: snap.cfg_fingerprint,
            });
        }
        let mut m = Machine::new(cfg);
        m.persistent = snap.persistent.clone();
        m.dram_image = snap.dram_image.clone();
        m.pm_next = snap.pm_next;
        m.dram_next = snap.dram_next;
        for t in &snap.threads {
            let tid = m.spawn_on(t.socket, t.core);
            m.threads[tid.0].clock = ThreadClock::starting_at(t.now);
        }
        m.next_core = vec![snap.next_core[0], snap.next_core[1]];
        m.crash_rng = SplitMix64::from_state(snap.crash_rng_state);
        m.demand = snap.demand;
        m.metrics_baseline = snap.metrics_baseline.clone();
        for &cl in &snap.poisoned {
            m.pm.poison_line(Addr(cl));
        }
        Ok(m)
    }

    // ----- fault injection, UE/poison, crash images -------------------

    /// Arms (or, with [`FaultHooks::none`], disarms) the hardware fault
    /// hooks. Replaces any previously armed set; counters in
    /// [`Machine::fault_stats`] keep accumulating.
    pub fn arm_faults(&mut self, hooks: FaultHooks) {
        self.faults = hooks;
    }

    /// Returns the armed fault hooks.
    pub fn fault_hooks(&self) -> &FaultHooks {
        &self.faults
    }

    /// Returns what the armed faults have done so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Injects an uncorrectable media error into the cacheline containing
    /// `addr`: the stored bytes are garbled and subsequent checked loads
    /// ([`Machine::load_checked`]) report [`ReadError::Poisoned`] until
    /// the line is overwritten or scrubbed.
    pub fn poison_line(&mut self, addr: Addr) {
        let cl = addr.cacheline();
        self.pm.poison_line(cl);
        self.overlay.remove(&cl.0);
        self.persistent.write(cl, &[POISON_FILL; 64]);
    }

    /// Returns `true` if the cacheline containing `addr` is poisoned.
    pub fn line_poisoned(&self, addr: Addr) -> bool {
        self.region_of(addr) == MemRegion::Pm && self.pm.line_poisoned(addr.cacheline())
    }

    /// Like [`Machine::load`], but surfaces uncorrectable media errors as
    /// a typed error instead of silently returning garbled bytes. The
    /// demand access still happens (the DIMM detects the UE while
    /// servicing the read), so timing and counters advance either way.
    pub fn load_checked(
        &mut self,
        tid: ThreadId,
        addr: Addr,
        buf: &mut [u8],
    ) -> Result<(), ReadError> {
        self.load(tid, addr, buf);
        for cl in simbase::addr::cachelines_covering(addr, buf.len() as u64) {
            if self.line_poisoned(cl) {
                return Err(ReadError::Poisoned { line: cl.0 });
            }
        }
        Ok(())
    }

    /// Address-range scrub (ARS) over `[start, start + len)`: scans for
    /// poisoned lines and repairs them by zero-filling — the original data
    /// is gone; the scrub restores the *addresses* to usability so
    /// software can rebuild from redundancy.
    pub fn scrub_pm(&mut self, start: Addr, len: u64) -> ScrubOutcome {
        let repaired = self.pm.scrub_range(start, len);
        for &cl in &repaired {
            self.overlay.remove(&cl);
            self.persistent.write(Addr(cl), &[0u8; 64]);
        }
        ScrubOutcome {
            lines_scanned: len.div_ceil(CACHELINE_BYTES),
            repaired,
        }
    }

    /// Captures the functional PM state plus the crash-uncertain set: the
    /// overlay entries, whose data has not been accepted into the ADR
    /// domain. Every subset of the uncertain set surviving is a legal
    /// post-crash state at this instant (see [`CrashImage`]).
    pub fn capture_crash_image(&self) -> CrashImage {
        // BTreeMap iteration is already address-ordered, so the uncertain
        // set has a canonical encoding without an explicit sort.
        let uncertain: Vec<(u64, [u8; 64])> = self
            .overlay
            .iter()
            .map(|(&cl, &bytes)| (cl, bytes))
            .collect();
        CrashImage {
            cfg: self.cfg.clone(),
            persistent: self.persistent.clone(),
            uncertain,
            pm_next: self.pm_next,
            dram_next: self.dram_next,
            poisoned: self.pm.poisoned_lines(),
        }
    }

    /// Materializes a fresh post-crash machine from `image`, applying the
    /// uncertain lines selected by `survivors` to the persistent image
    /// (the rest are lost). Caches, buffers, and clocks start cold; DRAM
    /// contents are lost; poisoned lines are reinstated.
    ///
    /// # Panics
    ///
    /// Panics if `survivors.len() != image.uncertain.len()`.
    pub fn from_crash_image(image: &CrashImage, survivors: &[bool]) -> Machine {
        assert_eq!(
            survivors.len(),
            image.uncertain.len(),
            "one survival bit per uncertain line"
        );
        let mut m = Machine::new(image.cfg.clone());
        m.persistent = image.persistent.clone();
        m.pm_next = image.pm_next;
        m.dram_next = image.dram_next;
        for (&survives, &(cl, bytes)) in survivors.iter().zip(image.uncertain.iter()) {
            if survives {
                m.persistent.write(Addr(cl), &bytes);
            }
        }
        for &cl in &image.poisoned {
            m.poison_line(Addr(cl));
        }
        m
    }

    /// Directly writes the persistent image, bypassing all timing (test
    /// fixtures and recovery-scenario setup).
    pub fn poke_persistent(&mut self, addr: Addr, data: &[u8]) {
        self.persistent.write(addr, data);
    }

    /// Directly reads through overlay + persistent image, bypassing all
    /// timing (assertions in tests).
    pub fn peek(&self, addr: Addr, buf: &mut [u8]) {
        self.functional_read(addr, buf);
    }

    /// Directly reads a `u64`, bypassing all timing.
    pub fn peek_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.peek(addr, &mut b);
        u64::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use cpucache::PrefetchConfig;

    fn g1() -> Machine {
        Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1))
    }

    fn g2() -> Machine {
        Machine::new(MachineConfig::g2(PrefetchConfig::none(), 1))
    }

    #[test]
    fn load_store_round_trip_pm() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 0xFEED_FACE);
        assert_eq!(m.load_u64(t, a), 0xFEED_FACE);
    }

    #[test]
    fn load_store_round_trip_dram() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_dram(64, 64);
        m.store_u64(t, a, 42);
        assert_eq!(m.load_u64(t, a), 42);
    }

    #[test]
    fn clock_advances_with_every_operation() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let t0 = m.now(t);
        m.load_u64(t, a);
        let t1 = m.now(t);
        assert!(t1 > t0, "a cold PM load takes time");
        assert!(t1 - t0 > 500, "cold miss goes to the media");
        m.load_u64(t, a);
        let t2 = m.now(t);
        assert!(t2 - t1 < 20, "second load hits L1");
    }

    #[test]
    fn unflushed_store_lost_on_crash() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 7);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 0, "dirty line did not survive");
    }

    #[test]
    fn flushed_store_survives_crash() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 7);
        m.clwb(t, a);
        m.sfence(t);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 7);
    }

    #[test]
    fn nt_store_survives_crash_after_fence() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.nt_store(t, a, &9u64.to_le_bytes());
        m.sfence(t);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 9);
    }

    #[test]
    fn eadr_keeps_dirty_lines() {
        let mut cfg = MachineConfig::g2(PrefetchConfig::none(), 1);
        cfg.eadr = true;
        let mut m = Machine::new(cfg);
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 11);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 11, "eADR persists CPU caches");
    }

    #[test]
    fn dram_lost_on_crash() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_dram(64, 64);
        m.store_u64(t, a, 5);
        m.power_fail(CrashPolicy::PersistAllDirty);
        assert_eq!(m.peek_u64(a), 0, "DRAM is volatile");
    }

    #[test]
    fn partial_crash_persists_some_dirty_lines() {
        let mut m = g1();
        let t = m.spawn(0);
        let base = m.alloc_pm(64 * 64, 64);
        for i in 0..64u64 {
            m.store_u64(t, base.add_cachelines(i), i + 1);
        }
        m.power_fail(CrashPolicy::PersistDirtyFraction(0.5));
        let survived = (0..64u64)
            .filter(|&i| m.peek_u64(base.add_cachelines(i)) != 0)
            .count();
        assert!(survived > 10 && survived < 54, "roughly half: {survived}");
    }

    #[test]
    fn g1_clwb_invalidates_g2_retains() {
        let mut m1 = g1();
        let t1 = m1.spawn(0);
        let a1 = m1.alloc_pm(64, 64);
        m1.store_u64(t1, a1, 1);
        m1.clwb(t1, a1);
        m1.mfence(t1);
        let before = m1.now(t1);
        m1.load_u64(t1, a1);
        let g1_reload = m1.now(t1) - before;
        assert!(
            g1_reload > 1000,
            "G1 reload waits out the persist: {g1_reload}"
        );

        let mut m2 = g2();
        let t2 = m2.spawn(0);
        let a2 = m2.alloc_pm(64, 64);
        m2.store_u64(t2, a2, 1);
        m2.clwb(t2, a2);
        m2.mfence(t2);
        let before = m2.now(t2);
        m2.load_u64(t2, a2);
        let g2_reload = m2.now(t2) - before;
        assert!(g2_reload < 20, "G2 clwb retains the line: {g2_reload}");
    }

    #[test]
    fn sfence_allows_fast_read_of_just_flushed_line() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 1);
        m.clwb(t, a);
        m.sfence(t);
        let before = m.now(t);
        m.load_u64(t, a);
        let lat = m.now(t) - before;
        assert!(lat < 50, "bypass window serves the stale copy: {lat}");
    }

    #[test]
    fn nt_store_read_back_stalls_even_on_g2() {
        let mut m = g2();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.nt_store(t, a, &3u64.to_le_bytes());
        m.mfence(t);
        let before = m.now(t);
        m.load_u64(t, a);
        let lat = m.now(t) - before;
        assert!(lat > 1000, "nt-store RAP persists on G2: {lat}");
    }

    #[test]
    fn clflush_is_slower_than_clflushopt() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let b = m.alloc_pm(64, 64);
        m.store_u64(t, a, 1);
        m.store_u64(t, b, 1);
        let t0 = m.now(t);
        m.clflushopt(t, a);
        let opt = m.now(t) - t0;
        let t1 = m.now(t);
        m.clflush(t, b);
        let legacy = m.now(t) - t1;
        assert!(
            legacy > opt,
            "ordered clflush waits for acceptance: {legacy} vs {opt}"
        );
    }

    #[test]
    fn fence_waits_for_acceptance() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 1);
        let before = m.now(t);
        m.clwb(t, a);
        m.sfence(t);
        let fence_time = m.now(t) - before;
        // flush issue + accept wait + fence cost: small but nonzero.
        assert!(
            fence_time >= 120,
            "fence accounts for acceptance: {fence_time}"
        );
        assert!(fence_time < 1500, "fence does not wait for media write");
    }

    #[test]
    fn remote_thread_pays_numa_penalty() {
        let mut local = g1();
        let tl = local.spawn(0);
        let mut remote = g1();
        let tr = remote.spawn(1);
        let al = local.alloc_pm(64, 64);
        let ar = remote.alloc_pm(64, 64);
        let b0 = local.now(tl);
        local.load_u64(tl, al);
        let local_lat = local.now(tl) - b0;
        let b1 = remote.now(tr);
        remote.load_u64(tr, ar);
        let remote_lat = remote.now(tr) - b1;
        assert_eq!(remote_lat - local_lat, 170);
    }

    #[test]
    fn hyperthread_sharing_costs_extra() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.load_u64(t, a);
        let b0 = m.now(t);
        m.load_u64(t, a);
        let solo = m.now(t) - b0;
        let _sib = m.spawn_sibling(t);
        let b1 = m.now(t);
        m.load_u64(t, a);
        let shared = m.now(t) - b1;
        assert_eq!(shared - solo, 40);
    }

    #[test]
    fn streaming_copy_moves_bytes_and_reads_one_xpline() {
        let mut m = g1();
        let t = m.spawn(0);
        let src = m.alloc_pm(256, 256);
        let dst = m.alloc_dram(256, 64);
        for i in 0..4u64 {
            m.store_u64(t, src.add_cachelines(i), 100 + i);
            m.clwb(t, src.add_cachelines(i));
        }
        m.sfence(t);
        m.cold_reset();
        let before = m.metrics().telemetry;
        m.copy_xpline_streaming(t, src, dst);
        let d = m.metrics().telemetry.delta(&before);
        assert_eq!(d.media.read, 256, "exactly one XPLine from the media");
        for i in 0..4u64 {
            assert_eq!(m.peek_u64(dst.add_cachelines(i)), 100 + i);
        }
    }

    #[test]
    fn cold_reset_preserves_functional_state() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 77);
        m.cold_reset();
        assert_eq!(m.peek_u64(a), 77);
        assert_eq!(m.load_u64(t, a), 77);
        let tel = m.metrics().telemetry;
        assert!(tel.media.read > 0, "caches are cold after reset");
    }

    #[test]
    fn telemetry_tracks_demand_and_amplification() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(4096, 256);
        // Strided cold reads: one cacheline per XPLine.
        for i in 0..16u64 {
            m.load_u64(t, a.add_xplines(i));
            m.clflushopt(t, a.add_xplines(i));
        }
        let tel = m.metrics().telemetry;
        assert_eq!(tel.imc.read, 16 * 64);
        assert_eq!(tel.media.read, 16 * 256);
        assert!((tel.read_amplification() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dirty_eviction_persists_data() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 123);
        // Thrash the hierarchy so the dirty line is evicted to PM.
        let filler = m.alloc_pm(64 << 20, 64);
        for i in 0..600_000u64 {
            m.store_u64(t, filler.add_cachelines(i), i);
        }
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 123, "evicted dirty line reached PM");
    }

    #[test]
    fn wpq_drop_fault_loses_a_flushed_line() {
        use crate::fault::FaultHooks;
        let mut m = g1();
        let t = m.spawn(0);
        m.arm_faults(FaultHooks {
            wpq_drop_every_nth: Some(2),
            ..FaultHooks::none()
        });
        let a = m.alloc_pm(128, 64);
        let b = Addr(a.0 + 64);
        m.store_u64(t, a, 1);
        m.clwb(t, a); // accept #1: persists
        m.store_u64(t, b, 2);
        m.clwb(t, b); // accept #2: dropped
        m.sfence(t);
        assert_eq!(m.fault_stats().wpq_dropped, vec![b.0]);
        // Before the crash the data is still visible (it sits in the
        // overlay, exactly like an unflushed store).
        assert_eq!(m.peek_u64(b), 2);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 1, "accepted line survives");
        assert_eq!(m.peek_u64(b), 0, "dropped acceptance is lost");
    }

    #[test]
    fn poisoned_line_garbles_and_checked_load_reports_it() {
        use crate::fault::ReadError;
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(128, 64);
        m.store_u64(t, a, 77);
        m.clwb(t, a);
        m.sfence(t);
        m.poison_line(a);
        assert!(m.line_poisoned(a));
        assert_ne!(m.peek_u64(a), 77, "plain reads see garble");
        let mut buf = [0u8; 8];
        assert_eq!(
            m.load_checked(t, a, &mut buf),
            Err(ReadError::Poisoned { line: a.0 })
        );
        // The neighbouring line is unaffected.
        let b = Addr(a.0 + 64);
        assert_eq!(m.load_checked(t, b, &mut buf), Ok(()));
    }

    #[test]
    fn scrub_repairs_poison_and_zero_fills() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 5);
        m.clwb(t, a);
        m.sfence(t);
        m.poison_line(a);
        let outcome = m.scrub_pm(a, 64);
        assert_eq!(outcome.repaired, vec![a.0]);
        assert_eq!(outcome.lines_scanned, 1);
        assert!(!m.line_poisoned(a));
        assert_eq!(m.peek_u64(a), 0, "repair zero-fills; the data is gone");
        // Overwriting also repairs (write-in-place).
        m.poison_line(a);
        m.store_u64(t, a, 9);
        m.clwb(t, a);
        m.sfence(t);
        assert!(!m.line_poisoned(a));
        assert_eq!(m.peek_u64(a), 9);
    }

    #[test]
    fn xpbuffer_partial_drain_poisons_buffered_lines() {
        use crate::fault::{FaultHooks, PartialDrain};
        let mut m = g2();
        let t = m.spawn(0);
        m.arm_faults(FaultHooks {
            xpbuffer_partial_drain: Some(PartialDrain {
                drop_fraction: 1.0,
                seed: 7,
            }),
            ..FaultHooks::none()
        });
        let a = m.alloc_pm(256, 256);
        m.store_u64(t, a, 42);
        m.clwb(t, a);
        m.sfence(t); // accepted: the line now sits in the on-DIMM WCB
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert!(
            !m.fault_stats().crash_poisoned.is_empty(),
            "the buffered XPLine was interrupted mid media-write"
        );
        assert!(m.line_poisoned(a));
        assert_ne!(m.peek_u64(a), 42, "ADR promise violated by the fault");
    }

    #[test]
    fn crash_image_round_trip_enumerates_survivor_subsets() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(128, 64);
        let b = Addr(a.0 + 64);
        m.store_u64(t, a, 10);
        m.clwb(t, a);
        m.sfence(t);
        m.store_u64(t, b, 20); // never flushed: uncertain
        let img = m.capture_crash_image();
        assert_eq!(img.uncertain_lines(), vec![b.0]);
        let lost = Machine::from_crash_image(&img, &[false]);
        assert_eq!(lost.peek_u64(a), 10);
        assert_eq!(lost.peek_u64(b), 0);
        let kept = Machine::from_crash_image(&img, &[true]);
        assert_eq!(kept.peek_u64(b), 20);
        // The materialized machine is runnable.
        let mut kept = kept;
        let t2 = kept.spawn(0);
        assert_eq!(kept.load_u64(t2, b), 20);
    }

    #[test]
    fn checkpoint_restore_round_trips_functional_and_clock_state() {
        let mut m = g1();
        let t = m.spawn(0);
        let pm = m.alloc_pm(128, 64);
        let dr = m.alloc_dram(64, 64);
        m.store_u64(t, pm, 11);
        m.clwb(t, pm);
        m.sfence(t);
        m.store_u64(t, Addr(pm.0 + 64), 22); // unflushed: folded by quiesce
        m.store_u64(t, dr, 33);
        let now_before = m.now(t);
        let snap = m.checkpoint();
        let bytes = snap.encode();
        let decoded = crate::snapshot::MachineSnapshot::decode(&bytes).unwrap();
        let r = Machine::restore(MachineConfig::g1(PrefetchConfig::none(), 1), &decoded).unwrap();
        assert_eq!(r.peek_u64(pm), 11);
        assert_eq!(r.peek_u64(Addr(pm.0 + 64)), 22);
        assert_eq!(r.peek_u64(dr), 33);
        assert_eq!(r.now(t), now_before);
        assert_eq!(r.metrics().telemetry.demand, m.metrics().telemetry.demand);
    }

    #[test]
    fn checkpointed_machine_and_restored_machine_step_identically() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(4096, 256);
        for i in 0..8u64 {
            m.store_u64(t, a.add_cachelines(i), i);
        }
        let snap = m.checkpoint();
        let mut r = Machine::restore(MachineConfig::g1(PrefetchConfig::none(), 1), &snap).unwrap();
        // Step both machines through the same op sequence.
        for machine in [&mut m, &mut r] {
            for i in 0..32u64 {
                machine.store_u64(t, a.add_cachelines(i % 8), i * 7);
                machine.clwb(t, a.add_cachelines(i % 8));
                machine.sfence(t);
                machine.load_u64(t, a.add_cachelines((i + 3) % 8));
            }
        }
        assert_eq!(m.now(t), r.now(t), "clocks advanced identically");
        assert_eq!(
            m.checkpoint().encode(),
            r.checkpoint().encode(),
            "full state is byte-identical after stepping"
        );
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let mut m = g1();
        let _t = m.spawn(0);
        let snap = m.checkpoint();
        let err = Machine::restore(MachineConfig::g2(PrefetchConfig::none(), 1), &snap);
        assert!(matches!(err, Err(SnapshotError::ConfigMismatch { .. })));
    }

    #[test]
    fn checkpoint_preserves_poisoned_lines() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(128, 64);
        m.store_u64(t, a, 5);
        m.clwb(t, a);
        m.sfence(t);
        m.poison_line(a);
        let snap = m.checkpoint();
        let r = Machine::restore(MachineConfig::g1(PrefetchConfig::none(), 1), &snap).unwrap();
        assert!(r.line_poisoned(a));
        assert!(m.line_poisoned(a), "live machine keeps poison too");
    }

    #[test]
    fn store_miss_reads_the_line_first() {
        let mut m = g1();
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let before = m.metrics().telemetry;
        m.store_u64(t, a, 5);
        let d = m.metrics().telemetry.delta(&before);
        assert_eq!(d.imc.read, 64, "write-allocate fetches the line");
        let before = m.metrics().telemetry;
        let b = m.alloc_pm(64, 64);
        let mut line = [0u8; 64];
        line[0] = 9;
        m.store_full_cacheline(t, b, &line);
        let d = m.metrics().telemetry.delta(&before);
        assert_eq!(d.imc.read, 0, "full-line store skips the fetch");
        assert_eq!(m.peek_u64(b) & 0xFF, 9);
    }

    #[test]
    fn batched_runs_match_unbatched_sequences() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Collect(Rc<RefCell<Vec<TraceEvent>>>);
        impl TraceSink for Collect {
            fn on_event(&mut self, ev: &TraceEvent) {
                self.0.borrow_mut().push(*ev);
            }
        }

        let run = |batched: bool| {
            let mut m = g1();
            let events = Rc::new(RefCell::new(Vec::new()));
            m.set_trace_sink(Box::new(Collect(Rc::clone(&events))));
            let t = m.spawn(0);
            let base = m.alloc_pm(64 * 64, 256);
            let data = [0xA5u8; 64];
            if batched {
                m.nt_store_run(t, base, &data, 16);
                m.sfence(t);
                m.load_u64_run(t, base, 16);
                m.clflushopt_run(t, base, 16);
                m.sfence(t);
            } else {
                for i in 0..16u64 {
                    m.nt_store(t, base.add_cachelines(i), &data);
                }
                m.sfence(t);
                for i in 0..16u64 {
                    m.load_u64(t, base.add_cachelines(i));
                }
                for i in 0..16u64 {
                    m.clflushopt(t, base.add_cachelines(i));
                }
                m.sfence(t);
            }
            let mut bytes = vec![0u8; 64 * 16];
            m.peek(base, &mut bytes);
            let wpq = m.fault_stats().wpq_accepts;
            let demand = m.metrics().telemetry.demand;
            let evs = events.borrow().clone();
            (m.now(t), evs, bytes, wpq, demand)
        };
        let (t_seq, ev_seq, bytes_seq, wpq_seq, demand_seq) = run(false);
        let (t_run, ev_run, bytes_run, wpq_run, demand_run) = run(true);
        assert_eq!(t_run, t_seq, "batched timing matches unbatched");
        assert_eq!(ev_run, ev_seq, "batched trace events match unbatched");
        assert_eq!(bytes_run, bytes_seq, "functional state matches");
        assert_eq!(wpq_run, wpq_seq, "WPQ accepts match");
        assert_eq!(demand_run, demand_seq, "demand byte taps match");
    }

    #[test]
    fn nt_store_run_respects_armed_wpq_drop() {
        // The full-line persist fast path must stand down when a WPQ-drop
        // fault is armed: the dropped acceptance leaves the line in the
        // crash-uncertain overlay, exactly like the unbatched path.
        use crate::fault::FaultHooks;
        let mut m = g1();
        let t = m.spawn(0);
        m.arm_faults(FaultHooks {
            wpq_drop_every_nth: Some(2),
            ..FaultHooks::none()
        });
        let a = m.alloc_pm(128, 64);
        let line = [7u8; 64];
        m.nt_store_run(t, a, &line, 2);
        m.sfence(t);
        assert_eq!(m.fault_stats().wpq_dropped, vec![a.0 + 64]);
        assert_eq!(m.peek_u64(Addr(a.0 + 64)), 0x0707_0707_0707_0707);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 0x0707_0707_0707_0707, "accepted line");
        assert_eq!(m.peek_u64(Addr(a.0 + 64)), 0, "dropped acceptance lost");
    }
}
