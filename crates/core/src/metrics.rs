//! The unified machine metrics view and its `simwatch` schema.
//!
//! Before this module existed, every layer exported counters through its
//! own ad-hoc surface — tuple-returning `stats()` methods, the standalone
//! [`TelemetrySnapshot`], a `Vec` of per-DIMM structs — and callers glued
//! them together by positional convention. [`MachineMetrics`] is the one
//! stats view: byte taps at the iMC and media boundaries (the paper's two
//! §2.4 `ipmwatch` observation points), per-socket cache and prefetcher
//! counters, per-DIMM buffer/AIT activity, and RPQ/WPQ occupancy.
//!
//! The [`machine_registry`]/[`machine_row`] pair bridges the view into the
//! [`obs`] sampled-metrics subsystem: the registry names every column once
//! and a row renders one snapshot, so a sim-clock-driven sampler can emit
//! a deterministic time series without knowing anything about the machine.

use cpucache::CacheHierarchyStats;
use imc::ImcQueueStats;
use obs::{MetricKind, Registry, Value};
use simbase::stats::ratio;
use xpdimm::DimmStats;

use crate::telemetry::TelemetrySnapshot;

/// Multi-thread execution counters, aggregated over the machine's
/// simulated hardware threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtStats {
    /// Locked compare-and-swap operations issued.
    pub cas_ops: u64,
    /// CAS operations whose compare failed (no write happened).
    pub cas_failures: u64,
    /// Locked fetch-add operations issued.
    pub fetch_adds: u64,
    /// Completed persist epochs: fences or locked RMWs that retired at
    /// least one pending store-buffer entry, summed over threads.
    pub persist_epochs: u64,
    /// Deepest any single thread's simulated store buffer got.
    pub sb_max_depth: u64,
}

impl MtStats {
    /// Folds another window of observations into this one. Counters add;
    /// the depth high-water mark takes the max.
    pub fn merge(&mut self, other: &MtStats) {
        self.cas_ops += other.cas_ops;
        self.cas_failures += other.cas_failures;
        self.fetch_adds += other.fetch_adds;
        self.persist_epochs += other.persist_epochs;
        self.sb_max_depth = self.sb_max_depth.max(other.sb_max_depth);
    }
}

/// Every counter the machine exposes, in one named structure.
///
/// Counters are cumulative since machine construction (or the last
/// [`Machine::reset_metrics`](crate::Machine::reset_metrics)) and survive
/// checkpoint/restore: [`Machine::checkpoint`](crate::Machine::checkpoint)
/// folds the live counters into a baseline carried by the snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineMetrics {
    /// Byte taps: iMC boundary, media boundary, DRAM channel, demand.
    pub telemetry: TelemetrySnapshot,
    /// Cache hierarchy and prefetcher counters, one entry per socket.
    pub sockets: Vec<CacheHierarchyStats>,
    /// On-DIMM buffer, AIT, and media counters, one entry per DIMM.
    pub dimms: Vec<DimmStats>,
    /// iMC RPQ/WPQ occupancy, one entry per DIMM.
    pub queues: Vec<ImcQueueStats>,
    /// Multi-thread execution counters (CAS, persist epochs, store-buffer
    /// depth), aggregated over threads.
    pub mt: MtStats,
}

fn merge_vecs<T: Default + Clone>(into: &mut Vec<T>, from: &[T], merge: impl Fn(&mut T, &T)) {
    if into.len() < from.len() {
        into.resize(from.len(), T::default());
    }
    for (a, b) in into.iter_mut().zip(from) {
        merge(a, b);
    }
}

impl MachineMetrics {
    /// Folds another window of observations into this one (checkpoint
    /// epochs, or aggregation across machines).
    pub fn merge(&mut self, other: &MachineMetrics) {
        self.telemetry.merge(&other.telemetry);
        merge_vecs(&mut self.sockets, &other.sockets, |a, b| a.merge(b));
        merge_vecs(&mut self.dimms, &other.dimms, |a, b| a.merge(b));
        merge_vecs(&mut self.queues, &other.queues, |a, b| a.merge(b));
        self.mt.merge(&other.mt);
    }

    /// Cache counters summed over both sockets.
    pub fn cache_total(&self) -> CacheHierarchyStats {
        let mut total = CacheHierarchyStats::default();
        for s in &self.sockets {
            total.merge(s);
        }
        total
    }

    /// DIMM counters summed over all DIMMs.
    pub fn dimm_total(&self) -> DimmStats {
        let mut total = DimmStats::default();
        for d in &self.dimms {
            total.merge(d);
        }
        total
    }

    /// Queue occupancy folded over all DIMMs (`max_depth` is the deepest
    /// any single queue got; counters add).
    pub fn queue_total(&self) -> ImcQueueStats {
        let mut total = ImcQueueStats::default();
        for q in &self.queues {
            total.merge(q);
        }
        total
    }
}

/// Builds the machine's `simwatch` metric registry.
///
/// The column set is aggregated (summed over sockets and DIMMs) so the
/// schema is identical for every machine configuration; per-DIMM drill-down
/// stays available through [`MachineMetrics::dimms`].
pub fn machine_registry() -> Registry {
    let mut r = Registry::new();
    let mut c = |name: &str, help: &str| {
        r.register(name, MetricKind::Counter, help);
    };
    c(
        "imc_read_bytes",
        "bytes read at the iMC boundary (64 B lines)",
    );
    c("imc_write_bytes", "bytes written at the iMC boundary");
    c(
        "media_read_bytes",
        "bytes read at the media boundary (256 B XPLines)",
    );
    c("media_write_bytes", "bytes written at the media boundary");
    c("dram_read_bytes", "bytes read on the DRAM channel");
    c("dram_write_bytes", "bytes written on the DRAM channel");
    c("demand_read_bytes", "bytes the program demanded via loads");
    c(
        "demand_write_bytes",
        "bytes the program demanded via stores",
    );
    c("l1_hits", "L1 hits, summed over sockets");
    c("l1_misses", "L1 misses, summed over sockets");
    c("l2_hits", "L2 hits, summed over sockets");
    c("l2_misses", "L2 misses, summed over sockets");
    c("l3_hits", "L3 hits, summed over sockets");
    c("l3_misses", "L3 misses, summed over sockets");
    c(
        "prefetch_dcu",
        "lines suggested by the DCU next-line prefetcher",
    );
    c(
        "prefetch_adjacent",
        "lines suggested by the adjacent/buddy prefetcher",
    );
    c("prefetch_stream", "lines suggested by the L2 streamer");
    c(
        "prefetch_fills",
        "prefetch suggestions that filled a cache level",
    );
    c("rb_hits", "on-DIMM read-buffer hits, summed over DIMMs");
    c("rb_misses", "on-DIMM read-buffer misses");
    c("wb_hits", "on-DIMM write-buffer (XPBuffer) hits");
    c("wb_misses", "on-DIMM write-buffer misses");
    c("ait_hits", "AIT cache hits");
    c("ait_misses", "AIT cache misses");
    c(
        "rmw_reads",
        "media read-modify-writes from partial-line evictions",
    );
    c("periodic_writebacks", "G1 periodic full-line write-backs");
    c("wb_evictions", "write-buffer capacity evictions");
    c("rpq_accepts", "reads accepted into any RPQ");
    c("wpq_accepts", "writes accepted into any WPQ");
    c("wpq_stall_cycles", "cycles writes stalled on a full WPQ");
    c("cas_ops", "locked compare-and-swap operations issued");
    c("cas_failures", "CAS operations whose compare failed");
    c("fetch_adds", "locked fetch-add operations issued");
    c(
        "persist_epochs",
        "drain points (fence or locked RMW) that retired pending persists",
    );
    r.register(
        "rpq_max_depth",
        MetricKind::Gauge,
        "deepest single-DIMM RPQ backlog",
    );
    r.register(
        "wpq_max_depth",
        MetricKind::Gauge,
        "deepest single-DIMM WPQ backlog",
    );
    r.register(
        "sb_max_depth",
        MetricKind::Gauge,
        "deepest single-thread simulated store buffer",
    );
    r.register(
        "read_amp",
        MetricKind::Ratio,
        "media read bytes / iMC read bytes",
    );
    r.register(
        "write_amp",
        MetricKind::Ratio,
        "media write bytes / iMC write bytes",
    );
    r.register(
        "rb_hit_ratio",
        MetricKind::Ratio,
        "read-buffer hits / lookups (null before any lookup)",
    );
    r.register(
        "wb_hit_ratio",
        MetricKind::Ratio,
        "write-buffer hits / lookups (null before any lookup)",
    );
    r.register(
        "write_absorption",
        MetricKind::Ratio,
        "fraction of iMC write bytes coalesced on-DIMM (null with no writes)",
    );
    r
}

fn ratio_or_null(num: u64, den: u64) -> Value {
    if den == 0 {
        Value::F64(f64::NAN) // renders as null
    } else {
        Value::F64(ratio(num, den))
    }
}

/// Renders one [`MachineMetrics`] snapshot as a row matching
/// [`machine_registry`]'s column order.
pub fn machine_row(m: &MachineMetrics) -> Vec<Value> {
    let tel = &m.telemetry;
    let cache = m.cache_total();
    let dimm = m.dimm_total();
    let queue = m.queue_total();
    let prefetch_fills =
        cache.l1.prefetch_fills + cache.l2.prefetch_fills + cache.l3.prefetch_fills;
    vec![
        Value::U64(tel.imc.read),
        Value::U64(tel.imc.write),
        Value::U64(tel.media.read),
        Value::U64(tel.media.write),
        Value::U64(tel.dram.read),
        Value::U64(tel.dram.write),
        Value::U64(tel.demand.read),
        Value::U64(tel.demand.write),
        Value::U64(cache.l1.hits),
        Value::U64(cache.l1.misses),
        Value::U64(cache.l2.hits),
        Value::U64(cache.l2.misses),
        Value::U64(cache.l3.hits),
        Value::U64(cache.l3.misses),
        Value::U64(cache.prefetch.dcu),
        Value::U64(cache.prefetch.adjacent),
        Value::U64(cache.prefetch.stream),
        Value::U64(prefetch_fills),
        Value::U64(dimm.read_buffer.hits),
        Value::U64(dimm.read_buffer.misses),
        Value::U64(dimm.write_buffer.hits),
        Value::U64(dimm.write_buffer.misses),
        Value::U64(dimm.ait.hits),
        Value::U64(dimm.ait.misses),
        Value::U64(dimm.rmw_reads),
        Value::U64(dimm.periodic_writebacks),
        Value::U64(dimm.evictions),
        Value::U64(queue.rpq.accepts),
        Value::U64(queue.wpq.accepts),
        Value::U64(queue.wpq.stall_cycles),
        Value::U64(m.mt.cas_ops),
        Value::U64(m.mt.cas_failures),
        Value::U64(m.mt.fetch_adds),
        Value::U64(m.mt.persist_epochs),
        Value::U64(queue.rpq.max_depth),
        Value::U64(queue.wpq.max_depth),
        Value::U64(m.mt.sb_max_depth),
        ratio_or_null(tel.media.read, tel.imc.read),
        ratio_or_null(tel.media.write, tel.imc.write),
        ratio_or_null(dimm.read_buffer.hits, dimm.read_buffer.total()),
        ratio_or_null(dimm.write_buffer.hits, dimm.write_buffer.total()),
        match tel.write_absorption() {
            Some(a) => Value::F64(a),
            None => Value::F64(f64::NAN),
        },
    ]
}

/// A sim-clock-driven sampler over the machine's metric registry: the
/// simulator's `ipmwatch -t`.
///
/// Poll it from the experiment loop with the driving thread's clock; it
/// emits at most one row per crossed sampling boundary, stamped at the
/// boundary, so the resulting time series is a pure function of the
/// instruction stream — byte-identical across same-seed runs.
#[derive(Debug)]
pub struct MachineSampler {
    sampler: obs::Sampler,
}

impl MachineSampler {
    /// Creates a sampler emitting every `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: simbase::Cycles) -> Self {
        MachineSampler {
            sampler: obs::Sampler::new(machine_registry(), interval),
        }
    }

    /// Labels subsequent rows (e.g. the current sweep point).
    pub fn set_context(&mut self, ctx: impl Into<String>) {
        self.sampler.set_context(ctx);
    }

    /// Samples the machine if `now` crossed a sampling boundary.
    pub fn poll(&mut self, machine: &crate::Machine, now: simbase::Cycles) {
        if self.sampler.due(now) {
            self.sampler.record(now, machine_row(&machine.metrics()));
        }
    }

    /// Unconditionally appends a final row at `now` (end-of-point totals).
    pub fn record_final(&mut self, machine: &crate::Machine, now: simbase::Cycles) {
        self.sampler
            .record_final(now, machine_row(&machine.metrics()));
    }

    /// Renders all rows as JSON lines.
    pub fn to_jsonl(&self) -> String {
        self.sampler.to_jsonl()
    }

    /// Renders all rows as CSV.
    pub fn to_csv(&self) -> String {
        self.sampler.to_csv()
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.sampler.len()
    }

    /// Returns `true` when no row has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sampler.is_empty()
    }
}

/// The machine schema as JSON (for the checked-in
/// `schemas/metrics.schema.json` and external validators).
pub fn machine_schema_json() -> String {
    machine_registry().schema_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::{ByteCounter, HitMiss};

    fn sample() -> MachineMetrics {
        let mut m = MachineMetrics::default();
        m.telemetry.imc = ByteCounter {
            read: 640,
            write: 128,
        };
        m.telemetry.media = ByteCounter {
            read: 2560,
            write: 256,
        };
        m.dimms.push(DimmStats {
            read_buffer: HitMiss::of(3, 1),
            write_buffer: HitMiss::of(5, 5),
            ..DimmStats::default()
        });
        m.queues.push(ImcQueueStats::default());
        m
    }

    #[test]
    fn row_width_matches_registry() {
        let reg = machine_registry();
        let row = machine_row(&sample());
        assert_eq!(row.len(), reg.len());
    }

    #[test]
    fn derived_columns_compute_from_taps() {
        let reg = machine_registry();
        let row = machine_row(&sample());
        let col = |name: &str| {
            let idx = reg
                .defs()
                .iter()
                .position(|d| d.name == name)
                .expect("column exists");
            row[idx].render()
        };
        assert_eq!(col("read_amp"), "4");
        assert_eq!(col("write_amp"), "2");
        assert_eq!(col("rb_hit_ratio"), "0.75");
        assert_eq!(col("wb_hit_ratio"), "0.5");
        // 1 - min(256/128, 1) = 0: media wrote more than the iMC sent.
        assert_eq!(col("write_absorption"), "0");
    }

    #[test]
    fn empty_machine_renders_null_ratios() {
        let reg = machine_registry();
        let row = machine_row(&MachineMetrics::default());
        let idx = reg
            .defs()
            .iter()
            .position(|d| d.name == "write_absorption")
            .unwrap();
        assert_eq!(row[idx].render(), "null");
    }

    #[test]
    fn merge_extends_and_accumulates() {
        let mut a = MachineMetrics::default();
        let b = sample();
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.telemetry.imc.read, 1280);
        assert_eq!(a.dimms.len(), 1);
        assert_eq!(a.dimms[0].read_buffer, HitMiss::of(6, 2));
        assert_eq!(a.queue_total(), ImcQueueStats::default());
    }
}
