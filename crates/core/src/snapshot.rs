//! Machine checkpoints: serializable snapshots for supervised, resumable
//! experiment runs.
//!
//! [`CrashImage`](crate::CrashImage) freezes *persistence* state for
//! crash-consistency exploration; [`MachineSnapshot`] extends the idea
//! into a full experiment checkpoint: functional memory images (PM and
//! DRAM), allocator watermarks, poisoned lines, every thread's simulated
//! clock, the crash RNG stream, and the demand byte counters. A long job
//! serializes one of these periodically; after a `kill -9`, the harness
//! restores it and the job continues as if never interrupted.
//!
//! # Quiesce semantics
//!
//! A checkpoint is taken at a *quiesce point*: [`Machine::checkpoint`]
//! first folds the volatile overlay into the persistent image and resets
//! all transient timing state (caches, controller queues, in-flight
//! fills), exactly like [`Machine::cold_reset`] — and then captures the
//! machine. Crucially, `checkpoint` leaves the live machine in *precisely
//! the state a later [`Machine::restore`] reproduces*, so a run that
//! checkpoints and keeps going is cycle-for-cycle identical to a run that
//! is killed and resumed from that checkpoint. Experiment drivers that
//! checkpoint must therefore do so at deterministic points (e.g. every N
//! operations) on every run, resumed or not.
//!
//! The snapshot does not carry trace sinks or armed fault hooks;
//! `checkpoint` disarms fault hooks and clears fault statistics so the
//! live machine matches the restored one. Checkpointing is meant for
//! measurement jobs, not mid-fault-injection states (those use
//! [`CrashImage`](crate::CrashImage)).
//!
//! The on-disk encoding is versioned and *checked*: torn or truncated
//! files decode to [`SnapshotError`], never a panic, because checkpoint
//! files are read back precisely after unclean shutdowns.

use std::fmt;

use cpucache::{CacheHierarchyStats, CacheLevelStats, PrefetcherStats};
use imc::ImcQueueStats;
use simbase::{ByteCounter, HitMiss, QueueStats, WireError, WireReader, WireWriter};
use xpdimm::DimmStats;
use xpmedia::SparseStore;

use crate::config::MachineConfig;
use crate::metrics::MachineMetrics;
use crate::telemetry::TelemetrySnapshot;

/// Magic + version prefix of an encoded snapshot.
///
/// `03` added the multi-thread execution counters to the folded metrics
/// baseline; `02` added the baseline itself. Older snapshots are rejected
/// (jobs restart from scratch rather than resume with silently dropped
/// counters).
const MAGIC: &[u8; 8] = b"OPSNAP03";

/// A malformed, truncated, or mismatched snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not begin with the snapshot magic/version.
    BadMagic,
    /// The buffer ended early or a length prefix was implausible.
    Wire(WireError),
    /// The snapshot was captured under a different machine configuration
    /// than the one supplied to [`Machine::restore`](crate::Machine::restore).
    ConfigMismatch {
        /// Fingerprint of the configuration supplied at restore.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a machine snapshot (bad magic)"),
            SnapshotError::Wire(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot config fingerprint {found:#x} does not match the supplied \
                 configuration ({expected:#x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

/// One simulated hardware thread's checkpointed placement and clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSnapshot {
    /// Socket the thread runs on.
    pub socket: usize,
    /// Core index within the socket.
    pub core: usize,
    /// The thread's simulated time at capture.
    pub now: u64,
}

/// A full machine checkpoint (see the module docs for semantics).
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    /// Fingerprint of the capturing machine's configuration; restore
    /// validates it against the supplied [`MachineConfig`].
    pub cfg_fingerprint: u64,
    /// The persistent PM image (overlay already folded in).
    pub persistent: SparseStore,
    /// The volatile DRAM image.
    pub dram_image: SparseStore,
    /// PM allocator watermark.
    pub pm_next: u64,
    /// DRAM allocator watermark.
    pub dram_next: u64,
    /// Poisoned (uncorrectable) lines at capture, sorted.
    pub poisoned: Vec<u64>,
    /// Every spawned thread, in spawn order.
    pub threads: Vec<ThreadSnapshot>,
    /// Round-robin spawn cursor per socket.
    pub next_core: [usize; 2],
    /// Crash RNG stream state.
    pub crash_rng_state: u64,
    /// Demand byte counters at capture.
    pub demand: ByteCounter,
    /// Cumulative metrics folded at the quiesce point (demand zeroed —
    /// it travels in [`MachineSnapshot::demand`]). Restore seeds the
    /// machine's baseline from this so the metrics view is continuous.
    pub metrics_baseline: MachineMetrics,
}

/// FNV-1a over the `Debug` rendering of the configuration. The config is
/// plain data built from constants, so its `Debug` form is a stable,
/// total description; hashing it detects restore-under-wrong-config
/// without serializing every nested parameter struct.
pub fn config_fingerprint(cfg: &MachineConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_byte_counter(w: &mut WireWriter, c: &ByteCounter) {
    w.put_u64(c.read);
    w.put_u64(c.write);
}

fn get_byte_counter(r: &mut WireReader<'_>) -> Result<ByteCounter, SnapshotError> {
    let mut c = ByteCounter::new();
    c.add_read(r.get_u64()?);
    c.add_write(r.get_u64()?);
    Ok(c)
}

fn put_hit_miss(w: &mut WireWriter, hm: &HitMiss) {
    w.put_u64(hm.hits);
    w.put_u64(hm.misses);
}

fn get_hit_miss(r: &mut WireReader<'_>) -> Result<HitMiss, SnapshotError> {
    Ok(HitMiss::of(r.get_u64()?, r.get_u64()?))
}

fn put_queue_stats(w: &mut WireWriter, q: &QueueStats) {
    w.put_u64(q.accepts);
    w.put_u64(q.max_depth);
    w.put_u64(q.stall_cycles);
}

fn get_queue_stats(r: &mut WireReader<'_>) -> Result<QueueStats, SnapshotError> {
    Ok(QueueStats {
        accepts: r.get_u64()?,
        max_depth: r.get_u64()?,
        stall_cycles: r.get_u64()?,
    })
}

fn put_cache_level(w: &mut WireWriter, l: &CacheLevelStats) {
    w.put_u64(l.hits);
    w.put_u64(l.misses);
    w.put_u64(l.prefetch_fills);
}

fn get_cache_level(r: &mut WireReader<'_>) -> Result<CacheLevelStats, SnapshotError> {
    Ok(CacheLevelStats {
        hits: r.get_u64()?,
        misses: r.get_u64()?,
        prefetch_fills: r.get_u64()?,
    })
}

fn encode_metrics(w: &mut WireWriter, m: &MachineMetrics) {
    put_byte_counter(w, &m.telemetry.imc);
    put_byte_counter(w, &m.telemetry.media);
    put_byte_counter(w, &m.telemetry.dram);
    put_byte_counter(w, &m.telemetry.demand);
    w.put_u64(m.sockets.len() as u64);
    for s in &m.sockets {
        put_cache_level(w, &s.l1);
        put_cache_level(w, &s.l2);
        put_cache_level(w, &s.l3);
        w.put_u64(s.prefetch.dcu);
        w.put_u64(s.prefetch.adjacent);
        w.put_u64(s.prefetch.stream);
    }
    w.put_u64(m.dimms.len() as u64);
    for d in &m.dimms {
        put_hit_miss(w, &d.read_buffer);
        put_hit_miss(w, &d.write_buffer);
        put_byte_counter(w, &d.media);
        put_hit_miss(w, &d.ait);
        w.put_u64(d.rmw_reads);
        w.put_u64(d.periodic_writebacks);
        w.put_u64(d.evictions);
    }
    w.put_u64(m.queues.len() as u64);
    for q in &m.queues {
        put_queue_stats(w, &q.rpq);
        put_queue_stats(w, &q.wpq);
    }
    w.put_u64(m.mt.cas_ops);
    w.put_u64(m.mt.cas_failures);
    w.put_u64(m.mt.fetch_adds);
    w.put_u64(m.mt.persist_epochs);
    w.put_u64(m.mt.sb_max_depth);
}

fn decode_metrics(r: &mut WireReader<'_>) -> Result<MachineMetrics, SnapshotError> {
    let telemetry = TelemetrySnapshot {
        imc: get_byte_counter(r)?,
        media: get_byte_counter(r)?,
        dram: get_byte_counter(r)?,
        demand: get_byte_counter(r)?,
    };
    let n_sockets = r.get_u64()?;
    let mut sockets = Vec::with_capacity(n_sockets.min(1 << 8) as usize);
    for _ in 0..n_sockets {
        sockets.push(CacheHierarchyStats {
            l1: get_cache_level(r)?,
            l2: get_cache_level(r)?,
            l3: get_cache_level(r)?,
            prefetch: PrefetcherStats {
                dcu: r.get_u64()?,
                adjacent: r.get_u64()?,
                stream: r.get_u64()?,
            },
        });
    }
    let n_dimms = r.get_u64()?;
    let mut dimms = Vec::with_capacity(n_dimms.min(1 << 8) as usize);
    for _ in 0..n_dimms {
        dimms.push(DimmStats {
            read_buffer: get_hit_miss(r)?,
            write_buffer: get_hit_miss(r)?,
            media: get_byte_counter(r)?,
            ait: get_hit_miss(r)?,
            rmw_reads: r.get_u64()?,
            periodic_writebacks: r.get_u64()?,
            evictions: r.get_u64()?,
        });
    }
    let n_queues = r.get_u64()?;
    let mut queues = Vec::with_capacity(n_queues.min(1 << 8) as usize);
    for _ in 0..n_queues {
        queues.push(ImcQueueStats {
            rpq: get_queue_stats(r)?,
            wpq: get_queue_stats(r)?,
        });
    }
    let mt = crate::metrics::MtStats {
        cas_ops: r.get_u64()?,
        cas_failures: r.get_u64()?,
        fetch_adds: r.get_u64()?,
        persist_epochs: r.get_u64()?,
        sb_max_depth: r.get_u64()?,
    };
    Ok(MachineMetrics {
        telemetry,
        sockets,
        dimms,
        queues,
        mt,
    })
}

fn encode_store(w: &mut WireWriter, s: &SparseStore) {
    let pages = s.sorted_pages();
    w.put_u64(pages.len() as u64);
    for (n, contents) in pages {
        w.put_u64(n);
        w.put_bytes(contents);
    }
}

fn decode_store(r: &mut WireReader<'_>) -> Result<SparseStore, SnapshotError> {
    let count = r.get_u64()?;
    let mut s = SparseStore::new();
    for _ in 0..count {
        let n = r.get_u64()?;
        let contents = r.get_bytes()?;
        if contents.len() as u64 != SparseStore::PAGE_BYTES {
            return Err(SnapshotError::Wire(WireError::ImplausibleLength(
                contents.len() as u64,
            )));
        }
        s.install_page(n, contents);
    }
    Ok(s)
}

impl MachineSnapshot {
    /// Serializes the snapshot to a self-describing byte buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_bytes(MAGIC);
        w.put_u64(self.cfg_fingerprint);
        encode_store(&mut w, &self.persistent);
        encode_store(&mut w, &self.dram_image);
        w.put_u64(self.pm_next);
        w.put_u64(self.dram_next);
        w.put_u64(self.poisoned.len() as u64);
        for &p in &self.poisoned {
            w.put_u64(p);
        }
        w.put_u64(self.threads.len() as u64);
        for t in &self.threads {
            w.put_u64(t.socket as u64);
            w.put_u64(t.core as u64);
            w.put_u64(t.now);
        }
        w.put_u64(self.next_core[0] as u64);
        w.put_u64(self.next_core[1] as u64);
        w.put_u64(self.crash_rng_state);
        w.put_u64(self.demand.read);
        w.put_u64(self.demand.write);
        encode_metrics(&mut w, &self.metrics_baseline);
        w.into_bytes()
    }

    /// Decodes a snapshot previously produced by [`MachineSnapshot::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = WireReader::new(bytes);
        if r.get_bytes()? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let cfg_fingerprint = r.get_u64()?;
        let persistent = decode_store(&mut r)?;
        let dram_image = decode_store(&mut r)?;
        let pm_next = r.get_u64()?;
        let dram_next = r.get_u64()?;
        let n_poisoned = r.get_u64()?;
        let mut poisoned = Vec::with_capacity(n_poisoned.min(1 << 20) as usize);
        for _ in 0..n_poisoned {
            poisoned.push(r.get_u64()?);
        }
        let n_threads = r.get_u64()?;
        let mut threads = Vec::with_capacity(n_threads.min(1 << 16) as usize);
        for _ in 0..n_threads {
            let socket = r.get_u64()? as usize;
            let core = r.get_u64()? as usize;
            let now = r.get_u64()?;
            threads.push(ThreadSnapshot { socket, core, now });
        }
        let next_core = [r.get_u64()? as usize, r.get_u64()? as usize];
        let crash_rng_state = r.get_u64()?;
        let mut demand = ByteCounter::new();
        demand.add_read(r.get_u64()?);
        demand.add_write(r.get_u64()?);
        let metrics_baseline = decode_metrics(&mut r)?;
        Ok(MachineSnapshot {
            cfg_fingerprint,
            persistent,
            dram_image,
            pm_next,
            dram_next,
            poisoned,
            threads,
            next_core,
            crash_rng_state,
            demand,
            metrics_baseline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use simbase::Addr;

    fn sample() -> MachineSnapshot {
        let cfg = MachineConfig::g1(PrefetchConfig::none(), 1);
        let mut persistent = SparseStore::new();
        persistent.write_u64(Addr(0x1000), 42);
        let mut dram_image = SparseStore::new();
        dram_image.write_u64(Addr(0x2000), 7);
        MachineSnapshot {
            cfg_fingerprint: config_fingerprint(&cfg),
            persistent,
            dram_image,
            pm_next: 0x1000_0000_0000_1234,
            dram_next: 0x2000_0000_0000_5678,
            poisoned: vec![64, 128],
            threads: vec![
                ThreadSnapshot {
                    socket: 0,
                    core: 0,
                    now: 999,
                },
                ThreadSnapshot {
                    socket: 1,
                    core: 3,
                    now: 1234,
                },
            ],
            next_core: [1, 4],
            crash_rng_state: 0xDEAD_BEEF,
            demand: {
                let mut d = ByteCounter::new();
                d.add_read(100);
                d.add_write(200);
                d
            },
            metrics_baseline: {
                let mut m = MachineMetrics::default();
                m.telemetry.imc = ByteCounter {
                    read: 640,
                    write: 320,
                };
                m.sockets.push(CacheHierarchyStats {
                    l1: CacheLevelStats {
                        hits: 10,
                        misses: 2,
                        prefetch_fills: 0,
                    },
                    ..CacheHierarchyStats::default()
                });
                m.dimms.push(DimmStats {
                    read_buffer: HitMiss::of(7, 3),
                    evictions: 5,
                    ..DimmStats::default()
                });
                m.queues.push(ImcQueueStats {
                    wpq: QueueStats {
                        accepts: 9,
                        max_depth: 4,
                        stall_cycles: 123,
                    },
                    ..ImcQueueStats::default()
                });
                m
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = sample();
        let bytes = s.encode();
        let d = MachineSnapshot::decode(&bytes).unwrap();
        assert_eq!(d.cfg_fingerprint, s.cfg_fingerprint);
        assert_eq!(d.pm_next, s.pm_next);
        assert_eq!(d.dram_next, s.dram_next);
        assert_eq!(d.poisoned, s.poisoned);
        assert_eq!(d.threads, s.threads);
        assert_eq!(d.next_core, s.next_core);
        assert_eq!(d.crash_rng_state, s.crash_rng_state);
        assert_eq!(d.demand, s.demand);
        assert_eq!(d.metrics_baseline, s.metrics_baseline);
        assert_eq!(d.persistent.read_u64(Addr(0x1000)), 42);
        assert_eq!(d.dram_image.read_u64(Addr(0x2000)), 7);
        // Deterministic encoding: re-encoding the decoded snapshot is
        // byte-identical.
        assert_eq!(d.encode(), bytes);
    }

    #[test]
    fn truncated_snapshot_is_a_typed_error() {
        let bytes = sample().encode();
        for cut in [0, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            let r = MachineSnapshot::decode(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[8] = b'X'; // first magic byte (after the length prefix)
        assert!(matches!(
            MachineSnapshot::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn fingerprints_differ_across_configs() {
        let a = config_fingerprint(&MachineConfig::g1(PrefetchConfig::none(), 1));
        let b = config_fingerprint(&MachineConfig::g2(PrefetchConfig::none(), 1));
        let c = config_fingerprint(&MachineConfig::g1(PrefetchConfig::none(), 6));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
