//! Machine telemetry: the simulator's `ipmwatch`.
//!
//! The paper derives its amplification and read-ratio metrics from two
//! observation points (§2.4): bytes moved at the iMC boundary and bytes
//! moved at the 3D-XPoint media boundary. The simulator adds a third —
//! bytes the *program* actually demanded — which the paper approximates
//! from its benchmark parameters.

use simbase::{stats::ratio, ByteCounter};

/// A snapshot of all traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Bytes moved between the iMC and the Optane DIMMs (64 B granules).
    pub imc: ByteCounter,
    /// Bytes moved between the DIMM controllers and the 3D-XPoint media
    /// (256 B granules).
    pub media: ByteCounter,
    /// Bytes moved on the DRAM channel.
    pub dram: ByteCounter,
    /// Bytes demanded by program loads and stores (any granule).
    pub demand: ByteCounter,
}

impl TelemetrySnapshot {
    /// Read amplification: media read bytes over iMC read bytes (§2.4).
    pub fn read_amplification(&self) -> f64 {
        ratio(self.media.read, self.imc.read)
    }

    /// Write amplification: media write bytes over iMC write bytes (§2.4).
    pub fn write_amplification(&self) -> f64 {
        ratio(self.media.write, self.imc.write)
    }

    /// The §3.4 "PM read ratio": media read bytes over program-demanded
    /// read bytes.
    pub fn pm_read_ratio(&self) -> f64 {
        ratio(self.media.read, self.demand.read)
    }

    /// The §3.4 "iMC read ratio": iMC read bytes over program-demanded
    /// read bytes.
    pub fn imc_read_ratio(&self) -> f64 {
        ratio(self.imc.read, self.demand.read)
    }

    /// Write-buffer efficiency: fraction of iMC-issued write bytes that
    /// never reached the media (coalesced on-DIMM).
    ///
    /// Returns `None` when no write bytes crossed the iMC — "no writes"
    /// and "no absorption" are different findings, and conflating them as
    /// `0.0` skewed idle-window averages.
    pub fn write_absorption(&self) -> Option<f64> {
        if self.imc.write == 0 {
            None
        } else {
            Some(1.0 - ratio(self.media.write, self.imc.write).min(1.0))
        }
    }

    /// Counter-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            imc: self.imc.delta(&earlier.imc),
            media: self.media.delta(&earlier.media),
            dram: self.dram.delta(&earlier.dram),
            demand: self.demand.delta(&earlier.demand),
        }
    }

    /// Counter-wise accumulation (folding checkpoint epochs together).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (into, from) in [
            (&mut self.imc, &other.imc),
            (&mut self.media, &other.media),
            (&mut self.dram, &other.dram),
            (&mut self.demand, &other.demand),
        ] {
            into.read += from.read;
            into.write += from.write;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(
        imc_r: u64,
        imc_w: u64,
        med_r: u64,
        med_w: u64,
        dem_r: u64,
        dem_w: u64,
    ) -> TelemetrySnapshot {
        TelemetrySnapshot {
            imc: ByteCounter {
                read: imc_r,
                write: imc_w,
            },
            media: ByteCounter {
                read: med_r,
                write: med_w,
            },
            dram: ByteCounter::default(),
            demand: ByteCounter {
                read: dem_r,
                write: dem_w,
            },
        }
    }

    #[test]
    fn amplification_math() {
        let s = snap(64, 64, 256, 256, 64, 64);
        assert_eq!(s.read_amplification(), 4.0);
        assert_eq!(s.write_amplification(), 4.0);
        assert_eq!(s.pm_read_ratio(), 4.0);
        assert_eq!(s.imc_read_ratio(), 1.0);
    }

    #[test]
    fn absorption_is_one_minus_wa() {
        let s = snap(0, 1000, 0, 250, 0, 0);
        let a = s.write_absorption().expect("writes crossed the iMC");
        assert!((a - 0.75).abs() < 1e-9);
        let none = snap(0, 0, 0, 0, 0, 0);
        assert_eq!(none.write_absorption(), None, "no writes, no verdict");
    }

    #[test]
    fn merge_accumulates_fieldwise() {
        let mut a = snap(100, 200, 300, 400, 500, 600);
        a.merge(&snap(1, 2, 3, 4, 5, 6));
        assert_eq!(a.imc.read, 101);
        assert_eq!(a.media.write, 404);
        assert_eq!(a.demand.write, 606);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = snap(100, 200, 300, 400, 500, 600);
        let b = snap(150, 250, 350, 450, 550, 650);
        let d = b.delta(&a);
        assert_eq!(d.imc.read, 50);
        assert_eq!(d.media.write, 50);
        assert_eq!(d.demand.write, 50);
    }
}
