//! Instruction-stream observation hooks.
//!
//! The machine can carry one [`TraceSink`]: an observer that receives a
//! [`TraceEvent`] for every memory/persistence operation a simulated
//! thread executes, *before* the operation's latency is charged. The sink
//! sees exactly the instruction stream the timing model sees — which is
//! what makes an attached analysis (e.g. the `pmcheck` crate's
//! persist-ordering checker) trustworthy: it cannot diverge from the
//! simulation it is auditing.
//!
//! `optane-core` stays dependency-free: the trait is defined here and
//! implemented by downstream analysis crates.

use simbase::{Addr, Cycles};

use crate::machine::{MemRegion, ThreadId};

/// Which flush instruction produced a [`TraceEvent::Flush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushKind {
    /// `clwb` — write back; invalidates on G1, retains on G2.
    Clwb,
    /// `clflushopt` — write back and invalidate, weakly ordered.
    Clflushopt,
    /// Legacy `clflush` — write back and invalidate, strongly ordered
    /// (the instruction itself waits for WPQ acceptance).
    Clflush,
}

/// Which fence instruction produced a [`TraceEvent::Fence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceKind {
    /// `sfence` — orders prior flushes/nt-stores, not subsequent loads.
    Sfence,
    /// `mfence` — additionally orders subsequent loads.
    Mfence,
}

/// One observed operation. `at` is the issuing thread's clock when the
/// operation begins (before its latency is charged); for
/// [`TraceEvent::PowerFail`] it is the global maximum thread time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A cached store (including full-line stores) of `len` bytes.
    Store {
        /// Issuing thread.
        tid: ThreadId,
        /// First byte written.
        addr: Addr,
        /// Bytes written.
        len: u64,
        /// Backing device.
        region: MemRegion,
        /// Issue time.
        at: Cycles,
    },
    /// A non-temporal (cache-bypassing) store of `len` bytes.
    NtStore {
        /// Issuing thread.
        tid: ThreadId,
        /// First byte written.
        addr: Addr,
        /// Bytes written.
        len: u64,
        /// Backing device.
        region: MemRegion,
        /// Issue time.
        at: Cycles,
    },
    /// A cacheline flush instruction.
    Flush {
        /// Issuing thread.
        tid: ThreadId,
        /// The (aligned) cacheline being flushed.
        line: Addr,
        /// Which flush instruction.
        kind: FlushKind,
        /// Backing device.
        region: MemRegion,
        /// Whether the hierarchy actually held the line dirty.
        dirty: bool,
        /// Issue time.
        at: Cycles,
    },
    /// A fence instruction.
    Fence {
        /// Issuing thread.
        tid: ThreadId,
        /// Which fence instruction.
        kind: FenceKind,
        /// Issue time.
        at: Cycles,
    },
    /// A load of `len` bytes (demand loads and streaming XPLine copies).
    Load {
        /// Issuing thread.
        tid: ThreadId,
        /// First byte read.
        addr: Addr,
        /// Bytes read.
        len: u64,
        /// Backing device.
        region: MemRegion,
        /// Issue time.
        at: Cycles,
    },
    /// A simulated `lock cmpxchg` on an aligned `u64`. Atomicity is free
    /// in the sequential simulation; the event records whether the
    /// compare succeeded. Locked RMWs drain the issuing thread's store
    /// buffer (like `mfence`), which analyses must mirror.
    Cas {
        /// Issuing thread.
        tid: ThreadId,
        /// Address of the target `u64`.
        addr: Addr,
        /// Backing device.
        region: MemRegion,
        /// Whether the compare matched and the new value was written.
        success: bool,
        /// Issue time.
        at: Cycles,
    },
    /// A simulated `lock xadd` on an aligned `u64`. Always writes; drains
    /// the issuing thread's store buffer like [`TraceEvent::Cas`].
    FetchAdd {
        /// Issuing thread.
        tid: ThreadId,
        /// Address of the target `u64`.
        addr: Addr,
        /// Backing device.
        region: MemRegion,
        /// The addend.
        delta: u64,
        /// Issue time.
        at: Cycles,
    },
    /// A dirty PM cacheline left the hierarchy by capacity eviction and
    /// was written back (and therefore persisted) by the hardware, not by
    /// program order. Analyses use this to tell "durable by discipline"
    /// from "durable by luck".
    WriteBack {
        /// The evicted cacheline.
        line: Addr,
        /// Eviction time.
        at: Cycles,
    },
    /// A simulated power failure.
    PowerFail {
        /// Global time of the failure.
        at: Cycles,
    },
}

/// An instruction-stream observer attached to a
/// [`Machine`](crate::Machine).
pub trait TraceSink {
    /// Called once per observed operation, in simulation order.
    fn on_event(&mut self, ev: &TraceEvent);
}

/// Holder for the machine's optional sink (keeps `Machine: Debug`).
#[derive(Default)]
pub(crate) struct TraceSlot(pub(crate) Option<Box<dyn TraceSink>>);

impl std::fmt::Debug for TraceSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceSlot(attached: {})", self.0.is_some())
    }
}
