//! Property test for checkpoint/restore exactness.
//!
//! The supervised repro harness relies on one invariant: interrupting a
//! run at a checkpoint and restoring it from the encoded snapshot must
//! be indistinguishable from never having been interrupted. Both sides
//! quiesce at the split point (a checkpoint folds in-flight state), so
//! the comparison is checkpoint-and-continue vs restore-and-continue
//! over the same randomized op tail: clocks, telemetry, and the final
//! encoded snapshot must all be byte-identical.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig};
use proptest::prelude::*;

const PM_LINES: u64 = 64;
const DRAM_LINES: u64 = 32;

/// One randomized step of the instruction stream.
#[derive(Debug, Clone, Copy)]
enum Op {
    StorePm(u64, u64),
    StoreDram(u64, u64),
    LoadPm(u64),
    LoadDram(u64),
    NtStorePm(u64, u64),
    Clwb(u64),
    Sfence,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(sel, slot, val)| match sel % 7 {
        0 => Op::StorePm(slot % PM_LINES, val),
        1 => Op::StoreDram(slot % DRAM_LINES, val),
        2 => Op::LoadPm(slot % PM_LINES),
        3 => Op::LoadDram(slot % DRAM_LINES),
        4 => Op::NtStorePm(slot % PM_LINES, val),
        5 => Op::Clwb(slot % PM_LINES),
        _ => Op::Sfence,
    })
}

struct Arena {
    m: Machine,
    t: optane_core::ThreadId,
    pm: simbase::Addr,
    dram: simbase::Addr,
}

fn build(gen: Generation) -> Arena {
    let cfg = MachineConfig::for_generation(gen, PrefetchConfig::none(), 1);
    let mut m = Machine::new(cfg);
    let t = m.spawn(0);
    let pm = m.alloc_pm(PM_LINES * 64, 256);
    let dram = m.alloc_dram(DRAM_LINES * 64, 64);
    Arena { m, t, pm, dram }
}

fn apply(a: &mut Arena, op: Op) {
    let t = a.t;
    match op {
        Op::StorePm(slot, v) => a.m.store_u64(t, a.pm.add_cachelines(slot), v),
        Op::StoreDram(slot, v) => a.m.store_u64(t, a.dram.add_cachelines(slot), v),
        Op::LoadPm(slot) => {
            a.m.load_u64(t, a.pm.add_cachelines(slot));
        }
        Op::LoadDram(slot) => {
            a.m.load_u64(t, a.dram.add_cachelines(slot));
        }
        Op::NtStorePm(slot, v) => {
            let mut line = [0u8; 64];
            line[..8].copy_from_slice(&v.to_le_bytes());
            a.m.nt_store(t, a.pm.add_cachelines(slot), &line);
        }
        Op::Clwb(slot) => a.m.clwb(t, a.pm.add_cachelines(slot)),
        Op::Sfence => a.m.sfence(t),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn restore_and_continue_is_byte_identical_to_checkpoint_and_continue(
        ops in prop::collection::vec(op_strategy(), 1..120),
        split_frac in any::<u64>(),
        g2 in any::<bool>(),
    ) {
        let gen = if g2 { Generation::G2 } else { Generation::G1 };
        let split = (split_frac % ops.len() as u64) as usize;

        // Uninterrupted reference: quiesce at the split, keep going.
        let mut base = build(gen);
        for op in &ops[..split] {
            apply(&mut base, *op);
        }
        let snap = base.m.checkpoint();
        let bytes = snap.encode();
        for op in &ops[split..] {
            apply(&mut base, *op);
        }

        // Interrupted run: restore from the *encoded* snapshot (the same
        // bytes a CheckpointStore would persist), then run the same tail.
        let cfg = MachineConfig::for_generation(gen, PrefetchConfig::none(), 1);
        let decoded = optane_core::MachineSnapshot::decode(&bytes).unwrap();
        let m2 = Machine::restore(cfg, &decoded).unwrap();
        let mut resumed = Arena { m: m2, t: base.t, pm: base.pm, dram: base.dram };
        for op in &ops[split..] {
            apply(&mut resumed, *op);
        }

        prop_assert_eq!(base.m.now(base.t), resumed.m.now(resumed.t));
        // The whole unified metrics view — byte taps, cache counters,
        // per-DIMM buffer stats, queue occupancy — must be continuous
        // across the kill/restore, not just the demand counter.
        prop_assert_eq!(base.m.metrics(), resumed.m.metrics());
        prop_assert_eq!(base.m.checkpoint().encode(), resumed.m.checkpoint().encode());
    }

    #[test]
    fn quiescing_does_not_lose_accumulated_metrics(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut a = build(Generation::G1);
        for op in &ops {
            apply(&mut a, *op);
        }
        let before = a.m.metrics();
        let _ = a.m.checkpoint();
        prop_assert_eq!(a.m.metrics(), before.clone());
        // And a machine restored from the snapshot reports the same
        // cumulative counters as the live one.
        let cfg = MachineConfig::for_generation(Generation::G1, PrefetchConfig::none(), 1);
        let r = Machine::restore(cfg, &a.m.checkpoint()).unwrap();
        prop_assert_eq!(r.metrics(), before);
    }
}
