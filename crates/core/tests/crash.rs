//! Deterministic crash-semantics tests for `power_fail` / `CrashPolicy`.
//!
//! These pin down the durability contract that `pmcheck` (the
//! `crates/analysis` checker) assumes when it predicts which lines a
//! power failure loses — see DESIGN.md, "Crash-consistency checking":
//!
//! - a cached store that is never flushed is lost under `LoseUnflushed`;
//! - a flush *accepted by the WPQ* is durable even without a fence (ADR
//!   drains the queue on power failure), so a missing fence is an
//!   ordering bug, not a data-loss bug, in this machine model;
//! - nt-stores are WPQ-accepted at issue and survive unfenced, matching
//!   the paper's Fig. 7 RAP discussion for both generations.

#![forbid(unsafe_code)]

use cpucache::PrefetchConfig;
use optane_core::{CrashPolicy, Generation, Machine, MachineConfig};

fn machine(gen: Generation) -> Machine {
    Machine::new(MachineConfig::for_generation(
        gen,
        PrefetchConfig::none(),
        1,
    ))
}

const GENS: [Generation; 2] = [Generation::G1, Generation::G2];

#[test]
fn unflushed_lines_are_lost_and_flushed_lines_survive() {
    for gen in GENS {
        let mut m = machine(gen);
        let t = m.spawn(0);
        let kept = m.alloc_pm(64, 64);
        let lost = m.alloc_pm(64, 64);
        m.store_u64(t, kept, 1);
        m.clwb(t, kept);
        m.sfence(t);
        m.store_u64(t, lost, 2);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(kept), 1, "{gen}: flushed+fenced line kept");
        assert_eq!(m.peek_u64(lost), 0, "{gen}: dirty line lost");
    }
}

#[test]
fn wpq_accepted_flush_survives_without_a_fence() {
    // clwb / clflushopt hand the line to the WPQ; ADR drains the queue
    // on power failure. The fence only gives the *program* a point at
    // which durability is known — its absence loses nothing.
    for gen in GENS {
        let mut m = machine(gen);
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        let b = m.alloc_pm(64, 64);
        m.store_u64(t, a, 3);
        m.clwb(t, a); // no sfence
        m.store_u64(t, b, 4);
        m.clflushopt(t, b); // no sfence
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 3, "{gen}: unfenced clwb drained");
        assert_eq!(m.peek_u64(b), 4, "{gen}: unfenced clflushopt drained");
    }
}

#[test]
fn unfenced_nt_store_survives_per_rap_semantics() {
    // Fig. 7: an nt-store is accepted by the WPQ when issued; the sfence
    // only orders later work after the acceptance. Crash-wise the data
    // is already home in both generations.
    for gen in GENS {
        let mut m = machine(gen);
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.nt_store(t, a, &9u64.to_le_bytes());
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 9, "{gen}: unfenced nt-store survived");
    }
}

#[test]
fn clflush_is_synchronously_durable() {
    // Legacy clflush waits for WPQ acceptance inside the instruction, so
    // it needs no fence at all to be crash-durable.
    for gen in GENS {
        let mut m = machine(gen);
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 5);
        m.clflush(t, a);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), 5, "{gen}: clflush durable unfenced");
    }
}

#[test]
fn restore_after_flush_loses_only_the_second_value() {
    // The torn case pmcheck's missing-fence rule is about: persist v1,
    // then overwrite the same line without re-flushing. The crash rolls
    // the line back to v1 — stale but not garbage.
    let mut m = machine(Generation::G1);
    let t = m.spawn(0);
    let a = m.alloc_pm(64, 64);
    m.store_u64(t, a, 1);
    m.clwb(t, a);
    m.sfence(t);
    m.store_u64(t, a, 2); // never flushed again
    m.power_fail(CrashPolicy::LoseUnflushed);
    assert_eq!(m.peek_u64(a), 1, "line rolled back to the persisted value");
}

#[test]
fn machine_stays_usable_after_power_failure() {
    // Recovery code runs on the same machine: loads see the persisted
    // image, new stores and flushes work, and a second crash applies the
    // same policy again.
    let mut m = machine(Generation::G2);
    let t = m.spawn(0);
    let a = m.alloc_pm(64, 64);
    m.store_u64(t, a, 7);
    m.clwb(t, a);
    m.sfence(t);
    m.power_fail(CrashPolicy::LoseUnflushed);

    assert_eq!(m.load_u64(t, a), 7, "recovery load sees persisted data");
    m.store_u64(t, a, 8);
    m.power_fail(CrashPolicy::LoseUnflushed);
    assert_eq!(m.peek_u64(a), 7, "unflushed recovery store lost again");

    m.store_u64(t, a, 9);
    m.clwb(t, a);
    m.sfence(t);
    m.power_fail(CrashPolicy::LoseUnflushed);
    assert_eq!(m.peek_u64(a), 9, "persisted recovery store kept");
}

#[test]
fn persist_all_dirty_keeps_pm_but_not_dram() {
    let mut m = machine(Generation::G1);
    let t = m.spawn(0);
    let pm = m.alloc_pm(64, 64);
    let dram = m.alloc_dram(64, 64);
    m.store_u64(t, pm, 11);
    m.store_u64(t, dram, 12);
    m.power_fail(CrashPolicy::PersistAllDirty);
    assert_eq!(m.peek_u64(pm), 11, "eADR-style policy keeps dirty PM");
    assert_eq!(m.peek_u64(dram), 0, "DRAM is volatile under any policy");
}
