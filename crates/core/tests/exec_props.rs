//! Property tests for the deterministic multi-thread executor.
//!
//! The executor's contract is that a schedule is a pure function of
//! `(policy, lane count, program)`: running the same seeded workload on
//! two freshly built machines must produce the same interleaving, hence
//! the same trace, clocks, and final checkpoint — for every seed, not
//! just the ones the unit tests pin. The cross-*process* half of the
//! contract is witnessed by `repro divergence e15`; these properties
//! cover the schedule space itself.

use std::cell::RefCell;
use std::rc::Rc;

use cpucache::PrefetchConfig;
use optane_core::trace::{TraceEvent, TraceSink};
use optane_core::{Generation, Interleaver, Machine, MachineConfig, SchedPolicy, Step, ThreadId};
use proptest::prelude::*;
use simbase::Addr;

const LINES_PER_LANE: u64 = 16;

/// One scripted per-lane operation, from the set that exercises every
/// executor-visible machine path: plain stores, persists, nt-stores,
/// loads, and the locked RMWs on a genuinely shared line.
#[derive(Debug, Clone, Copy)]
enum Op {
    Store(u64, u64),
    Persist(u64),
    NtStore(u64),
    Load(u64),
    FetchAddShared(u64),
    CasShared(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(sel, slot, val)| match sel % 6 {
        0 => Op::Store(slot % LINES_PER_LANE, val),
        1 => Op::Persist(slot % LINES_PER_LANE),
        2 => Op::NtStore(slot % LINES_PER_LANE),
        3 => Op::Load(slot % LINES_PER_LANE),
        4 => Op::FetchAddShared(val),
        _ => Op::CasShared(val),
    })
}

/// FNV-1a over each event's debug rendering — enough to distinguish any
/// two interleavings, cheap enough to run per proptest case.
#[derive(Clone)]
struct HashSink(Rc<RefCell<u64>>);

impl TraceSink for HashSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        let mut h = self.0.borrow_mut();
        for b in format!("{ev:?}").bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Runs `scripts` under `policy` on a fresh machine; returns the trace
/// hash, the final per-lane clocks, and the encoded checkpoint.
fn run_workload(policy: SchedPolicy, scripts: &[Vec<Op>]) -> (u64, Vec<u64>, Vec<u8>) {
    let lanes = scripts.len();
    let cfg = MachineConfig::for_generation(Generation::G1, PrefetchConfig::none(), 1);
    let mut m = Machine::new(cfg);
    let hash = Rc::new(RefCell::new(0xcbf2_9ce4_8422_2325_u64));
    m.set_trace_sink(Box::new(HashSink(hash.clone())));
    let tids: Vec<ThreadId> = (0..lanes).map(|_| m.spawn(0)).collect();
    let shared = m.alloc_pm(64, 64);
    let regions: Vec<Addr> = (0..lanes)
        .map(|_| m.alloc_pm(LINES_PER_LANE * 64, 64))
        .collect();
    let mut pos = vec![0usize; lanes];
    Interleaver::new(policy).run(&mut m, &tids, &mut |mm: &mut Machine, tid, lane: usize| {
        let Some(&op) = scripts[lane].get(pos[lane]) else {
            return Step::Done;
        };
        pos[lane] += 1;
        match op {
            Op::Store(slot, val) => {
                mm.store_u64(tid, regions[lane].add(slot * 64), val);
            }
            Op::Persist(slot) => {
                mm.clwb(tid, regions[lane].add(slot * 64));
                mm.sfence(tid);
            }
            Op::NtStore(slot) => {
                mm.nt_store(tid, regions[lane].add(slot * 64), &[0x5A; 64]);
            }
            Op::Load(slot) => {
                mm.load_u64(tid, regions[lane].add(slot * 64));
            }
            Op::FetchAddShared(delta) => {
                mm.fetch_add_u64(tid, shared, delta);
            }
            Op::CasShared(val) => {
                let cur = mm.load_u64(tid, shared);
                mm.cas_u64(tid, shared, cur, val);
            }
        }
        Step::Ran
    });
    let clocks = tids.iter().map(|&t| m.now(t)).collect();
    let trace = *hash.borrow();
    (trace, clocks, m.checkpoint().encode())
}

fn scripts_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 1..24), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Same seed, same scripts, fresh machines: byte-identical trace,
    /// clocks, and checkpoint — the interleaving is a pure function of
    /// the seed.
    #[test]
    fn seeded_schedule_is_deterministic(
        scripts in scripts_strategy(),
        seed in any::<u64>(),
    ) {
        let policy = SchedPolicy::SeededRandom { seed };
        let a = run_workload(policy, &scripts);
        let b = run_workload(policy, &scripts);
        prop_assert_eq!(a.0, b.0, "trace hashes diverge");
        prop_assert_eq!(&a.1, &b.1, "final clocks diverge");
        prop_assert_eq!(a.2, b.2, "encoded checkpoints diverge");
    }

    /// Round-robin is the legacy nested-loop order: scheduling the same
    /// scripts through the executor matches stepping the lanes by hand
    /// in `for round { for lane }` order.
    #[test]
    fn round_robin_matches_hand_rolled_nesting(scripts in scripts_strategy()) {
        let via_exec = run_workload(SchedPolicy::RoundRobin, &scripts);

        let lanes = scripts.len();
        let cfg = MachineConfig::for_generation(Generation::G1, PrefetchConfig::none(), 1);
        let mut m = Machine::new(cfg);
        let hash = Rc::new(RefCell::new(0xcbf2_9ce4_8422_2325_u64));
        m.set_trace_sink(Box::new(HashSink(hash.clone())));
        let tids: Vec<ThreadId> = (0..lanes).map(|_| m.spawn(0)).collect();
        let shared = m.alloc_pm(64, 64);
        let regions: Vec<Addr> = (0..lanes)
            .map(|_| m.alloc_pm(LINES_PER_LANE * 64, 64))
            .collect();
        let rounds = scripts.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            for (lane, script) in scripts.iter().enumerate() {
                let Some(&op) = script.get(round) else { continue };
                let tid = tids[lane];
                match op {
                    Op::Store(slot, val) => {
                        m.store_u64(tid, regions[lane].add(slot * 64), val);
                    }
                    Op::Persist(slot) => {
                        m.clwb(tid, regions[lane].add(slot * 64));
                        m.sfence(tid);
                    }
                    Op::NtStore(slot) => {
                        m.nt_store(tid, regions[lane].add(slot * 64), &[0x5A; 64]);
                    }
                    Op::Load(slot) => {
                        m.load_u64(tid, regions[lane].add(slot * 64));
                    }
                    Op::FetchAddShared(delta) => {
                        m.fetch_add_u64(tid, shared, delta);
                    }
                    Op::CasShared(val) => {
                        let cur = m.load_u64(tid, shared);
                        m.cas_u64(tid, shared, cur, val);
                    }
                }
            }
        }
        let clocks: Vec<u64> = tids.iter().map(|&t| m.now(t)).collect();
        prop_assert_eq!(via_exec.0, *hash.borrow(), "trace hashes diverge");
        prop_assert_eq!(&via_exec.1, &clocks, "final clocks diverge");
        prop_assert_eq!(via_exec.2, m.checkpoint().encode(), "checkpoints diverge");
    }
}
