//! Keeps the checked-in metrics schema in lockstep with the registry.
//!
//! `schemas/metrics.schema.json` is the contract CI validates emitted
//! `simwatch` series against (via `metricsval`). It must be exactly
//! what [`optane_core::machine_schema_json`] produces — regenerate it
//! with `cargo run -p experiments --bin metricsval -- --print-schema`
//! whenever the registry changes.

use std::path::Path;

#[test]
fn checked_in_schema_matches_the_registry() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas/metrics.schema.json");
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        on_disk,
        optane_core::machine_schema_json(),
        "schemas/metrics.schema.json is stale; regenerate with \
         `cargo run -p experiments --bin metricsval -- --print-schema`"
    );
}
