//! Cacheline-Conscious Extendible Hashing (CCEH).
//!
//! Layout follows §4.1 of the paper (Figure 9): a global *directory* of
//! segment pointers, 16 KB *segments* of 256 cacheline-sized *buckets*
//! plus a metadata cacheline, and 16-byte key-value pairs (4 per bucket).
//! Collisions are handled with linear probing over up to four adjacent
//! buckets, as CCEH does, which is what gives bucket accesses their spatial
//! locality on the read buffer.
//!
//! A key insertion therefore performs the paper's signature access
//! pattern: three dependent random reads (directory entry → segment
//! metadata → bucket) followed by a small write and a persistence barrier.
//! [`Cceh::insert_instrumented`] attributes simulated cycles to those
//! phases, reproducing Table 1, and [`Cceh::prefetch_for_key`] is the
//! speculative helper-thread trace (loads only) of the §4.1 optimization.

use pmem::PmemEnv;
use simbase::{Addr, Cycles, CACHELINE_BYTES};

/// Key-value slots per 64 B bucket (16 B pairs).
pub const SLOTS_PER_BUCKET: u64 = 4;
/// Buckets per segment.
pub const BUCKETS_PER_SEGMENT: u64 = 256;
/// Linear-probing distance (adjacent buckets searched on collision).
pub const PROBE_BUCKETS: u64 = 4;
/// Bytes per segment: one metadata cacheline plus the buckets.
pub const SEGMENT_BYTES: u64 = CACHELINE_BYTES + BUCKETS_PER_SEGMENT * CACHELINE_BYTES;

/// Modelled cost of computing the hash (pure compute).
const HASH_CYCLES: Cycles = 25;

/// Directory header: [0] global depth; entries start one cacheline in.
const DIR_HEADER_BYTES: u64 = 64;

/// Largest supported global depth (2^20 segments ≈ 16 GB of table).
const MAX_GLOBAL_DEPTH: u64 = 20;

fn hash_key(key: u64) -> u64 {
    // fmix64: full-avalanche, cheap, stable.
    let mut k = key.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k = (k ^ (k >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^ (k >> 33)
}

/// Per-phase cycle attribution of one insert (Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct InsertBreakdown {
    /// Directory indexing (hash + depth + entry load).
    pub directory: Cycles,
    /// The segment-metadata random read.
    pub segment_meta: Cycles,
    /// Bucket probing and the pair store.
    pub bucket: Cycles,
    /// Cacheline flushes and fences.
    pub persists: Cycles,
    /// Everything else (splits, bookkeeping).
    pub misc: Cycles,
}

impl InsertBreakdown {
    /// Total cycles across phases.
    pub fn total(&self) -> Cycles {
        self.directory + self.segment_meta + self.bucket + self.persists + self.misc
    }

    /// Accumulates another breakdown.
    pub fn add(&mut self, other: &InsertBreakdown) {
        self.directory += other.directory;
        self.segment_meta += other.segment_meta;
        self.bucket += other.bucket;
        self.persists += other.persists;
        self.misc += other.misc;
    }
}

/// The CCEH hash table.
#[derive(Debug, Clone)]
pub struct Cceh {
    dir: Addr,
    /// Volatile mirror of the number of stored pairs.
    len: u64,
}

impl Cceh {
    /// Creates a table with `2^initial_depth` segments.
    ///
    /// # Examples
    ///
    /// ```
    /// use pmds::Cceh;
    /// use pmem::HostEnv;
    ///
    /// let mut env = HostEnv::new();
    /// let mut table = Cceh::create(&mut env, 2);
    /// table.insert(&mut env, 7, 700);
    /// assert_eq!(table.get(&mut env, 7), Some(700));
    /// assert_eq!(table.get(&mut env, 8), None);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `initial_depth` exceeds the supported maximum.
    pub fn create<E: PmemEnv>(env: &mut E, initial_depth: u64) -> Self {
        assert!(initial_depth <= MAX_GLOBAL_DEPTH, "depth too large");
        let entries = 1u64 << MAX_GLOBAL_DEPTH;
        // The directory is allocated at its maximum size so doubling only
        // rewrites entries (no relocation); this mirrors CCEH reserving
        // directory space up front.
        let dir = env.alloc(DIR_HEADER_BYTES + entries * 8, 4096);
        env.store_u64(dir, initial_depth);
        env.persist(dir, 8);
        let n = 1u64 << initial_depth;
        for i in 0..n {
            let seg = Self::alloc_segment(env, initial_depth, i);
            env.store_u64(dir.add(DIR_HEADER_BYTES + i * 8), seg.0);
        }
        env.persist(dir.add(DIR_HEADER_BYTES), n * 8);
        Cceh { dir, len: 0 }
    }

    /// Reattaches to an existing table after a restart or crash.
    ///
    /// The directory address is the table's root; the volatile length is
    /// recomputed lazily (it is only used for reporting).
    pub fn recover<E: PmemEnv>(env: &mut E, dir: Addr) -> Self {
        let mut t = Cceh { dir, len: 0 };
        t.len = t.count_pairs(env);
        t
    }

    /// Reattaches to an existing table without touching memory.
    ///
    /// Unlike [`Cceh::recover`] this performs no reads, so on a timed
    /// environment it neither advances the clock nor warms the caches —
    /// required when reattaching from a checkpoint, where the restored
    /// machine must be indistinguishable from one that kept running. The
    /// caller supplies the volatile length it saved alongside the root.
    pub fn from_root(dir: Addr, len: u64) -> Self {
        Cceh { dir, len }
    }

    /// Returns the directory address (the persistent root of the table).
    pub fn root(&self) -> Addr {
        self.dir
    }

    /// Returns the number of stored pairs (volatile mirror).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc_segment<E: PmemEnv>(env: &mut E, local_depth: u64, pattern: u64) -> Addr {
        let seg = env.alloc(SEGMENT_BYTES, 256);
        // Metadata cacheline: local depth and directory-prefix pattern.
        env.store_u64(seg, local_depth);
        env.store_u64(seg.add(8), pattern);
        env.persist(seg, 16);
        seg
    }

    fn dir_entry_addr(&self, idx: u64) -> Addr {
        self.dir.add(DIR_HEADER_BYTES + idx * 8)
    }

    fn bucket_addr(seg: Addr, bucket: u64) -> Addr {
        seg.add(CACHELINE_BYTES + bucket * CACHELINE_BYTES)
    }

    fn dir_index(hash: u64, global_depth: u64) -> u64 {
        if global_depth == 0 {
            0
        } else {
            hash >> (64 - global_depth)
        }
    }

    fn bucket_index(hash: u64) -> u64 {
        hash & (BUCKETS_PER_SEGMENT - 1)
    }

    /// Looks up `key`.
    pub fn get<E: PmemEnv>(&self, env: &mut E, key: u64) -> Option<u64> {
        env.compute(HASH_CYCLES);
        let hash = hash_key(key);
        let gd = env.load_u64(self.dir);
        let seg = Addr(env.load_u64(self.dir_entry_addr(Self::dir_index(hash, gd))));
        let b0 = Self::bucket_index(hash);
        let _ = env.load_u64_pair(seg, Self::bucket_addr(seg, b0));
        for p in 0..PROBE_BUCKETS {
            let b = (b0 + p) % BUCKETS_PER_SEGMENT;
            let baddr = Self::bucket_addr(seg, b);
            for s in 0..SLOTS_PER_BUCKET {
                let k = env.load_u64(baddr.add(s * 16));
                if k == key {
                    return Some(env.load_u64(baddr.add(s * 16 + 8)));
                }
            }
        }
        None
    }

    /// Inserts (or updates) `key -> value`.
    pub fn insert<E: PmemEnv>(&mut self, env: &mut E, key: u64, value: u64) {
        self.insert_instrumented(env, key, value);
    }

    /// Inserts `key -> value`, attributing cycles to phases (Table 1).
    ///
    /// Keys must be nonzero (zero marks an empty slot).
    ///
    /// # Panics
    ///
    /// Panics if `key` is zero.
    pub fn insert_instrumented<E: PmemEnv>(
        &mut self,
        env: &mut E,
        key: u64,
        value: u64,
    ) -> InsertBreakdown {
        assert!(key != 0, "key 0 is reserved as the empty marker");
        let mut bd = InsertBreakdown::default();
        loop {
            let t0 = env.now();
            env.compute(HASH_CYCLES);
            let hash = hash_key(key);
            let gd = env.load_u64(self.dir);
            let dir_idx = Self::dir_index(hash, gd);
            let seg = Addr(env.load_u64(self.dir_entry_addr(dir_idx)));
            let t1 = env.now();
            bd.directory += t1 - t0;

            // The expensive random-read step: segment metadata plus the
            // first probe bucket. The two addresses both derive from the
            // directory entry, so an out-of-order core issues them in
            // parallel (memory-level parallelism).
            let b0 = Self::bucket_index(hash);
            let (_local_depth, _first_slot) = env.load_u64_pair(seg, Self::bucket_addr(seg, b0));
            let t2 = env.now();
            bd.segment_meta += t2 - t1;

            // Probe up to four adjacent buckets for the key or a free slot.
            let mut target: Option<Addr> = None;
            'probe: for p in 0..PROBE_BUCKETS {
                let b = (b0 + p) % BUCKETS_PER_SEGMENT;
                let baddr = Self::bucket_addr(seg, b);
                for s in 0..SLOTS_PER_BUCKET {
                    let slot = baddr.add(s * 16);
                    let k = env.load_u64(slot);
                    if k == key || k == 0 {
                        if k == 0 {
                            self.len += 1;
                        }
                        target = Some(slot);
                        break 'probe;
                    }
                }
            }
            if let Some(slot) = target {
                env.store_u64(slot, key);
                env.store_u64(slot.add(8), value);
                let t3 = env.now();
                bd.bucket += t3 - t2;
                env.persist(slot, 16);
                bd.persists += env.now() - t3;
                return bd;
            }
            let t3 = env.now();
            bd.bucket += t3 - t2;
            // All probed buckets full: split the segment and retry.
            self.split(env, seg, dir_idx);
            bd.misc += env.now() - t3;
        }
    }

    /// Splits the segment behind `dir_idx` (copy-split into two fresh
    /// segments, then atomically repoint the directory entries).
    fn split<E: PmemEnv>(&mut self, env: &mut E, seg: Addr, dir_idx: u64) {
        let gd = env.load_u64(self.dir);
        let local_depth = env.load_u64(seg);
        if local_depth == gd {
            self.double_directory(env, gd);
            // Retry the split under the doubled directory.
            let new_gd = gd + 1;
            let new_idx = dir_idx << 1;
            self.split_at(env, seg, new_gd, local_depth, new_idx);
        } else {
            self.split_at(env, seg, gd, local_depth, dir_idx);
        }
    }

    fn split_at<E: PmemEnv>(
        &mut self,
        env: &mut E,
        seg: Addr,
        gd: u64,
        local_depth: u64,
        dir_idx: u64,
    ) {
        let new_depth = local_depth + 1;
        // Pattern of the first directory slot covered by this segment.
        let span = 1u64 << (gd - local_depth);
        let first = dir_idx & !(span - 1);
        let pat0 = first >> (gd - new_depth); // left-half prefix pattern
        let s0 = Self::alloc_segment(env, new_depth, pat0);
        let s1 = Self::alloc_segment(env, new_depth, pat0 + 1);
        // Redistribute: the deciding bit is bit (64 - new_depth) of the
        // hash, i.e. whether the hash prefix falls in the left or right
        // half of the old segment's directory span.
        for b in 0..BUCKETS_PER_SEGMENT {
            let baddr = Self::bucket_addr(seg, b);
            for s in 0..SLOTS_PER_BUCKET {
                let k = env.load_u64(baddr.add(s * 16));
                if k == 0 {
                    continue;
                }
                let v = env.load_u64(baddr.add(s * 16 + 8));
                let h = hash_key(k);
                let new_seg = if (Self::dir_index(h, new_depth) & 1) == 0 {
                    s0
                } else {
                    s1
                };
                Self::raw_insert(env, new_seg, h, k, v);
            }
        }
        // Persist both new segments wholesale before publishing them.
        pmem::persist_range_unfenced(env, s0, SEGMENT_BYTES);
        pmem::persist_range_unfenced(env, s1, SEGMENT_BYTES);
        env.sfence();
        // Publish: flip directory entries (8-byte atomic each), left half
        // to s0, right half to s1.
        let half = span / 2;
        for i in 0..span {
            let target = if i < half { s0 } else { s1 };
            env.store_u64(self.dir_entry_addr(first + i), target.0);
        }
        pmem::persist_range(env, self.dir_entry_addr(first), span * 8);
    }

    /// Inserts into a fresh (private) segment during a split, without
    /// persistence (the whole segment is persisted afterwards).
    ///
    /// # Panics
    ///
    /// Panics if the redistribution overflows the probe window, which
    /// cannot happen when splitting a valid segment.
    fn raw_insert<E: PmemEnv>(env: &mut E, seg: Addr, hash: u64, key: u64, value: u64) {
        let b0 = Self::bucket_index(hash);
        for p in 0..PROBE_BUCKETS {
            let b = (b0 + p) % BUCKETS_PER_SEGMENT;
            let baddr = Self::bucket_addr(seg, b);
            for s in 0..SLOTS_PER_BUCKET {
                let slot = baddr.add(s * 16);
                if env.load_u64(slot) == 0 {
                    env.store_u64(slot, key);
                    env.store_u64(slot.add(8), value);
                    return;
                }
            }
        }
        panic!("split redistribution overflowed the probe window");
    }

    fn double_directory<E: PmemEnv>(&mut self, env: &mut E, gd: u64) {
        assert!(gd < MAX_GLOBAL_DEPTH, "directory at maximum depth");
        let n = 1u64 << gd;
        // Expand in place from the back so no entry is overwritten before
        // it is copied: entry i maps to entries 2i and 2i+1.
        for i in (0..n).rev() {
            let v = env.load_u64(self.dir_entry_addr(i));
            env.store_u64(self.dir_entry_addr(2 * i), v);
            env.store_u64(self.dir_entry_addr(2 * i + 1), v);
        }
        pmem::persist_range(env, self.dir_entry_addr(0), 2 * n * 8);
        env.store_u64(self.dir, gd + 1);
        env.persist(self.dir, 8);
    }

    /// Removes `key`, returning its value if present.
    pub fn remove<E: PmemEnv>(&mut self, env: &mut E, key: u64) -> Option<u64> {
        env.compute(HASH_CYCLES);
        let hash = hash_key(key);
        let gd = env.load_u64(self.dir);
        let seg = Addr(env.load_u64(self.dir_entry_addr(Self::dir_index(hash, gd))));
        let b0 = Self::bucket_index(hash);
        for p in 0..PROBE_BUCKETS {
            let b = (b0 + p) % BUCKETS_PER_SEGMENT;
            let baddr = Self::bucket_addr(seg, b);
            for s in 0..SLOTS_PER_BUCKET {
                let slot = baddr.add(s * 16);
                if env.load_u64(slot) == key {
                    let v = env.load_u64(slot.add(8));
                    env.store_u64(slot, 0);
                    env.persist(slot, 8);
                    self.len -= 1;
                    return Some(v);
                }
            }
        }
        None
    }

    /// The helper thread's speculative trace for `key` (§4.1): only the
    /// loads needed to walk directory → segment metadata → buckets, warming
    /// the AIT, the on-DIMM read buffer, and the CPU caches for the worker.
    pub fn prefetch_for_key<E: PmemEnv>(&self, env: &mut E, key: u64) {
        env.compute(HASH_CYCLES);
        let hash = hash_key(key);
        let gd = env.load_u64(self.dir);
        let seg = Addr(env.load_u64(self.dir_entry_addr(Self::dir_index(hash, gd))));
        let b0 = Self::bucket_index(hash);
        // Metadata and the first probe bucket, in parallel like the
        // worker; the remaining probe buckets have spatial locality.
        let _ = env.load_u64_pair(seg, Self::bucket_addr(seg, b0));
    }

    /// Counts stored pairs by scanning every distinct segment (recovery /
    /// verification; not a fast path).
    pub fn count_pairs<E: PmemEnv>(&self, env: &mut E) -> u64 {
        let gd = env.load_u64(self.dir);
        let n = 1u64 << gd;
        let mut segs = std::collections::BTreeSet::new();
        for i in 0..n {
            segs.insert(env.load_u64(self.dir_entry_addr(i)));
        }
        let mut count = 0;
        for seg in segs {
            let seg = Addr(seg);
            for b in 0..BUCKETS_PER_SEGMENT {
                let baddr = Self::bucket_addr(seg, b);
                for s in 0..SLOTS_PER_BUCKET {
                    if env.load_u64(baddr.add(s * 16)) != 0 {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::{CrashPolicy, Machine, MachineConfig};
    use pmem::{HostEnv, SimEnv};

    #[test]
    fn insert_get_round_trip() {
        let mut env = HostEnv::new();
        let mut t = Cceh::create(&mut env, 2);
        for k in 1..=500u64 {
            t.insert(&mut env, k, k * 10);
        }
        for k in 1..=500u64 {
            assert_eq!(t.get(&mut env, k), Some(k * 10), "key {k}");
        }
        assert_eq!(t.get(&mut env, 501), None);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn update_overwrites() {
        let mut env = HostEnv::new();
        let mut t = Cceh::create(&mut env, 1);
        t.insert(&mut env, 5, 50);
        t.insert(&mut env, 5, 99);
        assert_eq!(t.get(&mut env, 5), Some(99));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_deletes() {
        let mut env = HostEnv::new();
        let mut t = Cceh::create(&mut env, 1);
        t.insert(&mut env, 7, 70);
        assert_eq!(t.remove(&mut env, 7), Some(70));
        assert_eq!(t.get(&mut env, 7), None);
        assert_eq!(t.remove(&mut env, 7), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn grows_through_many_splits() {
        let mut env = HostEnv::new();
        let mut t = Cceh::create(&mut env, 1);
        let n = 20_000u64;
        for k in 1..=n {
            t.insert(&mut env, k, k);
        }
        for k in (1..=n).step_by(97) {
            assert_eq!(t.get(&mut env, k), Some(k), "key {k}");
        }
        assert_eq!(t.count_pairs(&mut env), n);
    }

    #[test]
    fn instrumented_breakdown_accounts_all_time() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let mut t = Cceh::create(&mut env, 4);
        let start = env.now();
        let mut total = InsertBreakdown::default();
        for k in 1..=100u64 {
            let bd = t.insert_instrumented(&mut env, k * 7919, k);
            total.add(&bd);
        }
        let elapsed = env.now() - start;
        assert_eq!(total.total(), elapsed, "phases partition insert time");
        assert!(total.persists > 0);
        assert!(total.segment_meta > 0);
    }

    #[test]
    fn fenced_inserts_survive_crash() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let mut t = Cceh::create(&mut env, 2);
        for k in 1..=200u64 {
            t.insert(&mut env, k, k + 1000);
        }
        let root = t.root();
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, tid);
        let t = Cceh::recover(&mut env, root);
        assert_eq!(t.len(), 200);
        for k in 1..=200u64 {
            assert_eq!(t.get(&mut env, k), Some(k + 1000), "key {k} after crash");
        }
    }

    #[test]
    fn differential_host_vs_sim() {
        let mut host = HostEnv::new();
        let mut th = Cceh::create(&mut host, 2);
        let mut m = Machine::new(MachineConfig::g2(PrefetchConfig::all(), 6));
        let tid = m.spawn(0);
        let mut sim = SimEnv::new(&mut m, tid);
        let mut ts = Cceh::create(&mut sim, 2);
        for k in 1..=2000u64 {
            let key = k.wrapping_mul(0x9E37_79B9).max(1);
            th.insert(&mut host, key, k);
            ts.insert(&mut sim, key, k);
        }
        for k in 1..=2000u64 {
            let key = k.wrapping_mul(0x9E37_79B9).max(1);
            assert_eq!(th.get(&mut host, key), ts.get(&mut sim, key));
        }
    }

    #[test]
    fn prefetch_trace_is_read_only() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let mut t = Cceh::create(&mut env, 2);
        t.insert(&mut env, 42, 1);
        drop(env);
        let before = m.metrics().telemetry;
        let mut env = SimEnv::new(&mut m, tid);
        t.prefetch_for_key(&mut env, 42);
        drop(env);
        let d = m.metrics().telemetry.delta(&before);
        assert_eq!(d.demand.write, 0, "helper performs no stores");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_key_rejected() {
        let mut env = HostEnv::new();
        let mut t = Cceh::create(&mut env, 1);
        t.insert(&mut env, 0, 1);
    }
}
