//! The §3.6 pointer-chase workload (Figure 8).
//!
//! A working set of 256-byte, XPLine-aligned elements linked into a
//! circular list, traversed by pointer chasing. Each visit optionally
//! updates one cacheline of the element's pad area — deliberately a
//! *different* cacheline than the one holding the `next` pointer, so
//! persisting the data never invalidates the cached pointer (as the paper
//! takes care to arrange).

use pmem::{PersistMode, PmemEnv};
use simbase::{Addr, Cycles, XPLINE_BYTES};
use workloads::{ring_order, AccessOrder};

/// How element updates reach persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Cached store followed by `clwb`.
    Clwb,
    /// Non-temporal store.
    NtStore,
}

/// A circular linked list of 256 B elements in PM.
#[derive(Debug, Clone)]
pub struct ChaseList {
    base: Addr,
    elements: u64,
    head: Addr,
}

impl ChaseList {
    /// Builds a list of `elements` 256 B elements linked in the given
    /// order. Construction uses non-temporal stores and a final fence; the
    /// caller typically resets counters afterwards.
    pub fn build<E: PmemEnv>(env: &mut E, elements: u64, order: AccessOrder, seed: u64) -> Self {
        assert!(elements >= 2, "a ring needs at least two elements");
        let base = env.alloc(elements * XPLINE_BYTES, XPLINE_BYTES);
        let visit = ring_order(elements, order, seed);
        for i in 0..elements as usize {
            let cur = visit[i];
            let next = visit[(i + 1) % elements as usize];
            let cur_addr = base.add_xplines(cur);
            let next_addr = base.add_xplines(next);
            env.nt_store(cur_addr, &next_addr.0.to_le_bytes());
        }
        env.sfence();
        ChaseList {
            base,
            elements,
            head: base.add_xplines(visit[0]),
        }
    }

    /// Returns the number of elements.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Returns the base address of the element region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Returns the first element in visit order.
    pub fn head(&self) -> Addr {
        self.head
    }

    /// Returns the list's working-set size in bytes.
    pub fn wss(&self) -> u64 {
        self.elements * XPLINE_BYTES
    }

    /// Pure pointer chase: one full lap, no writes. Returns average cycles
    /// per element.
    pub fn lap_read<E: PmemEnv>(&self, env: &mut E) -> Cycles {
        let start = env.now();
        let mut cur = self.head;
        for _ in 0..self.elements {
            cur = Addr(env.load_u64(cur));
        }
        debug_assert_eq!(cur, self.head, "ring returns to head");
        (env.now() - start) / self.elements
    }

    /// Chase with an update to pad cacheline 1 of each element, persisted
    /// per `kind` and `mode`. Returns average cycles per element.
    pub fn lap_write<E: PmemEnv>(
        &self,
        env: &mut E,
        kind: WriteKind,
        mode: PersistMode,
        token: u64,
    ) -> Cycles {
        let start = env.now();
        let mut cur = self.head;
        for _ in 0..self.elements {
            let next = Addr(env.load_u64(cur));
            let pad = cur.add_cachelines(1);
            match kind {
                WriteKind::Clwb => {
                    env.store_u64(pad, token);
                    mode.after_write(env, pad, 8);
                }
                WriteKind::NtStore => {
                    env.nt_store(pad, &token.to_le_bytes());
                    if mode == PersistMode::Strict {
                        env.sfence();
                    }
                }
            }
            cur = next;
        }
        mode.end_batch(env);
        (env.now() - start) / self.elements
    }

    /// Pure writes: element addresses come from a volatile array (no PM
    /// reads); full-line stores avoid ownership fetches, as the paper's
    /// pure-write benchmark does. Returns average cycles per element.
    pub fn lap_pure_write<E: PmemEnv>(
        &self,
        env: &mut E,
        kind: WriteKind,
        mode: PersistMode,
        token: u64,
    ) -> Cycles {
        // The address array lives in (host-volatile) memory, mirroring the
        // paper's DRAM address array.
        let addrs: Vec<Addr> = {
            let mut v = Vec::with_capacity(self.elements as usize);
            let mut cur = self.head;
            for _ in 0..self.elements {
                v.push(cur);
                cur = Addr(env.load_u64(cur));
            }
            v
        };
        let start = env.now();
        let mut line = [0u8; 64];
        line[..8].copy_from_slice(&token.to_le_bytes());
        for a in &addrs {
            let pad = a.add_cachelines(1);
            match kind {
                WriteKind::Clwb => {
                    env.store_full_line(pad, &line);
                    mode.after_write(env, pad, 64);
                }
                WriteKind::NtStore => {
                    env.nt_store(pad, &line);
                    if mode == PersistMode::Strict {
                        env.sfence();
                    }
                }
            }
        }
        mode.end_batch(env);
        (env.now() - start) / self.elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::{Machine, MachineConfig};
    use pmem::{HostEnv, SimEnv};

    #[test]
    fn ring_is_closed_and_complete() {
        let mut env = HostEnv::new();
        for order in [AccessOrder::Sequential, AccessOrder::Random] {
            let list = ChaseList::build(&mut env, 64, order, 9);
            let mut cur = list.head();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..64 {
                assert!(seen.insert(cur.0), "{order:?}: revisited early");
                cur = Addr(env.load_u64(cur));
            }
            assert_eq!(cur, list.head(), "{order:?}: ring closes");
        }
    }

    #[test]
    fn elements_are_xpline_aligned() {
        let mut env = HostEnv::new();
        let list = ChaseList::build(&mut env, 16, AccessOrder::Random, 1);
        let mut cur = list.head();
        for _ in 0..16 {
            assert!(cur.is_xpline_aligned());
            cur = Addr(env.load_u64(cur));
        }
    }

    #[test]
    fn writes_do_not_corrupt_pointers() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let list = ChaseList::build(&mut env, 32, AccessOrder::Random, 2);
        list.lap_write(&mut env, WriteKind::Clwb, PersistMode::Strict, 0xAA);
        list.lap_write(&mut env, WriteKind::NtStore, PersistMode::Relaxed, 0xBB);
        // The ring still closes.
        let mut cur = list.head();
        for _ in 0..32 {
            cur = Addr(env.load_u64(cur));
        }
        assert_eq!(cur, list.head());
    }

    #[test]
    fn small_wss_faster_than_large_wss() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let small = ChaseList::build(&mut env, 16, AccessOrder::Random, 3);
        // Warm.
        small.lap_read(&mut env);
        let fast = small.lap_read(&mut env);
        drop(env);
        let mut m2 = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t2 = m2.spawn(0);
        let mut env2 = SimEnv::new(&mut m2, t2);
        // 64 MB working set: beyond L3 and the AIT cache.
        let large = ChaseList::build(&mut env2, 64 * 4096, AccessOrder::Random, 3);
        let slow = large.lap_read(&mut env2);
        assert!(
            slow > fast * 10,
            "media-bound chase ({slow}) must dwarf cached chase ({fast})"
        );
    }

    #[test]
    fn pure_write_latency_is_flat_across_wss() {
        // The headline §3.6 claim: write latency is consistent regardless
        // of working-set size.
        let lat_for = |elements: u64| -> Cycles {
            let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
            let t = m.spawn(0);
            let mut env = SimEnv::new(&mut m, t);
            let list = ChaseList::build(&mut env, elements, AccessOrder::Random, 4);
            list.lap_pure_write(&mut env, WriteKind::NtStore, PersistMode::Strict, 1)
        };
        let small = lat_for(64); // 16 KB
        let large = lat_for(16 * 1024); // 4 MB
        assert!(
            large < small * 3,
            "write latency should stay flat: small={small}, large={large}"
        );
    }
}
