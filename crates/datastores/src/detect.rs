//! Detectable-recovery plumbing shared by the lock-free structures.
//!
//! The persistent Treiber stack ([`crate::treiber`]) and Michael-Scott
//! queue ([`crate::msqueue`]) follow the Memento recipe for *detectable*
//! operations: every thread owns one persistent operation descriptor, and
//! every value-moving CAS writes a unique per-operation *tag* into the
//! node it claims. After a crash, recovery reads the descriptor and the
//! tagged node and can always answer "did my in-flight operation take
//! effect, and with which result?" — exactly once, no lost or duplicated
//! values.
//!
//! The descriptor occupies one cacheline:
//!
//! | offset | field | meaning |
//! |---|---|---|
//! | 0 | `seq` | per-thread operation sequence number |
//! | 8 | `kind` | [`OpKind`] code |
//! | 16 | `node` | node the op targets (push: allocated; pop: candidate) |
//! | 24 | `state` | 0 = started, 1 = committed |
//! | 32 | `result` | committed result ([`EMPTY_RESULT`] for empty pops) |
//!
//! Writes to the descriptor are individually persisted in an order that
//! makes each crash state unambiguous; see the structure modules for the
//! per-phase persist discipline.

use pmem::PmemEnv;
use simbase::{Addr, CACHELINE_BYTES};

/// Result slot value recording "the structure was empty".
///
/// Pushed values must therefore be in `1..u64::MAX`: nonzero (0 reads as
/// an absent field after a crash) and below the empty marker.
pub const EMPTY_RESULT: u64 = u64::MAX;

/// Byte offset of `seq` in a descriptor.
pub const DESC_SEQ: u64 = 0;
/// Byte offset of `kind` in a descriptor.
pub const DESC_KIND: u64 = 8;
/// Byte offset of `node` in a descriptor.
pub const DESC_NODE: u64 = 16;
/// Byte offset of `state` in a descriptor.
pub const DESC_STATE: u64 = 24;
/// Byte offset of `result` in a descriptor.
pub const DESC_RESULT: u64 = 32;

/// `state` value while an operation is in flight.
pub const STATE_STARTED: u64 = 0;
/// `state` value once the result is durably recorded.
pub const STATE_COMMITTED: u64 = 1;

/// What kind of operation a descriptor records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// No operation has used this descriptor yet.
    None,
    /// A push (stack) or enqueue (queue).
    Insert,
    /// A pop (stack) or dequeue (queue).
    Remove,
}

impl OpKind {
    /// Wire encoding stored in the descriptor's `kind` slot.
    pub fn code(self) -> u64 {
        match self {
            OpKind::None => 0,
            OpKind::Insert => 1,
            OpKind::Remove => 2,
        }
    }

    /// Decodes a `kind` slot; unknown codes read as [`OpKind::None`]
    /// (a torn descriptor is an op that never started).
    pub fn from_code(code: u64) -> OpKind {
        match code {
            1 => OpKind::Insert,
            2 => OpKind::Remove,
            _ => OpKind::None,
        }
    }
}

/// The unique tag operation `seq` of lane `lane` stamps into nodes it
/// claims. Lane 0's tag is nonzero (`lane + 1` in the high half), so a
/// zero claim slot always means "unclaimed".
pub fn op_tag(lane: u64, seq: u64) -> u64 {
    ((lane + 1) << 32) | (seq & 0xFFFF_FFFF)
}

/// Allocates one descriptor cacheline, zero-initialized and persisted.
pub fn alloc_desc<E: PmemEnv>(env: &mut E) -> Addr {
    let d = env.alloc(CACHELINE_BYTES, CACHELINE_BYTES);
    env.store_full_line(d, &[0u8; 64]);
    env.persist(d, CACHELINE_BYTES);
    d
}

/// A descriptor's durable contents, as recovery reads them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescView {
    /// Sequence number of the last started operation.
    pub seq: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Target node recorded by the operation (0 if not yet recorded).
    pub node: Addr,
    /// Whether the result was durably committed.
    pub committed: bool,
    /// The committed result slot.
    pub result: u64,
}

/// Reads a descriptor through `env`.
pub fn read_desc<E: PmemEnv>(env: &mut E, desc: Addr) -> DescView {
    DescView {
        seq: env.load_u64(desc.add(DESC_SEQ)),
        kind: OpKind::from_code(env.load_u64(desc.add(DESC_KIND))),
        node: Addr(env.load_u64(desc.add(DESC_NODE))),
        committed: env.load_u64(desc.add(DESC_STATE)) == STATE_COMMITTED,
        result: env.load_u64(desc.add(DESC_RESULT)),
    }
}

/// What recovery concluded about one thread's last operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The descriptor's sequence number.
    pub seq: u64,
    /// The operation kind.
    pub kind: OpKind,
    /// Whether the operation's effect is durably applied.
    pub applied: bool,
    /// The operation's value, when determinable: the pushed/enqueued
    /// value, the popped/dequeued value, or [`EMPTY_RESULT`].
    pub value: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::HostEnv;

    #[test]
    fn tags_are_nonzero_and_unique_across_lanes_and_seqs() {
        let mut seen = std::collections::BTreeSet::new();
        for lane in 0..4 {
            for seq in 0..4 {
                let t = op_tag(lane, seq);
                assert_ne!(t, 0);
                assert!(seen.insert(t), "tag collision at lane {lane} seq {seq}");
            }
        }
    }

    #[test]
    fn desc_round_trip() {
        let mut env = HostEnv::new();
        let d = alloc_desc(&mut env);
        let v = read_desc(&mut env, d);
        assert_eq!(v.kind, OpKind::None);
        assert!(!v.committed);
        env.store_u64(d.add(DESC_SEQ), 3);
        env.store_u64(d.add(DESC_KIND), OpKind::Remove.code());
        env.store_u64(d.add(DESC_STATE), STATE_COMMITTED);
        env.store_u64(d.add(DESC_RESULT), EMPTY_RESULT);
        let v = read_desc(&mut env, d);
        assert_eq!(v.seq, 3);
        assert_eq!(v.kind, OpKind::Remove);
        assert!(v.committed);
        assert_eq!(v.result, EMPTY_RESULT);
    }
}
