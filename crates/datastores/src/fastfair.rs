//! FAST & FAIR B+-tree with in-place and redo-log insertion strategies.
//!
//! The node design follows FAST & FAIR (Hwang et al., FAST '18): sorted
//! keys packed in the node, sibling pointers for lock-free-ish scans, and
//! in-place key shifting on insertion. The paper's §4.2 baseline adds a
//! persistence barrier (flush + fence) after *every* key shift; because
//! four 16-byte entries share a cacheline, consecutive shifts read a
//! cacheline that was just flushed — the read-after-persist pattern that
//! G1 Optane punishes.
//!
//! The optimized strategy ([`UpdateStrategy::RedoLog`]) redirects every
//! entry update out of place into a [`pmem::RingRedoLog`] (one persisted
//! one-cacheline entry per update plus a commit marker per insert), then
//! writes the node back with plain unflushed stores whose durability is
//! carried by the log until its deferred reclamation. Write counts match
//! the baseline; what disappears is the flushing — and, on G1, the
//! invalidation and expensive re-reading — of the node's cachelines.

use pmem::{PmemEnv, RingRedoLog};
use simbase::{Addr, CACHELINE_BYTES};

/// Entries per node (1 KB nodes: 64 B header + 60 entries x 16 B).
pub const NODE_ENTRIES: u64 = 60;
/// Bytes per node.
pub const NODE_BYTES: u64 = 64 + NODE_ENTRIES * 16;

const OFF_FLAGS: u64 = 0; // bit 0: leaf
const OFF_COUNT: u64 = 8;
const OFF_SIBLING: u64 = 16;
const OFF_LEFTMOST: u64 = 24; // leftmost child (internal nodes)
const OFF_ENTRIES: u64 = 64;

/// How insertions update node contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// The §4.2 baseline: in-place shifts, persistence barrier per shift.
    InPlace,
    /// The §4.2 optimization: out-of-place redo logging per update.
    RedoLog,
}

/// Tree metadata object: [0] root node address.
const META_BYTES: u64 = 64;

/// The FAST & FAIR B+-tree.
#[derive(Debug)]
pub struct FastFair {
    meta: Addr,
    strategy: UpdateStrategy,
    log: Option<RingRedoLog>,
    /// Volatile mirror of the stored pair count.
    len: u64,
}

fn entry_addr(node: Addr, i: u64) -> Addr {
    node.add(OFF_ENTRIES + i * 16)
}

impl FastFair {
    /// Creates an empty tree.
    ///
    /// # Examples
    ///
    /// ```
    /// use pmds::{FastFair, UpdateStrategy};
    /// use pmem::HostEnv;
    ///
    /// let mut env = HostEnv::new();
    /// let mut tree = FastFair::create(&mut env, UpdateStrategy::RedoLog);
    /// for k in [5u64, 1, 3] {
    ///     tree.insert(&mut env, k, k * 10);
    /// }
    /// assert_eq!(tree.get(&mut env, 3), Some(30));
    /// assert_eq!(tree.range(&mut env, 2, 5), vec![(3, 30), (5, 50)]);
    /// ```
    pub fn create<E: PmemEnv>(env: &mut E, strategy: UpdateStrategy) -> Self {
        let meta = env.alloc(META_BYTES, 64);
        let root = Self::alloc_node(env, true);
        env.store_u64(meta, root.0);
        env.persist(meta, 8);
        let log = match strategy {
            UpdateStrategy::RedoLog => Some(RingRedoLog::create(env, 4096)),
            UpdateStrategy::InPlace => None,
        };
        FastFair {
            meta,
            strategy,
            log,
            len: 0,
        }
    }

    /// Reattaches to an existing tree after a restart or crash, replaying
    /// a committed redo log if one is present.
    pub fn recover<E: PmemEnv>(
        env: &mut E,
        meta: Addr,
        strategy: UpdateStrategy,
        log_base: Option<Addr>,
    ) -> Self {
        if let Some(base) = log_base {
            RingRedoLog::recover(env, base);
        }
        let log = match strategy {
            UpdateStrategy::RedoLog => Some(RingRedoLog::create(env, 4096)),
            UpdateStrategy::InPlace => None,
        };
        let mut t = FastFair {
            meta,
            strategy,
            log,
            len: 0,
        };
        t.repair_transient_duplicates(env);
        t.len = t.count_pairs(env);
        t
    }

    /// Returns the tree's persistent root (the metadata address).
    pub fn root_meta(&self) -> Addr {
        self.meta
    }

    /// Returns the redo log's base address, if this tree uses one.
    pub fn log_base(&self) -> Option<Addr> {
        self.log.as_ref().map(RingRedoLog::base)
    }

    /// Returns the number of stored pairs (volatile mirror).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc_node<E: PmemEnv>(env: &mut E, leaf: bool) -> Addr {
        let n = env.alloc(NODE_BYTES, 256);
        env.store_u64(n.add(OFF_FLAGS), leaf as u64);
        env.store_u64(n.add(OFF_COUNT), 0);
        env.store_u64(n.add(OFF_SIBLING), 0);
        env.store_u64(n.add(OFF_LEFTMOST), 0);
        env.persist(n, 32);
        n
    }

    fn root<E: PmemEnv>(&self, env: &mut E) -> Addr {
        Addr(env.load_u64(self.meta))
    }

    fn is_leaf<E: PmemEnv>(env: &mut E, node: Addr) -> bool {
        env.load_u64(node.add(OFF_FLAGS)) & 1 == 1
    }

    fn count<E: PmemEnv>(env: &mut E, node: Addr) -> u64 {
        env.load_u64(node.add(OFF_COUNT))
    }

    /// Finds the child an internal node routes `key` to.
    fn route<E: PmemEnv>(env: &mut E, node: Addr, key: u64) -> Addr {
        let count = Self::count(env, node);
        let mut child = env.load_u64(node.add(OFF_LEFTMOST));
        for i in 0..count {
            let k = env.load_u64(entry_addr(node, i));
            if key >= k {
                child = env.load_u64(entry_addr(node, i).add(8));
            } else {
                break;
            }
        }
        Addr(child)
    }

    /// Looks up `key`.
    pub fn get<E: PmemEnv>(&self, env: &mut E, key: u64) -> Option<u64> {
        let mut node = self.root(env);
        while !Self::is_leaf(env, node) {
            node = Self::route(env, node, key);
        }
        let count = Self::count(env, node);
        for i in 0..count {
            let k = env.load_u64(entry_addr(node, i));
            if k == key {
                return Some(env.load_u64(entry_addr(node, i).add(8)));
            }
            if k > key {
                break;
            }
        }
        None
    }

    /// Returns all pairs with `lo <= key <= hi`, using sibling links.
    pub fn range<E: PmemEnv>(&self, env: &mut E, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut node = self.root(env);
        while !Self::is_leaf(env, node) {
            node = Self::route(env, node, lo);
        }
        let mut out = Vec::new();
        loop {
            let count = Self::count(env, node);
            for i in 0..count {
                let k = env.load_u64(entry_addr(node, i));
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k, env.load_u64(entry_addr(node, i).add(8))));
                }
            }
            let sib = env.load_u64(node.add(OFF_SIBLING));
            if sib == 0 {
                return out;
            }
            node = Addr(sib);
        }
    }

    /// Inserts `key -> value` (updates in place if the key exists).
    pub fn insert<E: PmemEnv>(&mut self, env: &mut E, key: u64, value: u64) {
        let root = self.root(env);
        if let Some((sep, right)) = self.insert_rec(env, root, key, value) {
            // Root split: grow the tree.
            let new_root = Self::alloc_node(env, false);
            env.store_u64(new_root.add(OFF_LEFTMOST), root.0);
            env.store_u64(entry_addr(new_root, 0), sep);
            env.store_u64(entry_addr(new_root, 0).add(8), right.0);
            env.store_u64(new_root.add(OFF_COUNT), 1);
            pmem::persist_range(env, new_root, 80);
            env.store_u64(self.meta, new_root.0);
            env.persist(self.meta, 8);
        }
    }

    /// Recursive insert; returns `(separator, new_right_node)` if `node`
    /// split.
    fn insert_rec<E: PmemEnv>(
        &mut self,
        env: &mut E,
        node: Addr,
        key: u64,
        value: u64,
    ) -> Option<(u64, Addr)> {
        if Self::is_leaf(env, node) {
            return self.insert_into_node(env, node, key, value, true);
        }
        let child = Self::route(env, node, key);
        let split = self.insert_rec(env, child, key, value)?;
        let (sep, right) = split;
        self.insert_into_node(env, node, sep, right.0, false)
    }

    /// Inserts an entry into one node with the configured strategy,
    /// splitting first if the node is full. Returns the split decision.
    fn insert_into_node<E: PmemEnv>(
        &mut self,
        env: &mut E,
        node: Addr,
        key: u64,
        value: u64,
        leaf: bool,
    ) -> Option<(u64, Addr)> {
        let count = Self::count(env, node);
        // Update in place if the key already exists (leaf only).
        if leaf {
            for i in 0..count {
                let k = env.load_u64(entry_addr(node, i));
                if k == key {
                    let slot = entry_addr(node, i).add(8);
                    env.store_u64(slot, value);
                    env.persist(slot, 8);
                    return None;
                }
                if k > key {
                    break;
                }
            }
        }
        if count == NODE_ENTRIES {
            let (sep, right) = self.split_node(env, node, leaf);
            // Retry into the correct half.
            let target = if key >= sep { right } else { node };
            let below = self.insert_into_node(env, target, key, value, leaf);
            debug_assert!(below.is_none(), "post-split nodes are half empty");
            return Some((sep, right));
        }
        // Find the insertion position.
        let mut pos = count;
        for i in 0..count {
            if env.load_u64(entry_addr(node, i)) > key {
                pos = i;
                break;
            }
        }
        match self.strategy {
            UpdateStrategy::InPlace => self.shift_in_place(env, node, pos, count, key, value),
            UpdateStrategy::RedoLog => self.shift_redo(env, node, pos, count, key, value),
        }
        if leaf {
            self.len += 1;
        }
        None
    }

    /// Baseline: shift entries right one at a time, persistence barrier
    /// after every shift (§4.2 baseline).
    fn shift_in_place<E: PmemEnv>(
        &mut self,
        env: &mut E,
        node: Addr,
        pos: u64,
        count: u64,
        key: u64,
        value: u64,
    ) {
        for j in (pos..count).rev() {
            let mut entry = [0u8; 16];
            env.load(entry_addr(node, j), &mut entry);
            env.store(entry_addr(node, j + 1), &entry);
            // The paper's baseline: flush + fence per shift.
            env.persist(entry_addr(node, j + 1), 16);
        }
        env.store_u64(entry_addr(node, pos), key);
        env.store_u64(entry_addr(node, pos).add(8), value);
        env.persist(entry_addr(node, pos), 16);
        env.store_u64(node.add(OFF_COUNT), count + 1);
        env.persist(node.add(OFF_COUNT), 8);
    }

    /// Optimization: every entry update goes out of place into the ring
    /// redo log (persisted per entry), the batch is committed with one
    /// marker, and the node is written back with plain, unflushed stores —
    /// no node cacheline is read or re-read after being persisted. Target
    /// durability is amortized into the ring's deferred reclamation.
    fn shift_redo<E: PmemEnv>(
        &mut self,
        env: &mut E,
        node: Addr,
        pos: u64,
        count: u64,
        key: u64,
        value: u64,
    ) {
        // simlint::allow(unwrap-in-lib, shift_redo is only reachable when
        // the tree was built with WriteStrategy::Redo, which allocates the
        // log; a missing log is construction-order corruption)
        #[allow(clippy::expect_used)]
        let log = self.log.as_mut().expect("redo strategy has a log");
        // Gather the updates (shifts plus the new entry), high to low.
        let mut updates: Vec<(Addr, [u8; 16])> = Vec::with_capacity((count - pos + 1) as usize);
        for j in (pos..count).rev() {
            let mut entry = [0u8; 16];
            env.load(entry_addr(node, j), &mut entry);
            updates.push((entry_addr(node, j + 1), entry));
        }
        let mut new_entry = [0u8; 16];
        new_entry[..8].copy_from_slice(&key.to_le_bytes());
        new_entry[8..].copy_from_slice(&value.to_le_bytes());
        updates.push((entry_addr(node, pos), new_entry));
        for (target, bytes) in &updates {
            log.append_update(env, *target, bytes);
        }
        log.commit(env);
        // Writeback: plain cached stores; the committed log carries
        // durability until reclamation flushes these lines.
        for (target, bytes) in &updates {
            env.store(*target, bytes);
        }
        // Count update: 8-byte atomic in place, ordered last.
        env.store_u64(node.add(OFF_COUNT), count + 1);
        env.persist(node.add(OFF_COUNT), 8);
    }

    /// Splits a full node, returning `(separator, right_node)`.
    fn split_node<E: PmemEnv>(&mut self, env: &mut E, node: Addr, leaf: bool) -> (u64, Addr) {
        let count = Self::count(env, node);
        let mid = count / 2;
        let right = Self::alloc_node(env, leaf);
        let sep = env.load_u64(entry_addr(node, mid));
        if leaf {
            // Right keeps [mid, count).
            for (dst, src) in (mid..count).enumerate() {
                let mut e = [0u8; 16];
                env.load(entry_addr(node, src), &mut e);
                env.store(entry_addr(right, dst as u64), &e);
            }
            env.store_u64(right.add(OFF_COUNT), count - mid);
        } else {
            // The separator moves up; right keeps (mid, count).
            let leftmost = env.load_u64(entry_addr(node, mid).add(8));
            env.store_u64(right.add(OFF_LEFTMOST), leftmost);
            for (dst, src) in (mid + 1..count).enumerate() {
                let mut e = [0u8; 16];
                env.load(entry_addr(node, src), &mut e);
                env.store(entry_addr(right, dst as u64), &e);
            }
            env.store_u64(right.add(OFF_COUNT), count - mid - 1);
        }
        let sibling = env.load_u64(node.add(OFF_SIBLING));
        env.store_u64(right.add(OFF_SIBLING), sibling);
        pmem::persist_range(env, right, NODE_BYTES);
        // Publish: sibling pointer first, then the shrunken count (both
        // 8-byte atomic), in FAST & FAIR order.
        env.store_u64(node.add(OFF_SIBLING), right.0);
        env.persist(node.add(OFF_SIBLING), 8);
        env.store_u64(node.add(OFF_COUNT), mid);
        env.persist(node.add(OFF_COUNT), 8);
        (sep, right)
    }

    /// FAST & FAIR recovery: in-place shifting without per-shift barriers
    /// can leave *transient duplicate* entries after a crash; they are
    /// detectable (B+-tree nodes never legitimately hold duplicates) and
    /// removed here.
    pub fn repair_transient_duplicates<E: PmemEnv>(&mut self, env: &mut E) -> u64 {
        let mut repaired = 0;
        // Walk to the leftmost leaf.
        let mut node = self.root(env);
        while !Self::is_leaf(env, node) {
            node = Addr(env.load_u64(node.add(OFF_LEFTMOST)));
        }
        loop {
            let count = Self::count(env, node);
            let mut entries: Vec<(u64, u64)> = Vec::with_capacity(count as usize);
            for i in 0..count {
                let k = env.load_u64(entry_addr(node, i));
                let v = env.load_u64(entry_addr(node, i).add(8));
                if entries.last().map(|&(lk, _)| lk) == Some(k) {
                    repaired += 1;
                    continue;
                }
                entries.push((k, v));
            }
            if entries.len() as u64 != count {
                for (i, (k, v)) in entries.iter().enumerate() {
                    env.store_u64(entry_addr(node, i as u64), *k);
                    env.store_u64(entry_addr(node, i as u64).add(8), *v);
                }
                pmem::persist_range_unfenced(env, entry_addr(node, 0), entries.len() as u64 * 16);
                env.sfence();
                env.store_u64(node.add(OFF_COUNT), entries.len() as u64);
                env.persist(node.add(OFF_COUNT), 8);
            }
            let sib = env.load_u64(node.add(OFF_SIBLING));
            if sib == 0 {
                return repaired;
            }
            node = Addr(sib);
        }
    }

    /// Counts stored pairs by walking the leaf chain.
    pub fn count_pairs<E: PmemEnv>(&self, env: &mut E) -> u64 {
        let mut node = self.root(env);
        while !Self::is_leaf(env, node) {
            node = Addr(env.load_u64(node.add(OFF_LEFTMOST)));
        }
        let mut total = 0;
        loop {
            total += Self::count(env, node);
            let sib = env.load_u64(node.add(OFF_SIBLING));
            if sib == 0 {
                return total;
            }
            node = Addr(sib);
        }
    }

    /// Returns the configured strategy.
    pub fn strategy(&self) -> UpdateStrategy {
        self.strategy
    }

    /// Verifies leaf-chain ordering (test helper): keys strictly ascending
    /// across the whole leaf chain.
    pub fn check_sorted<E: PmemEnv>(&self, env: &mut E) -> bool {
        let mut node = self.root(env);
        while !Self::is_leaf(env, node) {
            node = Addr(env.load_u64(node.add(OFF_LEFTMOST)));
        }
        let mut last: Option<u64> = None;
        loop {
            let count = Self::count(env, node);
            for i in 0..count {
                let k = env.load_u64(entry_addr(node, i));
                if let Some(l) = last {
                    if k <= l {
                        return false;
                    }
                }
                last = Some(k);
            }
            let sib = env.load_u64(node.add(OFF_SIBLING));
            if sib == 0 {
                return true;
            }
            node = Addr(sib);
        }
    }
}

// Silence an unused-constant warning: the cacheline geometry is implied by
// entry_addr arithmetic.
const _: () = assert!(CACHELINE_BYTES == 64);

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::{CrashPolicy, Machine, MachineConfig};
    use pmem::{HostEnv, SimEnv};
    use simbase::SplitMix64;

    fn fill(env: &mut impl PmemEnv, t: &mut FastFair, keys: &[u64]) {
        for &k in keys {
            t.insert(env, k, k * 2);
        }
    }

    #[test]
    fn insert_get_sequential() {
        let mut env = HostEnv::new();
        let mut t = FastFair::create(&mut env, UpdateStrategy::InPlace);
        let keys: Vec<u64> = (1..=500).collect();
        fill(&mut env, &mut t, &keys);
        for &k in &keys {
            assert_eq!(t.get(&mut env, k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.get(&mut env, 0), None);
        assert_eq!(t.get(&mut env, 501), None);
        assert!(t.check_sorted(&mut env));
    }

    #[test]
    fn insert_get_random_order_both_strategies() {
        for strategy in [UpdateStrategy::InPlace, UpdateStrategy::RedoLog] {
            let mut env = HostEnv::new();
            let mut t = FastFair::create(&mut env, strategy);
            let mut keys: Vec<u64> = (1..=3000).collect();
            SplitMix64::new(5).shuffle(&mut keys);
            fill(&mut env, &mut t, &keys);
            assert_eq!(t.len(), 3000);
            for &k in keys.iter().step_by(37) {
                assert_eq!(t.get(&mut env, k), Some(k * 2), "{strategy:?} key {k}");
            }
            assert!(t.check_sorted(&mut env), "{strategy:?}");
        }
    }

    #[test]
    fn update_existing_key() {
        let mut env = HostEnv::new();
        let mut t = FastFair::create(&mut env, UpdateStrategy::InPlace);
        t.insert(&mut env, 10, 1);
        t.insert(&mut env, 10, 2);
        assert_eq!(t.get(&mut env, 10), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn range_scan_uses_sibling_links() {
        let mut env = HostEnv::new();
        let mut t = FastFair::create(&mut env, UpdateStrategy::RedoLog);
        let keys: Vec<u64> = (1..=1000).map(|k| k * 3).collect();
        fill(&mut env, &mut t, &keys);
        let got = t.range(&mut env, 100, 200);
        let expected: Vec<(u64, u64)> = (1..=1000)
            .map(|k| k * 3)
            .filter(|&k| (100..=200).contains(&k))
            .map(|k| (k, k * 2))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn differential_in_place_vs_redo_vs_sim() {
        let mut keys: Vec<u64> = (1..=2000).collect();
        SplitMix64::new(11).shuffle(&mut keys);
        let mut env_a = HostEnv::new();
        let mut a = FastFair::create(&mut env_a, UpdateStrategy::InPlace);
        fill(&mut env_a, &mut a, &keys);
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tid = m.spawn(0);
        let mut env_b = SimEnv::new(&mut m, tid);
        let mut b = FastFair::create(&mut env_b, UpdateStrategy::RedoLog);
        fill(&mut env_b, &mut b, &keys);
        for &k in keys.iter().step_by(53) {
            assert_eq!(a.get(&mut env_a, k), b.get(&mut env_b, k), "key {k}");
        }
        assert_eq!(a.count_pairs(&mut env_a), b.count_pairs(&mut env_b));
    }

    #[test]
    fn fenced_inserts_survive_crash_in_place() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let mut t = FastFair::create(&mut env, UpdateStrategy::InPlace);
        let mut keys: Vec<u64> = (1..=300).collect();
        SplitMix64::new(3).shuffle(&mut keys);
        fill(&mut env, &mut t, &keys);
        let meta = t.root_meta();
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, tid);
        let t = FastFair::recover(&mut env, meta, UpdateStrategy::InPlace, None);
        assert_eq!(t.len(), 300);
        for k in 1..=300u64 {
            assert_eq!(t.get(&mut env, k), Some(k * 2), "key {k} after crash");
        }
    }

    #[test]
    fn fenced_inserts_survive_crash_redo() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let mut t = FastFair::create(&mut env, UpdateStrategy::RedoLog);
        let keys: Vec<u64> = (1..=300).collect();
        fill(&mut env, &mut t, &keys);
        let meta = t.root_meta();
        let log_base = t.log_base();
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, tid);
        let t = FastFair::recover(&mut env, meta, UpdateStrategy::RedoLog, log_base);
        assert_eq!(t.len(), 300);
        for k in (1..=300u64).step_by(7) {
            assert_eq!(t.get(&mut env, k), Some(k * 2));
        }
    }

    #[test]
    fn repair_removes_transient_duplicates() {
        // Simulate a crash mid-shift: manually fabricate a duplicated
        // entry in a leaf, then recover.
        let mut env = HostEnv::new();
        let mut t = FastFair::create(&mut env, UpdateStrategy::InPlace);
        for k in [10u64, 20, 30] {
            t.insert(&mut env, k, k * 2);
        }
        let root = t.root(&mut env);
        // Duplicate entry 1 into entry 2 (as an interrupted right shift
        // would) and bump the count, mimicking torn state.
        let mut e = [0u8; 16];
        env.load(entry_addr(root, 1), &mut e);
        env.store(entry_addr(root, 2), &e);
        env.store(entry_addr(root, 3), &30u64.to_le_bytes());
        env.store_u64(entry_addr(root, 3).add(8), 60);
        env.store_u64(root.add(OFF_COUNT), 4);
        let t = FastFair::recover(&mut env, t.root_meta(), UpdateStrategy::InPlace, None);
        assert_eq!(t.len(), 3);
        assert!(t.check_sorted(&mut env));
        assert_eq!(t.get(&mut env, 20), Some(40));
        assert_eq!(t.get(&mut env, 30), Some(60));
        let _ = t;
    }

    #[test]
    fn deep_tree_many_splits() {
        let mut env = HostEnv::new();
        let mut t = FastFair::create(&mut env, UpdateStrategy::RedoLog);
        let n = 50_000u64;
        for k in 1..=n {
            t.insert(&mut env, k, k);
        }
        assert_eq!(t.count_pairs(&mut env), n);
        assert!(t.check_sorted(&mut env));
        for k in (1..=n).step_by(997) {
            assert_eq!(t.get(&mut env, k), Some(k));
        }
    }
}
