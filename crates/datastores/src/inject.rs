//! Deliberate persist-ordering fault injection — moved to [`faultsim`].
//!
//! The flush/fence elision wrapper started life here; when `faultsim`
//! unified fault injection across all layers (software elision, WPQ
//! faults, XPBuffer faults, media poison) the implementation moved there
//! as [`faultsim::elide`]. These re-exports keep the original call sites
//! compiling: `pmds::FaultPlan` is [`faultsim::ElisionPlan`] under its
//! historical name.

pub use faultsim::{ElisionPlan as FaultPlan, FaultyEnv};
