//! Persistent data structures used in the paper's case studies (§4).
//!
//! - [`cceh`]: Cacheline-Conscious Extendible Hashing (Nam et al., FAST
//!   '19), the subject of the helper-thread prefetching case study (§4.1,
//!   Table 1, Figure 10), including the speculative load-only prefetch
//!   trace.
//! - [`fastfair`]: the FAST & FAIR B+-tree (Hwang et al., FAST '18) with
//!   two insertion strategies — the paper's baseline (in-place key shifting
//!   with a persistence barrier per shift) and the out-of-place redo-log
//!   optimization (§4.2, Figure 12).
//! - [`chase`]: the 256-byte-element circular linked list that drives the
//!   latency study of §3.6 (Figure 8).
//! - [`treiber`] / [`msqueue`]: lock-free persistent stack and queue with
//!   Memento-style detectable recovery ([`detect`]), driven concurrently
//!   by the deterministic executor in the e15 contention sweep and cut at
//!   arbitrary interleaving points by the faultsim crash explorer.
//!
//! All structures are written against [`pmem::PmemEnv`], so they run both
//! on the simulator (timed, crash-aware) and on plain host memory for
//! differential testing.

#![forbid(unsafe_code)]
// The determinism/robustness contract (DESIGN.md) double-enforces the
// simlint no-unwrap rule with stock tooling in the sim crates; tests are
// exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cceh;
pub mod chase;
pub mod detect;
pub mod fastfair;
pub mod inject;
pub mod msqueue;
pub mod treiber;

pub use cceh::{Cceh, InsertBreakdown};
pub use chase::{ChaseList, WriteKind};
pub use detect::{OpKind, RecoveryOutcome, EMPTY_RESULT};
pub use fastfair::{FastFair, UpdateStrategy};
pub use inject::{FaultPlan, FaultyEnv};
pub use msqueue::{MsQueue, MsQueueThread};
pub use treiber::{OpResult, TreiberStack, TreiberThread};
