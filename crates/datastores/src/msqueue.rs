//! A persistent Michael-Scott queue with detectable recovery.
//!
//! The classic two-pointer lock-free queue (Michael & Scott, PODC '96):
//! `head` points at a sentinel node, values live in the chain behind it,
//! enqueue links at `tail` via CAS of the last node's `next`, dequeue
//! claims `head.next` and advances `head`, turning the claimed node into
//! the new sentinel. Persistence and detectability follow the same
//! Memento-style recipe as [`crate::treiber`]: per-thread descriptors
//! ([`crate::detect`]), per-node claim tags, and two persist rules —
//! node content is durable before any CAS can make it reachable, and a
//! claim is durable before anyone advances `head` past the node
//! (flush-before-help).
//!
//! Because claims only ever land on `head.next` — the front unclaimed
//! node — claimed nodes always form a contiguous prefix starting at the
//! sentinel, which makes post-crash [`MsQueue::repair`] a simple
//! advance-head-past-claims loop.
//!
//! Operations are small-step state machines (one phase per
//! [`MsQueueThread::step`]) so the deterministic executor can interleave
//! them and the crash explorer can cut them mid-phase.

use pmem::PmemEnv;
use simbase::{Addr, CACHELINE_BYTES};

use crate::detect::{
    alloc_desc, op_tag, read_desc, DescView, OpKind, RecoveryOutcome, DESC_KIND, DESC_NODE,
    DESC_RESULT, DESC_SEQ, DESC_STATE, EMPTY_RESULT, STATE_COMMITTED, STATE_STARTED,
};
use crate::treiber::OpResult;

/// Node layout: one cacheline (same as the Treiber stack's).
const NODE_VALUE: u64 = 0;
const NODE_NEXT: u64 = 8;
const NODE_CLAIMED_BY: u64 = 16;
const NODE_TAG: u64 = 24;

/// Root layout: head and tail pointers share one cacheline.
const ROOT_HEAD: u64 = 0;
const ROOT_TAIL: u64 = 8;

/// Walk bound against cycles in a corrupted image.
const MAX_WALK: u64 = 1 << 16;

/// The shared queue: a root cacheline (`head` at 0, `tail` at 8), both
/// initially pointing at an empty sentinel node.
#[derive(Debug, Clone, Copy)]
pub struct MsQueue {
    root: Addr,
}

impl MsQueue {
    /// Allocates and persists an empty queue (root plus sentinel).
    pub fn new<E: PmemEnv>(env: &mut E) -> Self {
        let root = env.alloc(CACHELINE_BYTES, CACHELINE_BYTES);
        let sentinel = env.alloc(CACHELINE_BYTES, CACHELINE_BYTES);
        env.store_full_line(sentinel, &[0u8; 64]);
        env.persist(sentinel, CACHELINE_BYTES);
        let mut line = [0u8; 64];
        line[ROOT_HEAD as usize..][..8].copy_from_slice(&sentinel.0.to_le_bytes());
        line[ROOT_TAIL as usize..][..8].copy_from_slice(&sentinel.0.to_le_bytes());
        env.store_full_line(root, &line);
        env.persist(root, CACHELINE_BYTES);
        MsQueue { root }
    }

    /// Reattaches to a queue whose root cacheline is at `root`.
    pub fn from_root(root: Addr) -> Self {
        MsQueue { root }
    }

    /// The root cacheline address.
    pub fn root(&self) -> Addr {
        self.root
    }

    /// Values currently live, front to back: behind the sentinel,
    /// skipping claimed nodes.
    pub fn live_values<E: PmemEnv>(&self, env: &mut E) -> Vec<u64> {
        let mut out = Vec::new();
        let sentinel = env.load_u64(self.root.add(ROOT_HEAD));
        let mut cur = env.load_u64(Addr(sentinel).add(NODE_NEXT));
        let mut steps = 0u64;
        while cur != 0 && steps < MAX_WALK {
            let node = Addr(cur);
            if env.load_u64(node.add(NODE_CLAIMED_BY)) == 0 {
                out.push(env.load_u64(node.add(NODE_VALUE)));
            }
            cur = env.load_u64(node.add(NODE_NEXT));
            steps += 1;
        }
        out
    }

    /// Finds the node carrying `tag`, searching the whole chain from the
    /// sentinel (inclusive — a dequeued node that became the sentinel
    /// still counts as reachable).
    pub fn find_tag<E: PmemEnv>(&self, env: &mut E, tag: u64) -> Option<Addr> {
        let mut cur = env.load_u64(self.root.add(ROOT_HEAD));
        let mut steps = 0u64;
        while cur != 0 && steps < MAX_WALK {
            let node = Addr(cur);
            if env.load_u64(node.add(NODE_TAG)) == tag {
                return Some(node);
            }
            cur = env.load_u64(node.add(NODE_NEXT));
            steps += 1;
        }
        None
    }

    /// Post-crash structural repair, run single-threaded after per-lane
    /// [`recover`] calls: advances `head` past the claimed prefix and
    /// re-points a stale `tail` at the true last node.
    pub fn repair<E: PmemEnv>(&self, env: &mut E) {
        let mut steps = 0u64;
        while steps < MAX_WALK {
            let sentinel = env.load_u64(self.root.add(ROOT_HEAD));
            let first = env.load_u64(Addr(sentinel).add(NODE_NEXT));
            if first == 0 || env.load_u64(Addr(first).add(NODE_CLAIMED_BY)) == 0 {
                break;
            }
            env.store_u64(self.root.add(ROOT_HEAD), first);
            env.persist(self.root.add(ROOT_HEAD), 8);
            steps += 1;
        }
        // Walk to the actual last node and persist a correct tail.
        let mut last = env.load_u64(self.root.add(ROOT_HEAD));
        let mut steps = 0u64;
        loop {
            let next = env.load_u64(Addr(last).add(NODE_NEXT));
            if next == 0 || steps >= MAX_WALK {
                break;
            }
            last = next;
            steps += 1;
        }
        env.store_u64(self.root.add(ROOT_TAIL), last);
        env.persist(self.root.add(ROOT_TAIL), 8);
    }
}

/// Phase cursor of an in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Idle,
    EnqInit {
        value: u64,
    },
    EnqWriteNode {
        node: Addr,
        value: u64,
    },
    EnqLink {
        node: Addr,
    },
    EnqPersistLink {
        node: Addr,
        prev: Addr,
    },
    EnqSwingTail {
        node: Addr,
        prev: Addr,
    },
    EnqCommit,
    DeqInit,
    DeqFindHead,
    DeqClaim {
        sentinel: Addr,
        node: Addr,
    },
    DeqPersistClaim {
        sentinel: Addr,
        node: Addr,
    },
    DeqAdvanceHead {
        sentinel: Addr,
        node: Addr,
        value: u64,
    },
    DeqCommit {
        value: u64,
    },
}

/// One thread's handle: its persistent descriptor plus the volatile
/// phase cursor (lost on crash; recovery reconstructs the outcome).
#[derive(Debug)]
pub struct MsQueueThread {
    desc: Addr,
    lane: u64,
    seq: u64,
    op: Op,
    skip_claim_persist: bool,
}

impl MsQueueThread {
    /// Registers lane `lane`, allocating its persistent descriptor.
    pub fn new<E: PmemEnv>(env: &mut E, lane: u64) -> Self {
        MsQueueThread {
            desc: alloc_desc(env),
            lane,
            seq: 0,
            op: Op::Idle,
            skip_claim_persist: false,
        }
    }

    /// Reattaches to an existing descriptor after a crash.
    pub fn reattach<E: PmemEnv>(env: &mut E, lane: u64, desc: Addr) -> Self {
        let seq = env.load_u64(desc.add(DESC_SEQ)) + 1;
        MsQueueThread {
            desc,
            lane,
            seq,
            op: Op::Idle,
            skip_claim_persist: false,
        }
    }

    /// The persistent descriptor address (recovery input).
    pub fn desc(&self) -> Addr {
        self.desc
    }

    /// Seeded-mutant hook for oracle validation: skips the claim persist
    /// before the head advance, breaking the flush-before-help rule. The
    /// crash explorer must catch the resulting lost-value states;
    /// shipping code never sets this.
    pub fn set_skip_claim_persist(&mut self, on: bool) {
        self.skip_claim_persist = on;
    }

    /// Begins an enqueue of `value`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight, or if `value` is 0 or
    /// [`EMPTY_RESULT`] (reserved encodings).
    pub fn begin_enqueue(&mut self, value: u64) {
        assert!(self.op == Op::Idle, "operation already in flight");
        assert!(
            value != 0 && value != EMPTY_RESULT,
            "value 0 and u64::MAX are reserved"
        );
        self.seq += 1;
        self.op = Op::EnqInit { value };
    }

    /// Begins a dequeue.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_dequeue(&mut self) {
        assert!(self.op == Op::Idle, "operation already in flight");
        self.seq += 1;
        self.op = Op::DeqInit;
    }

    /// Whether an operation is in flight.
    pub fn busy(&self) -> bool {
        self.op != Op::Idle
    }

    /// Advances the in-flight operation by one phase. Returns the result
    /// once the operation commits (the acknowledgement point), `None`
    /// while more steps remain.
    ///
    /// # Panics
    ///
    /// Panics if no operation is in flight.
    pub fn step<E: PmemEnv>(&mut self, env: &mut E, queue: &MsQueue) -> Option<OpResult> {
        let tag = op_tag(self.lane, self.seq);
        let (next, result) = match self.op {
            Op::Idle => panic!("no operation in flight"),
            Op::EnqInit { value } => {
                let node = env.alloc(CACHELINE_BYTES, CACHELINE_BYTES);
                self.write_desc(env, OpKind::Insert, node.0);
                (Op::EnqWriteNode { node, value }, None)
            }
            Op::EnqWriteNode { node, value } => {
                let mut line = [0u8; 64];
                line[NODE_VALUE as usize..][..8].copy_from_slice(&value.to_le_bytes());
                line[NODE_TAG as usize..][..8].copy_from_slice(&tag.to_le_bytes());
                env.store_full_line(node, &line);
                env.persist(node, CACHELINE_BYTES);
                (Op::EnqLink { node }, None)
            }
            Op::EnqLink { node } => {
                let tail = Addr(env.load_u64(queue.root.add(ROOT_TAIL)));
                let next = env.load_u64(tail.add(NODE_NEXT));
                if next != 0 {
                    // Tail is lagging: help. The link that made `next`
                    // reachable must be durable before the tail swing —
                    // persist it on the helper path too.
                    env.persist(tail.add(NODE_NEXT), 8);
                    if env.cas_u64(queue.root.add(ROOT_TAIL), tail.0, next) == tail.0 {
                        env.persist(queue.root.add(ROOT_TAIL), 8);
                    }
                    (Op::EnqLink { node }, None)
                } else if env.cas_u64(tail.add(NODE_NEXT), 0, node.0) == 0 {
                    (Op::EnqPersistLink { node, prev: tail }, None)
                } else {
                    (Op::EnqLink { node }, None) // lost the race; retry
                }
            }
            Op::EnqPersistLink { node, prev } => {
                // The link CAS is what makes the node reachable — persist
                // it before the tail swing can be observed durably.
                env.persist(prev.add(NODE_NEXT), 8);
                (Op::EnqSwingTail { node, prev }, None)
            }
            Op::EnqSwingTail { node, prev } => {
                if env.cas_u64(queue.root.add(ROOT_TAIL), prev.0, node.0) == prev.0 {
                    env.persist(queue.root.add(ROOT_TAIL), 8);
                }
                (Op::EnqCommit, None)
            }
            Op::EnqCommit => {
                self.commit_desc(env, 0);
                (Op::Idle, Some(OpResult::Pushed))
            }
            Op::DeqInit => {
                self.write_desc(env, OpKind::Remove, 0);
                (Op::DeqFindHead, None)
            }
            Op::DeqFindHead => {
                let sentinel = Addr(env.load_u64(queue.root.add(ROOT_HEAD)));
                let first = env.load_u64(sentinel.add(NODE_NEXT));
                if first == 0 {
                    self.commit_desc(env, EMPTY_RESULT);
                    (Op::Idle, Some(OpResult::Empty))
                } else {
                    let node = Addr(first);
                    if env.load_u64(node.add(NODE_CLAIMED_BY)) != 0 {
                        // Help advance head past a claimed front node.
                        // Flush-before-help: its claim must be durable
                        // before the advance can be.
                        env.persist(node, CACHELINE_BYTES);
                        if env.cas_u64(queue.root.add(ROOT_HEAD), sentinel.0, first) == sentinel.0 {
                            env.persist(queue.root.add(ROOT_HEAD), 8);
                        }
                        (Op::DeqFindHead, None)
                    } else {
                        // Checkpoint the candidate before claiming, so
                        // recovery can always attribute a durable claim.
                        env.store_u64(self.desc.add(DESC_NODE), node.0);
                        env.persist(self.desc.add(DESC_NODE), 8);
                        (Op::DeqClaim { sentinel, node }, None)
                    }
                }
            }
            Op::DeqClaim { sentinel, node } => {
                if env.cas_u64(node.add(NODE_CLAIMED_BY), 0, tag) == 0 {
                    (Op::DeqPersistClaim { sentinel, node }, None)
                } else {
                    (Op::DeqFindHead, None) // lost the race
                }
            }
            Op::DeqPersistClaim { sentinel, node } => {
                if !self.skip_claim_persist {
                    env.persist(node, CACHELINE_BYTES);
                }
                let value = env.load_u64(node.add(NODE_VALUE));
                env.store_u64(self.desc.add(DESC_RESULT), value);
                env.persist(self.desc.add(DESC_RESULT), 8);
                (
                    Op::DeqAdvanceHead {
                        sentinel,
                        node,
                        value,
                    },
                    None,
                )
            }
            Op::DeqAdvanceHead {
                sentinel,
                node,
                value,
            } => {
                // Single attempt: the claimed node becomes the new
                // sentinel. If a helper already advanced, nothing to do.
                if env.cas_u64(queue.root.add(ROOT_HEAD), sentinel.0, node.0) == sentinel.0 {
                    env.persist(queue.root.add(ROOT_HEAD), 8);
                }
                (Op::DeqCommit { value }, None)
            }
            Op::DeqCommit { value } => {
                self.commit_desc(env, value);
                (Op::Idle, Some(OpResult::Popped(value)))
            }
        };
        self.op = next;
        result
    }

    /// Runs a full enqueue to completion (sequential callers).
    pub fn enqueue<E: PmemEnv>(&mut self, env: &mut E, queue: &MsQueue, value: u64) {
        self.begin_enqueue(value);
        while self.step(env, queue).is_none() {}
    }

    /// Runs a full dequeue to completion. Returns `None` when empty.
    pub fn dequeue<E: PmemEnv>(&mut self, env: &mut E, queue: &MsQueue) -> Option<u64> {
        self.begin_dequeue();
        loop {
            match self.step(env, queue) {
                Some(OpResult::Popped(v)) => return Some(v),
                Some(_) => return None,
                None => {}
            }
        }
    }

    fn write_desc<E: PmemEnv>(&mut self, env: &mut E, kind: OpKind, node: u64) {
        env.store_u64(self.desc.add(DESC_SEQ), self.seq);
        env.store_u64(self.desc.add(DESC_KIND), kind.code());
        env.store_u64(self.desc.add(DESC_NODE), node);
        env.store_u64(self.desc.add(DESC_STATE), STATE_STARTED);
        env.store_u64(self.desc.add(DESC_RESULT), 0);
        env.persist(self.desc, CACHELINE_BYTES);
    }

    fn commit_desc<E: PmemEnv>(&mut self, env: &mut E, result: u64) {
        env.store_u64(self.desc.add(DESC_RESULT), result);
        env.store_u64(self.desc.add(DESC_STATE), STATE_COMMITTED);
        env.persist(self.desc, CACHELINE_BYTES);
    }
}

/// Post-crash recovery for one lane; the same contract as the stack's
/// [`crate::treiber::recover`].
pub fn recover<E: PmemEnv>(env: &mut E, queue: &MsQueue, lane: u64, desc: Addr) -> RecoveryOutcome {
    let d: DescView = read_desc(env, desc);
    let tag = op_tag(lane, d.seq);
    match (d.kind, d.committed) {
        (OpKind::None, _) => RecoveryOutcome {
            seq: d.seq,
            kind: OpKind::None,
            applied: false,
            value: None,
        },
        (kind, true) => RecoveryOutcome {
            seq: d.seq,
            kind,
            applied: true,
            value: Some(match kind {
                OpKind::Insert => env.load_u64(d.node.add(NODE_VALUE)),
                _ => d.result,
            }),
        },
        (OpKind::Insert, false) => {
            let node_durable = d.node.0 != 0 && env.load_u64(d.node.add(NODE_TAG)) == tag;
            let claimed = node_durable && env.load_u64(d.node.add(NODE_CLAIMED_BY)) != 0;
            let applied = claimed || queue.find_tag(env, tag).is_some();
            RecoveryOutcome {
                seq: d.seq,
                kind: OpKind::Insert,
                applied,
                value: if node_durable {
                    Some(env.load_u64(d.node.add(NODE_VALUE)))
                } else {
                    None
                },
            }
        }
        (OpKind::Remove, false) => {
            let claimed = d.node.0 != 0 && env.load_u64(d.node.add(NODE_CLAIMED_BY)) == tag;
            RecoveryOutcome {
                seq: d.seq,
                kind: OpKind::Remove,
                applied: claimed,
                value: if claimed {
                    Some(env.load_u64(d.node.add(NODE_VALUE)))
                } else {
                    None
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::HostEnv;

    #[test]
    fn enqueue_dequeue_fifo_sequential() {
        let mut env = HostEnv::new();
        let q = MsQueue::new(&mut env);
        let mut t = MsQueueThread::new(&mut env, 0);
        for v in 1..=5u64 {
            t.enqueue(&mut env, &q, v);
        }
        assert_eq!(q.live_values(&mut env), vec![1, 2, 3, 4, 5]);
        for v in 1..=5u64 {
            assert_eq!(t.dequeue(&mut env, &q), Some(v));
        }
        assert_eq!(t.dequeue(&mut env, &q), None);
    }

    #[test]
    fn interleaved_lanes_preserve_the_multiset() {
        let mut env = HostEnv::new();
        let q = MsQueue::new(&mut env);
        let mut a = MsQueueThread::new(&mut env, 0);
        let mut b = MsQueueThread::new(&mut env, 1);
        a.begin_enqueue(10);
        b.begin_enqueue(20);
        loop {
            let ra = if a.busy() { a.step(&mut env, &q) } else { None };
            let rb = if b.busy() { b.step(&mut env, &q) } else { None };
            if !a.busy() && !b.busy() {
                let _ = (ra, rb);
                break;
            }
        }
        let mut live = q.live_values(&mut env);
        live.sort_unstable();
        assert_eq!(live, vec![10, 20]);
        let mut got = vec![
            a.dequeue(&mut env, &q).unwrap(),
            b.dequeue(&mut env, &q).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
        assert_eq!(a.dequeue(&mut env, &q), None);
    }

    #[test]
    fn committed_ops_recover_as_applied() {
        let mut env = HostEnv::new();
        let q = MsQueue::new(&mut env);
        let mut t = MsQueueThread::new(&mut env, 2);
        t.enqueue(&mut env, &q, 55);
        let r = recover(&mut env, &q, 2, t.desc());
        assert_eq!(r.kind, OpKind::Insert);
        assert!(r.applied);
        assert_eq!(r.value, Some(55));
        assert_eq!(t.dequeue(&mut env, &q), Some(55));
        let r = recover(&mut env, &q, 2, t.desc());
        assert_eq!(r.kind, OpKind::Remove);
        assert!(r.applied);
        assert_eq!(r.value, Some(55));
    }

    #[test]
    fn repair_advances_head_past_claimed_prefix_and_fixes_tail() {
        let mut env = HostEnv::new();
        let q = MsQueue::new(&mut env);
        let mut t = MsQueueThread::new(&mut env, 0);
        for v in [1u64, 2, 3] {
            t.enqueue(&mut env, &q, v);
        }
        // Claim the front node by hand (a dequeue cut before its head
        // advance) and leave the tail stale at the sentinel.
        let sentinel = Addr(env.load_u64(q.root().add(ROOT_HEAD)));
        let first = Addr(env.load_u64(sentinel.add(NODE_NEXT)));
        env.store_u64(first.add(NODE_CLAIMED_BY), op_tag(7, 7));
        env.store_u64(q.root().add(ROOT_TAIL), sentinel.0);
        q.repair(&mut env);
        assert_eq!(q.live_values(&mut env), vec![2, 3]);
        let tail = Addr(env.load_u64(q.root().add(ROOT_TAIL)));
        assert_eq!(env.load_u64(tail.add(NODE_VALUE)), 3);
    }
}
