//! A persistent Treiber stack with detectable recovery.
//!
//! The classic lock-free stack — `push` and `pop` linearize on a CAS of
//! the `top` pointer — made persistent and *detectable* in the Memento
//! style ([`crate::detect`]): every thread owns a persistent operation
//! descriptor, and `pop` claims its node by CASing a per-node `popped_by`
//! slot with the operation's unique tag before unlinking it. After a
//! crash at any point, per-thread recovery reads the descriptor and the
//! tagged node and answers exactly-once whether the operation took
//! effect and with which value.
//!
//! # Persist discipline
//!
//! The crash-safety argument rests on two rules:
//!
//! 1. **Content before reachability.** A node's cacheline (value, tag,
//!    link) is persisted before any CAS can make it reachable, so a
//!    durably reachable node never has torn contents.
//! 2. **Claim before unlink** (flush-before-help). A claimed node's
//!    `popped_by` slot is persisted before *anyone* — the claimer or a
//!    helping thread — unlinks it from `top`. Hence the invariant the
//!    crash explorer checks: a node that is durably unreachable is
//!    durably claimed; no value can vanish without a claim tag naming
//!    the pop that took it.
//!
//! Operations are small-step state machines (one phase per
//! [`TreiberThread::step`] call) so the deterministic executor can
//! interleave them and the crash explorer can cut them mid-phase;
//! [`TreiberThread::push`]/[`TreiberThread::pop`] drive the cursor to
//! completion for sequential callers.

use pmem::PmemEnv;
use simbase::{Addr, CACHELINE_BYTES};

use crate::detect::{
    alloc_desc, op_tag, read_desc, DescView, OpKind, RecoveryOutcome, DESC_KIND, DESC_NODE,
    DESC_RESULT, DESC_SEQ, DESC_STATE, EMPTY_RESULT, STATE_COMMITTED, STATE_STARTED,
};

/// Node layout: one cacheline.
const NODE_VALUE: u64 = 0;
const NODE_NEXT: u64 = 8;
const NODE_POPPED_BY: u64 = 16;
const NODE_TAG: u64 = 24;

/// Walk bound: guards recovery walks against (impossible) cycles in a
/// corrupted image; hitting it means the image is garbage, not a stack.
const MAX_WALK: u64 = 1 << 16;

/// The shared stack: one root cacheline holding `top` at offset 0
/// (0 = empty).
#[derive(Debug, Clone, Copy)]
pub struct TreiberStack {
    root: Addr,
}

/// One completed operation's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// The push committed.
    Pushed,
    /// The pop committed with this value.
    Popped(u64),
    /// The pop committed against an empty stack.
    Empty,
}

impl TreiberStack {
    /// Allocates and persists an empty stack.
    pub fn new<E: PmemEnv>(env: &mut E) -> Self {
        let root = env.alloc(CACHELINE_BYTES, CACHELINE_BYTES);
        env.store_full_line(root, &[0u8; 64]);
        env.persist(root, CACHELINE_BYTES);
        TreiberStack { root }
    }

    /// Reattaches to a stack whose root cacheline is at `root` (recovery
    /// after a crash; the address survives via the allocator watermarks).
    pub fn from_root(root: Addr) -> Self {
        TreiberStack { root }
    }

    /// The root cacheline address.
    pub fn root(&self) -> Addr {
        self.root
    }

    /// Values currently live: reachable from `top` and unclaimed, in
    /// top-to-bottom order. On a post-crash machine this reads the
    /// durable image.
    pub fn live_values<E: PmemEnv>(&self, env: &mut E) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = env.load_u64(self.root);
        let mut steps = 0u64;
        while cur != 0 && steps < MAX_WALK {
            let node = Addr(cur);
            if env.load_u64(node.add(NODE_POPPED_BY)) == 0 {
                out.push(env.load_u64(node.add(NODE_VALUE)));
            }
            cur = env.load_u64(node.add(NODE_NEXT));
            steps += 1;
        }
        out
    }

    /// Whether a node carrying `tag` is reachable from `top`.
    pub fn find_tag<E: PmemEnv>(&self, env: &mut E, tag: u64) -> Option<Addr> {
        let mut cur = env.load_u64(self.root);
        let mut steps = 0u64;
        while cur != 0 && steps < MAX_WALK {
            let node = Addr(cur);
            if env.load_u64(node.add(NODE_TAG)) == tag {
                return Some(node);
            }
            cur = env.load_u64(node.add(NODE_NEXT));
            steps += 1;
        }
        None
    }

    /// Post-crash structural repair: splices every claimed node out of
    /// the chain and persists the fixed links. Run single-threaded after
    /// per-thread [`recover`](TreiberThread::recover) calls.
    pub fn repair<E: PmemEnv>(&self, env: &mut E) {
        // prev = 0 means "the root's top slot".
        let mut prev = Addr(0);
        let mut cur = env.load_u64(self.root);
        let mut steps = 0u64;
        while cur != 0 && steps < MAX_WALK {
            let node = Addr(cur);
            let next = env.load_u64(node.add(NODE_NEXT));
            if env.load_u64(node.add(NODE_POPPED_BY)) != 0 {
                if prev.0 == 0 {
                    env.store_u64(self.root, next);
                    env.persist(self.root, 8);
                } else {
                    env.store_u64(prev.add(NODE_NEXT), next);
                    env.persist(prev, CACHELINE_BYTES);
                }
            } else {
                prev = node;
            }
            cur = next;
            steps += 1;
        }
    }
}

/// Phase cursor of an in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Idle,
    PushInit { value: u64 },
    PushWriteNode { node: Addr, value: u64 },
    PushLink { node: Addr },
    PushPersistTop,
    PushCommit,
    PopInit,
    PopFindTop,
    PopClaim { node: Addr },
    PopPersistClaim { node: Addr },
    PopUnlink { node: Addr, value: u64 },
    PopCommit { value: u64 },
}

/// One thread's handle: its persistent descriptor plus the in-flight
/// phase cursor (volatile — a crash loses the cursor, which is exactly
/// what recovery is for).
#[derive(Debug)]
pub struct TreiberThread {
    desc: Addr,
    lane: u64,
    seq: u64,
    op: Op,
    skip_claim_persist: bool,
}

impl TreiberThread {
    /// Registers lane `lane`, allocating its persistent descriptor.
    pub fn new<E: PmemEnv>(env: &mut E, lane: u64) -> Self {
        TreiberThread {
            desc: alloc_desc(env),
            lane,
            seq: 0,
            op: Op::Idle,
            skip_claim_persist: false,
        }
    }

    /// Reattaches to an existing descriptor after a crash, resuming the
    /// sequence numbering above anything the descriptor records.
    pub fn reattach<E: PmemEnv>(env: &mut E, lane: u64, desc: Addr) -> Self {
        let seq = env.load_u64(desc.add(DESC_SEQ)) + 1;
        TreiberThread {
            desc,
            lane,
            seq,
            op: Op::Idle,
            skip_claim_persist: false,
        }
    }

    /// The persistent descriptor address (recovery input).
    pub fn desc(&self) -> Addr {
        self.desc
    }

    /// The tag the *current* (or most recently started) operation stamps.
    pub fn current_tag(&self) -> u64 {
        op_tag(self.lane, self.seq)
    }

    /// Seeded-mutant hook for oracle validation: when set, the claim
    /// persist before unlink is skipped, breaking the unreachable-implies-
    /// claimed invariant. The crash explorer must catch the resulting
    /// lost-value states; shipping code never sets this.
    pub fn set_skip_claim_persist(&mut self, on: bool) {
        self.skip_claim_persist = on;
    }

    /// Begins a push of `value`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight, or if `value` is 0 or
    /// [`EMPTY_RESULT`] (reserved encodings).
    pub fn begin_push(&mut self, value: u64) {
        assert!(self.op == Op::Idle, "operation already in flight");
        assert!(
            value != 0 && value != EMPTY_RESULT,
            "value 0 and u64::MAX are reserved"
        );
        self.seq += 1;
        self.op = Op::PushInit { value };
    }

    /// Begins a pop.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_pop(&mut self) {
        assert!(self.op == Op::Idle, "operation already in flight");
        self.seq += 1;
        self.op = Op::PopInit;
    }

    /// Whether an operation is in flight.
    pub fn busy(&self) -> bool {
        self.op != Op::Idle
    }

    /// Advances the in-flight operation by one phase. Returns the result
    /// once the operation commits (the acknowledgement point), `None`
    /// while more steps remain.
    ///
    /// # Panics
    ///
    /// Panics if no operation is in flight.
    pub fn step<E: PmemEnv>(&mut self, env: &mut E, stack: &TreiberStack) -> Option<OpResult> {
        let tag = op_tag(self.lane, self.seq);
        let (next, result) = match self.op {
            Op::Idle => panic!("no operation in flight"),
            Op::PushInit { value } => {
                let node = env.alloc(CACHELINE_BYTES, CACHELINE_BYTES);
                self.write_desc(env, OpKind::Insert, node.0);
                (Op::PushWriteNode { node, value }, None)
            }
            Op::PushWriteNode { node, value } => {
                let mut line = [0u8; 64];
                line[NODE_VALUE as usize..][..8].copy_from_slice(&value.to_le_bytes());
                line[NODE_TAG as usize..][..8].copy_from_slice(&tag.to_le_bytes());
                env.store_full_line(node, &line);
                env.persist(node, CACHELINE_BYTES);
                (Op::PushLink { node }, None)
            }
            Op::PushLink { node } => {
                let top = env.load_u64(stack.root);
                env.store_u64(node.add(NODE_NEXT), top);
                env.persist(node.add(NODE_NEXT), 8);
                if env.cas_u64(stack.root, top, node.0) == top {
                    (Op::PushPersistTop, None)
                } else {
                    (Op::PushLink { node }, None) // retry next step
                }
            }
            Op::PushPersistTop => {
                env.persist(stack.root, 8);
                (Op::PushCommit, None)
            }
            Op::PushCommit => {
                self.commit_desc(env, 0);
                (Op::Idle, Some(OpResult::Pushed))
            }
            Op::PopInit => {
                self.write_desc(env, OpKind::Remove, 0);
                (Op::PopFindTop, None)
            }
            Op::PopFindTop => {
                let top = env.load_u64(stack.root);
                if top == 0 {
                    self.commit_desc(env, EMPTY_RESULT);
                    (Op::Idle, Some(OpResult::Empty))
                } else {
                    let node = Addr(top);
                    if env.load_u64(node.add(NODE_POPPED_BY)) != 0 {
                        // Help unlink a claimed top. Flush-before-help:
                        // the claim must be durable before the unlink can
                        // be, or a crash between them loses the value.
                        env.persist(node, CACHELINE_BYTES);
                        let next = env.load_u64(node.add(NODE_NEXT));
                        if env.cas_u64(stack.root, top, next) == top {
                            env.persist(stack.root, 8);
                        }
                        (Op::PopFindTop, None)
                    } else {
                        // Checkpoint the candidate before claiming, so
                        // recovery always knows which node this op may
                        // have tagged — even if a helper unlinks it
                        // before the claim is recorded anywhere else.
                        env.store_u64(self.desc.add(DESC_NODE), node.0);
                        env.persist(self.desc.add(DESC_NODE), 8);
                        (Op::PopClaim { node }, None)
                    }
                }
            }
            Op::PopClaim { node } => {
                if env.cas_u64(node.add(NODE_POPPED_BY), 0, tag) == 0 {
                    (Op::PopPersistClaim { node }, None)
                } else {
                    (Op::PopFindTop, None) // lost the race; find a new top
                }
            }
            Op::PopPersistClaim { node } => {
                if !self.skip_claim_persist {
                    env.persist(node, CACHELINE_BYTES);
                }
                let value = env.load_u64(node.add(NODE_VALUE));
                env.store_u64(self.desc.add(DESC_RESULT), value);
                env.persist(self.desc.add(DESC_RESULT), 8);
                (Op::PopUnlink { node, value }, None)
            }
            Op::PopUnlink { node, value } => {
                // Single unlink attempt: if the node got buried under
                // newer pushes, leave it — claimed nodes are spliced out
                // lazily by helpers and by repair.
                let top = env.load_u64(stack.root);
                if top == node.0 {
                    let next = env.load_u64(node.add(NODE_NEXT));
                    if env.cas_u64(stack.root, top, next) == top {
                        env.persist(stack.root, 8);
                    }
                }
                (Op::PopCommit { value }, None)
            }
            Op::PopCommit { value } => {
                self.commit_desc(env, value);
                (Op::Idle, Some(OpResult::Popped(value)))
            }
        };
        self.op = next;
        result
    }

    /// Runs a full push to completion (sequential callers).
    pub fn push<E: PmemEnv>(&mut self, env: &mut E, stack: &TreiberStack, value: u64) {
        self.begin_push(value);
        while self.step(env, stack).is_none() {}
    }

    /// Runs a full pop to completion. Returns `None` when empty.
    pub fn pop<E: PmemEnv>(&mut self, env: &mut E, stack: &TreiberStack) -> Option<u64> {
        self.begin_pop();
        loop {
            match self.step(env, stack) {
                Some(OpResult::Popped(v)) => return Some(v),
                Some(_) => return None,
                None => {}
            }
        }
    }

    /// Starts a fresh descriptor record for this operation: seq, kind,
    /// target node, state=started, result cleared — one persisted line.
    fn write_desc<E: PmemEnv>(&mut self, env: &mut E, kind: OpKind, node: u64) {
        env.store_u64(self.desc.add(DESC_SEQ), self.seq);
        env.store_u64(self.desc.add(DESC_KIND), kind.code());
        env.store_u64(self.desc.add(DESC_NODE), node);
        env.store_u64(self.desc.add(DESC_STATE), STATE_STARTED);
        env.store_u64(self.desc.add(DESC_RESULT), 0);
        env.persist(self.desc, CACHELINE_BYTES);
    }

    /// Durably commits the operation's result.
    fn commit_desc<E: PmemEnv>(&mut self, env: &mut E, result: u64) {
        env.store_u64(self.desc.add(DESC_RESULT), result);
        env.store_u64(self.desc.add(DESC_STATE), STATE_COMMITTED);
        env.persist(self.desc, CACHELINE_BYTES);
    }
}

/// Post-crash recovery for one lane: reads the durable descriptor and
/// answers whether the last operation took effect and with which value.
///
/// - committed descriptor → applied, result as recorded;
/// - started push → applied iff the tagged node is durably reachable, or
///   durably claimed by a pop (claims only land on linked nodes, so a
///   durable claim proves the push took effect and a pop consumed it);
/// - started pop → applied iff the checkpointed candidate node carries
///   this operation's claim tag.
pub fn recover<E: PmemEnv>(
    env: &mut E,
    stack: &TreiberStack,
    lane: u64,
    desc: Addr,
) -> RecoveryOutcome {
    let d: DescView = read_desc(env, desc);
    let tag = op_tag(lane, d.seq);
    match (d.kind, d.committed) {
        (OpKind::None, _) => RecoveryOutcome {
            seq: d.seq,
            kind: OpKind::None,
            applied: false,
            value: None,
        },
        (kind, true) => RecoveryOutcome {
            seq: d.seq,
            kind,
            applied: true,
            value: Some(match kind {
                // A committed push's value lives in its (durable) node.
                OpKind::Insert => env.load_u64(d.node.add(NODE_VALUE)),
                _ => d.result,
            }),
        },
        (OpKind::Insert, false) => {
            let node_durable = d.node.0 != 0 && env.load_u64(d.node.add(NODE_TAG)) == tag;
            let claimed = node_durable && env.load_u64(d.node.add(NODE_POPPED_BY)) != 0;
            let applied = claimed || stack.find_tag(env, tag).is_some();
            RecoveryOutcome {
                seq: d.seq,
                kind: OpKind::Insert,
                applied,
                value: if node_durable {
                    Some(env.load_u64(d.node.add(NODE_VALUE)))
                } else {
                    None
                },
            }
        }
        (OpKind::Remove, false) => {
            let claimed = d.node.0 != 0 && env.load_u64(d.node.add(NODE_POPPED_BY)) == tag;
            RecoveryOutcome {
                seq: d.seq,
                kind: OpKind::Remove,
                applied: claimed,
                value: if claimed {
                    Some(env.load_u64(d.node.add(NODE_VALUE)))
                } else {
                    None
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::HostEnv;

    #[test]
    fn push_pop_lifo_sequential() {
        let mut env = HostEnv::new();
        let stack = TreiberStack::new(&mut env);
        let mut t = TreiberThread::new(&mut env, 0);
        for v in 1..=5u64 {
            t.push(&mut env, &stack, v);
        }
        for v in (1..=5u64).rev() {
            assert_eq!(t.pop(&mut env, &stack), Some(v));
        }
        assert_eq!(t.pop(&mut env, &stack), None);
    }

    #[test]
    fn interleaved_lanes_preserve_the_multiset() {
        let mut env = HostEnv::new();
        let stack = TreiberStack::new(&mut env);
        let mut a = TreiberThread::new(&mut env, 0);
        let mut b = TreiberThread::new(&mut env, 1);
        a.begin_push(10);
        b.begin_push(20);
        // Interleave phase-by-phase.
        loop {
            let ra = if a.busy() {
                a.step(&mut env, &stack)
            } else {
                None
            };
            let rb = if b.busy() {
                b.step(&mut env, &stack)
            } else {
                None
            };
            if !a.busy() && !b.busy() {
                let _ = (ra, rb);
                break;
            }
        }
        let mut live = stack.live_values(&mut env);
        live.sort_unstable();
        assert_eq!(live, vec![10, 20]);
        let mut popped = vec![
            a.pop(&mut env, &stack).unwrap(),
            b.pop(&mut env, &stack).unwrap(),
        ];
        popped.sort_unstable();
        assert_eq!(popped, vec![10, 20]);
        assert_eq!(a.pop(&mut env, &stack), None);
    }

    #[test]
    fn committed_ops_recover_as_applied() {
        let mut env = HostEnv::new();
        let stack = TreiberStack::new(&mut env);
        let mut t = TreiberThread::new(&mut env, 3);
        t.push(&mut env, &stack, 77);
        let r = recover(&mut env, &stack, 3, t.desc());
        assert_eq!(r.kind, OpKind::Insert);
        assert!(r.applied);
        assert_eq!(r.value, Some(77));
        assert_eq!(t.pop(&mut env, &stack), Some(77));
        let r = recover(&mut env, &stack, 3, t.desc());
        assert_eq!(r.kind, OpKind::Remove);
        assert!(r.applied);
        assert_eq!(r.value, Some(77));
    }

    #[test]
    fn repair_splices_out_claimed_nodes() {
        let mut env = HostEnv::new();
        let stack = TreiberStack::new(&mut env);
        let mut t = TreiberThread::new(&mut env, 0);
        for v in [1u64, 2, 3] {
            t.push(&mut env, &stack, v);
        }
        // Claim the middle node by hand (simulating a pop cut before its
        // unlink) and repair.
        let top = Addr(env.load_u64(stack.root()));
        let mid = Addr(env.load_u64(top.add(NODE_NEXT)));
        env.store_u64(mid.add(NODE_POPPED_BY), op_tag(9, 9));
        stack.repair(&mut env);
        assert_eq!(stack.live_values(&mut env), vec![3, 1]);
    }
}
