//! Pinned crash-at-interleaving-point regressions for the detectable
//! stack and queue.
//!
//! Each test replays a fixed multi-lane workload under a deterministic
//! executor schedule, cuts it after chosen executor steps
//! (`faultsim::sweep_crash_points`), explores the crash-subset space at
//! each cut, and judges every post-crash state with the detectability
//! oracle: per-lane recovery adjudicates the in-flight operation, and the
//! repaired structure's live values must then equal the acked-push minus
//! acked-pop multiset exactly — nothing lost, nothing duplicated.
//!
//! The mutant tests prove the oracle has teeth: skipping the
//! claim-persist before unlink (the flush-before-help rule) must produce
//! at least one crash state where an un-acked pop's value vanishes
//! without a durable claim to attribute it to.

use cpucache::PrefetchConfig;
use faultsim::{sweep_crash_points, CutRun, ExplorerConfig, InterleaveConfig, StateVerdict};
use optane_core::{Interleaver, Machine, MachineConfig, SchedPolicy, Step, ThreadId};
use pmds::detect::RecoveryOutcome;
use pmds::{
    msqueue, treiber, MsQueue, MsQueueThread, OpResult, TreiberStack, TreiberThread, EMPTY_RESULT,
};
use pmem::SimEnv;
use simbase::Addr;

/// One scripted operation.
#[derive(Debug, Clone, Copy)]
enum Planned {
    Insert(u64),
    Remove,
}

/// One acknowledged (committed-before-the-cut) operation.
#[derive(Debug, Clone, Copy)]
enum Acked {
    Inserted(u64),
    Removed(u64),
    Empty,
}

/// The mixed workload: overlapping pushes and pops across two lanes, with
/// every value unique so multisets reduce to sorted vectors.
fn mixed_scripts() -> Vec<Vec<Planned>> {
    vec![
        vec![Planned::Insert(11), Planned::Insert(12), Planned::Remove],
        vec![Planned::Insert(21), Planned::Remove, Planned::Remove],
    ]
}

/// The minimal single-lane workload exposing the claim-persist window:
/// one push, then one pop of it.
fn push_pop_script() -> Vec<Vec<Planned>> {
    vec![vec![Planned::Insert(11), Planned::Remove]]
}

/// Sampled sweep: both endpoints plus seeded interior points, modest
/// per-point state budget. Used for the multi-lane regressions.
fn sampled_cfg() -> InterleaveConfig {
    InterleaveConfig {
        max_crash_points: 12,
        seed: 0xE15_0001,
        explorer: ExplorerConfig {
            max_exhaustive_lines: 5,
            samples: 8,
            seed: 0xE15_0002,
        },
    }
}

/// Dense sweep: every interleaving point, exhaustive subsets. Used where
/// a specific window must be visited (the mutant tests).
fn dense_cfg() -> InterleaveConfig {
    InterleaveConfig {
        max_crash_points: 256,
        seed: 0xE15_0003,
        explorer: ExplorerConfig::default(),
    }
}

/// What the workload had acknowledged by the cut, and how to judge a
/// post-crash state against it.
struct Account {
    scripts: Vec<Vec<Planned>>,
    begun: Vec<usize>,
    acked: Vec<Vec<Acked>>,
}

impl Account {
    fn new(scripts: Vec<Vec<Planned>>) -> Self {
        let lanes = scripts.len();
        Account {
            scripts,
            begun: vec![0; lanes],
            acked: vec![Vec::new(); lanes],
        }
    }

    /// Next scripted op for `lane`, if any.
    fn next_op(&mut self, lane: usize) -> Option<Planned> {
        let op = self.scripts[lane].get(self.begun[lane]).copied();
        if op.is_some() {
            self.begun[lane] += 1;
        }
        op
    }

    /// Records an acknowledged result for `lane`.
    fn ack(&mut self, lane: usize, res: OpResult) {
        self.acked[lane].push(match res {
            OpResult::Pushed => match self.scripts[lane][self.begun[lane] - 1] {
                Planned::Insert(v) => Acked::Inserted(v),
                Planned::Remove => unreachable!("a pop cannot ack as Pushed"),
            },
            OpResult::Popped(v) => Acked::Removed(v),
            OpResult::Empty => Acked::Empty,
        });
    }

    /// Judges one post-crash state: acked ops plus recovery-adjudicated
    /// in-flight ops give the expected multiset; `live` must match it.
    fn verdict(&self, recs: &[RecoveryOutcome], mut live: Vec<u64>) -> StateVerdict {
        let mut inserted: Vec<u64> = Vec::new();
        let mut consumed: Vec<u64> = Vec::new();
        let mut consistent = true;
        for (lane, rec) in recs.iter().enumerate().take(self.scripts.len()) {
            for a in &self.acked[lane] {
                match *a {
                    Acked::Inserted(v) => inserted.push(v),
                    Acked::Removed(v) => consumed.push(v),
                    Acked::Empty => {}
                }
            }
            // An in-flight op (begun but never acked) is adjudicated by
            // its lane's recovery outcome.
            if self.begun[lane] > self.acked[lane].len() {
                match self.scripts[lane][self.begun[lane] - 1] {
                    Planned::Insert(v) => {
                        if rec.applied {
                            inserted.push(v);
                        }
                    }
                    Planned::Remove => {
                        if rec.applied {
                            match rec.value {
                                Some(v) if v != EMPTY_RESULT => consumed.push(v),
                                Some(_) => {}
                                None => consistent = false,
                            }
                        }
                    }
                }
            }
        }
        let mut expected = inserted;
        for v in consumed {
            match expected.iter().position(|&x| x == v) {
                Some(i) => {
                    expected.swap_remove(i);
                }
                None => consistent = false, // popped a value never pushed
            }
        }
        expected.sort_unstable();
        live.sort_unstable();
        let lost = expected.iter().filter(|v| !live.contains(v)).count() as u64;
        StateVerdict {
            ok: consistent && expected == live,
            lost_keys: lost,
            detail: format!("expected {expected:?} live {live:?}"),
        }
    }
}

/// Replays the stack workload under `policy`, cut at `budget` executor
/// steps, returning the crash image and the detectability oracle.
fn replay_stack(
    budget: u64,
    policy: SchedPolicy,
    scripts: Vec<Vec<Planned>>,
    mutant: bool,
) -> CutRun<impl FnMut(&mut Machine, &[bool]) -> StateVerdict> {
    let lanes = scripts.len();
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
    let tids: Vec<ThreadId> = (0..lanes).map(|_| m.spawn(0)).collect();
    let (stack, mut threads) = {
        let mut env = SimEnv::new(&mut m, tids[0]);
        let stack = TreiberStack::new(&mut env);
        let threads: Vec<TreiberThread> = (0..lanes)
            .map(|l| {
                let mut t = TreiberThread::new(&mut env, l as u64);
                t.set_skip_claim_persist(mutant);
                t
            })
            .collect();
        (stack, threads)
    };
    let descs: Vec<Addr> = threads.iter().map(TreiberThread::desc).collect();
    let mut acct = Account::new(scripts);
    let report = Interleaver::new(policy).run_steps(
        &mut m,
        &tids,
        &mut |mm: &mut Machine, tid, lane: usize| {
            if !threads[lane].busy() {
                match acct.next_op(lane) {
                    Some(Planned::Insert(v)) => threads[lane].begin_push(v),
                    Some(Planned::Remove) => threads[lane].begin_pop(),
                    None => return Step::Done,
                }
            }
            let mut env = SimEnv::new(mm, tid);
            if let Some(res) = threads[lane].step(&mut env, &stack) {
                acct.ack(lane, res);
            }
            Step::Ran
        },
        budget,
    );
    let image = m.capture_crash_image();
    let root = stack.root();
    CutRun {
        image,
        steps_taken: report.total_steps,
        oracle: move |pm: &mut Machine, _mask: &[bool]| {
            let t = pm.spawn(0);
            let mut env = SimEnv::new(pm, t);
            let stack = TreiberStack::from_root(root);
            let recs: Vec<RecoveryOutcome> = (0..lanes)
                .map(|l| treiber::recover(&mut env, &stack, l as u64, descs[l]))
                .collect();
            stack.repair(&mut env);
            let live = stack.live_values(&mut env);
            acct.verdict(&recs, live)
        },
    }
}

/// The queue twin of [`replay_stack`].
fn replay_queue(
    budget: u64,
    policy: SchedPolicy,
    scripts: Vec<Vec<Planned>>,
    mutant: bool,
) -> CutRun<impl FnMut(&mut Machine, &[bool]) -> StateVerdict> {
    let lanes = scripts.len();
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
    let tids: Vec<ThreadId> = (0..lanes).map(|_| m.spawn(0)).collect();
    let (queue, mut threads) = {
        let mut env = SimEnv::new(&mut m, tids[0]);
        let queue = MsQueue::new(&mut env);
        let threads: Vec<MsQueueThread> = (0..lanes)
            .map(|l| {
                let mut t = MsQueueThread::new(&mut env, l as u64);
                t.set_skip_claim_persist(mutant);
                t
            })
            .collect();
        (queue, threads)
    };
    let descs: Vec<Addr> = threads.iter().map(MsQueueThread::desc).collect();
    let mut acct = Account::new(scripts);
    let report = Interleaver::new(policy).run_steps(
        &mut m,
        &tids,
        &mut |mm: &mut Machine, tid, lane: usize| {
            if !threads[lane].busy() {
                match acct.next_op(lane) {
                    Some(Planned::Insert(v)) => threads[lane].begin_enqueue(v),
                    Some(Planned::Remove) => threads[lane].begin_dequeue(),
                    None => return Step::Done,
                }
            }
            let mut env = SimEnv::new(mm, tid);
            if let Some(res) = threads[lane].step(&mut env, &queue) {
                acct.ack(lane, res);
            }
            Step::Ran
        },
        budget,
    );
    let image = m.capture_crash_image();
    let root = queue.root();
    CutRun {
        image,
        steps_taken: report.total_steps,
        oracle: move |pm: &mut Machine, _mask: &[bool]| {
            let t = pm.spawn(0);
            let mut env = SimEnv::new(pm, t);
            let queue = MsQueue::from_root(root);
            let recs: Vec<RecoveryOutcome> = (0..lanes)
                .map(|l| msqueue::recover(&mut env, &queue, l as u64, descs[l]))
                .collect();
            queue.repair(&mut env);
            let live = queue.live_values(&mut env);
            acct.verdict(&recs, live)
        },
    }
}

#[test]
fn stack_recovers_at_sampled_interleaving_points_round_robin() {
    let sweep = sweep_crash_points("treiber-rr", &sampled_cfg(), |k| {
        replay_stack(k, SchedPolicy::RoundRobin, mixed_scripts(), false)
    });
    assert!(sweep.total_steps > 0);
    assert!(sweep.all_states_ok(), "{}", sweep.to_json());
}

#[test]
fn stack_recovers_under_a_seeded_random_schedule() {
    let sweep = sweep_crash_points("treiber-sr", &sampled_cfg(), |k| {
        replay_stack(
            k,
            SchedPolicy::SeededRandom { seed: 0xE15 },
            mixed_scripts(),
            false,
        )
    });
    assert!(sweep.all_states_ok(), "{}", sweep.to_json());
}

#[test]
fn queue_recovers_at_sampled_interleaving_points_round_robin() {
    let sweep = sweep_crash_points("msqueue-rr", &sampled_cfg(), |k| {
        replay_queue(k, SchedPolicy::RoundRobin, mixed_scripts(), false)
    });
    assert!(sweep.total_steps > 0);
    assert!(sweep.all_states_ok(), "{}", sweep.to_json());
}

#[test]
fn queue_recovers_under_a_seeded_random_schedule() {
    let sweep = sweep_crash_points("msqueue-sr", &sampled_cfg(), |k| {
        replay_queue(
            k,
            SchedPolicy::SeededRandom { seed: 0xE15 },
            mixed_scripts(),
            false,
        )
    });
    assert!(sweep.all_states_ok(), "{}", sweep.to_json());
}

#[test]
fn stack_mutant_skipping_the_claim_persist_is_caught() {
    // Shipped code is clean over the same dense sweep…
    let clean = sweep_crash_points("treiber-dense", &dense_cfg(), |k| {
        replay_stack(k, SchedPolicy::RoundRobin, push_pop_script(), false)
    });
    assert!(clean.all_states_ok(), "{}", clean.to_json());
    // …and the mutant must be caught: some cut leaves the unlink durable
    // with the claim lost, so the popped value vanishes unattributed.
    let broken = sweep_crash_points("treiber-mutant", &dense_cfg(), |k| {
        replay_stack(k, SchedPolicy::RoundRobin, push_pop_script(), true)
    });
    assert!(
        !broken.all_states_ok(),
        "the explorer must find the claim-lost window"
    );
    let (steps, state) = broken.first_failure().expect("a failing state");
    assert!(steps > 0);
    assert!(
        state.lost_keys > 0,
        "the failure is a lost value: {state:?}"
    );
}

#[test]
fn queue_mutant_skipping_the_claim_persist_is_caught() {
    let clean = sweep_crash_points("msqueue-dense", &dense_cfg(), |k| {
        replay_queue(k, SchedPolicy::RoundRobin, push_pop_script(), false)
    });
    assert!(clean.all_states_ok(), "{}", clean.to_json());
    let broken = sweep_crash_points("msqueue-mutant", &dense_cfg(), |k| {
        replay_queue(k, SchedPolicy::RoundRobin, push_pop_script(), true)
    });
    assert!(
        !broken.all_states_ok(),
        "the explorer must find the claim-lost window"
    );
    let (_, state) = broken.first_failure().expect("a failing state");
    assert!(
        state.lost_keys > 0,
        "the failure is a lost value: {state:?}"
    );
}
