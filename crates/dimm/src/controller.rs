//! The on-DIMM controller: composes the read buffer, the write-combining
//! buffer, and the media into the cacheline-granularity DDR-T endpoint the
//! iMC talks to.

use simbase::{Addr, ByteCounter, Counter, Cycles, HitMiss};
use xpmedia::{MediaParams, XpMedia};

use crate::read_buffer::{RbLookup, ReadBuffer};
use crate::write_buffer::{EvictKind, WriteBuffer};

/// Configuration of one DIMM's buffering and timing.
#[derive(Debug, Clone)]
pub struct DimmParams {
    /// Read buffer capacity in XPLines (64 = 16 KB on G1).
    pub read_buffer_lines: usize,
    /// Write-combining buffer capacity in XPLines (48 = 12 KB effective on
    /// G1).
    pub write_buffer_lines: usize,
    /// Latency of serving a cacheline from the read buffer.
    pub rb_hit_latency: Cycles,
    /// Latency of serving a cacheline from (or accepting one into) the
    /// write buffer.
    pub wcb_hit_latency: Cycles,
    /// G1 periodic write-back interval for fully written XPLines; `None`
    /// disables it (G2).
    pub writeback_period: Option<Cycles>,
    /// Media timing parameters.
    pub media: MediaParams,
    /// Seed for the write buffer's random eviction.
    pub seed: u64,
}

impl Default for DimmParams {
    fn default() -> Self {
        // G1-flavoured defaults; overridden by the machine generation
        // configuration.
        DimmParams {
            read_buffer_lines: 64,
            write_buffer_lines: 48,
            rb_hit_latency: 220,
            wcb_hit_latency: 180,
            writeback_period: Some(5000),
            media: MediaParams::default(),
            seed: 0x0D1A_0001,
        }
    }
}

/// Where a cacheline read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Served by the write-combining buffer.
    WriteBuffer,
    /// Served by the read buffer.
    ReadBuffer,
    /// Required a media XPLine fetch.
    Media,
}

/// Aggregated DIMM statistics (the simulator's `ipmwatch` media view plus
/// buffer internals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DimmStats {
    /// Read buffer hit/miss counters.
    pub read_buffer: HitMiss,
    /// Write buffer hit/miss counters.
    pub write_buffer: HitMiss,
    /// Media-boundary byte counters.
    pub media: ByteCounter,
    /// AIT cache hit/miss counters.
    pub ait: HitMiss,
    /// Read-modify-write media reads caused by partial-line evictions.
    pub rmw_reads: u64,
    /// Lines flushed by the G1 periodic full-line write-back.
    pub periodic_writebacks: u64,
    /// Capacity evictions from the write buffer.
    pub evictions: u64,
}

impl DimmStats {
    /// Adds another snapshot's counters into this one (aggregation across
    /// DIMMs or across checkpoint epochs).
    pub fn merge(&mut self, other: &DimmStats) {
        self.read_buffer.merge(&other.read_buffer);
        self.write_buffer.merge(&other.write_buffer);
        self.media.read += other.media.read;
        self.media.write += other.media.write;
        self.ait.merge(&other.ait);
        self.rmw_reads += other.rmw_reads;
        self.periodic_writebacks += other.periodic_writebacks;
        self.evictions += other.evictions;
    }
}

/// One simulated Optane DIMM.
#[derive(Debug, Clone)]
pub struct DimmController {
    rb: ReadBuffer,
    wb: WriteBuffer,
    media: XpMedia,
    rb_hit_latency: Cycles,
    wcb_hit_latency: Cycles,
    writeback_period: Option<Cycles>,
    rmw_reads: Counter,
    periodic_writebacks: Counter,
    evictions: Counter,
}

impl DimmController {
    /// Creates a DIMM from its parameters.
    pub fn new(params: DimmParams) -> Self {
        DimmController {
            rb: ReadBuffer::new(params.read_buffer_lines),
            wb: WriteBuffer::new(params.write_buffer_lines, params.seed),
            media: XpMedia::new(params.media.clone()),
            rb_hit_latency: params.rb_hit_latency,
            wcb_hit_latency: params.wcb_hit_latency,
            writeback_period: params.writeback_period,
            rmw_reads: Counter::new(),
            periodic_writebacks: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Reads the cacheline at `addr`, returning the completion time and
    /// where the data came from.
    pub fn read_cacheline(&mut self, now: Cycles, addr: Addr) -> (Cycles, ReadSource) {
        self.maybe_sweep(now);
        if self.wb.serves_read(addr) {
            return (now + self.wcb_hit_latency, ReadSource::WriteBuffer);
        }
        match self.rb.lookup_consume(addr) {
            RbLookup::Hit => (now + self.rb_hit_latency, ReadSource::ReadBuffer),
            RbLookup::Miss => {
                let completion = self.media.read_xpline(now, addr);
                self.rb.fill_and_consume(addr);
                (completion, ReadSource::Media)
            }
        }
    }

    /// Accepts a 64 B write to `addr`, returning the DIMM-side accept time.
    ///
    /// The write lands in on-DIMM buffering (which is inside the ADR
    /// domain); any media traffic it triggers — evictions, read-modify-
    /// writes, periodic write-backs — happens asynchronously and does not
    /// delay the returned accept time.
    pub fn write_cacheline(&mut self, now: Cycles, addr: Addr) -> Cycles {
        self.maybe_sweep(now);
        // Write-in-place repair: overwriting a poisoned line re-programs
        // its cells, clearing the UE.
        self.media.clear_poison(addr);
        if self.rb.take(addr.xpline()).is_some() {
            // §3.3: the write updates the XPLine in the read buffer and the
            // line migrates to the write buffer with its backing intact.
            let evicted = self.wb.install_backed(now, addr);
            self.handle_eviction(now, evicted);
        } else {
            let outcome = self.wb.write(now, addr);
            self.handle_eviction(now, outcome.evicted);
        }
        now + self.wcb_hit_latency
    }

    fn handle_eviction(&mut self, now: Cycles, evicted: Option<(Addr, EvictKind)>) {
        if let Some((victim, kind)) = evicted {
            self.evictions.inc();
            if kind == EvictKind::ReadModifyWrite {
                self.rmw_reads.inc();
                self.media.read_xpline(now, victim);
            }
            self.media.write_xpline(now, victim);
        }
    }

    /// Runs the G1 periodic full-line write-back up to time `now`.
    fn maybe_sweep(&mut self, now: Cycles) {
        let Some(period) = self.writeback_period else {
            return;
        };
        let threshold = now.saturating_sub(period);
        for line in self.wb.sweep_full_lines(threshold) {
            self.periodic_writebacks.inc();
            self.media.write_xpline(now, line);
        }
    }

    /// Forces all buffered writes to the media (used by power-failure
    /// handling: the write buffer is in the ADR domain, so its contents are
    /// flushed by stored energy on a crash).
    pub fn flush_all(&mut self, now: Cycles) {
        for evicted in self.wb.drain_all() {
            self.handle_eviction(now, Some(evicted));
        }
    }

    /// Returns the XPLines currently resident in the write-combining
    /// buffer, sorted by address (the ADR-domain set a crash-time fault
    /// can interrupt mid-drain).
    pub fn resident_write_xplines(&self) -> Vec<Addr> {
        self.wb.resident_xplines()
    }

    // ----- uncorrectable errors (UE/poison) ---------------------------

    /// Marks the cacheline containing `addr` as an uncorrectable error on
    /// this DIMM's media.
    pub fn poison_line(&mut self, addr: Addr) {
        self.media.inject_poison(addr);
    }

    /// Returns `true` if the cacheline containing `addr` is poisoned.
    pub fn line_poisoned(&self, addr: Addr) -> bool {
        self.media.is_poisoned(addr)
    }

    /// Returns all poisoned cacheline addresses on this DIMM, sorted.
    pub fn poisoned_lines(&self) -> Vec<u64> {
        self.media.poisoned_lines()
    }

    /// Address-range scrub: clears and returns poisoned lines within
    /// `[start, start + len)` on this DIMM.
    pub fn scrub_range(&mut self, start: Addr, len: u64) -> Vec<u64> {
        self.media.scrub_range(start, len)
    }

    /// Returns a consistent statistics snapshot.
    pub fn stats(&self) -> DimmStats {
        DimmStats {
            read_buffer: self.rb.counters(),
            write_buffer: self.wb.counters(),
            media: self.media.counters(),
            ait: self.media.ait_counters(),
            rmw_reads: self.rmw_reads.get(),
            periodic_writebacks: self.periodic_writebacks.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Returns the media-boundary byte counters.
    pub fn media_counters(&self) -> ByteCounter {
        self.media.counters()
    }

    /// Returns the read buffer occupancy in XPLines.
    pub fn read_buffer_len(&self) -> usize {
        self.rb.len()
    }

    /// Returns the write buffer occupancy in XPLines.
    pub fn write_buffer_len(&self) -> usize {
        self.wb.len()
    }

    /// Resets counters but keeps buffer and AIT contents (between benchmark
    /// phases).
    pub fn reset_counters(&mut self) {
        self.rb.reset_stats();
        self.wb.reset_stats();
        self.media.reset_counters();
        self.rmw_reads.reset();
        self.periodic_writebacks.reset();
        self.evictions.reset();
    }

    /// Cold-resets the DIMM: buffers, AIT, occupancy, and counters.
    pub fn reset_all(&mut self) {
        self.rb.reset();
        self.wb.reset();
        self.media.reset_all();
        self.rmw_reads.reset();
        self.periodic_writebacks.reset();
        self.evictions.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::XPLINE_BYTES;

    fn dimm() -> DimmController {
        DimmController::new(DimmParams {
            read_buffer_lines: 8,
            write_buffer_lines: 4,
            rb_hit_latency: 200,
            wcb_hit_latency: 150,
            writeback_period: Some(5000),
            media: MediaParams {
                read_latency: 400,
                ait_miss_penalty: 300,
                read_banks: 4,
                write_service: 900,
                ait_coverage_bytes: 1 << 20,
                ait_ways: 16,
            },
            seed: 1,
        })
    }

    fn dimm_g2() -> DimmController {
        DimmController::new(DimmParams {
            read_buffer_lines: 8,
            write_buffer_lines: 4,
            writeback_period: None,
            ..Default::default()
        })
    }

    #[test]
    fn read_miss_then_sibling_hits() {
        let mut d = dimm();
        let (_, src) = d.read_cacheline(0, Addr(0));
        assert_eq!(src, ReadSource::Media);
        let (t, src) = d.read_cacheline(1000, Addr(64));
        assert_eq!(src, ReadSource::ReadBuffer);
        assert_eq!(t, 1200);
        // Exclusivity: re-reading the first cacheline misses again.
        let (_, src) = d.read_cacheline(2000, Addr(0));
        assert_eq!(src, ReadSource::Media);
    }

    #[test]
    fn writes_are_absorbed_without_media_traffic() {
        let mut d = dimm();
        for cl in 0..3u64 {
            d.write_cacheline(0, Addr(cl * 64));
        }
        assert_eq!(d.media_counters().write, 0);
        assert_eq!(d.write_buffer_len(), 1);
    }

    #[test]
    fn g1_periodic_writeback_flushes_full_lines() {
        let mut d = dimm();
        for cl in 0..4u64 {
            d.write_cacheline(0, Addr(cl * 64));
        }
        assert_eq!(d.media_counters().write, 0);
        // Advance time past the period via another access.
        d.write_cacheline(10_000, Addr(4096));
        assert_eq!(d.media_counters().write, XPLINE_BYTES);
        assert_eq!(d.stats().periodic_writebacks, 1);
    }

    #[test]
    fn g2_disables_periodic_writeback() {
        let mut d = dimm_g2();
        for cl in 0..4u64 {
            d.write_cacheline(0, Addr(cl * 64));
        }
        d.write_cacheline(100_000, Addr(4096));
        assert_eq!(d.media_counters().write, 0);
    }

    #[test]
    fn partial_eviction_pays_rmw() {
        let mut d = dimm_g2();
        // Fill the 4-slot buffer with partial lines, then overflow it.
        for line in 0..5u64 {
            d.write_cacheline(0, Addr(line * XPLINE_BYTES));
        }
        let s = d.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.rmw_reads, 1);
        assert_eq!(s.media.write, XPLINE_BYTES);
        assert_eq!(s.media.read, XPLINE_BYTES);
    }

    #[test]
    fn write_hitting_read_buffer_migrates_with_backing() {
        let mut d = dimm_g2();
        d.read_cacheline(0, Addr(0)); // XPLine 0 into the read buffer
        d.write_cacheline(10, Addr(64));
        assert_eq!(d.read_buffer_len(), 0, "line migrated out");
        assert_eq!(d.write_buffer_len(), 1);
        // Reads of unwritten cachelines are served by the backed entry.
        let (_, src) = d.read_cacheline(20, Addr(128));
        assert_eq!(src, ReadSource::WriteBuffer);
        // Eviction of the backed line needs no RMW read.
        for line in 1..5u64 {
            d.write_cacheline(30, Addr(line * XPLINE_BYTES));
        }
        assert_eq!(d.stats().rmw_reads, 1, "only the unbacked victim pays RMW");
    }

    #[test]
    fn write_buffer_serves_written_reads() {
        let mut d = dimm();
        d.write_cacheline(0, Addr(0));
        let (t, src) = d.read_cacheline(10, Addr(0));
        assert_eq!(src, ReadSource::WriteBuffer);
        assert_eq!(t, 160);
        // Unwritten sibling needs the media.
        let (_, src) = d.read_cacheline(20, Addr(64));
        assert_eq!(src, ReadSource::Media);
    }

    #[test]
    fn interleaved_read_write_regions_do_not_interfere() {
        // §3.3 benchmark: a 2-XPLine read region and a separate write
        // region, interleaved. Buffers are separate, so reads see no
        // amplification and writes stay absorbed.
        let mut d = dimm();
        let read_base = 0u64;
        let write_base = 1 << 16;
        // Warm the read region (2 XPLines, one media read each).
        for pass in 0..4u64 {
            for x in 0..2u64 {
                let r = Addr(read_base + x * XPLINE_BYTES + pass * 64);
                d.read_cacheline(pass * 1000, r);
                let w = Addr(write_base + x * XPLINE_BYTES);
                d.write_cacheline(pass * 1000, w);
            }
        }
        let s = d.stats();
        // Each read-region XPLine fetched exactly once: RA = 1.
        assert_eq!(s.media.read, 2 * XPLINE_BYTES);
        assert_eq!(s.media.write, 0);
    }

    #[test]
    fn flush_all_drains_everything() {
        let mut d = dimm_g2();
        for line in 0..3u64 {
            d.write_cacheline(0, Addr(line * XPLINE_BYTES));
        }
        d.flush_all(100);
        assert_eq!(d.write_buffer_len(), 0);
        assert!(d.media_counters().write >= 3 * XPLINE_BYTES);
    }

    #[test]
    fn write_repairs_poisoned_line() {
        let mut d = dimm_g2();
        d.poison_line(Addr(64));
        assert!(d.line_poisoned(Addr(64)));
        d.write_cacheline(0, Addr(64));
        assert!(
            !d.line_poisoned(Addr(64)),
            "overwrite re-programs the cells"
        );
        // A different line in the same XPLine stays poisoned.
        d.poison_line(Addr(128));
        d.write_cacheline(10, Addr(192));
        assert!(d.line_poisoned(Addr(128)));
    }

    #[test]
    fn resident_write_xplines_reports_wcb_contents() {
        let mut d = dimm_g2();
        d.write_cacheline(0, Addr(512));
        d.write_cacheline(0, Addr(0));
        assert_eq!(d.resident_write_xplines(), vec![Addr(0), Addr(512)]);
        d.flush_all(100);
        assert!(d.resident_write_xplines().is_empty());
    }

    #[test]
    fn reset_counters_keeps_buffer_contents() {
        let mut d = dimm();
        d.read_cacheline(0, Addr(0));
        d.reset_counters();
        assert_eq!(d.media_counters().read, 0);
        let (_, src) = d.read_cacheline(10, Addr(64));
        assert_eq!(src, ReadSource::ReadBuffer, "buffer contents survive");
    }
}
