//! On-DIMM buffering: the subsystem the paper reverse-engineers.
//!
//! An Optane DIMM bridges the 64 B cacheline world of the CPU and the 256 B
//! XPLine world of the 3D-XPoint media with two small, *separately managed*
//! buffers (§3.1–§3.3 of the paper):
//!
//! - a **read buffer** ([`read_buffer::ReadBuffer`]): 16 KB (G1) / 22 KB
//!   (G2), FIFO eviction, *exclusive* with respect to the CPU caches — a
//!   cacheline is dropped from the buffer the moment it is delivered
//!   upstream, which is why read amplification never falls below 1 even for
//!   tiny working sets (Figure 2);
//! - a **write-combining buffer** ([`write_buffer::WriteBuffer`]): ~12 KB
//!   effective (G1) / 16 KB (G2), random eviction (the graceful hit-ratio
//!   decay of Figure 4), merging sub-XPLine writes to curb write
//!   amplification (Figure 3). On G1, fully written XPLines are flushed to
//!   the media periodically (~5000 cycles); partially written lines are
//!   retained until evicted, paying a read-modify-write at eviction.
//!
//! XPLines migrate between the two buffers: a write that hits the read
//! buffer updates it in place and moves the line to the write buffer,
//! skipping the expensive "read" of a read-modify-write (§3.3) — the
//! mechanism behind the paper's helper-thread prefetching case study.
//!
//! [`DimmController`] composes the two buffers with the
//! [`xpmedia::XpMedia`] timing model and exposes the cacheline-granularity
//! read/write interface the iMC drives over DDR-T.

#![forbid(unsafe_code)]
// The determinism/robustness contract (DESIGN.md) double-enforces the
// simlint no-unwrap rule with stock tooling in the sim crates; tests are
// exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod controller;
pub mod read_buffer;
pub mod write_buffer;

pub use controller::{DimmController, DimmParams, DimmStats, ReadSource};
pub use read_buffer::ReadBuffer;
pub use write_buffer::{EvictKind, WriteBuffer};
