//! The on-DIMM read buffer.
//!
//! Findings from §3.1 of the paper encoded here:
//!
//! - capacity is a small number of XPLines (16 KB on G1, 22 KB on G2);
//! - eviction is FIFO (read amplification jumps to 4 the moment the working
//!   set exceeds capacity, with no graceful tail);
//! - the buffer is *exclusive* with the CPU caches: once a cacheline is
//!   delivered upstream it is dropped from the buffer, so a recurring read
//!   of the same cacheline must go back to the media (read amplification
//!   never drops below 1 in Figure 2).
//!
//! Exclusivity is modelled with per-cacheline *valid bits*: a media fill
//! sets all four bits, delivering a cacheline clears its bit, and a lookup
//! of a cleared bit is a miss.

use std::collections::VecDeque;

use simbase::{Addr, HitMiss, CACHELINES_PER_XPLINE};

/// One buffered XPLine.
#[derive(Debug, Clone, Copy)]
pub struct ReadEntry {
    /// XPLine-aligned address.
    pub xpline: Addr,
    /// Per-cacheline valid bits; bit `i` set means cacheline `i` is still
    /// present (not yet delivered to the CPU).
    pub valid: u8,
}

impl ReadEntry {
    fn fresh(xpline: Addr) -> Self {
        ReadEntry {
            xpline,
            valid: (1 << CACHELINES_PER_XPLINE) - 1,
        }
    }

    /// Returns `true` if no cacheline remains valid.
    pub fn exhausted(&self) -> bool {
        self.valid == 0
    }
}

/// FIFO, CPU-exclusive read buffer.
///
/// Entries are small `Copy` records living in one preallocated ring
/// (`VecDeque::with_capacity(capacity)`), so steady-state operation never
/// allocates.
#[derive(Debug, Clone)]
pub struct ReadBuffer {
    /// Entries in insertion order; front is the FIFO victim.
    entries: VecDeque<ReadEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// Index of the most recently filled/matched entry. Pure search-order
    /// hint: XPLine addresses are unique among entries, so checking the
    /// hinted slot first returns the same entry the linear scan would —
    /// it makes consecutive cacheline reads of one XPLine O(1). A hint
    /// left stale by `remove`/`pop_front` simply mismatches and falls
    /// back to the scan.
    hint: usize,
}

/// Result of a read-buffer lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RbLookup {
    /// The requested cacheline was present and has now been consumed.
    Hit,
    /// The XPLine (or the specific cacheline) is not available.
    Miss,
}

impl ReadBuffer {
    /// Creates a buffer holding `capacity_lines` XPLines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(capacity_lines: usize) -> Self {
        assert!(capacity_lines > 0, "read buffer capacity must be positive");
        ReadBuffer {
            entries: VecDeque::with_capacity(capacity_lines),
            capacity: capacity_lines,
            hits: 0,
            misses: 0,
            hint: 0,
        }
    }

    /// Finds the entry for `xpline`, consulting the hint slot first.
    #[inline]
    fn find(&mut self, xpline: Addr) -> Option<usize> {
        if let Some(e) = self.entries.get(self.hint) {
            if e.xpline == xpline {
                return Some(self.hint);
            }
        }
        let pos = self.entries.iter().position(|e| e.xpline == xpline)?;
        self.hint = pos;
        Some(pos)
    }

    /// Looks up (and, on a hit, consumes) the cacheline at `addr`.
    pub fn lookup_consume(&mut self, addr: Addr) -> RbLookup {
        let xpline = addr.xpline();
        let bit = 1u8 << addr.cacheline_in_xpline();
        if let Some(pos) = self.find(xpline) {
            let e = &mut self.entries[pos];
            if e.valid & bit != 0 {
                e.valid &= !bit;
                self.hits += 1;
                return RbLookup::Hit;
            }
        }
        self.misses += 1;
        RbLookup::Miss
    }

    /// Inserts a freshly fetched XPLine, consuming the cacheline at `addr`
    /// (it is being delivered to the CPU right now).
    ///
    /// If the XPLine is already buffered (stale, partially consumed), the
    /// old entry is replaced and re-queued at the FIFO tail. Returns the
    /// evicted XPLine address, if any.
    pub fn fill_and_consume(&mut self, addr: Addr) -> Option<Addr> {
        let xpline = addr.xpline();
        let mut evicted = None;
        // Replace a stale copy of the same XPLine, if present.
        if let Some(pos) = self.entries.iter().position(|e| e.xpline == xpline) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            evicted = self.entries.pop_front().map(|e| e.xpline);
        }
        let mut e = ReadEntry::fresh(xpline);
        e.valid &= !(1u8 << addr.cacheline_in_xpline());
        self.entries.push_back(e);
        self.hint = self.entries.len() - 1;
        evicted
    }

    /// Removes and returns the entry for `xpline`, if buffered.
    ///
    /// Used when a write hits the read buffer and the XPLine migrates to
    /// the write buffer (§3.3).
    pub fn take(&mut self, xpline: Addr) -> Option<ReadEntry> {
        let xpline = xpline.xpline();
        let pos = self.entries.iter().position(|e| e.xpline == xpline)?;
        self.entries.remove(pos)
    }

    /// Returns `true` if the XPLine containing `addr` is buffered (with any
    /// valid bits remaining).
    pub fn contains_xpline(&self, addr: Addr) -> bool {
        let xpline = addr.xpline();
        self.entries.iter().any(|e| e.xpline == xpline)
    }

    /// Returns the number of buffered XPLines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the configured capacity in XPLines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the hit/miss counters observed so far.
    pub fn counters(&self) -> HitMiss {
        HitMiss::of(self.hits, self.misses)
    }

    /// Clears statistics only; buffered contents stay warm.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::XPLINE_BYTES;

    #[test]
    fn delivered_cacheline_is_consumed() {
        let mut rb = ReadBuffer::new(4);
        assert_eq!(rb.lookup_consume(Addr(0)), RbLookup::Miss);
        rb.fill_and_consume(Addr(0));
        // The delivered cacheline is gone (exclusivity)...
        assert_eq!(rb.lookup_consume(Addr(0)), RbLookup::Miss);
        // ...but the sibling cachelines of the XPLine are present.
        assert_eq!(rb.lookup_consume(Addr(64)), RbLookup::Hit);
        assert_eq!(rb.lookup_consume(Addr(128)), RbLookup::Hit);
        assert_eq!(rb.lookup_consume(Addr(192)), RbLookup::Hit);
        // And each sibling can be consumed only once.
        assert_eq!(rb.lookup_consume(Addr(64)), RbLookup::Miss);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut rb = ReadBuffer::new(2);
        rb.fill_and_consume(Addr(0));
        rb.fill_and_consume(Addr(256));
        let evicted = rb.fill_and_consume(Addr(512));
        assert_eq!(evicted, Some(Addr(0)));
        assert!(!rb.contains_xpline(Addr(0)));
        assert!(rb.contains_xpline(Addr(256)));
    }

    #[test]
    fn refill_requeues_at_tail() {
        let mut rb = ReadBuffer::new(2);
        rb.fill_and_consume(Addr(0));
        rb.fill_and_consume(Addr(256));
        // Refreshing XPLine 0 moves it to the tail, so XPLine 256 becomes
        // the FIFO victim.
        rb.fill_and_consume(Addr(0));
        let evicted = rb.fill_and_consume(Addr(512));
        assert_eq!(evicted, Some(Addr(256)));
    }

    #[test]
    fn refill_restores_sibling_bits() {
        let mut rb = ReadBuffer::new(2);
        rb.fill_and_consume(Addr(0));
        for a in [64u64, 128, 192] {
            assert_eq!(rb.lookup_consume(Addr(a)), RbLookup::Hit);
        }
        // All bits consumed; a refill makes siblings available again.
        rb.fill_and_consume(Addr(0));
        assert_eq!(rb.lookup_consume(Addr(64)), RbLookup::Hit);
    }

    #[test]
    fn take_removes_entry() {
        let mut rb = ReadBuffer::new(2);
        rb.fill_and_consume(Addr(0));
        let e = rb.take(Addr(64)).expect("entry present");
        assert_eq!(e.xpline, Addr(0));
        assert!(!rb.contains_xpline(Addr(0)));
        assert!(rb.take(Addr(0)).is_none());
    }

    #[test]
    fn strided_pattern_matches_paper_ra_model() {
        // Reproduce the E1 arithmetic in miniature: CpX = 2 with a working
        // set of 4 XPLines and capacity 8. Steady state: one fill per
        // (2-cacheline) round per XPLine.
        let mut rb = ReadBuffer::new(8);
        let xplines = 4u64;
        let mut media_reads = 0u64;
        let mut demanded = 0u64;
        for round in 0..10u64 {
            for pass in 0..2u64 {
                for x in 0..xplines {
                    let addr = Addr(x * XPLINE_BYTES + pass * 64);
                    demanded += 64;
                    if rb.lookup_consume(addr) == RbLookup::Miss {
                        media_reads += XPLINE_BYTES;
                        rb.fill_and_consume(addr);
                    }
                }
                let _ = round;
            }
        }
        let ra = media_reads as f64 / demanded as f64;
        assert!((ra - 2.0).abs() < 0.01, "expected RA 2 for CpX=2, got {ra}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut rb = ReadBuffer::new(2);
        rb.fill_and_consume(Addr(0));
        rb.lookup_consume(Addr(64));
        rb.reset();
        assert!(rb.is_empty());
        assert_eq!(rb.counters(), HitMiss::new());
    }
}
