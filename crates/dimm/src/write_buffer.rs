//! The on-DIMM write-combining buffer.
//!
//! Findings from §3.2 of the paper encoded here:
//!
//! - effective capacity is 12–16 KB (we use 48 XPLines on G1, 64 on G2);
//! - sub-XPLine writes *coalesce*: repeated writes to a buffered XPLine hit
//!   the buffer and generate no media traffic, so write amplification is 0
//!   while the working set fits (Figure 3);
//! - eviction is **random**, giving the graceful hit-ratio decay of
//!   Figure 4 (contrast with the read buffer's sharp FIFO cliff);
//! - evicting a *partially* written XPLine requires a read-modify-write
//!   (one media read plus one media write); evicting a fully written or
//!   read-buffer-backed XPLine needs only the media write;
//! - on G1, fully written XPLines are written back to the media
//!   periodically (~every 5000 cycles), which is why 256 B writes see write
//!   amplification 1 even for tiny working sets; G2 disables the periodic
//!   write-back.

use simbase::{Addr, Cycles, HitMiss, SplitMix64, CACHELINES_PER_XPLINE};

/// One write-buffer slot.
#[derive(Debug, Clone, Copy)]
pub struct WriteEntry {
    /// XPLine-aligned address.
    pub xpline: Addr,
    /// Per-cacheline written bits.
    pub written: u8,
    /// `true` if the unwritten cachelines are already present on the DIMM
    /// (the line migrated from the read buffer), so eviction does not need
    /// the "read" of a read-modify-write.
    pub backed: bool,
    /// Time of the most recent write to this entry.
    pub last_write: Cycles,
}

const FULL_MASK: u8 = (1 << CACHELINES_PER_XPLINE) - 1;

impl WriteEntry {
    /// Returns `true` if all four cachelines have been written.
    pub fn fully_written(&self) -> bool {
        self.written == FULL_MASK
    }

    /// Returns `true` if eviction can skip the RMW read.
    pub fn write_only_evict(&self) -> bool {
        self.fully_written() || self.backed
    }
}

/// What kind of media traffic an eviction generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictKind {
    /// Fully written (or read-buffer-backed) line: one media write.
    WriteOnly,
    /// Partially written line: media read (RMW) plus media write.
    ReadModifyWrite,
}

/// Outcome of recording a write in the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// `true` if the write coalesced into an existing entry.
    pub hit: bool,
    /// Eviction performed to make room, if any.
    pub evicted: Option<(Addr, EvictKind)>,
}

/// Random-eviction write-combining buffer.
///
/// Entries are small `Copy` records living in one preallocated slab
/// (`Vec::with_capacity(capacity)`); slots are recycled in place via
/// `swap_remove`, so steady-state operation never allocates.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    entries: Vec<WriteEntry>,
    capacity: usize,
    rng: SplitMix64,
    seed: u64,
    hits: u64,
    misses: u64,
    /// Index of the most recently matched entry. Pure search-order hint:
    /// XPLine addresses are unique among entries, so checking the hinted
    /// slot first returns the same entry the linear scan would — it just
    /// makes the common streaming pattern (several consecutive cacheline
    /// writes into one XPLine) O(1) instead of a scan.
    hint: usize,
    /// Number of fully written entries (periodic-sweep candidates).
    full_candidates: usize,
    /// Conservative lower bound on `last_write` over the fully written
    /// entries (`Cycles::MAX` when there are none). Only lowered outside
    /// the sweep, so `full_since > threshold` proves no entry is old
    /// enough to flush and the per-operation sweep can skip its scan; the
    /// sweep itself recomputes the exact value from the survivors.
    full_since: Cycles,
}

impl WriteBuffer {
    /// Creates a buffer holding `capacity_lines` XPLines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(capacity_lines: usize, seed: u64) -> Self {
        assert!(capacity_lines > 0, "write buffer capacity must be positive");
        WriteBuffer {
            entries: Vec::with_capacity(capacity_lines),
            capacity: capacity_lines,
            rng: SplitMix64::new(seed),
            seed,
            hits: 0,
            misses: 0,
            hint: 0,
            full_candidates: 0,
            full_since: Cycles::MAX,
        }
    }

    /// Records that `written` just reached the full mask at time `now`.
    #[inline]
    fn note_became_full(&mut self, now: Cycles) {
        self.full_candidates += 1;
        self.full_since = self.full_since.min(now);
    }

    /// Records the removal of `entry` from the buffer (the conservative
    /// `full_since` bound is left alone; it only causes a wasted scan).
    #[inline]
    fn note_removed(&mut self, entry: &WriteEntry) {
        if entry.fully_written() {
            self.full_candidates -= 1;
        }
    }

    /// Finds the entry for `xpline`, consulting the hint slot first.
    #[inline]
    fn find(&mut self, xpline: Addr) -> Option<usize> {
        if let Some(e) = self.entries.get(self.hint) {
            if e.xpline == xpline {
                return Some(self.hint);
            }
        }
        let pos = self.entries.iter().position(|e| e.xpline == xpline)?;
        self.hint = pos;
        Some(pos)
    }

    /// Records a 64 B write to `addr` at time `now`.
    ///
    /// Coalesces into an existing entry when possible; otherwise allocates
    /// a slot, evicting a random victim if the buffer is full.
    pub fn write(&mut self, now: Cycles, addr: Addr) -> WriteOutcome {
        let xpline = addr.xpline();
        let bit = 1u8 << addr.cacheline_in_xpline();
        if let Some(pos) = self.find(xpline) {
            let e = &mut self.entries[pos];
            let was_full = e.fully_written();
            e.written |= bit;
            e.last_write = now;
            if !was_full && e.fully_written() {
                self.note_became_full(now);
            }
            self.hits += 1;
            return WriteOutcome {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;
        let evicted = if self.entries.len() >= self.capacity {
            let victim = self.rng.gen_range(self.entries.len() as u64) as usize;
            let e = self.entries.swap_remove(victim);
            self.note_removed(&e);
            let kind = if e.write_only_evict() {
                EvictKind::WriteOnly
            } else {
                EvictKind::ReadModifyWrite
            };
            Some((e.xpline, kind))
        } else {
            None
        };
        self.entries.push(WriteEntry {
            xpline,
            written: bit,
            backed: false,
            last_write: now,
        });
        if bit == FULL_MASK {
            self.note_became_full(now);
        }
        self.hint = self.entries.len() - 1;
        WriteOutcome {
            hit: false,
            evicted,
        }
    }

    /// Installs an XPLine migrated from the read buffer, with the cacheline
    /// at `addr` written and the rest backed by the buffered line.
    ///
    /// If the XPLine already has a write-buffer entry, the migration merely
    /// marks it backed. Returns an eviction, if one was needed.
    pub fn install_backed(&mut self, now: Cycles, addr: Addr) -> Option<(Addr, EvictKind)> {
        let xpline = addr.xpline();
        let bit = 1u8 << addr.cacheline_in_xpline();
        if let Some(pos) = self.find(xpline) {
            let e = &mut self.entries[pos];
            let was_full = e.fully_written();
            e.written |= bit;
            e.backed = true;
            e.last_write = now;
            if !was_full && e.fully_written() {
                self.note_became_full(now);
            }
            self.hits += 1;
            return None;
        }
        self.hits += 1; // The write itself hit on-DIMM state (the read buffer).
        let evicted = if self.entries.len() >= self.capacity {
            let victim = self.rng.gen_range(self.entries.len() as u64) as usize;
            let e = self.entries.swap_remove(victim);
            self.note_removed(&e);
            let kind = if e.write_only_evict() {
                EvictKind::WriteOnly
            } else {
                EvictKind::ReadModifyWrite
            };
            Some((e.xpline, kind))
        } else {
            None
        };
        self.entries.push(WriteEntry {
            xpline,
            written: bit,
            backed: true,
            last_write: now,
        });
        if bit == FULL_MASK {
            self.note_became_full(now);
        }
        self.hint = self.entries.len() - 1;
        evicted
    }

    /// Returns `true` if the cacheline at `addr` can be served from the
    /// buffer (it was written, or its XPLine is backed).
    pub fn serves_read(&self, addr: Addr) -> bool {
        let xpline = addr.xpline();
        let bit = 1u8 << addr.cacheline_in_xpline();
        self.entries
            .get(self.hint)
            .filter(|e| e.xpline == xpline)
            .or_else(|| self.entries.iter().find(|e| e.xpline == xpline))
            .is_some_and(|e| e.backed || e.written & bit != 0)
    }

    /// Returns `true` if the XPLine containing `addr` has an entry.
    pub fn contains_xpline(&self, addr: Addr) -> bool {
        let xpline = addr.xpline();
        self.entries.iter().any(|e| e.xpline == xpline)
    }

    /// Removes and returns every entry with its eviction kind (power-fail
    /// ADR flush).
    pub fn drain_all(&mut self) -> Vec<(Addr, EvictKind)> {
        self.full_candidates = 0;
        self.full_since = Cycles::MAX;
        self.entries
            .drain(..)
            .map(|e| {
                let kind = if e.write_only_evict() {
                    EvictKind::WriteOnly
                } else {
                    EvictKind::ReadModifyWrite
                };
                (e.xpline, kind)
            })
            .collect()
    }

    /// Removes and returns fully written entries older than `threshold`
    /// (the G1 periodic write-back sweep).
    pub fn sweep_full_lines(&mut self, threshold: Cycles) -> Vec<Addr> {
        // This runs on every DIMM operation; the tracker proves the
        // common case (nothing old enough to flush) without a scan.
        if self.full_candidates == 0 || self.full_since > threshold {
            return Vec::new();
        }
        let mut flushed = Vec::new();
        self.entries.retain(|e| {
            if e.fully_written() && e.last_write <= threshold {
                flushed.push(e.xpline);
                false
            } else {
                true
            }
        });
        self.full_candidates = 0;
        self.full_since = Cycles::MAX;
        for e in &self.entries {
            if e.fully_written() {
                self.full_candidates += 1;
                self.full_since = self.full_since.min(e.last_write);
            }
        }
        flushed
    }

    /// Returns the XPLine addresses currently buffered, sorted by address
    /// (fault injection surveys the ADR-resident set this way; entry order
    /// is occupancy order and would leak `swap_remove` history).
    pub fn resident_xplines(&self) -> Vec<Addr> {
        let mut lines: Vec<Addr> = self.entries.iter().map(|e| e.xpline).collect();
        lines.sort_unstable_by_key(|a| a.0);
        lines
    }

    /// Returns the number of occupied slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the configured capacity in XPLines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the hit/miss counters observed so far.
    pub fn counters(&self) -> HitMiss {
        HitMiss::of(self.hits, self.misses)
    }

    /// Clears contents and statistics and rewinds the victim-selection
    /// RNG to its seed, so a reset buffer is indistinguishable from a
    /// freshly constructed one. Checkpoint/restore relies on this: a
    /// cold-reset machine and a machine rebuilt from its snapshot must
    /// behave identically from then on.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.rng = SplitMix64::new(self.seed);
        self.full_candidates = 0;
        self.full_since = Cycles::MAX;
        self.reset_stats();
    }

    /// Clears statistics only; buffered contents and the RNG stream stay
    /// untouched.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb(cap: usize) -> WriteBuffer {
        WriteBuffer::new(cap, 0x5EED)
    }

    #[test]
    fn writes_coalesce() {
        let mut b = wb(4);
        let o1 = b.write(0, Addr(0));
        assert!(!o1.hit);
        let o2 = b.write(1, Addr(64));
        assert!(o2.hit, "sibling cacheline coalesces");
        let o3 = b.write(2, Addr(0));
        assert!(o3.hit, "rewrite coalesces");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn full_buffer_evicts_randomly() {
        let mut b = wb(2);
        b.write(0, Addr(0));
        b.write(0, Addr(256));
        let o = b.write(0, Addr(512));
        let (victim, kind) = o.evicted.expect("eviction required");
        assert!(victim == Addr(0) || victim == Addr(256));
        assert_eq!(kind, EvictKind::ReadModifyWrite); // single-cacheline entries
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fully_written_line_evicts_without_rmw() {
        let mut b = wb(1);
        for cl in 0..4u64 {
            b.write(0, Addr(cl * 64));
        }
        let o = b.write(0, Addr(256));
        assert_eq!(o.evicted, Some((Addr(0), EvictKind::WriteOnly)));
    }

    #[test]
    fn backed_line_evicts_without_rmw() {
        let mut b = wb(1);
        b.install_backed(0, Addr(64));
        let o = b.write(0, Addr(256));
        assert_eq!(o.evicted, Some((Addr(0), EvictKind::WriteOnly)));
    }

    #[test]
    fn backed_entries_serve_reads() {
        let mut b = wb(2);
        b.install_backed(0, Addr(0));
        assert!(b.serves_read(Addr(0)));
        assert!(b.serves_read(Addr(128)), "backing covers unwritten lines");
        b.write(0, Addr(256));
        assert!(b.serves_read(Addr(256)));
        assert!(
            !b.serves_read(Addr(320)),
            "unwritten line of an unbacked entry needs the media"
        );
    }

    #[test]
    fn sweep_flushes_only_old_full_lines() {
        let mut b = wb(4);
        for cl in 0..4u64 {
            b.write(100, Addr(cl * 64)); // full line, last write at 100
        }
        b.write(100, Addr(256)); // partial line
        for cl in 0..4u64 {
            b.write(9000, Addr(512 + cl * 64)); // full line, too recent
        }
        let flushed = b.sweep_full_lines(5000);
        assert_eq!(flushed, vec![Addr(0)]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn hit_ratio_decays_gracefully_beyond_capacity() {
        // Random partial writes over twice the capacity: random eviction
        // keeps the hit ratio near capacity/wss instead of collapsing to 0
        // (Figure 4).
        let cap = 64;
        let mut b = wb(cap);
        let wss_lines = 2 * cap as u64;
        let mut rng = SplitMix64::new(99);
        // Warm up.
        for _ in 0..10_000 {
            let line = rng.gen_range(wss_lines);
            b.write(0, Addr(line * 256));
        }
        let warm = b.counters();
        for _ in 0..20_000 {
            let line = rng.gen_range(wss_lines);
            b.write(0, Addr(line * 256));
        }
        let hit_ratio = b.counters().delta(&warm).hit_ratio();
        assert!(
            (0.3..0.7).contains(&hit_ratio),
            "expected graceful decay near cap/wss = 0.5, got {hit_ratio}"
        );
    }

    #[test]
    fn resident_xplines_are_sorted() {
        let mut b = wb(4);
        b.write(0, Addr(512));
        b.write(0, Addr(0));
        b.write(0, Addr(256));
        assert_eq!(
            b.resident_xplines(),
            vec![Addr(0), Addr(256), Addr(512)],
            "sorted regardless of insertion order"
        );
    }

    #[test]
    fn install_backed_merges_with_existing_entry() {
        let mut b = wb(2);
        b.write(0, Addr(0));
        b.install_backed(1, Addr(64));
        assert_eq!(b.len(), 1);
        assert!(b.serves_read(Addr(128)), "merged entry is backed");
    }
}
