//! Property tests for the on-DIMM buffers: capacity bounds, exclusivity,
//! coalescing, and traffic accounting under random access streams.

use proptest::prelude::*;
use simbase::{Addr, XPLINE_BYTES};
use xpdimm::{
    read_buffer::RbLookup, DimmController, DimmParams, ReadBuffer, ReadSource, WriteBuffer,
};
use xpmedia::MediaParams;

fn dimm(writeback: bool) -> DimmController {
    DimmController::new(DimmParams {
        read_buffer_lines: 8,
        write_buffer_lines: 6,
        rb_hit_latency: 200,
        wcb_hit_latency: 150,
        writeback_period: writeback.then_some(5000),
        media: MediaParams {
            ait_coverage_bytes: 1 << 20,
            ..MediaParams::default()
        },
        seed: 42,
    })
}

proptest! {
    #[test]
    fn read_buffer_occupancy_never_exceeds_capacity(
        addrs in prop::collection::vec(0u64..64, 1..300),
        cap in 1usize..16,
    ) {
        let mut rb = ReadBuffer::new(cap);
        for a in addrs {
            let addr = Addr(a * 64);
            if rb.lookup_consume(addr) == RbLookup::Miss {
                rb.fill_and_consume(addr);
            }
            prop_assert!(rb.len() <= cap);
        }
    }

    #[test]
    fn read_buffer_exclusivity_consume_once(
        cachelines in prop::collection::vec(0u64..32, 1..200),
    ) {
        // Any cacheline can hit at most once between two fills of its
        // XPLine: delivered lines leave the buffer.
        let mut rb = ReadBuffer::new(64); // never capacity-evicts here
        let mut available: std::collections::HashSet<u64> = Default::default();
        for cl in cachelines {
            let addr = Addr(cl * 64);
            match rb.lookup_consume(addr) {
                RbLookup::Hit => {
                    prop_assert!(available.remove(&cl), "hit on unavailable line {cl}");
                }
                RbLookup::Miss => {
                    rb.fill_and_consume(addr);
                    // The fill makes the three siblings available and
                    // consumes the demanded line.
                    let xp = (cl / 4) * 4;
                    for s in xp..xp + 4 {
                        available.insert(s);
                    }
                    available.remove(&cl);
                }
            }
        }
    }

    #[test]
    fn write_buffer_occupancy_and_coalescing(
        writes in prop::collection::vec(0u64..48, 1..400),
        cap in 1usize..12,
    ) {
        let mut wb = WriteBuffer::new(cap, 7);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for cl in writes {
            let addr = Addr(cl * 64);
            let xp = addr.xpline().0;
            let out = wb.write(0, addr);
            prop_assert_eq!(out.hit, resident.contains(&xp), "coalescing mismatch");
            if let Some((victim, _)) = out.evicted {
                prop_assert!(resident.remove(&victim.0), "evicted non-resident");
            }
            resident.insert(xp);
            prop_assert!(wb.len() <= cap);
            prop_assert_eq!(wb.len(), resident.len());
        }
    }

    #[test]
    fn small_partial_write_sets_never_touch_media(
        writes in prop::collection::vec((0u64..5, 0u64..3), 1..300),
    ) {
        // 5 XPLines, partial writes only, no periodic write-back: a G2-ish
        // DIMM must absorb everything in its 6-line buffer.
        let mut d = dimm(false);
        let mut now = 0;
        for (xp, cl) in writes {
            d.write_cacheline(now, Addr(xp * XPLINE_BYTES + cl * 64));
            now += 100;
        }
        prop_assert_eq!(d.media_counters().write, 0);
        prop_assert_eq!(d.stats().rmw_reads, 0);
    }

    #[test]
    fn media_read_traffic_matches_miss_count(
        reads in prop::collection::vec(0u64..128, 1..300),
    ) {
        let mut d = dimm(false);
        let mut now = 0;
        let mut media_fetches = 0u64;
        for cl in reads {
            let (done, src) = d.read_cacheline(now, Addr(cl * 64));
            if src == ReadSource::Media {
                media_fetches += 1;
            }
            now = done;
        }
        prop_assert_eq!(d.media_counters().read, media_fetches * XPLINE_BYTES);
    }

    #[test]
    fn mixed_traffic_time_monotone_and_accounted(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..300),
    ) {
        let mut d = dimm(true);
        let mut now = 0u64;
        for (cl, is_write) in ops {
            let addr = Addr(cl * 64);
            let done = if is_write {
                d.write_cacheline(now, addr)
            } else {
                d.read_cacheline(now, addr).0
            };
            prop_assert!(done > now, "operations take time");
            now = done;
        }
        let s = d.stats();
        // Accounting identity: media writes = (evictions + periodic
        // write-backs) * XPLine.
        prop_assert_eq!(
            s.media.write,
            (s.evictions + s.periodic_writebacks) * XPLINE_BYTES
        );
        // RMW reads are a subset of media reads.
        prop_assert!(s.rmw_reads * XPLINE_BYTES <= s.media.read);
    }
}
