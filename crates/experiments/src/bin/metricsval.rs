//! `metricsval`: validates a `simwatch` JSONL time series against the
//! metrics schema.
//!
//! Usage:
//!
//! ```text
//! metricsval [--schema PATH] FILE.jsonl   # validate a series
//! metricsval --print-schema               # print the built-in schema
//! ```
//!
//! The emitter ([`obs::Sampler`]) writes keys in a fixed order — `t`,
//! `ctx`, then the registry columns — so validation is a strict
//! in-order scan, not a general JSON parse: every row must carry every
//! column, counters and gauges must be non-negative integers, and
//! ratios must be finite numbers or `null`. CI runs this against the
//! checked-in `schemas/metrics.schema.json` so a drifting emitter (or
//! a drifting schema) fails the build rather than silently producing
//! artifacts nothing can read.
//!
//! A matrix run's concatenated series mixes two registries: machine
//! rows (E1/E3) and fleet rows from the cluster/rebalance jobs, whose
//! `ctx` starts with `"cluster "` and whose schema is a pure function
//! of the shard count ([`cluster::cluster_registry`]). Fleet rows are
//! validated — just as strictly — against that registry, rebuilt at
//! the shard count the row itself declares (one `s{i}_up` gauge per
//! shard).
//!
//! Exit codes: 0 when every row validates, 1 on any mismatch, 2 on bad
//! arguments or unreadable files.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;

use cluster::cluster_registry;
use optane_core::machine_schema_json;

/// One schema column: name plus the value shape it allows.
struct Column {
    name: String,
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Non-negative integer (counters, depth gauges).
    Integer,
    /// Finite number or `null` (ratios with an empty denominator).
    Number,
}

fn bad_args(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: metricsval [--schema PATH] FILE.jsonl | metricsval --print-schema");
    std::process::exit(2);
}

/// Extracts the ordered `(name, kind)` column list from the schema
/// JSON. The schema is machine-written with one column object per
/// line, so a line scan is exact.
fn parse_schema(schema: &str) -> Vec<Column> {
    let mut cols = Vec::new();
    for line in schema.lines() {
        let Some(name) = field(line, "name") else {
            continue;
        };
        let kind = match field(line, "kind").as_deref() {
            Some("counter") | Some("gauge") => Kind::Integer,
            Some("ratio") => Kind::Number,
            other => bad_args(&format!("schema column {name:?} has bad kind {other:?}")),
        };
        cols.push(Column { name, kind });
    }
    if cols.is_empty() {
        bad_args("schema declares no columns");
    }
    cols
}

/// Returns the string value of `"key": "..."` on this line, if present.
fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// A strict in-order scanner over one JSONL row.
struct Scan<'a> {
    rest: &'a str,
}

impl<'a> Scan<'a> {
    fn expect(&mut self, lit: &str) -> Result<(), String> {
        match self.rest.strip_prefix(lit) {
            Some(r) => {
                self.rest = r;
                Ok(())
            }
            None => Err(format!(
                "expected {lit:?} at ...{:?}",
                &self.rest[..self.rest.len().min(40)]
            )),
        }
    }

    /// Consumes a JSON string body up to the closing quote (the emitter
    /// escapes embedded quotes, so a backslash-aware scan suffices).
    fn string_body(&mut self) -> Result<(), String> {
        let bytes = self.rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(());
                }
                _ => i += 1,
            }
        }
        Err("unterminated string".into())
    }

    /// Consumes a numeric/null value token and checks it against `kind`.
    fn value(&mut self, kind: Kind) -> Result<(), String> {
        if let Some(r) = self.rest.strip_prefix("null") {
            if kind == Kind::Integer {
                return Err("integer column is null".into());
            }
            self.rest = r;
            return Ok(());
        }
        let end = self
            .rest
            .find([',', '}'])
            .ok_or_else(|| "unterminated value".to_string())?;
        let tok = &self.rest[..end];
        match kind {
            Kind::Integer => {
                tok.parse::<u64>()
                    .map_err(|_| format!("bad integer {tok:?}"))?;
            }
            Kind::Number => {
                let v = tok
                    .parse::<f64>()
                    .map_err(|_| format!("bad number {tok:?}"))?;
                if !v.is_finite() {
                    return Err(format!("non-finite number {tok:?}"));
                }
            }
        }
        self.rest = &self.rest[end..];
        Ok(())
    }
}

/// Validates one row against the column list.
fn check_row(line: &str, cols: &[Column]) -> Result<(), String> {
    let mut s = Scan { rest: line };
    s.expect("{\"t\":")?;
    s.value(Kind::Integer)?;
    s.expect(",\"ctx\":\"")?;
    s.string_body()?;
    for c in cols {
        s.expect(&format!(",\"{}\":", c.name))?;
        s.value(c.kind)
            .map_err(|e| format!("column {:?}: {e}", c.name))?;
    }
    s.expect("}")?;
    if !s.rest.is_empty() {
        return Err(format!("trailing bytes {:?}", s.rest));
    }
    Ok(())
}

fn main() {
    let mut schema_path: Option<PathBuf> = None;
    let mut file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--print-schema" => {
                print!("{}", machine_schema_json());
                return;
            }
            "--schema" => {
                schema_path = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| bad_args("--schema needs a file path")),
                ));
            }
            "-h" | "--help" => bad_args("validate simwatch JSONL output"),
            other if other.starts_with('-') => bad_args(&format!("unknown flag: {other}")),
            other => {
                if file.replace(PathBuf::from(other)).is_some() {
                    bad_args("exactly one FILE.jsonl expected");
                }
            }
        }
    }
    let Some(file) = file else {
        bad_args("missing FILE.jsonl to validate");
    };
    let schema = match &schema_path {
        Some(p) => std::fs::read_to_string(p)
            .unwrap_or_else(|e| bad_args(&format!("cannot read schema {}: {e}", p.display()))),
        None => machine_schema_json(),
    };
    let cols = parse_schema(&schema);
    let series = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| bad_args(&format!("cannot read {}: {e}", file.display())));

    let mut rows = 0u64;
    let mut errors = 0u64;
    let mut fleet_cols: BTreeMap<usize, Vec<Column>> = BTreeMap::new();
    for (i, line) in series.lines().enumerate() {
        rows += 1;
        let row_cols: &[Column] = if line.contains(",\"ctx\":\"cluster ") {
            let n_shards = line.matches("_up\":").count();
            fleet_cols
                .entry(n_shards)
                .or_insert_with(|| parse_schema(&cluster_registry(n_shards).schema_json()))
        } else {
            &cols
        };
        if let Err(e) = check_row(line, row_cols) {
            errors += 1;
            eprintln!("{}:{}: {e}", file.display(), i + 1);
        }
    }
    if errors > 0 {
        eprintln!("{errors}/{rows} rows failed validation");
        std::process::exit(1);
    }
    println!(
        "{}: {rows} rows valid against {} columns",
        file.display(),
        cols.len()
    );
}
