//! `repro`: regenerates every table and figure of the paper's evaluation
//! under a supervised job scheduler.
//!
//! Usage:
//!
//! ```text
//! repro [e0|e1|..|e9|table1|mixes|pmcheck|faultsim|all] \
//!       [--full | --smoke] [--out DIR] [--gen g1|g2|both] \
//!       [--parallel N] [--resume] [--deadline SECS] [--seed N] \
//!       [--inject panic:JOB|hang:JOB]
//! ```
//!
//! Every experiment runs as an independent job on a worker pool
//! (`--parallel N`, default 1). A panicking or hanging experiment is
//! isolated — its failure is recorded with a typed error in
//! `results/manifest.json` and the remaining matrix still runs. Long
//! jobs checkpoint periodically; a killed run restarted with `--resume`
//! skips completed jobs and resumes interrupted ones from their last
//! checkpoint, producing byte-identical results to an uninterrupted run
//! at the same seed.
//!
//! Exit codes: 0 when every selected job succeeded, 1 when any job
//! failed (panic, timeout, validation mismatch, I/O), 2 on bad
//! arguments.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Duration;

use experiments::jobs::{self, Inject, Scale};
use harness::{write_atomic, RunConfig, Scheduler};
use optane_core::Generation;

struct Options {
    which: Vec<String>,
    scale: Scale,
    out: PathBuf,
    gens: Vec<Generation>,
    parallel: usize,
    resume: bool,
    deadline: Option<Duration>,
    seed: u64,
    injections: Vec<(String, Inject)>,
}

fn usage() -> ! {
    println!(
        "usage: repro [e0|e1|..|e9|table1|mixes|pmcheck|faultsim|all] \
         [--full | --smoke] [--out DIR] [--gen g1|g2|both] [--parallel N] \
         [--resume] [--deadline SECS] [--seed N] [--inject panic:JOB|hang:JOB]"
    );
    std::process::exit(0);
}

fn bad_args(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut which = Vec::new();
    let mut full = false;
    let mut smoke = false;
    let mut out = PathBuf::from("results");
    let mut gens = vec![Generation::G1, Generation::G2];
    let mut parallel = 1usize;
    let mut resume = false;
    let mut deadline = None;
    let mut seed = 42u64;
    let mut injections = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => full = true,
            "--smoke" => smoke = true,
            "--resume" => resume = true,
            "--out" => {
                out = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| bad_args("--out needs a directory")),
                );
            }
            "--gen" => {
                let g = args.next().unwrap_or_default();
                gens = match g.as_str() {
                    "g1" | "G1" => vec![Generation::G1],
                    "g2" | "G2" => vec![Generation::G2],
                    "both" => vec![Generation::G1, Generation::G2],
                    other => bad_args(&format!("unknown generation: {other}")),
                };
            }
            "--parallel" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| bad_args("--parallel needs a positive integer"));
                if n == 0 {
                    bad_args("--parallel needs a positive integer");
                }
                parallel = n;
            }
            "--deadline" => {
                let secs = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or_else(|| bad_args("--deadline needs seconds"));
                if secs <= 0.0 || !secs.is_finite() {
                    bad_args("--deadline needs positive seconds");
                }
                deadline = Some(Duration::from_secs_f64(secs));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| bad_args("--seed needs an integer"));
            }
            "--inject" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| bad_args("--inject needs panic:JOB or hang:JOB"));
                let (mode, job) = match spec.split_once(':') {
                    Some(("panic", j)) => (Inject::Panic, j),
                    Some(("hang", j)) => (Inject::Hang, j),
                    _ => bad_args(&format!("bad --inject spec '{spec}'")),
                };
                injections.push((job.to_string(), mode));
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => bad_args(&format!("unknown flag: {other}")),
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    if full && smoke {
        bad_args("--full and --smoke are mutually exclusive");
    }
    let scale = if full {
        Scale::Full
    } else if smoke {
        Scale::Smoke
    } else {
        Scale::Default
    };
    Options {
        which,
        scale,
        out,
        gens,
        parallel,
        resume,
        deadline,
        seed,
        injections,
    }
}

fn main() {
    let opts = parse_args();
    let mut job_list = jobs::matrix(&opts.which, &opts.gens, opts.scale, &opts.out);
    if job_list.is_empty() {
        bad_args(&format!("no experiments match selection {:?}", opts.which));
    }
    let known_ids: Vec<String> = job_list.iter().map(|j| j.id()).collect();
    for (target, mode) in &opts.injections {
        if !jobs::apply_injection(&mut job_list, target, *mode) {
            bad_args(&format!(
                "--inject target '{target}' is not in the matrix; jobs: {known_ids:?}"
            ));
        }
    }

    let mut cfg = RunConfig::new(&opts.out);
    cfg.parallel = opts.parallel;
    cfg.deadline = opts.deadline;
    cfg.base_seed = opts.seed;
    cfg.scale = opts.scale.tag().to_string();
    cfg.resume = opts.resume;

    let t_start = std::time::Instant::now();
    let report = match Scheduler::new(cfg).run(job_list) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scheduler error: {e}");
            std::process::exit(1);
        }
    };

    // Print summaries in submission (matrix) order — parallel workers
    // never interleave output — and assemble the deterministic report
    // file. Failures contribute only their error *kind* to report.txt so
    // resumed and uninterrupted runs stay byte-comparable (timeout
    // details carry wall-clock durations).
    let mut report_text = String::new();
    for j in &report.jobs {
        report_text.push_str(&format!("== {} ==\n", j.job_id));
        match &j.outcome {
            Ok(out) => {
                println!("{}\n", out.summary);
                report_text.push_str(&out.summary);
                report_text.push('\n');
            }
            Err(e) => {
                report_text.push_str(&format!("FAILED ({})\n", e.kind()));
            }
        }
    }
    if let Err(e) = write_atomic(&opts.out.join("report.txt"), report_text.as_bytes()) {
        eprintln!("warning: could not write report.txt: {e}");
    }

    let failures = report.failures();
    let skipped = report.jobs.iter().filter(|j| j.skipped).count();
    eprintln!(
        "done in {:.1}s; {}/{} jobs succeeded ({} resumed as complete); results in {}",
        t_start.elapsed().as_secs_f64(),
        report.completed(),
        report.jobs.len(),
        skipped,
        opts.out.display()
    );
    if !failures.is_empty() {
        eprintln!("failed jobs:");
        for (id, err) in &failures {
            eprintln!("  {id}: {err}");
        }
        std::process::exit(1);
    }
}
