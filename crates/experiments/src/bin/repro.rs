//! `repro`: regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [e0|e1|..|e9|table1|mixes|pmcheck|faultsim|all] \
//!       [--full | --smoke] [--out DIR] [--gen g1|g2|both]
//! ```
//!
//! Prints each figure as an aligned table and writes a CSV per panel into
//! the output directory (default `results/`). `--full` runs closer to
//! paper scale (larger working sets and op counts; minutes instead of
//! seconds); `--smoke` shrinks the validation suites (`pmcheck`,
//! `faultsim`) to CI scale.
//!
//! Exit codes: 0 on success, 1 when a run fails or a cross-validation
//! (`pmcheck`, `faultsim`) finds a mismatch, 2 on bad arguments.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use experiments::common::log_sweep;
use experiments::common::ExpResult;
use experiments::e0_bandwidth;
use experiments::ext_mixes;
use experiments::{
    e10_pmcheck, e11_faultsim, e1_read_buffer, e2_prefetch, e3_write_amp, e4_wb_hit, e5_rap,
    e6_latency, e7_cceh, e8_btree, e9_redirect, table1,
};
use optane_core::Generation;

struct Options {
    which: Vec<String>,
    full: bool,
    smoke: bool,
    out: PathBuf,
    gens: Vec<Generation>,
}

fn parse_args() -> Options {
    let mut which = Vec::new();
    let mut full = false;
    let mut smoke = false;
    let mut out = PathBuf::from("results");
    let mut gens = vec![Generation::G1, Generation::G2];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => full = true,
            "--smoke" => smoke = true,
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--gen" => {
                let g = args.next().unwrap_or_default();
                gens = match g.as_str() {
                    "g1" | "G1" => vec![Generation::G1],
                    "g2" | "G2" => vec![Generation::G2],
                    "both" => vec![Generation::G1, Generation::G2],
                    other => {
                        eprintln!("unknown generation: {other}");
                        std::process::exit(2);
                    }
                };
            }
            "-h" | "--help" => {
                println!(
                    "usage: repro [e0|e1|..|e9|table1|mixes|pmcheck|faultsim|all] \
                     [--full | --smoke] [--out DIR] [--gen g1|g2|both]"
                );
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    if full && smoke {
        eprintln!("--full and --smoke are mutually exclusive");
        std::process::exit(2);
    }
    Options {
        which,
        full,
        smoke,
        out,
        gens,
    }
}

/// Unwraps an experiment result or exits with code 1 and the typed error.
fn run_or_die<T>(name: &str, r: Result<T, experiments::common::ExpError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(1);
        }
    }
}

fn emit(out_dir: &std::path::Path, results: &[ExpResult]) {
    for r in results {
        println!("{}", r.to_table());
        let slug: String = r
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>()
            .to_lowercase();
        let path = out_dir.join(format!("{slug}.csv"));
        if let Err(e) = fs::write(&path, r.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn main() {
    let opts = parse_args();
    if let Err(e) = fs::create_dir_all(&opts.out) {
        eprintln!("cannot create {}: {e}", opts.out.display());
        std::process::exit(1);
    }
    let run_all = opts.which.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || opts.which.iter().any(|w| w == name);
    let max_wss: u64 = if opts.full { 1 << 30 } else { 64 << 20 };
    let t_start = std::time::Instant::now();
    // Set when a cross-validation suite reports a mismatch; the process
    // exits 1 so CI catches it.
    let mut validation_failed = false;

    if wants("e0") {
        for &gen in &opts.gens {
            let r = e0_bandwidth::run(&e0_bandwidth::E0Params {
                generation: gen,
                blocks_per_thread: if opts.full { 50_000 } else { 10_000 },
                ..Default::default()
            });
            emit(&opts.out, &[r]);
        }
    }
    if wants("e1") {
        for &gen in &opts.gens {
            let r = e1_read_buffer::run(&e1_read_buffer::E1Params {
                generation: gen,
                ..Default::default()
            });
            emit(&opts.out, &[r]);
        }
    }
    if wants("e2") {
        for &gen in &opts.gens {
            let r = e2_prefetch::run(&e2_prefetch::E2Params {
                generation: gen,
                wss_points: log_sweep(4 << 10, max_wss, 1),
                ..Default::default()
            });
            emit(&opts.out, &r);
        }
    }
    if wants("e3") {
        for &gen in &opts.gens {
            let r = e3_write_amp::run(&e3_write_amp::E3Params {
                generation: gen,
                ..Default::default()
            });
            emit(&opts.out, &[r]);
        }
    }
    if wants("e4") {
        let r = e4_wb_hit::run(&e4_wb_hit::E4Params::default());
        emit(&opts.out, &[r]);
    }
    if wants("e5") {
        for &gen in &opts.gens {
            let r = run_or_die(
                "e5",
                e5_rap::run(&e5_rap::E5Params {
                    generation: gen,
                    iters: if opts.full { 20_000 } else { 3000 },
                    ..Default::default()
                }),
            );
            emit(&opts.out, &r);
        }
    }
    if wants("e6") {
        for &gen in &opts.gens {
            let r = run_or_die(
                "e6",
                e6_latency::run(&e6_latency::E6Params {
                    generation: gen,
                    wss_points: log_sweep(4 << 10, max_wss, 1),
                    ..Default::default()
                }),
            );
            emit(&opts.out, &r);
        }
    }
    if wants("table1") {
        let r = table1::run(&table1::Table1Params {
            inserts: if opts.full { 2_000_000 } else { 100_000 },
            ..Default::default()
        });
        println!("# Table 1: time breakdown of key insertion in CCEH (G1)");
        println!("{r}");
        let _ = fs::write(opts.out.join("table1.txt"), format!("{r}"));
    }
    if wants("e7") {
        let r = run_or_die(
            "e7",
            e7_cceh::run(&e7_cceh::E7Params {
                inserts_per_worker: if opts.full { 200_000 } else { 20_000 },
                ..Default::default()
            }),
        );
        emit(&opts.out, &r);
    }
    if wants("e8") {
        let r = e8_btree::run(&e8_btree::E8Params {
            inserts: if opts.full { 400_000 } else { 40_000 },
            generations: opts.gens.clone(),
            ..Default::default()
        });
        emit(&opts.out, &r);
    }
    if wants("mixes") {
        for &gen in &opts.gens {
            let r = ext_mixes::run(&ext_mixes::MixParams {
                generation: gen,
                records: if opts.full { 500_000 } else { 50_000 },
                ops: if opts.full { 500_000 } else { 50_000 },
                ..Default::default()
            });
            emit(&opts.out, &[r]);
        }
    }
    if wants("pmcheck") {
        let mut text = String::new();
        let mut all_validated = true;
        for &gen in &opts.gens {
            let outcomes = e10_pmcheck::run(&e10_pmcheck::E10Params {
                generation: gen,
                cceh_inserts: if opts.full {
                    5000
                } else if opts.smoke {
                    150
                } else {
                    400
                },
                btree_inserts: if opts.full {
                    2000
                } else if opts.smoke {
                    120
                } else {
                    300
                },
                ..Default::default()
            });
            println!("# pmcheck: persist-ordering analysis, {gen}");
            for o in &outcomes {
                println!("{}", o.summary());
                text.push_str(&format!("== {gen} ==\n"));
                text.push_str(&o.report.to_text());
                text.push('\n');
                all_validated &= o.validated;
            }
            let json = e10_pmcheck::to_json(&outcomes);
            let path = opts
                .out
                .join(format!("pmcheck_{}.json", gen.to_string().to_lowercase()));
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        let _ = fs::write(opts.out.join("pmcheck.txt"), text);
        println!(
            "pmcheck cross-validation: {}",
            if all_validated {
                "all verdicts agree with simulated crash outcomes"
            } else {
                "MISMATCH between checker verdicts and crash outcomes"
            }
        );
        validation_failed |= !all_validated;
    }
    if wants("faultsim") {
        let mut all_validated = true;
        for &gen in &opts.gens {
            let params = if opts.smoke {
                e11_faultsim::E11Params::smoke(gen)
            } else {
                e11_faultsim::E11Params {
                    generation: gen,
                    cceh_inserts: if opts.full { 2000 } else { 240 },
                    btree_inserts: if opts.full { 1000 } else { 160 },
                    ..Default::default()
                }
            };
            let outcomes = run_or_die("faultsim", e11_faultsim::run(&params));
            println!("# faultsim: fault injection + crash-state exploration, {gen}");
            for o in &outcomes {
                println!("{}", o.summary());
                all_validated &= o.validated;
            }
            let json = e11_faultsim::to_json(&outcomes);
            let path = opts
                .out
                .join(format!("faultsim_{}.json", gen.to_string().to_lowercase()));
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        println!(
            "faultsim cross-validation: {}",
            if all_validated {
                "all faultsim verdicts agree with crash-state exploration"
            } else {
                "MISMATCH between checker verdicts and explored crash states"
            }
        );
        validation_failed |= !all_validated;
    }
    if wants("e9") {
        for &gen in &opts.gens {
            let threads = match gen {
                Generation::G1 => vec![1, 2, 4, 8, 12, 16],
                Generation::G2 => vec![1, 2, 4, 8, 12, 16, 20, 24],
            };
            let p = e9_redirect::E9Params {
                generation: gen,
                wss_points: log_sweep(4 << 10, max_wss, 1),
                visits: if opts.full { 200_000 } else { 40_000 },
                threads,
                ..Default::default()
            };
            let f13 = e9_redirect::run_fig13(&p);
            emit(&opts.out, &[f13]);
            let f14 = e9_redirect::run_fig14(&p);
            emit(&opts.out, &f14);
        }
    }
    eprintln!(
        "done in {:.1}s; CSVs in {}",
        t_start.elapsed().as_secs_f64(),
        opts.out.display()
    );
    if validation_failed {
        std::process::exit(1);
    }
}
