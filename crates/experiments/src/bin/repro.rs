//! `repro`: regenerates every table and figure of the paper's evaluation
//! under a supervised job scheduler.
//!
//! Usage:
//!
//! ```text
//! repro [e0|e1|..|e9|e15|table1|mixes|pmcheck|faultsim|cluster|rebalance|bench|all] \
//!       [--full | --smoke] [--out DIR] [--gen g1|g2|both] \
//!       [--parallel N] [--resume] [--deadline SECS] [--seed N] \
//!       [--metrics PATH] [--sample-interval CYCLES] \
//!       [--inject panic:JOB|hang:JOB]
//! ```
//!
//! `--metrics PATH` turns on `simwatch` sampling: the sampling-capable
//! experiments (E1, E3) poll the unified machine metrics every
//! `--sample-interval` simulated cycles (default 100 000) and emit
//! per-job `metrics_*.jsonl` artifacts; after the run those are
//! concatenated, in matrix order, into PATH. The series is a pure
//! function of the simulated instruction stream, so two runs at the
//! same seed produce byte-identical files. The end-of-run report gains
//! a queue-occupancy section (RPQ/WPQ max depth, WPQ time-at-full)
//! summarized from the final sample of each context.
//!
//! Every experiment runs as an independent job on a worker pool
//! (`--parallel N`, default 1). A panicking or hanging experiment is
//! isolated — its failure is recorded with a typed error in
//! `results/manifest.json` and the remaining matrix still runs. Long
//! jobs checkpoint periodically; a killed run restarted with `--resume`
//! skips completed jobs and resumes interrupted ones from their last
//! checkpoint, producing byte-identical results to an uninterrupted run
//! at the same seed.
//!
//! Exit codes: 0 when every selected job succeeded, 1 when any job
//! failed (panic, timeout, validation mismatch, I/O), 2 on bad
//! arguments.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Duration;

use experiments::common::MetricsSpec;
use experiments::jobs::{self, Inject, Scale};
use harness::{write_atomic, RunConfig, Scheduler};
use optane_core::Generation;

/// Default `--sample-interval`, in simulated cycles.
const DEFAULT_SAMPLE_INTERVAL: u64 = 100_000;

struct Options {
    which: Vec<String>,
    scale: Scale,
    out: PathBuf,
    gens: Vec<Generation>,
    parallel: usize,
    resume: bool,
    deadline: Option<Duration>,
    seed: u64,
    metrics: Option<PathBuf>,
    sample_interval: u64,
    injections: Vec<(String, Inject)>,
}

fn usage() -> ! {
    println!(
        "usage: repro [e0|e1|..|e9|e15|table1|mixes|pmcheck|faultsim|cluster|rebalance|bench|all] \
         [--full | --smoke] [--out DIR] [--gen g1|g2|both] [--parallel N] \
         [--resume] [--deadline SECS] [--seed N] [--metrics PATH] \
         [--sample-interval CYCLES] [--inject panic:JOB|hang:JOB]"
    );
    std::process::exit(0);
}

fn bad_args(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut which = Vec::new();
    let mut full = false;
    let mut smoke = false;
    let mut out = PathBuf::from("results");
    let mut gens = vec![Generation::G1, Generation::G2];
    let mut parallel = 1usize;
    let mut resume = false;
    let mut deadline = None;
    let mut seed = 42u64;
    let mut metrics = None;
    let mut sample_interval = DEFAULT_SAMPLE_INTERVAL;
    let mut injections = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => full = true,
            "--smoke" => smoke = true,
            "--resume" => resume = true,
            "--out" => {
                out = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| bad_args("--out needs a directory")),
                );
            }
            "--gen" => {
                let g = args.next().unwrap_or_default();
                gens = match g.as_str() {
                    "g1" | "G1" => vec![Generation::G1],
                    "g2" | "G2" => vec![Generation::G2],
                    "both" => vec![Generation::G1, Generation::G2],
                    other => bad_args(&format!("unknown generation: {other}")),
                };
            }
            "--parallel" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| bad_args("--parallel needs a positive integer"));
                if n == 0 {
                    bad_args("--parallel needs a positive integer");
                }
                parallel = n;
            }
            "--deadline" => {
                let secs = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or_else(|| bad_args("--deadline needs seconds"));
                if secs <= 0.0 || !secs.is_finite() {
                    bad_args("--deadline needs positive seconds");
                }
                deadline = Some(Duration::from_secs_f64(secs));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| bad_args("--seed needs an integer"));
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| bad_args("--metrics needs a file path")),
                ));
            }
            "--sample-interval" => {
                sample_interval = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| bad_args("--sample-interval needs a cycle count"));
                if sample_interval == 0 {
                    bad_args("--sample-interval needs a positive cycle count");
                }
            }
            "--inject" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| bad_args("--inject needs panic:JOB or hang:JOB"));
                let (mode, job) = match spec.split_once(':') {
                    Some(("panic", j)) => (Inject::Panic, j),
                    Some(("hang", j)) => (Inject::Hang, j),
                    _ => bad_args(&format!("bad --inject spec '{spec}'")),
                };
                injections.push((job.to_string(), mode));
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => bad_args(&format!("unknown flag: {other}")),
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    if full && smoke {
        bad_args("--full and --smoke are mutually exclusive");
    }
    let scale = if full {
        Scale::Full
    } else if smoke {
        Scale::Smoke
    } else {
        Scale::Default
    };
    Options {
        which,
        scale,
        out,
        gens,
        parallel,
        resume,
        deadline,
        seed,
        metrics,
        sample_interval,
        injections,
    }
}

fn main() {
    // The divergence witness has its own CLI (it spawns this binary as
    // `divergence-child` subprocesses); intercept before normal parsing.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("divergence") => {
            std::process::exit(experiments::divergence::parent_main(&argv[1..]));
        }
        Some("divergence-child") => {
            std::process::exit(experiments::divergence::child_main(&argv[1..]));
        }
        _ => {}
    }
    let opts = parse_args();
    let spec = opts.metrics.as_ref().map(|_| MetricsSpec {
        interval: opts.sample_interval,
    });
    let mut job_list = jobs::matrix(&opts.which, &opts.gens, opts.scale, &opts.out, spec);
    if job_list.is_empty() {
        bad_args(&format!("no experiments match selection {:?}", opts.which));
    }
    let known_ids: Vec<String> = job_list.iter().map(|j| j.id()).collect();
    for (target, mode) in &opts.injections {
        if !jobs::apply_injection(&mut job_list, target, *mode) {
            bad_args(&format!(
                "--inject target '{target}' is not in the matrix; jobs: {known_ids:?}"
            ));
        }
    }

    let mut cfg = RunConfig::new(&opts.out);
    cfg.parallel = opts.parallel;
    cfg.deadline = opts.deadline;
    cfg.base_seed = opts.seed;
    cfg.scale = opts.scale.tag().to_string();
    cfg.resume = opts.resume;

    let t_start = std::time::Instant::now();
    let report = match Scheduler::new(cfg).run(job_list) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scheduler error: {e}");
            std::process::exit(1);
        }
    };

    // Print summaries in submission (matrix) order — parallel workers
    // never interleave output — and assemble the deterministic report
    // file. Failures contribute only their error *kind* to report.txt so
    // resumed and uninterrupted runs stay byte-comparable (timeout
    // details carry wall-clock durations).
    let mut report_text = String::new();
    for j in &report.jobs {
        report_text.push_str(&format!("== {} ==\n", j.job_id));
        match &j.outcome {
            Ok(out) => {
                println!("{}\n", out.summary);
                report_text.push_str(&out.summary);
                report_text.push('\n');
            }
            Err(e) => {
                report_text.push_str(&format!("FAILED ({})\n", e.kind()));
            }
        }
    }
    if let Err(e) = write_atomic(&opts.out.join("report.txt"), report_text.as_bytes()) {
        eprintln!("warning: could not write report.txt: {e}");
    }

    // Concatenate the per-job simwatch time series — in matrix order, so
    // parallel and resumed runs produce byte-identical files — into the
    // path named by --metrics.
    if let Some(metrics_path) = &opts.metrics {
        let mut series = String::new();
        for j in &report.jobs {
            if let Ok(out) = &j.outcome {
                for rel in &out.artifacts {
                    let name = rel.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    if name.starts_with("metrics_") && name.ends_with(".jsonl") {
                        match std::fs::read_to_string(opts.out.join(rel)) {
                            Ok(s) => series.push_str(&s),
                            Err(e) => eprintln!(
                                "warning: could not read metrics artifact {}: {e}",
                                rel.display()
                            ),
                        }
                    }
                }
            }
        }
        if let Err(e) = write_atomic(metrics_path, series.as_bytes()) {
            eprintln!("warning: could not write {}: {e}", metrics_path.display());
        } else {
            eprintln!(
                "simwatch time series ({} samples) in {}",
                series.lines().count(),
                metrics_path.display()
            );
        }
    }

    let failures = report.failures();
    let skipped = report.jobs.iter().filter(|j| j.skipped).count();
    eprintln!(
        "done in {:.1}s; {}/{} jobs succeeded ({} resumed as complete); results in {}",
        t_start.elapsed().as_secs_f64(),
        report.completed(),
        report.jobs.len(),
        skipped,
        opts.out.display()
    );
    if !failures.is_empty() {
        eprintln!("failed jobs:");
        for (id, err) in &failures {
            eprintln!("  {id}: {err}");
        }
        std::process::exit(1);
    }
}
