//! Shared experiment infrastructure: result containers, table rendering,
//! CSV output, scale handling, and the experiment error type.

use std::fmt;

use simbase::Cycles;

/// A request for `simwatch` sampled metrics, threaded through experiment
/// parameters. Experiments that honour it poll a
/// [`MachineSampler`](optane_core::MachineSampler) from their measurement
/// loop and surface the time series via [`ExpResult::metrics_jsonl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSpec {
    /// Sampling interval in simulated cycles.
    pub interval: Cycles,
}

/// A typed experiment failure: the run could not produce results. Runner
/// `run` functions return this instead of panicking so the `repro` binary
/// can report the problem and exit nonzero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpError {
    /// The parameter set cannot drive a meaningful run (empty sweep,
    /// zero iteration count, …).
    BadParams(String),
    /// A result the caller relies on is absent (missing curve, missing
    /// sample point). Replaces `unwrap()` on result lookups so a shape
    /// change in an experiment's output surfaces as a typed failure.
    MissingData(String),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::BadParams(why) => write!(f, "bad experiment parameters: {why}"),
            ExpError::MissingData(what) => write!(f, "missing experiment data: {what}"),
        }
    }
}

impl std::error::Error for ExpError {}

/// One labelled curve: `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Legend label, matching the paper's figure legends.
    pub label: String,
    /// Data points in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Curve {
    /// Creates an empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        Curve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Returns the y value at the given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Like [`Curve::y_at`], but a missing sample is a typed error naming
    /// the curve and the x value.
    pub fn require_y(&self, x: f64) -> Result<f64, ExpError> {
        self.y_at(x).ok_or_else(|| {
            ExpError::MissingData(format!("curve `{}` has no sample at x={x}", self.label))
        })
    }

    /// Returns the maximum y value.
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max)
    }

    /// Returns the minimum y value.
    pub fn y_min(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::MAX, f64::min)
    }
}

/// A reproduced figure or table: a set of curves over a common x axis.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Experiment id, e.g. "E1 / Figure 2".
    pub name: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The curves.
    pub curves: Vec<Curve>,
    /// `simwatch` time series (JSON lines), present when the experiment
    /// was asked to sample metrics (see [`MetricsSpec`]).
    pub metrics_jsonl: Option<String>,
    /// Free-form notes rendered under the table (queue occupancy, …).
    pub notes: Vec<String>,
}

impl ExpResult {
    /// Creates an empty result.
    pub fn new(
        name: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExpResult {
            name: name.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            curves: Vec::new(),
            metrics_jsonl: None,
            notes: Vec::new(),
        }
    }

    /// Finds a curve by label.
    pub fn curve(&self, label: &str) -> Option<&Curve> {
        self.curves.iter().find(|c| c.label == label)
    }

    /// Like [`ExpResult::curve`], but a missing curve is a typed error
    /// listing the labels that do exist.
    pub fn require_curve(&self, label: &str) -> Result<&Curve, ExpError> {
        self.curve(label).ok_or_else(|| {
            let have: Vec<&str> = self.curves.iter().map(|c| c.label.as_str()).collect();
            ExpError::MissingData(format!(
                "result `{}` has no curve `{label}` (curves: {have:?})",
                self.name
            ))
        })
    }

    /// Renders an aligned text table (x column plus one column per curve).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.name));
        let mut xs: Vec<f64> = self
            .curves
            .iter()
            .flat_map(|c| c.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        // Header.
        out.push_str(&format!("{:>14}", self.x_label));
        for c in &self.curves {
            out.push_str(&format!("  {:>18}", truncate(&c.label, 18)));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{:>14}", format_num(x)));
            for c in &self.curves {
                match c.y_at(x) {
                    Some(y) => out.push_str(&format!("  {:>18}", format_num(y))),
                    None => out.push_str(&format!("  {:>18}", "-")),
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Renders CSV (`x,label1,label2,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for c in &self.curves {
            out.push(',');
            out.push_str(&c.label.replace(',', ";"));
        }
        out.push('\n');
        let mut xs: Vec<f64> = self
            .curves
            .iter()
            .flat_map(|c| c.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for &x in &xs {
            out.push_str(&format!("{x}"));
            for c in &self.curves {
                out.push(',');
                if let Some(y) = c.y_at(x) {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 {
        format!("{:.3e}", v)
    } else if v.fract().abs() < 1e-9 && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders a queue-occupancy summary line for an experiment's notes:
/// the §2.4 RPQ/WPQ pressure view of a whole run.
pub fn occupancy_note(q: &optane_core::ImcQueueStats) -> String {
    format!(
        "queue occupancy: rpq max depth {}, wpq max depth {}, wpq time-at-full {} cycles \
         over {} writes",
        q.rpq.max_depth, q.wpq.max_depth, q.wpq.stall_cycles, q.wpq.accepts
    )
}

/// Formats a byte count like the paper's axes (4KB, 16MB, 1GB).
pub fn format_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{}GB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Logarithmic working-set sweep from `lo` to `hi` (powers of 4 by
/// default, matching the paper's 4KB → 1GB axes).
pub fn log_sweep(lo: u64, hi: u64, per_decade: u32) -> Vec<u64> {
    let mut out = Vec::new();
    let ratio = 4f64.powf(1.0 / per_decade as f64);
    let mut v = lo as f64;
    while v <= hi as f64 * 1.001 {
        let r = (v.round() as u64).next_multiple_of(256);
        if out.last() != Some(&r) {
            out.push(r);
        }
        v *= ratio;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_queries() {
        let mut c = Curve::new("a");
        c.push(1.0, 10.0);
        c.push(2.0, 30.0);
        assert_eq!(c.y_at(2.0), Some(30.0));
        assert_eq!(c.y_at(3.0), None);
        assert_eq!(c.y_max(), 30.0);
        assert_eq!(c.y_min(), 10.0);
    }

    #[test]
    fn table_renders_all_points() {
        let mut r = ExpResult::new("T", "x", "y");
        let mut a = Curve::new("a");
        a.push(1.0, 2.0);
        let mut b = Curve::new("b");
        b.push(1.0, 3.0);
        b.push(2.0, 4.0);
        r.curves = vec![a, b];
        let t = r.to_table();
        assert!(t.contains("# T"));
        assert!(t.contains('2'));
        assert!(t.contains('-'), "missing samples are dashes");
    }

    #[test]
    fn csv_round_trips_structure() {
        let mut r = ExpResult::new("T", "x", "y");
        let mut a = Curve::new("a");
        a.push(1.0, 2.5);
        r.curves = vec![a];
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a");
        assert_eq!(lines[1], "1,2.5");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(4096), "4KB");
        assert_eq!(format_bytes(16 << 20), "16MB");
        assert_eq!(format_bytes(1 << 30), "1GB");
        assert_eq!(format_bytes(100), "100B");
    }

    #[test]
    fn exp_error_displays_the_reason() {
        let e = ExpError::BadParams("iters must be nonzero".into());
        assert_eq!(
            e.to_string(),
            "bad experiment parameters: iters must be nonzero"
        );
    }

    #[test]
    fn log_sweep_is_monotonic_and_bounded() {
        let s = log_sweep(4096, 1 << 26, 2);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.first().unwrap() >= 4096);
        assert!(*s.last().unwrap() <= (1 << 26) + 256);
        assert!(s.len() > 8);
    }
}
