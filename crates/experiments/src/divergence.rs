//! `repro divergence`: the dual-process determinism witness.
//!
//! The static half of the determinism contract (`simlint`) proves the
//! *code* cannot depend on unordered state; this module proves the *runs*
//! actually agree. `repro divergence <exp>` re-executes the `repro`
//! binary twice as `divergence-child` subprocesses with the same seed.
//! Separate processes mean separate SipHash keys, separate address-space
//! layouts, separate allocator histories — exactly the nondeterminism
//! sources that survive in-process double-run tests. Each child attaches
//! an [`OpStreamHasher`] as every machine's TraceSink and reports four
//! FNV-1a hashes: the op stream, the encoded machine checkpoints, the
//! `simwatch` JSONL rows, and the rendered result tables.
//!
//! On mismatch the parent bisects: children are re-run with `--prefix K`
//! (hash only the first K ops) and a binary search finds the first
//! divergent op index in ~2·log2(ops) re-runs; a final `--dump` pair
//! captures the rendered ops around that index for a two-sided diff.
//! `--perturb K` plants a deliberate divergence at op K in the second
//! child — the smoke mode uses it to prove the bisector actually works,
//! not just that nothing diverges.

use std::cell::RefCell;
use std::path::PathBuf;
use std::process::Command;

use optane_core::trace::TraceSink;
use optane_core::Machine;
use simlint::witness::{
    bisect_first_divergence, compare_reports, fnv1a_bytes, render_diff, ChildReport,
    DivergenceOutcome, OpStreamHasher, SharedHasher, FNV_OFFSET,
};

use crate::common::MetricsSpec;
use crate::{e0_bandwidth, e12_cluster, e13_rebalance, e14_simspeed, e15_mt, e3_write_amp};

/// The tap an experiment threads through its measurement loops: a shared
/// op-stream hasher handed to every machine as its TraceSink, plus a
/// running hash of every machine's encoded checkpoint.
pub struct WitnessTap {
    hasher: SharedHasher,
    checkpoint_hash: RefCell<u64>,
}

impl WitnessTap {
    /// Wraps a configured hasher.
    pub fn new(h: OpStreamHasher) -> Self {
        WitnessTap {
            hasher: SharedHasher::new(h),
            checkpoint_hash: RefCell::new(FNV_OFFSET),
        }
    }

    /// A sink handle for one machine (all handles share one hasher, so
    /// the op stream is hashed in global simulation order).
    pub fn sink(&self) -> Box<dyn TraceSink> {
        Box::new(self.hasher.clone())
    }

    /// Folds a machine's encoded checkpoint into the state hash. Called
    /// by the experiment at the end of each machine's measurement.
    pub fn fold_machine(&self, m: &mut Machine) {
        let bytes = m.checkpoint().encode();
        self.fold_checkpoint_bytes(&bytes);
    }

    /// Folds an already-encoded checkpoint into the state hash — the
    /// cluster experiment hands back per-shard checkpoint blobs rather
    /// than exposing its machines.
    pub fn fold_checkpoint_bytes(&self, bytes: &[u8]) {
        let mut h = self.checkpoint_hash.borrow_mut();
        *h = fnv1a_bytes(*h, bytes);
    }

    /// Assembles the child's report from everything observed.
    pub fn report(&self, metrics_jsonl: Option<&str>, result_text: &str) -> ChildReport {
        let h = self.hasher.0.borrow();
        ChildReport {
            ops: h.ops(),
            trace_hash: h.hash(),
            checkpoint_hash: *self.checkpoint_hash.borrow(),
            metrics_hash: metrics_jsonl
                .map(|s| fnv1a_bytes(FNV_OFFSET, s.as_bytes()))
                .unwrap_or(0),
            result_hash: fnv1a_bytes(FNV_OFFSET, result_text.as_bytes()),
            dump: h.dumped().to_vec(),
        }
    }
}

/// Witness workload sizes: small enough that a bisection (tens of child
/// re-runs) stays in CI budget, big enough to exercise buffers, caches,
/// and the sampler.
#[derive(Debug, Clone, Copy)]
struct ChildOpts {
    exp: Experiment,
    seed: u64,
    smoke: bool,
    prefix: Option<u64>,
    dump: Option<(u64, u64)>,
    perturb: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Experiment {
    E0,
    E3,
    E12,
    E13,
    E14,
    E15,
}

impl Experiment {
    fn name(self) -> &'static str {
        match self {
            Experiment::E0 => "e0",
            Experiment::E3 => "e3",
            Experiment::E12 => "e12",
            Experiment::E13 => "e13",
            Experiment::E14 => "e14",
            Experiment::E15 => "e15",
        }
    }

    fn parse(s: &str) -> Option<Experiment> {
        match s {
            "e0" => Some(Experiment::E0),
            "e3" => Some(Experiment::E3),
            "e12" => Some(Experiment::E12),
            "e13" => Some(Experiment::E13),
            "e14" => Some(Experiment::E14),
            "e15" => Some(Experiment::E15),
            _ => None,
        }
    }
}

fn run_child(opts: &ChildOpts) -> ChildReport {
    let mut hasher = OpStreamHasher::new();
    if let Some(k) = opts.prefix {
        hasher = hasher.with_prefix_limit(k);
    }
    if let Some((a, b)) = opts.dump {
        hasher = hasher.with_dump_range(a, b);
    }
    if let Some(k) = opts.perturb {
        hasher = hasher.with_perturb_at(k);
    }
    let tap = WitnessTap::new(hasher);
    let (metrics, text) = match opts.exp {
        Experiment::E0 => {
            let params = e0_bandwidth::E0Params {
                threads: vec![1, 2],
                blocks_per_thread: if opts.smoke { 200 } else { 1000 },
                seed: opts.seed,
                ..Default::default()
            };
            let result = e0_bandwidth::run_traced(&params, Some(&tap));
            let text = format!("{}\n{}", result.to_table(), result.to_csv());
            (result.metrics_jsonl, text)
        }
        Experiment::E3 => {
            let params = e3_write_amp::E3Params {
                wss_points: vec![4 << 10, 16 << 10],
                rounds: if opts.smoke { 3 } else { 6 },
                metrics: Some(MetricsSpec { interval: 50_000 }),
                seed: opts.seed,
                ..Default::default()
            };
            let result = e3_write_amp::run_traced(&params, Some(&tap));
            let text = format!("{}\n{}", result.to_table(), result.to_csv());
            (result.metrics_jsonl, text)
        }
        Experiment::E12 => {
            // One load point keeps a bisection's tens of re-runs in CI
            // budget while still crossing the power-fail + recovery path
            // that produces replacement machines mid-run.
            let mut params = e12_cluster::E12Params::smoke(opts.seed);
            params.interarrival_points = vec![1_500];
            if opts.smoke {
                params.preload_keys = 120;
                params.ops = 500;
            }
            params.metrics = Some(MetricsSpec { interval: 40_000 });
            match e12_cluster::run_traced(&params, Some(&tap)) {
                Ok(out) => {
                    let mut text = String::new();
                    for r in &out.results {
                        text.push_str(&r.to_table());
                        text.push('\n');
                        text.push_str(&r.to_csv());
                    }
                    text.push_str(&out.availability_report);
                    let metrics = out.results.iter().find_map(|r| r.metrics_jsonl.clone());
                    (metrics, text)
                }
                // A typed failure still yields a deterministic report:
                // both children fail identically or the witness flags it.
                Err(e) => (None, format!("e12 error: {e}\n")),
            }
        }
        Experiment::E13 => {
            // One mid-Copy source-crash drill: the migration + recovery
            // path with the fewest runs that still crosses epoch bumps,
            // control-record replay, and anti-entropy repair.
            let mut params = e13_rebalance::E13Params::smoke(opts.seed);
            params.drills = vec![e13_rebalance::FULL_DRILLS[2]];
            if opts.smoke {
                params.preload_keys = 120;
                params.ops = 600;
            }
            params.metrics = Some(MetricsSpec { interval: 40_000 });
            match e13_rebalance::run_traced(&params, Some(&tap)) {
                Ok(out) => {
                    let mut text = String::new();
                    for r in &out.results {
                        text.push_str(&r.to_table());
                        text.push('\n');
                        text.push_str(&r.to_csv());
                    }
                    text.push_str(&out.rebalance_report);
                    let metrics = out.results.iter().find_map(|r| r.metrics_jsonl.clone());
                    (metrics, text)
                }
                // A typed failure still yields a deterministic report:
                // both children fail identically or the witness flags it.
                Err(e) => (None, format!("e13 error: {e}\n")),
            }
        }
        Experiment::E14 => {
            // The speed suite doubles as a batching witness: the tap
            // replaces each scenario's own observer, so the hashed op
            // stream covers all three hot paths (including the batched
            // ones) under every attachment variant.
            let params = if opts.smoke {
                e14_simspeed::E14Params::smoke(opts.seed)
            } else {
                e14_simspeed::E14Params {
                    seed: opts.seed,
                    ..Default::default()
                }
            };
            let out = e14_simspeed::run_traced(&params, Some(&tap));
            let mut text = e14_simspeed::bench_json(&out);
            text.push_str(&out.result.to_table());
            text.push('\n');
            text.push_str(&out.result.to_csv());
            (out.result.metrics_jsonl.clone(), text)
        }
        Experiment::E15 => {
            // Exercises the executor under BOTH scheduler policies (the
            // structure sweep runs round-robin and seeded-random per
            // point), the locked-RMW trace events, and the detectable
            // stack/queue step machines — all folded into one witness.
            let params = e15_mt::E15Params {
                threads: if opts.smoke {
                    vec![1, 2]
                } else {
                    vec![1, 2, 4]
                },
                blocks_per_thread: if opts.smoke { 200 } else { 800 },
                rap_iters_per_thread: if opts.smoke { 100 } else { 400 },
                ops_per_thread: if opts.smoke { 24 } else { 80 },
                sched_seed: opts.seed,
                ..Default::default()
            };
            match e15_mt::run_traced(&params, Some(&tap)) {
                Ok(results) => {
                    let mut text = String::new();
                    for r in &results {
                        text.push_str(&r.to_table());
                        text.push('\n');
                        text.push_str(&r.to_csv());
                    }
                    let metrics = results.iter().find_map(|r| r.metrics_jsonl.clone());
                    (metrics, text)
                }
                // A typed failure still yields a deterministic report:
                // both children fail identically or the witness flags it.
                Err(e) => (None, format!("e15 error: {e}\n")),
            }
        }
    };
    tap.report(metrics.as_deref(), &text)
}

/// Entry point for `repro divergence-child <exp> [flags]`. Prints the
/// wire-format report on stdout.
pub fn child_main(args: &[String]) -> i32 {
    let mut opts = ChildOpts {
        exp: Experiment::E0,
        seed: 42,
        smoke: false,
        prefix: None,
        dump: None,
        perturb: None,
    };
    let mut exp_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return child_usage("--seed needs an integer"),
            },
            "--smoke" => opts.smoke = true,
            "--prefix" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.prefix = Some(v),
                None => return child_usage("--prefix needs an op count"),
            },
            "--dump" => {
                let a = it.next().and_then(|v| v.parse().ok());
                let b = it.next().and_then(|v| v.parse().ok());
                match (a, b) {
                    (Some(a), Some(b)) => opts.dump = Some((a, b)),
                    _ => return child_usage("--dump needs two op indices"),
                }
            }
            "--perturb" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.perturb = Some(v),
                None => return child_usage("--perturb needs an op index"),
            },
            other => match Experiment::parse(other) {
                Some(e) => {
                    opts.exp = e;
                    exp_set = true;
                }
                None => return child_usage(&format!("unknown argument `{other}`")),
            },
        }
    }
    if !exp_set {
        return child_usage("which experiment? (e0|e3|e12|e13|e14|e15)");
    }
    print!("{}", run_child(&opts).to_wire());
    0
}

fn child_usage(msg: &str) -> i32 {
    eprintln!("divergence-child: {msg}");
    2
}

/// Parent-side options for `repro divergence`.
struct ParentOpts {
    exps: Vec<Experiment>,
    seed: u64,
    smoke: bool,
    perturb: Option<u64>,
    out: Option<PathBuf>,
}

/// Spawns one child and parses its report. `extra` carries probe flags
/// (`--prefix`, `--dump`, `--perturb`).
fn spawn_child(
    opts: &ParentOpts,
    exp: Experiment,
    extra: &[String],
) -> Result<ChildReport, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("divergence-child")
        .arg(exp.name())
        .arg("--seed")
        .arg(opts.seed.to_string());
    if opts.smoke {
        cmd.arg("--smoke");
    }
    cmd.args(extra);
    let output = cmd
        .output()
        .map_err(|e| format!("cannot spawn child: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "child exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    ChildReport::parse(&String::from_utf8_lossy(&output.stdout))
}

/// Runs the witness for one experiment: two fresh children, compare,
/// bisect on mismatch. Returns a human-readable verdict plus whether the
/// runs agreed.
fn witness_one(opts: &ParentOpts, exp: Experiment) -> Result<(String, bool), String> {
    let perturb_flags: Vec<String> = match opts.perturb {
        Some(k) => vec!["--perturb".into(), k.to_string()],
        None => Vec::new(),
    };
    let a = spawn_child(opts, exp, &[])?;
    let b = spawn_child(opts, exp, &perturb_flags)?;
    match compare_reports(&a, &b) {
        DivergenceOutcome::Identical { ops, trace_hash } => Ok((
            format!(
                "{}: {} ops, trace hash {:#018x} — two fresh processes agree \
                 (checkpoints {:#018x}, metrics {:#018x}, results {:#018x})",
                exp.name(),
                ops,
                trace_hash,
                a.checkpoint_hash,
                a.metrics_hash,
                a.result_hash
            ),
            true,
        )),
        DivergenceOutcome::StateOnly { fields } => Ok((
            format!(
                "{}: op streams agree ({} ops) but derived state diverges: {}",
                exp.name(),
                a.ops,
                fields.join(", ")
            ),
            false,
        )),
        DivergenceOutcome::Diverged { .. } => {
            if a.ops != b.ops {
                return Ok((
                    format!(
                        "{}: op COUNTS diverge: {} vs {} — the instruction streams \
                         themselves differ in length",
                        exp.name(),
                        a.ops,
                        b.ops
                    ),
                    false,
                ));
            }
            // Bisect to the first divergent op.
            let idx = bisect_first_divergence(a.ops, |k| {
                let probe = vec!["--prefix".to_string(), k.to_string()];
                let pa = spawn_child(opts, exp, &probe)?;
                let mut pb = probe.clone();
                pb.extend(perturb_flags.iter().cloned());
                let pb = spawn_child(opts, exp, &pb)?;
                Ok(pa.trace_hash != pb.trace_hash)
            })?;
            let window = (idx.saturating_sub(3), idx + 4);
            let dump = vec![
                "--dump".to_string(),
                window.0.to_string(),
                window.1.to_string(),
            ];
            let da = spawn_child(opts, exp, &dump)?;
            let mut db = dump.clone();
            db.extend(perturb_flags.iter().cloned());
            let db = spawn_child(opts, exp, &db)?;
            let diff = render_diff(idx, &da.dump, &db.dump);
            Ok((
                format!(
                    "{}: DIVERGED at op {idx} of {} (trace hashes {:#018x} vs {:#018x})\n\
                     ops around the divergence (A = run 1, B = run 2):\n{diff}",
                    exp.name(),
                    a.ops,
                    a.trace_hash,
                    b.trace_hash
                ),
                false,
            ))
        }
    }
}

/// Entry point for `repro divergence [e0|e3|e12|e13|e14|e15|all] [--seed N]
/// [--smoke] [--perturb K] [--out DIR]`.
///
/// Exit codes mirror the witness's claim: 0 when every selected
/// experiment's two fresh-process runs are hash-identical (or, under
/// `--perturb K`, when the planted divergence was found and bisected);
/// 1 when the runs diverge (or a planted divergence went undetected);
/// 2 on bad arguments or a failed child.
pub fn parent_main(args: &[String]) -> i32 {
    let mut opts = ParentOpts {
        exps: Vec::new(),
        seed: 42,
        smoke: false,
        perturb: None,
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return parent_usage("--seed needs an integer"),
            },
            "--smoke" => opts.smoke = true,
            "--perturb" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.perturb = Some(v),
                None => return parent_usage("--perturb needs an op index"),
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(PathBuf::from(p)),
                None => return parent_usage("--out needs a directory"),
            },
            "all" => {
                opts.exps = vec![
                    Experiment::E0,
                    Experiment::E3,
                    Experiment::E12,
                    Experiment::E13,
                    Experiment::E14,
                    Experiment::E15,
                ]
            }
            other => match Experiment::parse(other) {
                Some(e) => opts.exps.push(e),
                None => return parent_usage(&format!("unknown argument `{other}`")),
            },
        }
    }
    if opts.exps.is_empty() {
        opts.exps = vec![
            Experiment::E0,
            Experiment::E3,
            Experiment::E12,
            Experiment::E13,
            Experiment::E14,
            Experiment::E15,
        ];
    }

    let mut all_ok = true;
    let mut log = String::new();
    for &exp in &opts.exps {
        let (verdict, agreed) = match witness_one(&opts, exp) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("divergence: {e}");
                return 2;
            }
        };
        println!("divergence {verdict}");
        log.push_str(&verdict);
        log.push('\n');
        // Under --perturb the *expected* outcome is a detected divergence
        // at the planted index; silent agreement means the witness is
        // blind.
        let expected = match opts.perturb {
            None => agreed,
            Some(k) => !agreed && verdict.contains(&format!("at op {k} ")),
        };
        if let Some(k) = opts.perturb {
            if expected {
                println!(
                    "divergence {}: planted perturbation at op {k} was bisected correctly",
                    exp.name()
                );
            } else {
                println!(
                    "divergence {}: planted perturbation at op {k} was NOT correctly located",
                    exp.name()
                );
            }
        }
        all_ok &= expected;
    }
    if let Some(dir) = &opts.out {
        let path = dir.join("divergence.txt");
        if std::fs::create_dir_all(dir).is_ok() {
            if let Err(e) = std::fs::write(&path, &log) {
                eprintln!("divergence: cannot write {}: {e}", path.display());
            }
        }
    }
    if all_ok {
        0
    } else {
        1
    }
}

fn parent_usage(msg: &str) -> i32 {
    eprintln!("divergence: {msg}");
    eprintln!(
        "usage: repro divergence [e0|e3|e12|e13|e14|e15|all] [--seed N] [--smoke] [--perturb K] [--out DIR]"
    );
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_reports_are_stable_in_process() {
        let run = || {
            let opts = ChildOpts {
                exp: Experiment::E3,
                seed: 7,
                smoke: true,
                prefix: None,
                dump: None,
                perturb: None,
            };
            run_child(&opts)
        };
        let (a, b) = (run(), run());
        assert!(a.ops > 0, "witness observed no ops");
        assert!(a.agrees_with(&b), "{a:?} vs {b:?}");
        assert_ne!(a.metrics_hash, 0, "e3 witness samples metrics");
    }

    #[test]
    fn seed_reaches_the_machines() {
        let run = |seed| {
            let opts = ChildOpts {
                exp: Experiment::E0,
                seed,
                smoke: true,
                prefix: None,
                dump: None,
                perturb: None,
            };
            run_child(&opts)
        };
        let (a, b) = (run(1), run(2));
        // E0 never crashes, so the op stream is seed-independent — but the
        // checkpoint carries the config, so the seed must show up there.
        assert_eq!(a.ops, b.ops);
        assert_ne!(
            a.checkpoint_hash, b.checkpoint_hash,
            "different seeds must produce different machine configs"
        );
    }

    #[test]
    fn perturbed_child_diverges_and_prefix_isolates() {
        let run = |prefix, perturb| {
            let opts = ChildOpts {
                exp: Experiment::E0,
                seed: 7,
                smoke: true,
                prefix,
                dump: None,
                perturb,
            };
            run_child(&opts)
        };
        let clean = run(None, None);
        let planted = run(None, Some(5));
        assert_eq!(clean.ops, planted.ops);
        assert_ne!(clean.trace_hash, planted.trace_hash);
        // A prefix that stops before the perturbation agrees again.
        assert_eq!(
            run(Some(5), None).trace_hash,
            run(Some(5), Some(5)).trace_hash
        );
        assert_ne!(
            run(Some(6), None).trace_hash,
            run(Some(6), Some(5)).trace_hash
        );
    }
}
