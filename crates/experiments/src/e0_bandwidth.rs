//! E0 / §2.2: the "known performance characteristics" the paper builds
//! on, reproduced as a substrate validation: maximal read bandwidth is
//! about 3x maximal write bandwidth, and write bandwidth stops scaling at
//! a small thread count while read bandwidth scales further.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Interleaver, Machine, MachineConfig, SchedPolicy, Step, ThreadId};
use simbase::XPLINE_BYTES;

use crate::common::{Curve, ExpResult};
use crate::divergence::WitnessTap;

/// Parameters for E0.
#[derive(Debug, Clone)]
pub struct E0Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// XPLine accesses per thread per point.
    pub blocks_per_thread: u64,
    /// DIMM population.
    pub dimms: usize,
    /// Clock frequency for GB/s conversion.
    pub ghz: f64,
    /// Run seed, XORed into the machine's crash seed. The default 0
    /// leaves the generation-preset seed untouched, so existing results
    /// are byte-identical.
    pub seed: u64,
}

impl Default for E0Params {
    fn default() -> Self {
        E0Params {
            generation: Generation::G1,
            threads: vec![1, 2, 4, 8, 12, 16],
            blocks_per_thread: 10_000,
            dimms: 1,
            ghz: 2.1,
            seed: 0,
        }
    }
}

/// Runs E0: sequential read and nt-store write bandwidth vs. threads.
pub fn run(params: &E0Params) -> ExpResult {
    run_traced(params, None)
}

/// Runs E0 with an optional divergence-witness tap observing every
/// machine's op stream and final checkpoint (see `divergence`).
pub fn run_traced(params: &E0Params, tap: Option<&WitnessTap>) -> ExpResult {
    let mut result = ExpResult::new(
        format!(
            "E0 / §2.2: bandwidth scaling ({}, {} DIMM)",
            params.generation, params.dimms
        ),
        "threads",
        "GB/s",
    );
    let mut read = Curve::new("sequential read");
    let mut write = Curve::new("nt-store write");
    for &threads in &params.threads {
        read.push(threads as f64, measure(params, threads, false, tap));
        write.push(threads as f64, measure(params, threads, true, tap));
    }
    result.curves = vec![read, write];
    result
}

fn measure(params: &E0Params, threads: usize, write: bool, tap: Option<&WitnessTap>) -> f64 {
    let mut cfg =
        MachineConfig::for_generation(params.generation, PrefetchConfig::all(), params.dimms);
    cfg.crash_seed ^= params.seed;
    let mut m = Machine::new(cfg);
    if let Some(tap) = tap {
        m.set_trace_sink(tap.sink());
    }
    let tids: Vec<ThreadId> = (0..threads).map(|_| m.spawn(0)).collect();
    // Each thread streams over its own region so the caches and buffers
    // behave as in a bandwidth benchmark.
    let regions: Vec<_> = (0..threads)
        .map(|_| m.alloc_pm(params.blocks_per_thread * XPLINE_BYTES, 4096))
        .collect();
    let data = [0x5Au8; 64];
    // One XPLine per executor step; round-robin visits every lane once
    // per block index, reproducing the legacy `for b { for w }` nesting
    // byte-for-byte (see `executor_matches_legacy_nested_loops`).
    let mut issued = vec![0u64; threads];
    Interleaver::new(SchedPolicy::RoundRobin).run(
        &mut m,
        &tids,
        &mut |mm: &mut Machine, tid, lane: usize| {
            let b = issued[lane];
            if b == params.blocks_per_thread {
                return Step::Done;
            }
            issued[lane] = b + 1;
            let block = regions[lane].add_xplines(b);
            if write {
                // Batched: one dispatch per XPLine, byte-identical in
                // timing and trace to four single-line nt-stores.
                mm.nt_store_run(tid, block, &data, 4);
                if b.is_multiple_of(16) {
                    mm.sfence(tid);
                }
            } else {
                mm.load_u64_run(tid, block, 4);
                mm.clflushopt_run(tid, block, 4);
            }
            Step::Ran
        },
    );
    for &t in &tids {
        m.sfence(t);
    }
    let makespan = tids.iter().map(|&t| m.now(t)).max().expect("threads") as f64;
    if let Some(tap) = tap {
        tap.fold_machine(&mut m);
    }
    let bytes = (params.blocks_per_thread * threads as u64 * XPLINE_BYTES) as f64;
    bytes / makespan * params.ghz
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The legacy hand-rolled nesting this module used before the
    /// executor migration, kept verbatim as the byte-identity reference.
    fn measure_legacy(params: &E0Params, threads: usize, write: bool) -> f64 {
        let mut cfg =
            MachineConfig::for_generation(params.generation, PrefetchConfig::all(), params.dimms);
        cfg.crash_seed ^= params.seed;
        let mut m = Machine::new(cfg);
        let tids: Vec<ThreadId> = (0..threads).map(|_| m.spawn(0)).collect();
        let regions: Vec<_> = (0..threads)
            .map(|_| m.alloc_pm(params.blocks_per_thread * XPLINE_BYTES, 4096))
            .collect();
        let data = [0x5Au8; 64];
        for b in 0..params.blocks_per_thread {
            for w in 0..threads {
                let block = regions[w].add_xplines(b);
                if write {
                    m.nt_store_run(tids[w], block, &data, 4);
                    if b.is_multiple_of(16) {
                        m.sfence(tids[w]);
                    }
                } else {
                    m.load_u64_run(tids[w], block, 4);
                    m.clflushopt_run(tids[w], block, 4);
                }
            }
        }
        for &t in &tids {
            m.sfence(t);
        }
        let makespan = tids.iter().map(|&t| m.now(t)).max().expect("threads") as f64;
        let bytes = (params.blocks_per_thread * threads as u64 * XPLINE_BYTES) as f64;
        bytes / makespan * params.ghz
    }

    #[test]
    fn executor_matches_legacy_nested_loops() {
        let params = E0Params {
            blocks_per_thread: 500,
            ..E0Params::default()
        };
        for &threads in &[1usize, 3, 4] {
            for &write in &[false, true] {
                let exec = measure(&params, threads, write, None);
                let legacy = measure_legacy(&params, threads, write);
                assert_eq!(
                    exec.to_bits(),
                    legacy.to_bits(),
                    "round-robin executor must be byte-identical to the \
                     legacy `for b {{ for w }}` loop ({threads} threads, write={write})"
                );
            }
        }
    }

    #[test]
    fn read_write_asymmetry_and_saturation() {
        let r = run(&E0Params {
            threads: vec![1, 4, 8, 16],
            blocks_per_thread: 2000,
            ..E0Params::default()
        });
        let read = r.curve("sequential read").unwrap();
        let write = r.curve("nt-store write").unwrap();
        // §2.2: max read bandwidth ≈ 3x max write bandwidth.
        let ratio = read.y_max() / write.y_max();
        assert!(
            (1.8..5.0).contains(&ratio),
            "read/write bandwidth ratio ≈ 3, got {ratio:.2}"
        );
        // Write bandwidth saturates at a small thread count.
        let w4 = write.y_at(4.0).unwrap();
        let w16 = write.y_at(16.0).unwrap();
        assert!(
            w16 < w4 * 1.25,
            "write does not scale past ~4 threads: {w4:.2} -> {w16:.2}"
        );
        // Read keeps scaling further than write does.
        let r1 = read.y_at(1.0).unwrap();
        let r16 = read.y_at(16.0).unwrap();
        assert!(
            r16 > r1 * 1.5,
            "read scales with threads: {r1:.2} -> {r16:.2}"
        );
    }
}
