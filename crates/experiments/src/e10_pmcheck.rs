//! E10 / `repro pmcheck`: the persist-ordering checker over every
//! data-structure workload, cross-validated by the simulator.
//!
//! Each run attaches [`pmcheck::PmCheck`] to the machine, drives one of
//! the §4 data structures (pointer chase, CCEH, FAST-FAIR), then pulls
//! the plug with `power_fail(CrashPolicy::LoseUnflushed)` and recovers.
//! The checker's verdict is compared against what *actually* happened:
//!
//! - clean workloads must produce **zero error findings** and a complete
//!   recovery (no false positives);
//! - the redo-logged FAST-FAIR run documents the checker's one blind
//!   spot: deliberately deferred node writebacks are flagged and really
//!   are lost at the crash, but the committed `RingRedoLog` replays them
//!   — so recovery is still complete;
//! - workloads run under a [`pmds::FaultPlan`] that drops flushes must be
//!   flagged **missing-flush**, and recovery must actually lose keys
//!   (the predicted loss is real);
//! - workloads under a plan that drops fences must be flagged
//!   **missing-fence** with *nothing* predicted lost — and recovery must
//!   indeed be complete, because in this machine model (as on real ADR
//!   hardware) the WPQ drains unfenced flushes; the bug is that the
//!   program never had a point where durability was guaranteed.

use cpucache::PrefetchConfig;
use optane_core::{CrashPolicy, Generation, Machine, MachineConfig};
use pmcheck::{DiagKind, PmCheck, Report};
use pmds::{Cceh, ChaseList, FastFair, FaultPlan, FaultyEnv, UpdateStrategy, WriteKind};
use pmem::{PersistMode, SimEnv};
use workloads::AccessOrder;

/// Parameters for E10.
#[derive(Debug, Clone)]
pub struct E10Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Keys inserted into CCEH per run.
    pub cceh_inserts: u64,
    /// CCEH initial directory depth (sized so the seeded runs exercise
    /// bucket writes, not structural splits).
    pub cceh_depth: u64,
    /// Keys inserted into FAST-FAIR per run.
    pub btree_inserts: u64,
    /// Pointer-chase elements.
    pub chase_elements: u64,
    /// Seeded-fault knob: drop every Nth flush in the faulty runs.
    pub drop_nth_flush: u64,
}

impl Default for E10Params {
    fn default() -> Self {
        E10Params {
            generation: Generation::G1,
            cceh_inserts: 400,
            cceh_depth: 8,
            btree_inserts: 300,
            chase_elements: 64,
            drop_nth_flush: 5,
        }
    }
}

/// One workload's checker report plus the ground truth that judges it.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Workload label.
    pub name: String,
    /// What the run demonstrates.
    pub expectation: String,
    /// The checker's report (taken at the power failure).
    pub report: Report,
    /// Keys retrievable after crash + recovery.
    pub recovered_keys: u64,
    /// Keys that were inserted before the crash.
    pub expected_keys: u64,
    /// Whether the checker's verdict agrees with the crash outcome.
    pub validated: bool,
}

impl RunOutcome {
    /// One summary line for the terminal.
    pub fn summary(&self) -> String {
        format!(
            "{:28} errors={:<3} predicted-lost-lines={:<4} recovered {}/{} keys -> {}",
            self.name,
            self.report
                .diagnostics
                .iter()
                .filter(|d| d.severity() == pmcheck::Severity::Error)
                .count(),
            self.report.predicted_lost_lines().len(),
            self.recovered_keys,
            self.expected_keys,
            if self.validated {
                "VALIDATED"
            } else {
                "MISMATCH"
            }
        )
    }
}

fn machine(gen: Generation) -> Machine {
    Machine::new(MachineConfig::for_generation(
        gen,
        PrefetchConfig::none(),
        1,
    ))
}

/// Clean pointer chase: build, read laps, strict write laps. No crash —
/// the run must simply finish with nothing left unpersisted.
fn run_chase_clean(p: &E10Params) -> RunOutcome {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "chase-clean");
    {
        let mut env = SimEnv::new(&mut m, t);
        let list = ChaseList::build(&mut env, p.chase_elements, AccessOrder::Random, 7);
        list.lap_read(&mut env);
        list.lap_write(&mut env, WriteKind::Clwb, PersistMode::Strict, 0xAA);
        list.lap_write(&mut env, WriteKind::NtStore, PersistMode::Strict, 0xBB);
        list.lap_write(&mut env, WriteKind::Clwb, PersistMode::Relaxed, 0xCC);
    }
    let report = check.finish(&mut m);
    let clean = report.is_clean() && report.predicted_lost_lines().is_empty();
    RunOutcome {
        name: "chase-clean".into(),
        expectation: "no error findings on a disciplined workload".into(),
        validated: clean,
        report,
        recovered_keys: p.chase_elements,
        expected_keys: p.chase_elements,
    }
}

/// Clean CCEH: insert, crash, recover. The checker must agree that
/// nothing was lost.
fn run_cceh_clean(p: &E10Params) -> RunOutcome {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "cceh-clean");
    let root = {
        let mut env = SimEnv::new(&mut m, t);
        let mut table = Cceh::create(&mut env, p.cceh_depth);
        for k in 1..=p.cceh_inserts {
            table.insert(&mut env, k, k + 1000);
        }
        table.root()
    };
    m.power_fail(CrashPolicy::LoseUnflushed);
    let report = check.finish(&mut m);
    let mut env = SimEnv::new(&mut m, t);
    let table = Cceh::recover(&mut env, root);
    let recovered = (1..=p.cceh_inserts)
        .filter(|&k| table.get(&mut env, k) == Some(k + 1000))
        .count() as u64;
    let validated = report.is_clean()
        && report.predicted_lost_lines().is_empty()
        && recovered == p.cceh_inserts;
    RunOutcome {
        name: "cceh-clean".into(),
        expectation: "clean verdict and complete recovery".into(),
        report,
        recovered_keys: recovered,
        expected_keys: p.cceh_inserts,
        validated,
    }
}

/// Shared FAST-FAIR driver: insert in shuffled order, crash, recover,
/// count surviving keys.
fn drive_fastfair(p: &E10Params, name: &str, strategy: UpdateStrategy) -> (Report, u64) {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, name);
    let (meta, log_base) = {
        let mut env = SimEnv::new(&mut m, t);
        let mut tree = FastFair::create(&mut env, strategy);
        for k in 1..=p.btree_inserts {
            // Non-sequential order exercises the shift paths.
            let key = (k * 7919) % (p.btree_inserts * 8) + 1;
            tree.insert(&mut env, key, key * 2);
        }
        (tree.root_meta(), tree.log_base())
    };
    m.power_fail(CrashPolicy::LoseUnflushed);
    let report = check.finish(&mut m);
    let mut env = SimEnv::new(&mut m, t);
    let tree = FastFair::recover(&mut env, meta, strategy, log_base);
    let recovered = (1..=p.btree_inserts)
        .filter(|&k| {
            let key = (k * 7919) % (p.btree_inserts * 8) + 1;
            tree.get(&mut env, key) == Some(key * 2)
        })
        .count() as u64;
    (report, recovered)
}

/// Clean FAST-FAIR with in-place shifts: every store is persisted, so
/// the checker must return a clean verdict.
fn run_fastfair_inplace_clean(p: &E10Params) -> RunOutcome {
    let (report, recovered) = drive_fastfair(p, "fastfair-inplace-clean", UpdateStrategy::InPlace);
    let validated = report.is_clean()
        && report.predicted_lost_lines().is_empty()
        && recovered == p.btree_inserts;
    RunOutcome {
        name: "fastfair-inplace-clean".into(),
        expectation: "clean verdict and complete recovery".into(),
        report,
        recovered_keys: recovered,
        expected_keys: p.btree_inserts,
        validated,
    }
}

/// FAST-FAIR with the redo-log strategy: the checker's known blind spot,
/// kept in the suite *because* the cross-validation explains it. The
/// structure deliberately writes node entries back with plain, unflushed
/// stores — durability is carried by the committed `RingRedoLog` until
/// the ring's deferred reclamation flushes those lines. A flush-order
/// lint cannot see that contract, so the still-dirty node lines at the
/// crash are (correctly!) reported missing-flush and predicted lost;
/// they really are lost, yet recovery replays the committed log and
/// restores every key. Validation here is the semantic ground truth:
/// complete recovery, no ordering (fence) bugs, and nothing *outside*
/// the deferred-writeback pattern flagged.
fn run_fastfair_redo_logged(p: &E10Params) -> RunOutcome {
    let (report, recovered) = drive_fastfair(p, "fastfair-redo-logged", UpdateStrategy::RedoLog);
    let validated = recovered == p.btree_inserts && report.count(DiagKind::MissingFence) == 0;
    RunOutcome {
        name: "fastfair-redo-logged".into(),
        expectation: "deferred writebacks flagged; log replay still recovers all keys".into(),
        report,
        recovered_keys: recovered,
        expected_keys: p.btree_inserts,
        validated,
    }
}

/// Seeded missing-flush bug: every Nth `clwb` is silently dropped during
/// CCEH inserts. The checker must flag missing-flush, predict lost lines,
/// and recovery must actually lose keys.
fn run_cceh_missing_flush(p: &E10Params) -> RunOutcome {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "cceh-seeded-missing-flush");
    let root = {
        // Create cleanly so the directory itself is sound, then drop
        // flushes during the insert phase only.
        let mut env = SimEnv::new(&mut m, t);
        let mut table = Cceh::create(&mut env, p.cceh_depth);
        let mut faulty = FaultyEnv::new(env, FaultPlan::drop_flushes(p.drop_nth_flush));
        for k in 1..=p.cceh_inserts {
            table.insert(&mut faulty, k, k + 1000);
        }
        assert!(faulty.flushes_dropped() > 0, "the fault plan must fire");
        table.root()
    };
    m.power_fail(CrashPolicy::LoseUnflushed);
    let report = check.finish(&mut m);
    let mut env = SimEnv::new(&mut m, t);
    let table = Cceh::recover(&mut env, root);
    let recovered = (1..=p.cceh_inserts)
        .filter(|&k| table.get(&mut env, k) == Some(k + 1000))
        .count() as u64;
    let validated = report.count(DiagKind::MissingFlush) > 0
        && !report.predicted_lost_lines().is_empty()
        && recovered < p.cceh_inserts;
    RunOutcome {
        name: "cceh-seeded-missing-flush".into(),
        expectation: "missing-flush flagged; crash actually loses keys".into(),
        report,
        recovered_keys: recovered,
        expected_keys: p.cceh_inserts,
        validated,
    }
}

/// Seeded missing-fence bug: every `sfence` is dropped. Flushes still
/// drain (ADR), so nothing may be predicted or actually lost — but the
/// checker must flag the ordering bug.
fn run_cceh_missing_fence(p: &E10Params) -> RunOutcome {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "cceh-seeded-missing-fence");
    let root = {
        let mut env = SimEnv::new(&mut m, t);
        let mut table = Cceh::create(&mut env, p.cceh_depth);
        let mut faulty = FaultyEnv::new(env, FaultPlan::drop_fences(1));
        for k in 1..=p.cceh_inserts {
            table.insert(&mut faulty, k, k + 1000);
        }
        assert!(faulty.fences_dropped() > 0, "the fault plan must fire");
        table.root()
    };
    m.power_fail(CrashPolicy::LoseUnflushed);
    let report = check.finish(&mut m);
    let mut env = SimEnv::new(&mut m, t);
    let table = Cceh::recover(&mut env, root);
    let recovered = (1..=p.cceh_inserts)
        .filter(|&k| table.get(&mut env, k) == Some(k + 1000))
        .count() as u64;
    let validated = report.count(DiagKind::MissingFence) > 0
        && report.count(DiagKind::MissingFlush) == 0
        && report.predicted_lost_lines().is_empty()
        && recovered == p.cceh_inserts;
    RunOutcome {
        name: "cceh-seeded-missing-fence".into(),
        expectation: "missing-fence flagged; nothing lost (WPQ drains)".into(),
        report,
        recovered_keys: recovered,
        expected_keys: p.cceh_inserts,
        validated,
    }
}

/// Runs all E10 workloads.
pub fn run(params: &E10Params) -> Vec<RunOutcome> {
    vec![
        run_chase_clean(params),
        run_cceh_clean(params),
        run_fastfair_inplace_clean(params),
        run_fastfair_redo_logged(params),
        run_cceh_missing_flush(params),
        run_cceh_missing_fence(params),
    ]
}

/// Renders all outcomes as one JSON document.
pub fn to_json(outcomes: &[RunOutcome]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", o.name));
        out.push_str(&format!("      \"expectation\": \"{}\",\n", o.expectation));
        out.push_str(&format!("      \"validated\": {},\n", o.validated));
        out.push_str(&format!(
            "      \"recovered_keys\": {},\n      \"expected_keys\": {},\n",
            o.recovered_keys, o.expected_keys
        ));
        // The report renders itself; indent it under this run.
        let report = o.report.to_json();
        let indented: String = report
            .lines()
            .map(|l| format!("      {l}\n"))
            .collect::<String>();
        out.push_str("      \"report\":\n");
        out.push_str(&indented);
        out.push_str(if i + 1 < outcomes.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_workloads_validate_with_zero_false_positives() {
        let p = E10Params {
            cceh_inserts: 150,
            btree_inserts: 120,
            chase_elements: 32,
            ..Default::default()
        };
        for o in [
            run_chase_clean(&p),
            run_cceh_clean(&p),
            run_fastfair_inplace_clean(&p),
        ] {
            assert!(
                o.validated,
                "{} not validated:\n{}",
                o.name,
                o.report.to_text()
            );
            assert!(o.report.is_clean(), "{}", o.report.to_text());
        }
    }

    #[test]
    fn redo_logged_writebacks_are_flagged_but_recoverable() {
        let p = E10Params {
            btree_inserts: 120,
            ..Default::default()
        };
        let o = run_fastfair_redo_logged(&p);
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        // The deferred node writebacks are genuinely dirty at the crash:
        // the checker flags them and predicts them lost — and they are —
        // yet the committed redo log replays every update on recovery.
        assert!(
            o.report.count(DiagKind::MissingFlush) > 0,
            "deferred writebacks should be dirty at the crash:\n{}",
            o.report.to_text()
        );
        assert!(!o.report.predicted_lost_lines().is_empty());
        assert_eq!(o.recovered_keys, o.expected_keys, "log replay covers them");
        assert_eq!(o.report.count(DiagKind::MissingFence), 0);
    }

    #[test]
    fn seeded_missing_flush_is_caught_and_real() {
        let p = E10Params {
            cceh_inserts: 200,
            ..Default::default()
        };
        let o = run_cceh_missing_flush(&p);
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        assert!(o.recovered_keys < o.expected_keys, "crash must lose keys");
    }

    #[test]
    fn seeded_missing_fence_is_ordering_only() {
        let p = E10Params {
            cceh_inserts: 200,
            ..Default::default()
        };
        let o = run_cceh_missing_fence(&p);
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        assert_eq!(o.recovered_keys, o.expected_keys, "nothing actually lost");
    }
}
