//! E11 / `repro faultsim`: layered fault injection plus systematic
//! crash-state exploration, cross-validated against `pmcheck`.
//!
//! Where E10 validates the persist-ordering checker against a *single*
//! simulated crash (`power_fail(LoseUnflushed)`), E11 validates it
//! against the whole legal crash-state space: [`faultsim::Explorer`]
//! enumerates (or samples) every subset of the ADR-uncertain lines at the
//! persist boundary, materializes a post-crash machine per subset, and
//! runs each data structure's own recovery path under an invariant
//! oracle. The checker's verdict must agree with that ground truth:
//!
//! - **clean** workloads: zero error findings, and *no* crash state loses
//!   an acknowledged key;
//! - **missing-flush** workloads (software-layer [`ElisionPlan`]): the
//!   checker flags the elided flushes, some crash state really loses
//!   acknowledged data, and the all-survived state loses none;
//! - **redo-logged FAST-FAIR**: the deferred node writebacks are flagged
//!   (the lint's documented blind spot) yet *every* crash state recovers
//!   completely via log replay — and replaying the committed log twice is
//!   idempotent;
//! - **hardware faults** (WPQ drop, XPBuffer partial drain, media
//!   poison): the instruction stream is flawless, so the checker is
//!   structurally blind — `pmcheck` reports clean while the explorer
//!   proves data loss. Uncorrectable media errors must surface as typed
//!   [`optane_core::ReadError`]s, and an address-range scrub must repair
//!   the poisoned lines.

use cpucache::PrefetchConfig;
use faultsim::{
    ElisionPlan, Exploration, Explorer, ExplorerConfig, FaultRegistry, FaultyEnv, MediaPoisonPlan,
    StateVerdict, WpqDropPlan, XpBufferPartialDrainPlan,
};
use optane_core::{CrashPolicy, Generation, Machine, MachineConfig};
use pmcheck::{DiagKind, PmCheck, Report};
use pmds::{Cceh, ChaseList, FastFair, UpdateStrategy, WriteKind};
use pmem::{PersistMode, PmemEnv, SimEnv};
use simbase::{Addr, XPLINE_BYTES};
use workloads::AccessOrder;

use crate::common::ExpError;

/// Parameters for E11.
#[derive(Debug, Clone)]
pub struct E11Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Keys inserted into CCEH per run.
    pub cceh_inserts: u64,
    /// CCEH initial directory depth (kept small: recovery scans every
    /// segment once per explored crash state).
    pub cceh_depth: u64,
    /// Keys inserted into FAST-FAIR per run.
    pub btree_inserts: u64,
    /// Pointer-chase elements.
    pub chase_elements: u64,
    /// Software fault knob: drop every Nth flush in the elision runs.
    pub drop_nth_flush: u64,
    /// Hardware fault knob: the iMC silently discards every Nth accepted
    /// PM write in the WPQ-drop run.
    pub wpq_drop_nth: u64,
    /// Crash-state exploration strategy.
    pub explorer: ExplorerConfig,
}

impl Default for E11Params {
    fn default() -> Self {
        E11Params {
            generation: Generation::G1,
            cceh_inserts: 240,
            cceh_depth: 6,
            btree_inserts: 160,
            chase_elements: 32,
            drop_nth_flush: 5,
            wpq_drop_nth: 7,
            explorer: ExplorerConfig {
                max_exhaustive_lines: 8,
                samples: 32,
                seed: 0xFA57_0001,
            },
        }
    }
}

impl E11Params {
    /// A scaled-down parameter set for CI smoke runs and unit tests:
    /// seconds, not minutes, with every workload still exercised.
    pub fn smoke(generation: Generation) -> Self {
        E11Params {
            generation,
            cceh_inserts: 96,
            cceh_depth: 4,
            btree_inserts: 64,
            chase_elements: 16,
            drop_nth_flush: 5,
            wpq_drop_nth: 7,
            explorer: ExplorerConfig {
                max_exhaustive_lines: 6,
                samples: 12,
                seed: 0xFA57_0001,
            },
        }
    }
}

/// One workload's checker report, exploration, and the cross-validation
/// verdict between them.
#[derive(Debug, Clone)]
pub struct FaultsimOutcome {
    /// Workload label.
    pub name: String,
    /// What the run demonstrates.
    pub expectation: String,
    /// The armed fault schedule, one deterministic line per plan.
    pub fault_schedule: Vec<String>,
    /// The checker's report (taken at the persist boundary).
    pub report: Report,
    /// The explorer's ground truth over the crash-state space.
    pub exploration: Exploration,
    /// Whether the checker's verdict agrees with the explorer.
    pub validated: bool,
}

impl FaultsimOutcome {
    /// One summary line for the terminal.
    pub fn summary(&self) -> String {
        format!(
            "{:28} errors={:<3} states={:<4} failing={:<3} lossy={:<4} max_lost={:<4} -> {}",
            self.name,
            self.report
                .diagnostics
                .iter()
                .filter(|d| d.severity() == pmcheck::Severity::Error)
                .count(),
            self.exploration.states_explored,
            self.exploration.failing_states,
            self.exploration.lossy_states,
            self.exploration.max_lost_keys,
            if self.validated {
                "VALIDATED"
            } else {
                "MISMATCH"
            }
        )
    }
}

fn machine(gen: Generation) -> Machine {
    Machine::new(MachineConfig::for_generation(
        gen,
        PrefetchConfig::none(),
        1,
    ))
}

// ----- recovery oracles ----------------------------------------------

/// CCEH recovery oracle: recover from the directory root and probe every
/// inserted key. A key that vanished is *lost*; a key answering with the
/// wrong value is an invariant violation.
fn cceh_verdict(m: &mut Machine, root: Addr, inserts: u64) -> StateVerdict {
    let t = m.spawn(0);
    let mut env = SimEnv::new(m, t);
    let table = Cceh::recover(&mut env, root);
    let mut lost = 0u64;
    let mut wrong = 0u64;
    for k in 1..=inserts {
        match table.get(&mut env, k) {
            Some(v) if v == k + 1000 => {}
            None => lost += 1,
            Some(_) => wrong += 1,
        }
    }
    StateVerdict {
        ok: wrong == 0,
        lost_keys: lost,
        detail: format!("recovered {}/{inserts} keys, {wrong} wrong", inserts - lost),
    }
}

/// CCEH recovery oracle in the presence of uncorrectable media errors:
/// every poisoned line must surface as a typed read error (no silent
/// garbage), and recovery must not return wrong values for intact keys.
fn cceh_poison_verdict(
    m: &mut Machine,
    root: Addr,
    inserts: u64,
    poisoned: &[u64],
) -> StateVerdict {
    let t = m.spawn(0);
    if m.line_poisoned(root) {
        // The directory header is unreadable; recovery cannot even learn
        // the global depth. Detecting that (rather than dereferencing
        // garbage) is the correct behavior.
        return StateVerdict {
            ok: true,
            lost_keys: inserts,
            detail: "directory header poisoned; total loss detected".into(),
        };
    }
    let mut env = SimEnv::new(m, t);
    let mut undetected = 0u64;
    for &line in poisoned {
        let mut buf = [0u8; 8];
        if env.try_load(Addr(line), &mut buf).is_ok() {
            undetected += 1;
        }
    }
    let table = Cceh::recover(&mut env, root);
    let mut lost = 0u64;
    let mut wrong = 0u64;
    for k in 1..=inserts {
        match table.get(&mut env, k) {
            Some(v) if v == k + 1000 => {}
            None => lost += 1,
            Some(_) => wrong += 1,
        }
    }
    StateVerdict {
        ok: wrong == 0 && undetected == 0,
        lost_keys: lost,
        detail: format!(
            "recovered {}/{inserts} keys, {wrong} wrong, {undetected}/{} UEs undetected",
            inserts - lost,
            poisoned.len()
        ),
    }
}

/// The FAST-FAIR key pattern shared with E10: non-sequential inserts that
/// exercise the shift paths.
fn fastfair_key(k: u64, inserts: u64) -> u64 {
    (k * 7919) % (inserts * 8) + 1
}

fn fastfair_missing<E: PmemEnv>(tree: &FastFair, env: &mut E, inserts: u64) -> u64 {
    (1..=inserts)
        .filter(|&k| {
            let key = fastfair_key(k, inserts);
            tree.get(env, key) != Some(key * 2)
        })
        .count() as u64
}

/// FAST-FAIR (redo-logged) recovery oracle: replay the committed log,
/// count losses, then replay it *again* — recovery must be idempotent —
/// and check the leaf chain stays sorted.
fn fastfair_verdict(
    m: &mut Machine,
    meta: Addr,
    log_base: Option<Addr>,
    inserts: u64,
) -> StateVerdict {
    let t = m.spawn(0);
    let mut env = SimEnv::new(m, t);
    let tree = FastFair::recover(&mut env, meta, UpdateStrategy::RedoLog, log_base);
    let lost = fastfair_missing(&tree, &mut env, inserts);
    let tree2 = FastFair::recover(&mut env, meta, UpdateStrategy::RedoLog, log_base);
    let lost_after_replay = fastfair_missing(&tree2, &mut env, inserts);
    let sorted = tree2.check_sorted(&mut env);
    StateVerdict {
        ok: sorted && lost_after_replay == lost,
        lost_keys: lost,
        detail: format!(
            "lost {lost} keys (after second replay: {lost_after_replay}), sorted={sorted}"
        ),
    }
}

/// Pointer-chase oracle: walk the ring once; every pad token must be
/// either the acknowledged new token or the previous lap's token (a
/// cacheline is atomic — anything else is torn), and the ring itself must
/// be intact.
fn chase_verdict(
    m: &mut Machine,
    head: Addr,
    base: Addr,
    elements: u64,
    old: u64,
    new: u64,
) -> StateVerdict {
    let t = m.spawn(0);
    let mut env = SimEnv::new(m, t);
    let wss = elements * XPLINE_BYTES;
    let mut cur = head;
    let mut stale = 0u64;
    let mut torn = 0u64;
    let mut broken = false;
    for _ in 0..elements {
        let token = env.load_u64(cur.add_cachelines(1));
        if token == old {
            stale += 1;
        } else if token != new {
            torn += 1;
        }
        let next = env.load_u64(cur);
        if next < base.0 || next >= base.0 + wss || !(next - base.0).is_multiple_of(XPLINE_BYTES) {
            broken = true;
            break;
        }
        cur = Addr(next);
    }
    broken |= cur != head;
    StateVerdict {
        ok: !broken && torn == 0,
        lost_keys: stale,
        detail: format!(
            "stale={stale} torn={torn} ring={}",
            if broken { "BROKEN" } else { "intact" }
        ),
    }
}

/// Pointer-chase oracle under media poison: the UEs must be *detected*
/// (typed errors), an address-range scrub must repair exactly the
/// poisoned lines, and the ring must stay walkable afterwards (scrubbed
/// pads read back as zero — the data is gone, the addresses are usable).
fn chase_poison_verdict(
    m: &mut Machine,
    head: Addr,
    base: Addr,
    elements: u64,
    token: u64,
    poisoned: &[u64],
) -> StateVerdict {
    let t = m.spawn(0);
    let mut undetected = 0u64;
    {
        let mut env = SimEnv::new(&mut *m, t);
        for &line in poisoned {
            let mut buf = [0u8; 8];
            if env.try_load(Addr(line), &mut buf).is_ok() {
                undetected += 1;
            }
        }
    }
    let scrub = m.scrub_pm(base, elements * XPLINE_BYTES);
    let repaired_exactly = scrub.repaired == poisoned;
    let mut env = SimEnv::new(m, t);
    let wss = elements * XPLINE_BYTES;
    let mut cur = head;
    let mut scrubbed = 0u64;
    let mut torn = 0u64;
    let mut broken = false;
    for _ in 0..elements {
        let pad = env.load_u64(cur.add_cachelines(1));
        if pad == 0 {
            scrubbed += 1;
        } else if pad != token {
            torn += 1;
        }
        let next = env.load_u64(cur);
        if next < base.0 || next >= base.0 + wss || !(next - base.0).is_multiple_of(XPLINE_BYTES) {
            broken = true;
            break;
        }
        cur = Addr(next);
    }
    broken |= cur != head;
    StateVerdict {
        ok: undetected == 0 && repaired_exactly && !broken && torn == 0,
        lost_keys: scrubbed,
        detail: format!(
            "{}/{} UEs detected, scrub repaired {} lines, {scrubbed} pads zeroed, ring={}",
            poisoned.len() as u64 - undetected,
            poisoned.len(),
            scrub.repaired.len(),
            if broken { "BROKEN" } else { "intact" }
        ),
    }
}

// ----- workloads ------------------------------------------------------

/// Clean CCEH: a disciplined workload must get a clean verdict *and* a
/// loss-free exploration — no crash state loses an acknowledged key.
fn run_cceh_clean(p: &E11Params) -> FaultsimOutcome {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "cceh-clean");
    let root = {
        let mut env = SimEnv::new(&mut m, t);
        let mut table = Cceh::create(&mut env, p.cceh_depth);
        for k in 1..=p.cceh_inserts {
            table.insert(&mut env, k, k + 1000);
        }
        table.root()
    };
    let image = m.capture_crash_image();
    let report = check.finish(&mut m);
    let inserts = p.cceh_inserts;
    let exploration = Explorer::new(p.explorer).explore("cceh-clean", &image, |cm, _| {
        cceh_verdict(cm, root, inserts)
    });
    let validated =
        report.is_clean() && exploration.all_states_ok() && !exploration.any_data_loss();
    FaultsimOutcome {
        name: "cceh-clean".into(),
        expectation: "clean verdict; no crash state loses an acknowledged key".into(),
        fault_schedule: Vec::new(),
        report,
        exploration,
        validated,
    }
}

/// CCEH under elided flushes: the checker flags missing-flush, and the
/// explorer confirms the flag is real — some crash state loses
/// acknowledged keys, while the all-survived state loses none.
fn run_cceh_missing_flush(p: &E11Params) -> FaultsimOutcome {
    let plan = ElisionPlan::drop_flushes(p.drop_nth_flush);
    let registry = FaultRegistry::new().with(Box::new(plan));
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "cceh-missing-flush");
    let (root, fired) = {
        // Create cleanly so the directory itself is sound; elide flushes
        // during the insert phase only.
        let mut env = SimEnv::new(&mut m, t);
        let mut table = Cceh::create(&mut env, p.cceh_depth);
        let mut faulty = FaultyEnv::new(env, plan);
        for k in 1..=p.cceh_inserts {
            table.insert(&mut faulty, k, k + 1000);
        }
        (table.root(), faulty.flushes_dropped() > 0)
    };
    let image = m.capture_crash_image();
    let report = check.finish(&mut m);
    let inserts = p.cceh_inserts;
    let exploration = Explorer::new(p.explorer).explore("cceh-missing-flush", &image, |cm, _| {
        cceh_verdict(cm, root, inserts)
    });
    let validated = fired
        && report.count(DiagKind::MissingFlush) > 0
        && !report.predicted_lost_lines().is_empty()
        && exploration.any_data_loss()
        && exploration.all_states_ok()
        && exploration
            .full_survivor()
            .is_some_and(|o| o.lost_keys == 0);
    FaultsimOutcome {
        name: "cceh-missing-flush".into(),
        expectation: "missing-flush flagged; some crash state really loses keys".into(),
        fault_schedule: registry.schedule(),
        report,
        exploration,
        validated,
    }
}

/// Redo-logged FAST-FAIR: deferred node writebacks are flagged by the
/// lint (its documented blind spot), yet *every* crash state recovers all
/// keys via log replay, and replay is idempotent.
fn run_fastfair_redo(p: &E11Params) -> FaultsimOutcome {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "fastfair-redo");
    let (meta, log_base) = {
        let mut env = SimEnv::new(&mut m, t);
        let mut tree = FastFair::create(&mut env, UpdateStrategy::RedoLog);
        for k in 1..=p.btree_inserts {
            let key = fastfair_key(k, p.btree_inserts);
            tree.insert(&mut env, key, key * 2);
        }
        (tree.root_meta(), tree.log_base())
    };
    let image = m.capture_crash_image();
    let report = check.finish(&mut m);
    let inserts = p.btree_inserts;
    let exploration = Explorer::new(p.explorer).explore("fastfair-redo", &image, |cm, _| {
        fastfair_verdict(cm, meta, log_base, inserts)
    });
    let validated = exploration.all_states_ok()
        && !exploration.any_data_loss()
        && report.count(DiagKind::MissingFence) == 0
        && report.count(DiagKind::MissingFlush) > 0;
    FaultsimOutcome {
        name: "fastfair-redo".into(),
        expectation: "deferred writebacks flagged; every crash state replays the log".into(),
        fault_schedule: Vec::new(),
        report,
        exploration,
        validated,
    }
}

const CHASE_OLD_TOKEN: u64 = 0xA1;
const CHASE_NEW_TOKEN: u64 = 0xB2;

/// Pointer chase under elided flushes: per element the pad token is
/// atomically old or new — never torn — and the all-survived state keeps
/// every acknowledged token.
fn run_chase_missing_flush(p: &E11Params) -> FaultsimOutcome {
    let plan = ElisionPlan::drop_flushes(p.drop_nth_flush);
    let registry = FaultRegistry::new().with(Box::new(plan));
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "chase-missing-flush");
    let (base, head, elements, fired) = {
        let mut env = SimEnv::new(&mut m, t);
        let list = ChaseList::build(&mut env, p.chase_elements, AccessOrder::Random, 7);
        // A clean lap persists the old token everywhere, then a faulty
        // lap writes the new token with every Nth flush elided.
        list.lap_write(
            &mut env,
            WriteKind::Clwb,
            PersistMode::Strict,
            CHASE_OLD_TOKEN,
        );
        let mut faulty = FaultyEnv::new(env, plan);
        list.lap_write(
            &mut faulty,
            WriteKind::Clwb,
            PersistMode::Strict,
            CHASE_NEW_TOKEN,
        );
        (
            list.base(),
            list.head(),
            list.elements(),
            faulty.flushes_dropped() > 0,
        )
    };
    let image = m.capture_crash_image();
    let report = check.finish(&mut m);
    let exploration = Explorer::new(p.explorer).explore("chase-missing-flush", &image, |cm, _| {
        chase_verdict(cm, head, base, elements, CHASE_OLD_TOKEN, CHASE_NEW_TOKEN)
    });
    let validated = fired
        && report.count(DiagKind::MissingFlush) > 0
        && exploration.any_data_loss()
        && exploration.all_states_ok()
        && exploration
            .full_survivor()
            .is_some_and(|o| o.lost_keys == 0);
    FaultsimOutcome {
        name: "chase-missing-flush".into(),
        expectation: "tokens revert per-line, never tear; ring stays intact".into(),
        fault_schedule: registry.schedule(),
        report,
        exploration,
        validated,
    }
}

/// The iMC silently drops every Nth accepted PM write. The program's
/// instruction stream is flawless, so `pmcheck` reports clean — but the
/// explorer proves acknowledged data can be lost. This is the checker's
/// hardware blind spot, made visible by ground truth.
fn run_cceh_wpq_drop(p: &E11Params) -> FaultsimOutcome {
    let registry = FaultRegistry::new().with(Box::new(WpqDropPlan {
        every_nth: p.wpq_drop_nth,
    }));
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "cceh-wpq-drop");
    let mut table = {
        let mut env = SimEnv::new(&mut m, t);
        Cceh::create(&mut env, p.cceh_depth)
    };
    // Arm after creation: the fault corrupts operation, not setup.
    registry.arm_all(&mut m);
    let root = {
        let mut env = SimEnv::new(&mut m, t);
        for k in 1..=p.cceh_inserts {
            table.insert(&mut env, k, k + 1000);
        }
        table.root()
    };
    FaultRegistry::disarm(&mut m);
    let dropped = m.fault_stats().wpq_dropped.len();
    let image = m.capture_crash_image();
    let report = check.finish(&mut m);
    let inserts = p.cceh_inserts;
    let exploration = Explorer::new(p.explorer).explore("cceh-wpq-drop", &image, |cm, _| {
        cceh_verdict(cm, root, inserts)
    });
    let validated = report.is_clean()
        && dropped > 0
        && exploration.any_data_loss()
        && exploration.all_states_ok()
        && exploration
            .full_survivor()
            .is_some_and(|o| o.lost_keys == 0);
    FaultsimOutcome {
        name: "cceh-wpq-drop".into(),
        expectation: "pmcheck is clean, yet the explorer proves acknowledged loss".into(),
        fault_schedule: registry.schedule(),
        report,
        exploration,
        validated,
    }
}

/// An uncorrectable media error lands on one pad line of a cleanly
/// persisted chase ring. The UE must surface as a typed read error, the
/// scrub must repair exactly that line, and the ring must stay walkable.
fn run_chase_media_poison(p: &E11Params) -> FaultsimOutcome {
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "chase-media-poison");
    let (base, head, elements) = {
        let mut env = SimEnv::new(&mut m, t);
        let list = ChaseList::build(&mut env, p.chase_elements, AccessOrder::Random, 7);
        list.lap_write(
            &mut env,
            WriteKind::Clwb,
            PersistMode::Strict,
            CHASE_NEW_TOKEN,
        );
        (list.base(), list.head(), list.elements())
    };
    // Poison one payload line (the pad cacheline, not a ring pointer).
    let victim = base.add_xplines(elements / 2).add_cachelines(1);
    let registry = FaultRegistry::new().with(Box::new(MediaPoisonPlan {
        lines: vec![victim.0],
    }));
    registry.arm_all(&mut m);
    let image = m.capture_crash_image();
    let report = check.finish(&mut m);
    let poisoned = image.poisoned.clone();
    let exploration = Explorer::new(p.explorer).explore("chase-media-poison", &image, |cm, _| {
        chase_poison_verdict(cm, head, base, elements, CHASE_NEW_TOKEN, &poisoned)
    });
    let validated = report.is_clean()
        && exploration.all_states_ok()
        && exploration.any_data_loss()
        && exploration.max_lost_keys == 1;
    FaultsimOutcome {
        name: "chase-media-poison".into(),
        expectation: "UE surfaces as a typed error; scrub repairs; ring intact".into(),
        fault_schedule: registry.schedule(),
        report,
        exploration,
        validated,
    }
}

/// Power fails while XPLines sit in the on-DIMM write-combining buffer:
/// the interrupted media writes come back as uncorrectable errors. The
/// instruction stream is again flawless — only the explorer (and the
/// typed read errors) reveal the loss.
fn run_cceh_xpbuffer_drain(p: &E11Params) -> FaultsimOutcome {
    let registry = FaultRegistry::new().with(Box::new(XpBufferPartialDrainPlan {
        drop_fraction: 1.0,
        seed: p.explorer.seed,
    }));
    let mut m = machine(p.generation);
    let t = m.spawn(0);
    let check = PmCheck::attach_named(&mut m, "cceh-xpbuffer-drain");
    let root = {
        let mut env = SimEnv::new(&mut m, t);
        let mut table = Cceh::create(&mut env, p.cceh_depth);
        for k in 1..=p.cceh_inserts {
            table.insert(&mut env, k, k + 1000);
        }
        table.root()
    };
    registry.arm_all(&mut m);
    m.power_fail(CrashPolicy::LoseUnflushed);
    let crash_poisoned = m.fault_stats().crash_poisoned.len();
    let image = m.capture_crash_image();
    let report = check.finish(&mut m);
    let inserts = p.cceh_inserts;
    let poisoned = image.poisoned.clone();
    let exploration = Explorer::new(p.explorer).explore("cceh-xpbuffer-drain", &image, |cm, _| {
        cceh_poison_verdict(cm, root, inserts, &poisoned)
    });
    let validated = report.is_clean()
        && crash_poisoned > 0
        && exploration.all_states_ok()
        && exploration.any_data_loss();
    FaultsimOutcome {
        name: "cceh-xpbuffer-drain".into(),
        expectation: "interrupted buffer drain poisons lines; loss is detected, not silent".into(),
        fault_schedule: registry.schedule(),
        report,
        exploration,
        validated,
    }
}

/// Runs all E11 workloads.
pub fn run(params: &E11Params) -> Result<Vec<FaultsimOutcome>, ExpError> {
    if params.cceh_inserts == 0 || params.btree_inserts == 0 {
        return Err(ExpError::BadParams("insert counts must be nonzero".into()));
    }
    if params.chase_elements < 2 {
        return Err(ExpError::BadParams(
            "a chase ring needs at least two elements".into(),
        ));
    }
    if params.drop_nth_flush == 0 || params.wpq_drop_nth == 0 {
        return Err(ExpError::BadParams(
            "fault periods are 1-indexed and must be nonzero".into(),
        ));
    }
    if params.explorer.samples < 2 {
        return Err(ExpError::BadParams(
            "the explorer needs at least the two extreme states".into(),
        ));
    }
    Ok(vec![
        run_cceh_clean(params),
        run_cceh_missing_flush(params),
        run_fastfair_redo(params),
        run_chase_missing_flush(params),
        run_cceh_wpq_drop(params),
        run_chase_media_poison(params),
        run_cceh_xpbuffer_drain(params),
    ])
}

/// Renders all outcomes as one JSON document (deterministic: same params
/// and seed give byte-identical output).
pub fn to_json(outcomes: &[FaultsimOutcome]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", o.name));
        out.push_str(&format!("      \"expectation\": \"{}\",\n", o.expectation));
        out.push_str(&format!("      \"validated\": {},\n", o.validated));
        let schedule: Vec<String> = o
            .fault_schedule
            .iter()
            .map(|s| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        out.push_str(&format!(
            "      \"fault_schedule\": [{}],\n",
            schedule.join(", ")
        ));
        out.push_str("      \"report\":\n");
        out.push_str(&indent(&o.report.to_json(), "      "));
        out.push_str(",\n      \"exploration\":\n");
        out.push_str(&indent(&o.exploration.to_json(), "      "));
        out.push('\n');
        out.push_str(if i + 1 < outcomes.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn indent(block: &str, by: &str) -> String {
    let mut out = String::new();
    for (i, l) in block.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(by);
        out.push_str(l);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> E11Params {
        E11Params::smoke(Generation::G1)
    }

    #[test]
    fn clean_cceh_survives_every_crash_state() {
        let o = run_cceh_clean(&smoke());
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        assert_eq!(o.exploration.lossy_states, 0);
    }

    #[test]
    fn missing_flush_flag_is_confirmed_by_ground_truth() {
        let o = run_cceh_missing_flush(&smoke());
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        assert!(o.exploration.any_data_loss(), "the flag must be real");
        assert_eq!(
            o.exploration
                .full_survivor()
                .expect("pinned state")
                .lost_keys,
            0,
            "if everything had drained, nothing would be lost"
        );
    }

    #[test]
    fn redo_log_replay_covers_every_crash_state_idempotently() {
        let o = run_fastfair_redo(&smoke());
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        assert!(
            o.report.count(DiagKind::MissingFlush) > 0,
            "the lint's blind spot must actually trigger"
        );
        assert_eq!(
            o.exploration.lossy_states, 0,
            "log replay covers all states"
        );
    }

    #[test]
    fn wpq_drop_is_invisible_to_the_lint_but_not_the_explorer() {
        let o = run_cceh_wpq_drop(&smoke());
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        assert!(o.report.is_clean(), "the instruction stream is flawless");
        assert!(o.exploration.any_data_loss(), "yet data is really lost");
    }

    #[test]
    fn media_poison_is_detected_and_scrubbed() {
        let o = run_chase_media_poison(&smoke());
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
    }

    #[test]
    fn xpbuffer_drain_poisons_and_is_detected() {
        let o = run_cceh_xpbuffer_drain(&smoke());
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
    }

    #[test]
    fn chase_tokens_never_tear() {
        let o = run_chase_missing_flush(&smoke());
        assert!(o.validated, "{}\n{}", o.summary(), o.report.to_text());
        assert!(o.exploration.all_states_ok(), "no torn pads in any state");
    }

    #[test]
    fn degenerate_params_are_a_typed_error() {
        let mut p = smoke();
        p.chase_elements = 1;
        assert!(matches!(run(&p), Err(ExpError::BadParams(_))));
    }

    /// The determinism satellite: the same seed and plan must reproduce a
    /// byte-identical report and fault schedule, twice in one process.
    #[test]
    fn same_seed_same_plan_is_byte_identical() {
        let once = to_json(&run(&smoke()).expect("valid params"));
        let twice = to_json(&run(&smoke()).expect("valid params"));
        assert_eq!(
            once, twice,
            "exploration and schedules must be deterministic"
        );
    }
}
