//! E12: fault-tolerant sharded PM cluster under load (extension).
//!
//! The paper characterizes one DIMM under one thread group; ROADMAP
//! item 3 asks what its buffering effects look like when many clients
//! hammer many machines *and keep getting answers through faults*. E12
//! sweeps offered load over a mixed G1/G2 shard fleet behind a router
//! with retries, hedged reads, circuit breakers, admission control, and
//! a DRAM front-cache — while a [`ClusterFaultPlan`] power-fails one
//! shard mid-traffic at every load point and drives recovery through
//! the crash-image + checkpoint path.
//!
//! Three results come out:
//!
//! - **availability vs load** — fraction of requests answered (served,
//!   explicitly shed, or deadline-failed; never hung) and the served /
//!   degraded split,
//! - **tail latency vs load per generation** — p50/p99 service latency
//!   for requests served by G1 vs G2 shards,
//! - **recovery vs load** — down-time distribution (outage + log
//!   replay) for the power-failed shard at each load point.
//!
//! The run also produces a plain-text availability report whose
//! markers (`power-fail`, `zero acknowledged-write loss`) the CI smoke
//! job greps, and op/cycle totals for the `BENCH_cluster.json`
//! perf baseline.

use cluster::{ClientConfig, ClusterFaultPlan, ClusterParams, ClusterReport, NetParams};

use crate::common::{Curve, ExpError, ExpResult, MetricsSpec};
use crate::divergence::WitnessTap;

/// E12 parameters. Defaults run in a few seconds.
#[derive(Debug, Clone)]
pub struct E12Params {
    /// Shard count (generations alternate G1/G2).
    pub n_shards: usize,
    /// Keys preloaded per run.
    pub preload_keys: u64,
    /// Client requests per load point.
    pub ops: u64,
    /// Mean inter-arrival ticks, one run per point (offered load =
    /// 1e6 / interarrival requests per Mtick).
    pub interarrival_points: Vec<u64>,
    /// Power-fail one shard mid-run at every load point.
    pub with_fault: bool,
    pub seed: u64,
    /// Sample fleet metrics at this interval.
    pub metrics: Option<MetricsSpec>,
}

impl Default for E12Params {
    fn default() -> Self {
        E12Params {
            n_shards: 4,
            preload_keys: 1_500,
            ops: 6_000,
            interarrival_points: vec![4_000, 2_000, 1_000, 500],
            with_fault: true,
            seed: 0,
            metrics: None,
        }
    }
}

impl E12Params {
    /// CI-scale parameters: one fast point plus one loaded point.
    pub fn smoke(seed: u64) -> Self {
        E12Params {
            preload_keys: 400,
            ops: 1_500,
            interarrival_points: vec![2_000, 800],
            seed,
            ..E12Params::default()
        }
    }
}

/// Everything one E12 run produced.
#[derive(Debug, Clone)]
pub struct E12Output {
    /// Availability, latency, and recovery results (figure shapes).
    pub results: Vec<ExpResult>,
    /// Deterministic plain-text availability report (all load points).
    pub availability_report: String,
    /// Requests served across all points (perf baseline numerator).
    pub sim_ops: u64,
    /// Simulated ticks across all points (perf baseline denominator).
    pub sim_cycles: u64,
    /// True when every point answered >= 99% of requests with zero
    /// acked-write loss and zero hung requests.
    pub validated: bool,
}

fn cluster_params(p: &E12Params, idx: usize, interarrival: u64) -> ClusterParams {
    let span = p.ops.saturating_mul(interarrival).max(1);
    let fault = if p.with_fault {
        // Fail a rotating shard ~40% into the expected run, down for
        // ~15% of it: mid-traffic, with time to recover and reintegrate.
        ClusterFaultPlan::power_fail_with_flap(
            idx % p.n_shards.max(1),
            span * 2 / 5,
            (span * 3 / 20).max(30_000),
        )
    } else {
        ClusterFaultPlan::none()
    };
    ClusterParams {
        n_shards: p.n_shards,
        log_slots: (p.preload_keys + p.ops).next_power_of_two().max(4_096),
        client: ClientConfig {
            preload_keys: p.preload_keys,
            ops: p.ops,
            interarrival,
            ..ClientConfig::default()
        },
        net: NetParams::default(),
        fault,
        seed: p.seed ^ ((idx as u64 + 1) << 8),
        metrics_interval: p.metrics.map(|m| m.interval),
        ..ClusterParams::default()
    }
}

fn point_report(
    p: &E12Params,
    idx: usize,
    tap: Option<&WitnessTap>,
) -> Result<ClusterReport, ExpError> {
    let interarrival = p.interarrival_points[idx];
    let params = cluster_params(p, idx, interarrival);
    let report = match tap {
        Some(t) => {
            let factory = |_shard: usize| t.sink();
            cluster::run_traced(params, Some(&factory))
        }
        None => cluster::run(params),
    }
    .map_err(|e| ExpError::BadParams(format!("cluster point ia={interarrival}: {e}")))?;
    if let Some(t) = tap {
        for blob in &report.checkpoint_blobs {
            t.fold_checkpoint_bytes(blob);
        }
    }
    Ok(report)
}

/// Runs the sweep. See [`run_traced`] for the witness-tapped variant.
pub fn run(p: &E12Params) -> Result<E12Output, ExpError> {
    run_traced(p, None)
}

/// Runs the sweep with an optional divergence-witness tap observing
/// every shard machine (including post-recovery replacements).
pub fn run_traced(p: &E12Params, tap: Option<&WitnessTap>) -> Result<E12Output, ExpError> {
    if p.interarrival_points.is_empty() {
        return Err(ExpError::BadParams("empty interarrival sweep".into()));
    }
    if p.n_shards == 0 {
        return Err(ExpError::BadParams("n_shards must be > 0".into()));
    }

    let mut avail = ExpResult::new(
        "E12 / cluster availability vs offered load",
        "req/Mtick",
        "% of requests",
    );
    let mut lat = ExpResult::new(
        "E12 / cluster tail latency vs offered load",
        "req/Mtick",
        "latency (ticks)",
    );
    let mut rec = ExpResult::new(
        "E12 / shard recovery vs offered load",
        "req/Mtick",
        "ticks / records",
    );
    let mut c_avail = Curve::new("availability %");
    let mut c_served = Curve::new("served %");
    let mut c_degraded = Curve::new("degraded %");
    let mut c_g1_p50 = Curve::new("G1 p50");
    let mut c_g1_p99 = Curve::new("G1 p99");
    let mut c_g2_p50 = Curve::new("G2 p50");
    let mut c_g2_p99 = Curve::new("G2 p99");
    let mut c_down = Curve::new("down time");
    let mut c_replay = Curve::new("replay cycles");
    let mut c_replayed = Curve::new("records replayed");

    let mut report_text = String::new();
    let mut metrics_all = String::new();
    let mut sim_ops = 0u64;
    let mut sim_cycles = 0u64;
    let mut validated = true;
    let mut down_times: Vec<u64> = Vec::new();

    for idx in 0..p.interarrival_points.len() {
        let interarrival = p.interarrival_points[idx];
        if interarrival == 0 {
            return Err(ExpError::BadParams("interarrival must be > 0".into()));
        }
        let r = point_report(p, idx, tap)?;
        let load = 1e6 / interarrival as f64;
        c_avail.push(load, r.availability() * 100.0);
        c_served.push(load, r.served_fraction() * 100.0);
        c_degraded.push(
            load,
            if r.arrivals == 0 {
                0.0
            } else {
                r.served_degraded as f64 / r.arrivals as f64 * 100.0
            },
        );
        c_g1_p50.push(load, r.latency_g1.p50 as f64);
        c_g1_p99.push(load, r.latency_g1.p99 as f64);
        c_g2_p50.push(load, r.latency_g2.p50 as f64);
        c_g2_p99.push(load, r.latency_g2.p99 as f64);
        for rr in &r.recoveries {
            c_down.push(load, rr.total_ticks as f64);
            c_replay.push(load, rr.replay_cycles as f64);
            c_replayed.push(load, rr.replayed as f64);
            down_times.push(rr.total_ticks);
        }
        sim_ops += r.served_ok + r.served_degraded;
        sim_cycles += r.sim_end;
        validated &= r.lost_acked == 0 && r.unanswered == 0 && r.availability() >= 0.99;
        report_text.push_str(&format!(
            "## load point: interarrival {interarrival} ticks ({load:.1} req/Mtick)\n"
        ));
        report_text.push_str(&r.render());
        report_text.push('\n');
        if let Some(series) = &r.metrics_jsonl {
            metrics_all.push_str(series);
        }
    }

    avail.curves = vec![c_avail, c_served, c_degraded];
    avail.notes.push(format!(
        "every request answered: served, typed shed, or deadline error — never hung \
         (validated across {} load points)",
        p.interarrival_points.len()
    ));
    if !metrics_all.is_empty() {
        avail.metrics_jsonl = Some(metrics_all);
    }
    lat.curves = vec![c_g1_p50, c_g1_p99, c_g2_p50, c_g2_p99];
    rec.curves = vec![c_down, c_replay, c_replayed];
    if !down_times.is_empty() {
        let min = down_times.iter().min().copied().unwrap_or(0);
        let max = down_times.iter().max().copied().unwrap_or(0);
        let mean = down_times.iter().sum::<u64>() as f64 / down_times.len() as f64;
        rec.notes.push(format!(
            "recovery-time distribution over {} power-fails: min {min}, mean {mean:.0}, \
             max {max} ticks (outage + log replay)",
            down_times.len()
        ));
    }

    Ok(E12Output {
        results: vec![avail, lat, rec],
        availability_report: report_text,
        sim_ops,
        sim_cycles,
        validated,
    })
}

/// Renders the deterministic perf baseline (`BENCH_cluster.json`):
/// simulated fields only, byte-identical per seed, so CI diffs the file
/// directly. Wall-clock figures go to the sidecar
/// ([`bench_wall_json`]), which is what the `diff -r` exclusions cover.
pub fn bench_json(out: &E12Output) -> String {
    bench::render_flat("e12_cluster", out.sim_ops, out.sim_cycles)
}

/// Renders the host-dependent sidecar (`BENCH_cluster_wall.json`).
pub fn bench_wall_json(out: &E12Output, wall_us: u64) -> String {
    bench::render_flat_wall("e12_cluster", out.sim_ops, wall_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_validates_and_reports_recovery() {
        let out = run(&E12Params::smoke(3)).expect("e12");
        assert!(out.validated, "report:\n{}", out.availability_report);
        assert!(out.availability_report.contains("power-fail"));
        assert!(out
            .availability_report
            .contains("zero acknowledged-write loss"));
        assert_eq!(out.results.len(), 3);
        let rec = &out.results[2];
        assert!(
            !rec.curves[0].points.is_empty(),
            "recovery curve must have points"
        );
        assert!(out.sim_ops > 0);
    }

    #[test]
    fn fault_free_baseline_also_validates() {
        let p = E12Params {
            with_fault: false,
            ..E12Params::smoke(1)
        };
        let out = run(&p).expect("e12");
        assert!(out.validated);
        assert!(!out.availability_report.contains("recovery: shard"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(&E12Params::smoke(9)).expect("a");
        let b = run(&E12Params::smoke(9)).expect("b");
        assert_eq!(a.availability_report, b.availability_report);
        assert_eq!(a.sim_ops, b.sim_ops);
        assert_eq!(a.sim_cycles, b.sim_cycles);
    }

    #[test]
    fn bad_params_are_typed() {
        let p = E12Params {
            interarrival_points: vec![],
            ..E12Params::default()
        };
        assert!(matches!(run(&p), Err(ExpError::BadParams(_))));
    }

    #[test]
    fn bench_json_shape() {
        let out = run(&E12Params::smoke(2)).expect("e12");
        let j = bench_json(&out);
        assert!(j.contains("\"experiment\": \"e12_cluster\""));
        assert!(j.contains("\"sim_ops\""));
        // Deterministic part carries no wall-clock field; that lives in
        // the sidecar, which carries no simulated field.
        assert!(!j.contains("wall"));
        let w = bench_wall_json(&out, 1_234_000);
        assert!(w.contains("\"wall_us\": 1234000"));
        assert!(!w.contains("sim_cycles"));
        // ops/Mcycle survives a render/parse round trip for the gate.
        let entries = bench::parse_bench(&j).expect("parses");
        assert_eq!(entries[0].sim_ops, out.sim_ops);
        assert_eq!(entries[0].sim_cycles, out.sim_cycles);
    }
}
