//! E13: replicated rebalance under fire (extension).
//!
//! E12 asks whether a sharded PM fleet keeps answering while a shard
//! power-fails; E13 asks the harder operational question: can the fleet
//! *move a keyspace* between DIMM generations while serving zipfian
//! traffic, and survive a power-fail at any phase of the move? Each
//! drill point runs the full replicated cluster — epoch-fenced routing,
//! quorum writes, anti-entropy repair — with a live migration draining
//! keyslices from a G1 shard onto a G2 shard, and (except the baseline)
//! a seeded power-fail striking a migration participant at one protocol
//! phase boundary (`Prepare`/`Copy`/`CatchUp`/`Flip`/`Retire`).
//!
//! Three results come out:
//!
//! - **availability per drill** — fraction of requests answered, plus
//!   the served/degraded split, while the copy stream competes with
//!   foreground traffic and crashes land mid-protocol,
//! - **G1 vs G2 tail latency per drill** — p50/p99 for requests served
//!   by each generation; the move shifts load from the G1 source onto
//!   the G2 destination mid-run,
//! - **migration + repair accounting per drill** — slices moved vs
//!   aborted, copy-stream records, control records, copies resumed,
//!   torn flips committed, and anti-entropy repair traffic.
//!
//! Every drill re-checks the three rebalance oracles (zero acked-write
//! loss, no stale-epoch ack, exactly-once ownership) and the rendered
//! report carries the same grep-able markers CI relies on for e12.

use cluster::{
    ClientConfig, ClusterFaultPlan, ClusterParams, ClusterReport, MigrationFailTarget,
    MigrationPhase, MigrationPlan, ReplicationParams,
};

use crate::common::{Curve, ExpError, ExpResult, MetricsSpec};
use crate::divergence::WitnessTap;

/// One drill: a run with (or without) a seeded mid-migration crash.
#[derive(Debug, Clone, Copy)]
pub struct Drill {
    pub label: &'static str,
    /// `None` is the fault-free migration baseline.
    pub fault: Option<(MigrationPhase, MigrationFailTarget)>,
}

/// The canonical drill card: baseline plus one strike at every phase
/// boundary, covering source, destination, and both-down crashes.
pub const FULL_DRILLS: &[Drill] = &[
    Drill {
        label: "baseline",
        fault: None,
    },
    Drill {
        label: "prepare/source",
        fault: Some((MigrationPhase::Prepare, MigrationFailTarget::Source)),
    },
    Drill {
        label: "copy/source",
        fault: Some((MigrationPhase::Copy, MigrationFailTarget::Source)),
    },
    Drill {
        label: "copy/dest",
        fault: Some((MigrationPhase::Copy, MigrationFailTarget::Dest)),
    },
    Drill {
        label: "catchup/source",
        fault: Some((MigrationPhase::CatchUp, MigrationFailTarget::Source)),
    },
    Drill {
        label: "flip/both",
        fault: Some((MigrationPhase::Flip, MigrationFailTarget::Both)),
    },
    Drill {
        label: "retire/source",
        fault: Some((MigrationPhase::Retire, MigrationFailTarget::Source)),
    },
];

/// E13 parameters. Defaults run in a few seconds.
#[derive(Debug, Clone)]
pub struct E13Params {
    /// Shard count (generations alternate G1/G2; the plan drains shard
    /// 0 (G1) onto shard 1 (G2)).
    pub n_shards: usize,
    /// Keyslices across the fleet.
    pub n_slices: usize,
    /// Replicas per slice (writes ack at quorum).
    pub replicas: usize,
    /// Keys preloaded per drill.
    pub preload_keys: u64,
    /// Client requests per drill.
    pub ops: u64,
    /// Mean inter-arrival ticks (zipfian open-loop load).
    pub interarrival: u64,
    /// Anti-entropy cadence in ticks.
    pub repair_interval: u64,
    /// The drill card; each entry is one full cluster run.
    pub drills: Vec<Drill>,
    pub seed: u64,
    /// Sample fleet metrics at this interval.
    pub metrics: Option<MetricsSpec>,
}

impl Default for E13Params {
    fn default() -> Self {
        E13Params {
            n_shards: 4,
            n_slices: 8,
            replicas: 2,
            preload_keys: 1_000,
            ops: 4_000,
            interarrival: 1_000,
            repair_interval: 150_000,
            drills: FULL_DRILLS.to_vec(),
            seed: 0,
            metrics: None,
        }
    }
}

impl E13Params {
    /// CI-scale parameters: baseline, the mid-Copy source strike, and
    /// the torn-flip both-down strike.
    pub fn smoke(seed: u64) -> Self {
        E13Params {
            preload_keys: 300,
            ops: 1_200,
            drills: vec![FULL_DRILLS[0], FULL_DRILLS[2], FULL_DRILLS[5]],
            seed,
            ..E13Params::default()
        }
    }
}

/// Everything one E13 run produced.
#[derive(Debug, Clone)]
pub struct E13Output {
    /// Availability, latency, and migration-accounting results.
    pub results: Vec<ExpResult>,
    /// Deterministic plain-text report, one section per drill.
    pub rebalance_report: String,
    /// Requests served across all drills (perf baseline numerator).
    pub sim_ops: u64,
    /// Simulated ticks across all drills (perf baseline denominator).
    pub sim_cycles: u64,
    /// True when every drill held the three rebalance oracles, finished
    /// its migration, answered every request, and kept availability
    /// at 99% or better.
    pub validated: bool,
}

fn drill_params(p: &E13Params, idx: usize, drill: &Drill) -> ClusterParams {
    let span = p.ops.saturating_mul(p.interarrival).max(1);
    let start_at = span / 5; // migration starts 20% into the run
    let fault = match drill.fault {
        // Flap the network around the expected strike window so the
        // crash lands under message loss, the adversarial case.
        Some((phase, target)) => {
            ClusterFaultPlan::migration_fail_with_flap(phase, target, start_at, span / 3)
        }
        None => ClusterFaultPlan::none(),
    };
    ClusterParams {
        n_shards: p.n_shards,
        log_slots: (p.preload_keys + p.ops)
            .saturating_mul(p.replicas as u64 + 1)
            .next_power_of_two()
            .max(4_096),
        client: ClientConfig {
            preload_keys: p.preload_keys,
            ops: p.ops,
            interarrival: p.interarrival,
            ..ClientConfig::default()
        },
        replication: ReplicationParams {
            n_slices: p.n_slices,
            replicas: p.replicas,
        },
        migration: Some(MigrationPlan::drain(0, 1 % p.n_shards.max(1), start_at)),
        repair_interval: Some(p.repair_interval.max(1)),
        fault,
        seed: p.seed ^ ((idx as u64 + 1) << 8),
        metrics_interval: p.metrics.map(|m| m.interval),
        ..ClusterParams::default()
    }
}

fn drill_report(
    p: &E13Params,
    idx: usize,
    tap: Option<&WitnessTap>,
) -> Result<ClusterReport, ExpError> {
    let params = drill_params(p, idx, &p.drills[idx]);
    let report = match tap {
        Some(t) => {
            let factory = |_shard: usize| t.sink();
            cluster::run_traced(params, Some(&factory))
        }
        None => cluster::run(params),
    }
    .map_err(|e| ExpError::BadParams(format!("rebalance drill {idx}: {e}")))?;
    if let Some(t) = tap {
        for blob in &report.checkpoint_blobs {
            t.fold_checkpoint_bytes(blob);
        }
    }
    Ok(report)
}

/// Runs the drill card. See [`run_traced`] for the witness-tapped
/// variant.
pub fn run(p: &E13Params) -> Result<E13Output, ExpError> {
    run_traced(p, None)
}

/// Runs the drill card with an optional divergence-witness tap
/// observing every shard machine.
pub fn run_traced(p: &E13Params, tap: Option<&WitnessTap>) -> Result<E13Output, ExpError> {
    if p.drills.is_empty() {
        return Err(ExpError::BadParams("empty drill card".into()));
    }
    if p.n_shards < 2 {
        return Err(ExpError::BadParams(
            "rebalance needs at least 2 shards".into(),
        ));
    }

    let mut avail = ExpResult::new(
        "E13 / availability during rebalance",
        "drill #",
        "% of requests",
    );
    let mut lat = ExpResult::new(
        "E13 / G1 vs G2 tail latency during rebalance",
        "drill #",
        "latency (ticks)",
    );
    let mut mig = ExpResult::new("E13 / migration and repair accounting", "drill #", "count");
    let mut c_avail = Curve::new("availability %");
    let mut c_served = Curve::new("served %");
    let mut c_g1_p50 = Curve::new("G1 p50");
    let mut c_g1_p99 = Curve::new("G1 p99");
    let mut c_g2_p50 = Curve::new("G2 p50");
    let mut c_g2_p99 = Curve::new("G2 p99");
    let mut c_moved = Curve::new("slices moved");
    let mut c_aborted = Curve::new("slices aborted");
    let mut c_copied = Curve::new("records copied");
    let mut c_repair = Curve::new("repair bytes");

    let mut report_text = String::new();
    let mut metrics_all = String::new();
    let mut sim_ops = 0u64;
    let mut sim_cycles = 0u64;
    let mut validated = true;

    for idx in 0..p.drills.len() {
        let drill = p.drills[idx];
        let r = drill_report(p, idx, tap)?;
        let x = idx as f64;
        c_avail.push(x, r.availability() * 100.0);
        c_served.push(x, r.served_fraction() * 100.0);
        c_g1_p50.push(x, r.latency_g1.p50 as f64);
        c_g1_p99.push(x, r.latency_g1.p99 as f64);
        c_g2_p50.push(x, r.latency_g2.p50 as f64);
        c_g2_p99.push(x, r.latency_g2.p99 as f64);
        let m = r.migration.unwrap_or_default();
        c_moved.push(x, m.slices_moved as f64);
        c_aborted.push(x, m.slices_aborted as f64);
        c_copied.push(x, m.records_copied as f64);
        c_repair.push(x, r.repair_bytes as f64);
        sim_ops += r.served_ok + r.served_degraded;
        sim_cycles += r.sim_end;
        let oracles_ok = r.lost_acked == 0
            && r.stale_epoch_acks == 0
            && r.ownership_consistent
            && r.unanswered == 0;
        let crashed_as_planned = drill.fault.is_none() || !r.recoveries.is_empty();
        validated &=
            oracles_ok && r.migration_done && crashed_as_planned && r.availability() >= 0.99;
        report_text.push_str(&format!("## drill {idx}: {}\n", drill.label));
        report_text.push_str(&r.render());
        report_text.push('\n');
        if let Some(series) = &r.metrics_jsonl {
            metrics_all.push_str(series);
        }
    }

    avail.curves = vec![c_avail, c_served];
    avail.notes.push(format!(
        "drill card: {}",
        p.drills
            .iter()
            .map(|d| d.label)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    avail.notes.push(
        "every drill: zero acked-write loss, no stale-epoch ack, exactly-once ownership"
            .to_string(),
    );
    if !metrics_all.is_empty() {
        avail.metrics_jsonl = Some(metrics_all);
    }
    lat.curves = vec![c_g1_p50, c_g1_p99, c_g2_p50, c_g2_p99];
    lat.notes
        .push("the drain moves keyslices from shard 0 (G1) onto shard 1 (G2) mid-run".to_string());
    mig.curves = vec![c_moved, c_aborted, c_copied, c_repair];

    Ok(E13Output {
        results: vec![avail, lat, mig],
        rebalance_report: report_text,
        sim_ops,
        sim_cycles,
        validated,
    })
}

/// Renders the deterministic perf baseline (`BENCH_rebalance.json`):
/// simulated fields only, byte-identical per seed, so CI diffs the file
/// directly. Wall-clock figures go to the sidecar
/// ([`bench_wall_json`]), which is what the `diff -r` exclusions cover.
pub fn bench_json(out: &E13Output) -> String {
    bench::render_flat("e13_rebalance", out.sim_ops, out.sim_cycles)
}

/// Renders the host-dependent sidecar (`BENCH_rebalance_wall.json`).
pub fn bench_wall_json(out: &E13Output, wall_us: u64) -> String {
    bench::render_flat_wall("e13_rebalance", out.sim_ops, wall_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_card_validates_and_reports_migration() {
        let out = run(&E13Params::smoke(3)).expect("e13");
        assert!(out.validated, "report:\n{}", out.rebalance_report);
        assert!(out.rebalance_report.contains("## drill 0: baseline"));
        assert!(out.rebalance_report.contains("copy/source"));
        assert!(out.rebalance_report.contains("flip/both"));
        assert!(out.rebalance_report.contains("migration:"));
        assert!(out
            .rebalance_report
            .contains("zero acknowledged-write loss"));
        assert_eq!(out.results.len(), 3);
        assert!(out.sim_ops > 0);
    }

    #[test]
    fn baseline_moves_slices_without_aborts() {
        let p = E13Params {
            drills: vec![FULL_DRILLS[0]],
            ..E13Params::smoke(5)
        };
        let out = run(&p).expect("e13");
        assert!(out.validated, "report:\n{}", out.rebalance_report);
        let mig = &out.results[2];
        assert!(
            mig.curves[0].points[0].1 >= 1.0,
            "fault-free drain must move at least one slice"
        );
        assert_eq!(mig.curves[1].points[0].1, 0.0, "no aborts without faults");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(&E13Params::smoke(9)).expect("a");
        let b = run(&E13Params::smoke(9)).expect("b");
        assert_eq!(a.rebalance_report, b.rebalance_report);
        assert_eq!(a.sim_ops, b.sim_ops);
        assert_eq!(a.sim_cycles, b.sim_cycles);
    }

    #[test]
    fn bad_params_are_typed() {
        let p = E13Params {
            drills: vec![],
            ..E13Params::default()
        };
        assert!(matches!(run(&p), Err(ExpError::BadParams(_))));
        let p = E13Params {
            n_shards: 1,
            ..E13Params::default()
        };
        assert!(matches!(run(&p), Err(ExpError::BadParams(_))));
    }

    #[test]
    fn bench_json_shape() {
        let p = E13Params {
            drills: vec![FULL_DRILLS[0]],
            ..E13Params::smoke(2)
        };
        let out = run(&p).expect("e13");
        let j = bench_json(&out);
        assert!(j.contains("\"experiment\": \"e13_rebalance\""));
        // Deterministic part carries no wall-clock field; that lives in
        // the sidecar, which carries no simulated field.
        assert!(!j.contains("wall"));
        let w = bench_wall_json(&out, 77_000);
        assert!(w.contains("\"wall_us\": 77000"));
        assert!(!w.contains("sim_cycles"));
        let entries = bench::parse_bench(&j).expect("parses");
        assert_eq!(entries[0].sim_ops, out.sim_ops);
        assert_eq!(entries[0].sim_cycles, out.sim_cycles);
    }
}
