//! E14: the simulator's own speed, measured and gated.
//!
//! Every fleet-scale ROADMAP item multiplies the single-op simulation
//! cost, so the simulator core gets the same treatment as the modeled
//! hardware: a benchmark suite (`repro bench`) that measures the three
//! hot paths — E0-style streaming stores/loads, the E3 write-amp loop,
//! and YCSB inserts into FAST & FAIR — each bare, with a [`TraceSink`]
//! attached, and with the `simwatch` sampler attached.
//!
//! Two throughput figures per scenario:
//!
//! - `sim_ops_per_mcycle` — simulated ops per simulated megacycle: a
//!   pure function of the seed, byte-identical across hosts, written to
//!   `BENCH_sim.json` and gated by `benchcmp` in CI with a tolerance
//!   band (>15% regression fails);
//! - `sim_ops_per_wall_sec` — host throughput, written to the
//!   `BENCH_sim_wall.json` sidecar and excluded from byte-identity
//!   checks.
//!
//! The trace-sink and sampler variants exist to keep the observability
//! hooks honest: the sink variant pins that attaching a sink still sees
//! every event (`trace_events`), and the no-sink variant is the one the
//! hot-path optimizations are judged against.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use cpucache::PrefetchConfig;
use optane_core::trace::{TraceEvent, TraceSink};
use optane_core::{Generation, Machine, MachineConfig, MachineSampler};
use pmds::{FastFair, UpdateStrategy};
use pmem::SimEnv;
use simbase::XPLINE_BYTES;
use workloads::YcsbGenerator;

use crate::common::{Curve, ExpResult};
use crate::divergence::WitnessTap;

/// Parameters for E14.
#[derive(Debug, Clone)]
pub struct E14Params {
    /// Which generation to model (the hot path is generation-agnostic;
    /// G1 exercises the periodic write-back too).
    pub generation: Generation,
    /// XPLine blocks per thread on the E0-style streaming path.
    pub e0_blocks: u64,
    /// Working-set size for the E3-style write-amp loop (bytes).
    pub e3_wss: u64,
    /// Rounds over the E3 working set.
    pub e3_rounds: u64,
    /// Inserts on the YCSB/FAST & FAIR path.
    pub ycsb_inserts: u64,
    /// Sampling interval (sim cycles) for the sampler variants.
    pub sample_interval: u64,
    /// Run seed, XORed into the machine's crash seed.
    pub seed: u64,
}

impl Default for E14Params {
    fn default() -> Self {
        E14Params {
            generation: Generation::G1,
            e0_blocks: 20_000,
            e3_wss: 16 << 10,
            e3_rounds: 60,
            ycsb_inserts: 20_000,
            sample_interval: 100_000,
            seed: 0,
        }
    }
}

impl E14Params {
    /// CI-budget scale: every scenario still crosses the caches, both
    /// DIMM buffers, and the sampler, in a couple of seconds total.
    pub fn smoke(seed: u64) -> Self {
        E14Params {
            e0_blocks: 2_000,
            e3_wss: 16 << 10,
            e3_rounds: 20,
            ycsb_inserts: 3_000,
            seed,
            ..E14Params::default()
        }
    }
}

/// The three measured hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    E0Stream,
    E3WriteAmp,
    YcsbBtree,
}

impl Path {
    fn slug(self) -> &'static str {
        match self {
            Path::E0Stream => "e0_stream",
            Path::E3WriteAmp => "e3_wa",
            Path::YcsbBtree => "ycsb_btree",
        }
    }
}

/// What observes the machine while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attach {
    /// Nothing attached: the optimization target.
    NoSink,
    /// A counting [`TraceSink`] attached (every event constructed).
    Sink,
    /// The `simwatch` [`MachineSampler`] polled from the loop.
    Sampler,
}

impl Attach {
    fn slug(self) -> &'static str {
        match self {
            Attach::NoSink => "nosink",
            Attach::Sink => "sink",
            Attach::Sampler => "sampler",
        }
    }
}

/// A sink that counts events — the cheapest possible observer, so the
/// sink-attached scenarios measure the hook itself, not the consumer.
struct CountingSink(Rc<Cell<u64>>);

impl TraceSink for CountingSink {
    fn on_event(&mut self, _ev: &TraceEvent) {
        self.0.set(self.0.get() + 1);
    }
}

/// E14's full output: the scenario table plus a renderable result.
#[derive(Debug)]
pub struct E14Output {
    /// One row per (path × attach) scenario, in fixed order.
    pub scenarios: Vec<bench::Scenario>,
    /// Curve form (ops/Mcycle per path, one curve per attachment).
    pub result: ExpResult,
}

/// Renders the deterministic `BENCH_sim.json` body.
pub fn bench_json(out: &E14Output) -> String {
    bench::render_multi("e14_simspeed", &out.scenarios)
}

/// Renders the host-dependent `BENCH_sim_wall.json` sidecar.
pub fn bench_wall_json(out: &E14Output) -> String {
    bench::render_multi_wall("e14_simspeed", &out.scenarios)
}

/// Runs the full suite.
pub fn run(params: &E14Params) -> E14Output {
    run_traced(params, None)
}

/// Runs the full suite with an optional divergence-witness tap. When the
/// tap is present it replaces the scenario's own observer as the
/// machine's TraceSink (the witness hashes the op stream; `trace_events`
/// then stays 0), which is fine for the witness: both children observe
/// the same thing or the hashes disagree.
pub fn run_traced(params: &E14Params, tap: Option<&WitnessTap>) -> E14Output {
    // Untimed warm-up: a full-scale streaming pass on a throwaway machine
    // grows the allocator arenas and page tables to the same high-water
    // mark as the first timed scenario, so that scenario does not absorb
    // process start-up cost into its wall clock (a miniature pass is not
    // enough: the first scenario would still fault in the full working
    // set). The machine is discarded; deterministic fields are unaffected.
    {
        let mut cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), 1);
        cfg.crash_seed ^= params.seed;
        let mut m = Machine::new(cfg);
        let _ = e0_stream(params, &mut m, &mut None);
    }
    let mut scenarios = Vec::new();
    let mut curves = vec![
        Curve::new("no sink"),
        Curve::new("trace sink"),
        Curve::new("sampler"),
    ];
    let mut metrics_jsonl = String::new();
    for (x, path) in [Path::E0Stream, Path::E3WriteAmp, Path::YcsbBtree]
        .into_iter()
        .enumerate()
    {
        for (c, attach) in [Attach::NoSink, Attach::Sink, Attach::Sampler]
            .into_iter()
            .enumerate()
        {
            let (scenario, jsonl) = run_scenario(params, path, attach, tap);
            curves[c].push(
                x as f64,
                bench::ops_per_mcycle(scenario.sim_ops, scenario.sim_cycles),
            );
            if let Some(j) = jsonl {
                metrics_jsonl.push_str(&j);
            }
            scenarios.push(scenario);
        }
    }
    let mut result = ExpResult::new(
        "E14: simulator speed (0=e0_stream, 1=e3_wa, 2=ycsb_btree)",
        "path",
        "sim-ops/Mcycle",
    );
    result.curves = curves;
    if !metrics_jsonl.is_empty() {
        result.metrics_jsonl = Some(metrics_jsonl);
    }
    E14Output { scenarios, result }
}

/// Timed repetitions per scenario. The simulated run is a pure function
/// of the seed, so every repetition produces the same deterministic
/// fields; only the wall clock varies with host noise, and the minimum
/// is the standard estimator of the true cost.
const TIMING_REPS: u32 = 3;

fn run_scenario(
    params: &E14Params,
    path: Path,
    attach: Attach,
    tap: Option<&WitnessTap>,
) -> (bench::Scenario, Option<String>) {
    // Under the divergence witness a single repetition keeps the folded
    // op stream identical to a plain run; timing is not the point there.
    let reps = if tap.is_some() { 1 } else { TIMING_REPS };
    let mut best: Option<(bench::Scenario, Option<String>)> = None;
    for _ in 0..reps {
        let (scenario, jsonl) = run_scenario_once(params, path, attach, tap);
        match &mut best {
            Some((b, _)) => {
                debug_assert_eq!(b.sim_ops, scenario.sim_ops);
                debug_assert_eq!(b.sim_cycles, scenario.sim_cycles);
                if scenario.wall_us < b.wall_us {
                    b.wall_us = scenario.wall_us;
                }
            }
            None => best = Some((scenario, jsonl)),
        }
    }
    // `reps >= 1`, so `best` is always populated by the first iteration.
    best.unwrap_or_else(|| run_scenario_once(params, path, attach, tap))
}

fn run_scenario_once(
    params: &E14Params,
    path: Path,
    attach: Attach,
    tap: Option<&WitnessTap>,
) -> (bench::Scenario, Option<String>) {
    let mut cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), 1);
    cfg.crash_seed ^= params.seed;
    let mut m = Machine::new(cfg);
    let events = Rc::new(Cell::new(0u64));
    match (tap, attach) {
        // The witness tap always wins: it must see the op stream.
        (Some(t), _) => {
            m.set_trace_sink(t.sink());
        }
        (None, Attach::Sink) => {
            m.set_trace_sink(Box::new(CountingSink(events.clone())));
        }
        (None, _) => {}
    }
    let mut sampler = (attach == Attach::Sampler).then(|| {
        let mut s = MachineSampler::new(params.sample_interval);
        s.set_context(format!("e14 {}_{}", path.slug(), attach.slug()));
        s
    });
    let wall = Instant::now();
    let (sim_ops, sim_cycles) = match path {
        Path::E0Stream => e0_stream(params, &mut m, &mut sampler),
        Path::E3WriteAmp => e3_write_amp(params, &mut m, &mut sampler),
        Path::YcsbBtree => ycsb_btree(params, &mut m, &mut sampler),
    };
    let wall_us = wall.elapsed().as_micros() as u64;
    let jsonl = match &mut sampler {
        Some(s) => {
            s.record_final(&m, sim_cycles);
            Some(s.to_jsonl())
        }
        None => None,
    };
    if let Some(t) = tap {
        t.fold_machine(&mut m);
    }
    let scenario = bench::Scenario {
        name: format!("{}_{}", path.slug(), attach.slug()),
        sim_ops,
        sim_cycles,
        trace_events: events.get(),
        wall_us,
    };
    (scenario, jsonl)
}

/// E0-style streaming: a write pass (4 nt-stores per XPLine, periodic
/// sfence) then a read pass (4 loads + 4 clflushopt per XPLine) over
/// the same region. One simulated op per machine call.
fn e0_stream(
    params: &E14Params,
    m: &mut Machine,
    sampler: &mut Option<MachineSampler>,
) -> (u64, u64) {
    let t = m.spawn(0);
    let region = m.alloc_pm(params.e0_blocks * XPLINE_BYTES, 4096);
    let data = [0x5Au8; 64];
    let mut ops = 0u64;
    for b in 0..params.e0_blocks {
        let block = region.add_xplines(b);
        // One batched dispatch per XPLine: timing and trace events are
        // identical to four single-line nt-stores.
        m.nt_store_run(t, block, &data, 4);
        ops += 4;
        if b % 16 == 0 {
            m.sfence(t);
            ops += 1;
        }
        if let Some(s) = sampler {
            s.poll(m, m.now(t));
        }
    }
    m.sfence(t);
    ops += 1;
    for b in 0..params.e0_blocks {
        let block = region.add_xplines(b);
        m.load_u64_run(t, block, 4);
        m.clflushopt_run(t, block, 4);
        ops += 8;
        if let Some(s) = sampler {
            s.poll(m, m.now(t));
        }
    }
    m.sfence(t);
    ops += 1;
    (ops, m.now(t))
}

/// E3-style write-amp loop: partial-line nt-stores over a small working
/// set, fenced per round — the random-eviction / read-modify-write path
/// through the DIMM write buffer.
fn e3_write_amp(
    params: &E14Params,
    m: &mut Machine,
    sampler: &mut Option<MachineSampler>,
) -> (u64, u64) {
    let t = m.spawn(0);
    let base = m.alloc_pm(params.e3_wss, XPLINE_BYTES);
    let xplines = params.e3_wss / XPLINE_BYTES;
    let data = [0xA5u8; 64];
    let mut ops = 0u64;
    for _ in 0..params.e3_rounds {
        for x in 0..xplines {
            let xp = base.add_xplines(x);
            m.nt_store_run(t, xp, &data, 2);
            ops += 2;
            if let Some(s) = sampler {
                s.poll(m, m.now(t));
            }
        }
        m.sfence(t);
        ops += 1;
    }
    (ops, m.now(t))
}

/// YCSB inserts into FAST & FAIR (out-of-place): the datastore path —
/// node search, redo log, flush/fence ordering. One op per insert.
fn ycsb_btree(
    params: &E14Params,
    m: &mut Machine,
    sampler: &mut Option<MachineSampler>,
) -> (u64, u64) {
    let t = m.spawn(0);
    let mut tree = {
        let mut env = SimEnv::new(m, t);
        FastFair::create(&mut env, UpdateStrategy::RedoLog)
    };
    let mut ops = 0u64;
    for key in YcsbGenerator::load_keys(params.ycsb_inserts) {
        let mut env = SimEnv::new(m, t);
        tree.insert(&mut env, key.max(1), key);
        ops += 1;
        if let Some(s) = sampler {
            s.poll(m, m.now(t));
        }
    }
    (ops, m.now(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_covers_the_nine_scenarios() {
        let out = run(&E14Params::smoke(7));
        assert_eq!(out.scenarios.len(), 9);
        let names: Vec<_> = out.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "e0_stream_nosink",
                "e0_stream_sink",
                "e0_stream_sampler",
                "e3_wa_nosink",
                "e3_wa_sink",
                "e3_wa_sampler",
                "ycsb_btree_nosink",
                "ycsb_btree_sink",
                "ycsb_btree_sampler",
            ]
        );
        for s in &out.scenarios {
            assert!(s.sim_ops > 0, "{}: no ops", s.name);
            assert!(s.sim_cycles > 0, "{}: clock never advanced", s.name);
        }
    }

    #[test]
    fn sink_variants_see_every_event_and_timing_is_sink_independent() {
        let out = run(&E14Params::smoke(7));
        for chunk in out.scenarios.chunks(3) {
            let (nosink, sink, sampler) = (&chunk[0], &chunk[1], &chunk[2]);
            assert_eq!(nosink.trace_events, 0, "{}", nosink.name);
            assert!(
                sink.trace_events >= sink.sim_ops,
                "{}: a sink observes at least one event per op ({} < {})",
                sink.name,
                sink.trace_events,
                sink.sim_ops
            );
            // Observability must not perturb the simulation: all three
            // variants of a path simulate the identical op stream.
            assert_eq!(nosink.sim_ops, sink.sim_ops);
            assert_eq!(nosink.sim_cycles, sink.sim_cycles, "{}", sink.name);
            assert_eq!(nosink.sim_cycles, sampler.sim_cycles, "{}", sampler.name);
        }
    }

    #[test]
    fn deterministic_fields_are_stable_in_process() {
        let (a, b) = (run(&E14Params::smoke(7)), run(&E14Params::smoke(7)));
        assert_eq!(bench_json(&a), bench_json(&b));
        // And they parse back into the gate's comparable form.
        let entries = bench::parse_bench(&bench_json(&a)).expect("parses");
        assert_eq!(entries.len(), 9);
        assert!(bench::all_pass(&bench::compare(
            &entries,
            &bench::parse_bench(&bench_json(&b)).expect("parses"),
            0.0
        )));
    }

    #[test]
    fn sampler_variant_emits_metrics_rows() {
        let out = run(&E14Params::smoke(7));
        let jsonl = out.result.metrics_jsonl.expect("sampler rows");
        assert!(jsonl.contains("e14 e0_stream_sampler"));
        assert!(jsonl.contains("e14 ycsb_btree_sampler"));
    }
}
