//! E15: multi-thread contention sweep on the deterministic executor.
//!
//! The paper's bandwidth and RAP studies (§2.2, §3.6) run each thread
//! over private data; this experiment asks what the on-DIMM buffers do
//! when simulated threads genuinely *contend* — interleaved by the
//! [`Interleaver`] rather than by hand-rolled loops — and how the new
//! locked-RMW primitives behave under that contention. Three measurements
//! per thread count, each on a fresh machine:
//!
//! 1. **Striped nt-store bandwidth**: all threads stream into one shared
//!    region, lane `w` writing blocks `w, w+T, w+2T, …` — adjacent
//!    XPLines belong to different threads, so the XPBuffer sees the
//!    interleaved stream a real contended benchmark produces.
//! 2. **Contended read-after-persist**: every thread repeatedly
//!    `fetch_add`s one shared PM counter and persists it — the textbook
//!    contended persist. Reported as cycles per operation; the locked
//!    RMW's inherent full barrier plus the `clwb`+`sfence` round-trip
//!    dominate.
//! 3. **Detectable stack/queue throughput**: the lock-free structures
//!    from `pmds` (`TreiberStack`, `MsQueue`) driven by per-lane op
//!    scripts, under both the round-robin and seeded-random scheduler
//!    policies — the CAS-retry and helping paths only light up when the
//!    schedule interleaves operations.
//!
//! Everything is deterministic: same parameters, byte-identical tables,
//! and `repro divergence e15` witnesses both scheduler policies across
//! two fresh processes.

use cpucache::PrefetchConfig;
use optane_core::{
    Generation, Interleaver, Machine, MachineConfig, MtStats, SchedPolicy, Step, ThreadId,
};
use pmds::{msqueue, treiber, MsQueue, MsQueueThread, TreiberStack, TreiberThread};
use pmem::SimEnv;
use simbase::{CACHELINE_BYTES, XPLINE_BYTES};

use crate::common::{Curve, ExpError, ExpResult};
use crate::divergence::WitnessTap;

/// Parameters for E15.
#[derive(Debug, Clone)]
pub struct E15Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// XPLine blocks per thread in the bandwidth measurement.
    pub blocks_per_thread: u64,
    /// Fetch-add+persist iterations per thread in the RAP measurement.
    pub rap_iters_per_thread: u64,
    /// Stack/queue operations per thread (push/pop pairs count as two).
    pub ops_per_thread: u64,
    /// Seed for the seeded-random scheduler policy.
    pub sched_seed: u64,
    /// Clock frequency for GB/s conversion.
    pub ghz: f64,
}

impl Default for E15Params {
    fn default() -> Self {
        E15Params {
            generation: Generation::G1,
            threads: vec![1, 2, 4, 8],
            blocks_per_thread: 4000,
            rap_iters_per_thread: 2000,
            ops_per_thread: 400,
            sched_seed: 0xE15,
            ghz: 2.1,
        }
    }
}

/// Runs E15: the three contention measurements across the thread sweep.
pub fn run(params: &E15Params) -> Result<Vec<ExpResult>, ExpError> {
    run_traced(params, None)
}

/// Runs E15 with an optional divergence-witness tap observing every
/// machine's op stream and final checkpoint (see `divergence`).
pub fn run_traced(
    params: &E15Params,
    tap: Option<&WitnessTap>,
) -> Result<Vec<ExpResult>, ExpError> {
    if params.threads.is_empty() {
        return Err(ExpError::BadParams("empty thread sweep".into()));
    }
    if params.ops_per_thread == 0 || params.blocks_per_thread == 0 {
        return Err(ExpError::BadParams("zero work per thread".into()));
    }
    let gen = params.generation;
    let mut bw = ExpResult::new(
        format!("E15a: contended nt-store bandwidth ({gen})"),
        "threads",
        "GB/s",
    );
    let mut bw_curve = Curve::new("striped nt-store");
    let mut rap = ExpResult::new(
        format!("E15b: contended RAP, fetch_add + clwb + sfence ({gen})"),
        "threads",
        "cycles/op",
    );
    let mut rap_curve = Curve::new("shared counter");
    let mut ds = ExpResult::new(
        format!("E15c: detectable stack/queue throughput ({gen})"),
        "threads",
        "ops/Mcycle",
    );
    let mut ds_curves = [
        Curve::new("treiber stack, round-robin"),
        Curve::new("treiber stack, seeded-random"),
        Curve::new("ms queue, round-robin"),
        Curve::new("ms queue, seeded-random"),
    ];
    let mut peak_mt = MtStats::default();
    for &threads in &params.threads {
        let x = threads as f64;
        bw_curve.push(x, measure_ntstore(params, threads, tap));
        rap_curve.push(x, measure_rap(params, threads, tap));
        let policies = [
            SchedPolicy::RoundRobin,
            SchedPolicy::SeededRandom {
                seed: params.sched_seed,
            },
        ];
        for (pi, &policy) in policies.iter().enumerate() {
            let (tput, mt) = measure_structure(params, threads, policy, false, tap)?;
            ds_curves[pi].push(x, tput);
            let (tput, qmt) = measure_structure(params, threads, policy, true, tap)?;
            ds_curves[2 + pi].push(x, tput);
            peak_mt.merge(&mt);
            peak_mt.merge(&qmt);
        }
    }
    bw.curves = vec![bw_curve];
    rap.curves = vec![rap_curve];
    ds.curves = ds_curves.into_iter().collect();
    ds.notes.push(format!(
        "locked-RMW traffic at peak: cas_ops={} cas_failures={} fetch_adds={} \
         persist_epochs={} sb_max_depth={}",
        peak_mt.cas_ops,
        peak_mt.cas_failures,
        peak_mt.fetch_adds,
        peak_mt.persist_epochs,
        peak_mt.sb_max_depth
    ));
    Ok(vec![bw, rap, ds])
}

fn machine(
    params: &E15Params,
    threads: usize,
    tap: Option<&WitnessTap>,
) -> (Machine, Vec<ThreadId>) {
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), 1);
    let mut m = Machine::new(cfg);
    if let Some(tap) = tap {
        m.set_trace_sink(tap.sink());
    }
    let tids = (0..threads).map(|_| m.spawn(0)).collect();
    (m, tids)
}

fn finish(m: &mut Machine, tids: &[ThreadId], tap: Option<&WitnessTap>) -> f64 {
    let makespan = tids.iter().map(|&t| m.now(t)).max().unwrap_or(0) as f64;
    if let Some(tap) = tap {
        tap.fold_machine(m);
    }
    makespan
}

/// Striped nt-store streaming: one shared region, lane `w` owns blocks
/// `w, w+T, w+2T, …`, one block per executor step.
fn measure_ntstore(params: &E15Params, threads: usize, tap: Option<&WitnessTap>) -> f64 {
    let (mut m, tids) = machine(params, threads, tap);
    let total_blocks = params.blocks_per_thread * threads as u64;
    let region = m.alloc_pm(total_blocks * XPLINE_BYTES, 4096);
    let data = [0x5Au8; 64];
    let mut issued = vec![0u64; threads];
    Interleaver::new(SchedPolicy::RoundRobin).run(
        &mut m,
        &tids,
        &mut |mm: &mut Machine, tid, lane: usize| {
            let i = issued[lane];
            if i == params.blocks_per_thread {
                return Step::Done;
            }
            issued[lane] = i + 1;
            let block = region.add_xplines(i * threads as u64 + lane as u64);
            mm.nt_store_run(tid, block, &data, 4);
            if i.is_multiple_of(16) {
                mm.sfence(tid);
            }
            Step::Ran
        },
    );
    for &t in &tids {
        m.sfence(t);
    }
    let makespan = finish(&mut m, &tids, tap);
    (total_blocks * XPLINE_BYTES) as f64 / makespan * params.ghz
}

/// Contended read-after-persist: every lane `fetch_add`s the same PM
/// counter and persists it, one op per executor step.
fn measure_rap(params: &E15Params, threads: usize, tap: Option<&WitnessTap>) -> f64 {
    let (mut m, tids) = machine(params, threads, tap);
    let counter = m.alloc_pm(CACHELINE_BYTES, CACHELINE_BYTES);
    let mut issued = vec![0u64; threads];
    Interleaver::new(SchedPolicy::RoundRobin).run(
        &mut m,
        &tids,
        &mut |mm: &mut Machine, tid, lane: usize| {
            if issued[lane] == params.rap_iters_per_thread {
                return Step::Done;
            }
            issued[lane] += 1;
            mm.fetch_add_u64(tid, counter, 1);
            mm.clwb(tid, counter);
            mm.sfence(tid);
            Step::Ran
        },
    );
    let total_ops = params.rap_iters_per_thread * threads as u64;
    let makespan = finish(&mut m, &tids, tap);
    makespan / total_ops as f64
}

/// Stack or queue throughput under `policy`: each lane alternates
/// insert/remove, one phase per executor step.
fn measure_structure(
    params: &E15Params,
    threads: usize,
    policy: SchedPolicy,
    queue: bool,
    tap: Option<&WitnessTap>,
) -> Result<(f64, MtStats), ExpError> {
    let (mut m, tids) = machine(params, threads, tap);
    let total_ops = drive_structure(&mut m, &tids, params.ops_per_thread, policy, queue)?;
    let makespan = finish(&mut m, &tids, tap);
    let mt = m.metrics().mt;
    Ok((total_ops as f64 / makespan * 1e6, mt))
}

/// Drives either structure through the executor; returns acked op count.
fn drive_structure(
    m: &mut Machine,
    tids: &[ThreadId],
    ops_per_thread: u64,
    policy: SchedPolicy,
    queue: bool,
) -> Result<u64, ExpError> {
    let threads = tids.len();
    let mut acked = 0u64;
    if queue {
        let (q, mut lanes) = {
            let mut env = SimEnv::new(m, tids[0]);
            let q = MsQueue::new(&mut env);
            let lanes: Vec<MsQueueThread> = (0..threads)
                .map(|l| MsQueueThread::new(&mut env, l as u64))
                .collect();
            (q, lanes)
        };
        let mut issued = vec![0u64; threads];
        let report =
            Interleaver::new(policy).run(m, tids, &mut |mm: &mut Machine, tid, lane: usize| {
                if !lanes[lane].busy() {
                    if issued[lane] == ops_per_thread {
                        return Step::Done;
                    }
                    let i = issued[lane];
                    issued[lane] += 1;
                    if i.is_multiple_of(2) {
                        lanes[lane].begin_enqueue(1 + lane as u64 * ops_per_thread + i);
                    } else {
                        lanes[lane].begin_dequeue();
                    }
                }
                let mut env = SimEnv::new(mm, tid);
                if lanes[lane].step(&mut env, &q).is_some() {
                    acked += 1;
                }
                Step::Ran
            });
        if !report.completed {
            return Err(ExpError::MissingData(
                "queue workload did not retire".into(),
            ));
        }
        // Post-run detectability check: every lane's descriptor must read
        // back as committed (the run ended between operations).
        let t0 = tids[0];
        let mut env = SimEnv::new(m, t0);
        for (l, lane) in lanes.iter().enumerate() {
            let r = msqueue::recover(&mut env, &q, l as u64, lane.desc());
            if !r.applied {
                return Err(ExpError::MissingData(format!(
                    "queue lane {l} descriptor not committed after run"
                )));
            }
        }
    } else {
        let (s, mut lanes) = {
            let mut env = SimEnv::new(m, tids[0]);
            let s = TreiberStack::new(&mut env);
            let lanes: Vec<TreiberThread> = (0..threads)
                .map(|l| TreiberThread::new(&mut env, l as u64))
                .collect();
            (s, lanes)
        };
        let mut issued = vec![0u64; threads];
        let report =
            Interleaver::new(policy).run(m, tids, &mut |mm: &mut Machine, tid, lane: usize| {
                if !lanes[lane].busy() {
                    if issued[lane] == ops_per_thread {
                        return Step::Done;
                    }
                    let i = issued[lane];
                    issued[lane] += 1;
                    if i.is_multiple_of(2) {
                        lanes[lane].begin_push(1 + lane as u64 * ops_per_thread + i);
                    } else {
                        lanes[lane].begin_pop();
                    }
                }
                let mut env = SimEnv::new(mm, tid);
                if lanes[lane].step(&mut env, &s).is_some() {
                    acked += 1;
                }
                Step::Ran
            });
        if !report.completed {
            return Err(ExpError::MissingData(
                "stack workload did not retire".into(),
            ));
        }
        let t0 = tids[0];
        let mut env = SimEnv::new(m, t0);
        for (l, lane) in lanes.iter().enumerate() {
            let r = treiber::recover(&mut env, &s, l as u64, lane.desc());
            if !r.applied {
                return Err(ExpError::MissingData(format!(
                    "stack lane {l} descriptor not committed after run"
                )));
            }
        }
    }
    Ok(acked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E15Params {
        E15Params {
            threads: vec![1, 2, 4],
            blocks_per_thread: 400,
            rap_iters_per_thread: 200,
            ops_per_thread: 40,
            ..E15Params::default()
        }
    }

    #[test]
    fn produces_all_curves_and_is_deterministic() {
        let run_once = || {
            let rs = run(&small()).expect("e15 runs");
            rs.iter().map(|r| r.to_csv()).collect::<Vec<_>>().join("\n")
        };
        let a = run_once();
        assert_eq!(a, run_once(), "same params, byte-identical CSV");
        let rs = run(&small()).expect("e15 runs");
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[2].curves.len(), 4, "both structures × both policies");
        for r in &rs {
            for c in &r.curves {
                assert_eq!(c.points.len(), 3, "every sweep point sampled");
                assert!(c.points.iter().all(|&(_, y)| y.is_finite() && y > 0.0));
            }
        }
    }

    #[test]
    fn locked_rmw_counters_reach_the_metrics_registry() {
        let rs = run(&small()).expect("e15 runs");
        let note = rs[2].notes.first().expect("mt-stats note");
        assert!(note.contains("cas_ops="), "{note}");
        assert!(
            !note.contains("cas_ops=0 "),
            "structure workloads must issue CASes: {note}"
        );
    }

    #[test]
    fn contended_bandwidth_saturates_like_e0() {
        let rs = run(&E15Params {
            threads: vec![1, 8],
            ..small()
        })
        .expect("e15 runs");
        let bw = rs[0].curve("striped nt-store").expect("bw curve");
        let b1 = bw.y_at(1.0).expect("1-thread point");
        let b8 = bw.y_at(8.0).expect("8-thread point");
        assert!(
            b8 < b1 * 8.0,
            "contended write bandwidth must not scale linearly: {b1:.2} -> {b8:.2}"
        );
    }

    #[test]
    fn empty_sweep_is_a_typed_error() {
        let r = run(&E15Params {
            threads: vec![],
            ..E15Params::default()
        });
        assert!(matches!(r, Err(ExpError::BadParams(_))));
    }
}
