//! E1 / Figure 2: inferring the read buffer with strided reads.
//!
//! Single thread reads `CpX` cachelines per XPLine over a working set,
//! invalidating each cacheline right after the read so every access reaches
//! the DIMM. Read amplification (media bytes / iMC bytes) reveals the
//! buffer: RA = 4/CpX while the working set fits, jumping to 4 beyond
//! capacity (claim C1).

use cpucache::PrefetchConfig;
use optane_core::{Generation, ImcQueueStats, Machine, MachineConfig, MachineSampler};
use simbase::XPLINE_BYTES;
use workloads::strided_sequence;

use crate::common::{occupancy_note, Curve, ExpResult, MetricsSpec};

/// Parameters for E1.
#[derive(Debug, Clone)]
pub struct E1Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Working-set sizes to sweep (bytes, multiples of 256).
    pub wss_points: Vec<u64>,
    /// Measured rounds per point (after one warm-up round).
    pub rounds: u64,
    /// When set, sample `simwatch` metrics at this interval.
    pub metrics: Option<MetricsSpec>,
    /// Run seed, XORed into the machine's crash seed. The default 0
    /// leaves the generation-preset seed untouched, so existing results
    /// are byte-identical.
    pub seed: u64,
}

impl Default for E1Params {
    fn default() -> Self {
        E1Params {
            generation: Generation::G1,
            wss_points: (1..=18).map(|k| k * 2048).collect(), // 2 KB .. 36 KB
            rounds: 3,
            metrics: None,
            seed: 0,
        }
    }
}

/// Runs E1 and returns one curve per CpX.
pub fn run(params: &E1Params) -> ExpResult {
    let mut result = ExpResult::new(
        format!("E1 / Figure 2: read amplification ({})", params.generation),
        "WSS(bytes)",
        "read amplification",
    );
    let mut series = params.metrics.map(|_| String::new());
    let mut queues = ImcQueueStats::default();
    for cpx in (1..=4u64).rev() {
        let mut curve = Curve::new(format!(
            "read {cpx} cacheline{}",
            if cpx > 1 { "s" } else { "" }
        ));
        for &wss in &params.wss_points {
            let point = measure_point(params, wss, cpx);
            curve.push(wss as f64, point.ra);
            if let (Some(all), Some(s)) = (&mut series, point.jsonl) {
                all.push_str(&s);
            }
            queues.merge(&point.queues);
        }
        result.curves.push(curve);
    }
    result.metrics_jsonl = series;
    result.notes.push(occupancy_note(&queues));
    result
}

struct PointOutcome {
    ra: f64,
    jsonl: Option<String>,
    queues: ImcQueueStats,
}

fn measure_point(params: &E1Params, wss: u64, cpx: u64) -> PointOutcome {
    let rounds = params.rounds;
    let mut cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::none(), 1);
    cfg.crash_seed ^= params.seed;
    let mut m = Machine::new(cfg);
    let t = m.spawn(0);
    let base = m.alloc_pm(wss, XPLINE_BYTES);
    let mut sampler = params.metrics.map(|spec| {
        let mut s = MachineSampler::new(spec.interval);
        s.set_context(format!("e1 cpx={cpx} wss={wss}"));
        s
    });
    let run_round = |m: &mut Machine, sampler: &mut Option<MachineSampler>| {
        for pass in 0..cpx {
            for addr in strided_sequence(base, wss, pass) {
                m.load_u64(t, addr);
                m.clflushopt(t, addr);
                if let Some(s) = sampler {
                    s.poll(m, m.now(t));
                }
            }
            m.sfence(t);
        }
    };
    // Warm up one round, then measure.
    run_round(&mut m, &mut None);
    let before = m.metrics().telemetry;
    for _ in 0..rounds {
        run_round(&mut m, &mut sampler);
    }
    let after = m.metrics();
    if let Some(s) = &mut sampler {
        s.record_final(&m, m.now(t));
    }
    PointOutcome {
        ra: after.telemetry.delta(&before).read_amplification(),
        jsonl: sampler.map(|s| s.to_jsonl()),
        queues: after.queue_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(gen: Generation) -> ExpResult {
        run(&E1Params {
            generation: gen,
            wss_points: vec![4 << 10, 8 << 10, 12 << 10, 32 << 10],
            rounds: 2,
            metrics: None,
            seed: 0,
        })
    }

    #[test]
    fn g1_ra_is_4_over_cpx_below_capacity() {
        let r = quick(Generation::G1);
        for cpx in 1..=4u64 {
            let label = if cpx == 1 {
                "read 1 cacheline".to_string()
            } else {
                format!("read {cpx} cachelines")
            };
            let c = r.curve(&label).expect("curve exists");
            let small = c.y_at(8192.0).unwrap();
            let expected = 4.0 / cpx as f64;
            assert!(
                (small - expected).abs() < 0.3,
                "CpX={cpx}: RA at 8KB should be ~{expected}, got {small}"
            );
            let big = c.y_at((32 << 10) as f64).unwrap();
            assert!(big > 3.5, "CpX={cpx}: RA at 32KB should be ~4, got {big}");
        }
    }

    #[test]
    fn g2_step_is_later_than_g1() {
        // G2's 22 KB read buffer keeps RA low at 20 KB where G1 has
        // already stepped to 4.
        let point = |gen| {
            let r = run(&E1Params {
                generation: gen,
                wss_points: vec![20 << 10],
                rounds: 2,
                metrics: None,
                seed: 0,
            });
            r.curve("read 4 cachelines")
                .unwrap()
                .y_at((20 << 10) as f64)
                .unwrap()
        };
        let g1 = point(Generation::G1);
        let g2 = point(Generation::G2);
        assert!(g1 > 3.5, "20KB exceeds G1's 16KB buffer: {g1}");
        assert!(g2 < 1.5, "20KB fits G2's 22KB buffer: {g2}");
    }
}
