//! E2 / Figure 6: CPU prefetching vs. the on-DIMM read buffer.
//!
//! Random 256 B blocks, sequentially scanned inside each block and flushed
//! afterwards, under each prefetcher configuration. Two ratios are
//! reported against program-demanded bytes: data loaded through the iMC
//! and data loaded from the 3D-XPoint media. The three working-set regions
//! of the paper emerge from the interaction of the read buffer, the LLC,
//! and the prefetchers (claim C2):
//!
//! 1. WSS ≤ read buffer: prefetched XPLines are reused from the buffer —
//!    both ratios ≈ 1;
//! 2. read buffer < WSS ≤ L3: boundary misprefetches survive in the LLC
//!    (iMC ratio stays 1) but thrash the tiny read buffer (media ratio
//!    rises);
//! 3. WSS > L3: both ratios rise, and each wasted cacheline costs a whole
//!    XPLine at the media, so the media ratio grows ~4x faster.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig};
use simbase::XPLINE_BYTES;
use workloads::random_block_sequence;

use crate::common::{log_sweep, Curve, ExpResult};

/// Parameters for E2.
#[derive(Debug, Clone)]
pub struct E2Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Working-set sizes to sweep.
    pub wss_points: Vec<u64>,
    /// Sequential scans of each block per visit (the paper uses 16; the
    /// repeats all hit L1, so a small number preserves the behaviour).
    pub intra_reps: u64,
    /// Measured rounds over the whole region.
    pub rounds: u64,
    /// Cap on blocks visited per round (sampling for very large regions;
    /// `u64::MAX` visits everything).
    pub max_blocks_per_round: u64,
}

impl Default for E2Params {
    fn default() -> Self {
        E2Params {
            generation: Generation::G1,
            wss_points: log_sweep(4 << 10, 64 << 20, 1),
            intra_reps: 2,
            rounds: 2,
            max_blocks_per_round: u64::MAX,
        }
    }
}

/// The four prefetcher panels of Figure 6.
pub fn panels() -> [(&'static str, PrefetchConfig); 4] {
    [
        ("No prefetch", PrefetchConfig::none()),
        ("Hardware prefetch", PrefetchConfig::stream_only()),
        (
            "Adjacent cacheline prefetch",
            PrefetchConfig::adjacent_only(),
        ),
        ("DCU streamer prefetch", PrefetchConfig::dcu_only()),
    ]
}

/// Runs E2: one result per prefetcher panel, each with a PM and an iMC
/// read-ratio curve.
pub fn run(params: &E2Params) -> Vec<ExpResult> {
    panels()
        .iter()
        .map(|(name, pf)| {
            let mut result = ExpResult::new(
                format!("E2 / Figure 6: {name} ({})", params.generation),
                "WSS(bytes)",
                "read ratio",
            );
            let mut pm = Curve::new(format!("PM ({})", params.generation));
            let mut imc = Curve::new(format!("iMC ({})", params.generation));
            for &wss in &params.wss_points {
                let (pm_ratio, imc_ratio) = measure_point(params, *pf, wss);
                pm.push(wss as f64, pm_ratio);
                imc.push(wss as f64, imc_ratio);
            }
            result.curves.push(pm);
            result.curves.push(imc);
            result
        })
        .collect()
}

fn measure_point(params: &E2Params, pf: PrefetchConfig, wss: u64) -> (f64, f64) {
    let cfg = MachineConfig::for_generation(params.generation, pf, 1);
    let mut m = Machine::new(cfg);
    let t = m.spawn(0);
    let base = m.alloc_pm(wss, XPLINE_BYTES);
    let blocks = random_block_sequence(base, wss, 0xE2 ^ wss);
    let visited = blocks.len().min(params.max_blocks_per_round as usize);
    let run_round = |m: &mut Machine| {
        for &block in &blocks[..visited] {
            for _ in 0..params.intra_reps {
                for cl in 0..4u64 {
                    m.load_u64(t, block.add_cachelines(cl));
                }
            }
            for cl in 0..4u64 {
                m.clflushopt(t, block.add_cachelines(cl));
            }
            m.sfence(t);
        }
    };
    run_round(&mut m); // warm-up
    let before = m.metrics().telemetry;
    for _ in 0..params.rounds {
        run_round(&mut m);
    }
    let d = m.metrics().telemetry.delta(&before);
    // Demanded bytes: one 256 B block per visit (the intra-block repeats
    // hit L1 and are not counted, matching the paper's denominator).
    let demanded = (visited as u64 * params.rounds * XPLINE_BYTES) as f64;
    (d.media.read as f64 / demanded, d.imc.read as f64 / demanded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(gen: Generation, wss: Vec<u64>) -> Vec<ExpResult> {
        run(&E2Params {
            generation: gen,
            wss_points: wss,
            intra_reps: 2,
            rounds: 2,
            max_blocks_per_round: 4096,
        })
    }

    #[test]
    fn no_prefetch_ratios_stay_near_one() {
        let r = quick(Generation::G1, vec![8 << 10, 1 << 20]);
        let panel = &r[0];
        for c in &panel.curves {
            for &(_, y) in &c.points {
                assert!(
                    (0.9..1.15).contains(&y),
                    "no-prefetch ratio should be ~1, got {y} on {}",
                    c.label
                );
            }
        }
    }

    #[test]
    fn dcu_wastes_a_full_xpline_beyond_llc() {
        // Use a small region sweep: mid region (fits L3, exceeds 16 KB
        // buffer) should show PM ratio elevated while iMC stays ~1.
        let r = quick(Generation::G1, vec![1 << 20]);
        let dcu = &r[3];
        let pm = dcu.curves[0].y_at((1 << 20) as f64).unwrap();
        let imc = dcu.curves[1].y_at((1 << 20) as f64).unwrap();
        assert!(pm > 1.5, "mid-region PM ratio elevated: {pm}");
        assert!(imc < 1.1, "mid-region iMC ratio stays ~1: {imc}");
    }

    #[test]
    fn region1_keeps_pm_ratio_low() {
        let r = quick(Generation::G1, vec![8 << 10]);
        let dcu = &r[3];
        let pm = dcu.curves[0].y_at((8 << 10) as f64).unwrap();
        assert!(
            pm < 1.3,
            "within the read buffer, prefetched lines are reused: {pm}"
        );
    }

    #[test]
    fn aggressiveness_order_matches_paper() {
        // DCU >= adjacent > stream in wasted media traffic (mid region).
        let r = quick(Generation::G1, vec![1 << 20]);
        let stream = r[1].curves[0].y_at((1 << 20) as f64).unwrap();
        let adj = r[2].curves[0].y_at((1 << 20) as f64).unwrap();
        let dcu = r[3].curves[0].y_at((1 << 20) as f64).unwrap();
        assert!(
            dcu >= adj && adj > stream,
            "expected dcu >= adjacent > stream, got {dcu} / {adj} / {stream}"
        );
    }
}
