//! E3 / Figure 3: write-buffer write amplification.
//!
//! Non-temporal partial (25/50/75%) and full (100%) XPLine writes over a
//! working-set sweep. On G1, partial writes are absorbed (WA 0) until the
//! ~12 KB effective capacity and then climb toward the theoretical 4/2/1.33
//! as random eviction forces read-modify-writes; full XPLines are flushed
//! by the periodic write-back, so their WA is 1 even for tiny working sets
//! (claim C3). On G2 the periodic write-back is gone and all four curves
//! rise gracefully past a larger capacity (claim C4's counterpart).

use cpucache::PrefetchConfig;
use optane_core::{Generation, ImcQueueStats, Machine, MachineConfig, MachineSampler};
use simbase::XPLINE_BYTES;

use crate::common::{occupancy_note, Curve, ExpResult, MetricsSpec};
use crate::divergence::WitnessTap;

/// Parameters for E3.
#[derive(Debug, Clone)]
pub struct E3Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Working-set sizes to sweep (bytes, multiples of 256).
    pub wss_points: Vec<u64>,
    /// Measured rounds per point (after warm-up).
    pub rounds: u64,
    /// When set, sample `simwatch` metrics at this interval.
    pub metrics: Option<MetricsSpec>,
    /// Run seed, XORed into the machine's crash seed. The default 0
    /// leaves the generation-preset seed untouched, so existing results
    /// are byte-identical.
    pub seed: u64,
}

impl Default for E3Params {
    fn default() -> Self {
        E3Params {
            generation: Generation::G1,
            wss_points: (1..=32).map(|k| k << 10).collect(), // 1 KB .. 32 KB
            rounds: 12,
            metrics: None,
            seed: 0,
        }
    }
}

/// Runs E3: one curve per write fraction.
pub fn run(params: &E3Params) -> ExpResult {
    run_traced(params, None)
}

/// Runs E3 with an optional divergence-witness tap observing every
/// machine's op stream and final checkpoint (see `divergence`).
pub fn run_traced(params: &E3Params, tap: Option<&WitnessTap>) -> ExpResult {
    let mut result = ExpResult::new(
        format!("E3 / Figure 3: write amplification ({})", params.generation),
        "WSS(bytes)",
        "write amplification",
    );
    let mut series = params.metrics.map(|_| String::new());
    let mut queues = ImcQueueStats::default();
    for cl_per_xpline in [4u64, 3, 2, 1] {
        let mut curve = Curve::new(format!("{}% Write", cl_per_xpline * 25));
        for &wss in &params.wss_points {
            let point = measure_point(params, wss, cl_per_xpline, tap);
            curve.push(wss as f64, point.wa);
            if let (Some(all), Some(s)) = (&mut series, point.jsonl) {
                all.push_str(&s);
            }
            queues.merge(&point.queues);
        }
        result.curves.push(curve);
    }
    result.metrics_jsonl = series;
    result.notes.push(occupancy_note(&queues));
    result
}

struct PointOutcome {
    wa: f64,
    jsonl: Option<String>,
    queues: ImcQueueStats,
}

fn measure_point(
    params: &E3Params,
    wss: u64,
    cl_per_xpline: u64,
    tap: Option<&WitnessTap>,
) -> PointOutcome {
    let rounds = params.rounds;
    let mut cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::none(), 1);
    cfg.crash_seed ^= params.seed;
    let mut m = Machine::new(cfg);
    if let Some(tap) = tap {
        m.set_trace_sink(tap.sink());
    }
    let t = m.spawn(0);
    let base = m.alloc_pm(wss, XPLINE_BYTES);
    let xplines = wss / XPLINE_BYTES;
    let data = [0xA5u8; 64];
    let mut sampler = params.metrics.map(|spec| {
        let mut s = MachineSampler::new(spec.interval);
        s.set_context(format!("e3 frac={}% wss={wss}", cl_per_xpline * 25));
        s
    });
    let run_round = |m: &mut Machine, sampler: &mut Option<MachineSampler>| {
        for x in 0..xplines {
            let xp = base.add_xplines(x);
            match sampler {
                // No observer: one batched dispatch per XPLine (timing
                // and trace identical to the per-line loop below).
                None => m.nt_store_run(t, xp, &data, cl_per_xpline),
                // Sampling polls between individual stores, so the
                // per-line loop is kept to preserve the sample series.
                Some(s) => {
                    for cl in 0..cl_per_xpline {
                        m.nt_store(t, xp.add_cachelines(cl), &data);
                        s.poll(m, m.now(t));
                    }
                }
            }
        }
        m.sfence(t);
    };
    // Warm-up rounds to reach buffer steady state.
    for _ in 0..3 {
        run_round(&mut m, &mut None);
    }
    let before = m.metrics().telemetry;
    for _ in 0..rounds {
        run_round(&mut m, &mut sampler);
    }
    // Let the periodic write-back catch up on the final round's lines by
    // touching the DIMM once more after an idle gap.
    m.advance(t, 20_000);
    m.nt_store(t, base, &data);
    let after = m.metrics();
    if let Some(s) = &mut sampler {
        s.record_final(&m, m.now(t));
    }
    if let Some(tap) = tap {
        tap.fold_machine(&mut m);
    }
    PointOutcome {
        wa: after.telemetry.delta(&before).write_amplification(),
        jsonl: sampler.map(|s| s.to_jsonl()),
        queues: after.queue_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g1_partial_writes_absorbed_below_12kb() {
        let r = run(&E3Params {
            generation: Generation::G1,
            wss_points: vec![8 << 10],
            rounds: 6,
            metrics: None,
            seed: 0,
        });
        for frac in ["25% Write", "50% Write", "75% Write"] {
            let wa = r.curve(frac).unwrap().y_at((8 << 10) as f64).unwrap();
            assert!(wa < 0.1, "{frac}: WA should be ~0 at 8KB, got {wa}");
        }
    }

    #[test]
    fn g1_full_writes_hit_wa_1_even_when_small() {
        let r = run(&E3Params {
            generation: Generation::G1,
            wss_points: vec![4 << 10],
            rounds: 6,
            metrics: None,
            seed: 0,
        });
        let wa = r
            .curve("100% Write")
            .unwrap()
            .y_at((4 << 10) as f64)
            .unwrap();
        assert!(
            (0.7..=1.2).contains(&wa),
            "periodic write-back forces WA ~1, got {wa}"
        );
    }

    #[test]
    fn g1_partials_approach_theoretical_beyond_capacity() {
        let r = run(&E3Params {
            generation: Generation::G1,
            wss_points: vec![32 << 10],
            rounds: 10,
            metrics: None,
            seed: 0,
        });
        let wa25 = r
            .curve("25% Write")
            .unwrap()
            .y_at((32 << 10) as f64)
            .unwrap();
        let wa50 = r
            .curve("50% Write")
            .unwrap()
            .y_at((32 << 10) as f64)
            .unwrap();
        let wa100 = r
            .curve("100% Write")
            .unwrap()
            .y_at((32 << 10) as f64)
            .unwrap();
        assert!(wa25 > 2.0, "25% write tends to 4: {wa25}");
        assert!(wa50 > 1.0 && wa50 < wa25, "50% write tends to 2: {wa50}");
        assert!((0.8..=1.2).contains(&wa100), "100% write is ~1: {wa100}");
    }

    #[test]
    fn g2_full_writes_absorbed_when_small() {
        let r = run(&E3Params {
            generation: Generation::G2,
            wss_points: vec![8 << 10],
            rounds: 6,
            metrics: None,
            seed: 0,
        });
        let wa = r
            .curve("100% Write")
            .unwrap()
            .y_at((8 << 10) as f64)
            .unwrap();
        assert!(
            wa < 0.1,
            "no periodic write-back on G2: full writes coalesce, got {wa}"
        );
    }
}
