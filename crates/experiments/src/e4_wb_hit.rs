//! E4 / Figure 4: write-buffer hit ratio under random partial writes.
//!
//! Random single-cacheline nt-stores over a working-set sweep. The hit
//! ratio decays *gracefully* past capacity — the signature of random
//! eviction (contrast the read buffer's FIFO cliff in E1). G1's effective
//! capacity is ~12 KB; G2's turning point is later (16 KB).

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig};
use simbase::{SplitMix64, XPLINE_BYTES};

use crate::common::{Curve, ExpResult};

/// Parameters for E4.
#[derive(Debug, Clone)]
pub struct E4Params {
    /// Working-set sizes to sweep.
    pub wss_points: Vec<u64>,
    /// Measured writes per point (after warm-up).
    pub writes: u64,
}

impl Default for E4Params {
    fn default() -> Self {
        E4Params {
            wss_points: (1..=32).map(|k| k << 10).collect(),
            writes: 30_000,
        }
    }
}

/// Runs E4: one curve per generation.
pub fn run(params: &E4Params) -> ExpResult {
    let mut result = ExpResult::new(
        "E4 / Figure 4: write buffer hit ratio",
        "WSS(bytes)",
        "buffer hit ratio",
    );
    for gen in [Generation::G1, Generation::G2] {
        let mut curve = Curve::new(format!("{gen} Optane"));
        for &wss in &params.wss_points {
            curve.push(wss as f64, measure_point(gen, wss, params.writes));
        }
        result.curves.push(curve);
    }
    result
}

fn measure_point(gen: Generation, wss: u64, writes: u64) -> f64 {
    let cfg = MachineConfig::for_generation(gen, PrefetchConfig::none(), 1);
    let mut m = Machine::new(cfg);
    let t = m.spawn(0);
    let base = m.alloc_pm(wss, XPLINE_BYTES);
    let xplines = wss / XPLINE_BYTES;
    let data = [0x5Au8; 64];
    let mut rng = SplitMix64::new(0xE4 ^ wss);
    let mut do_writes = |m: &mut Machine, n: u64| {
        for _ in 0..n {
            let x = rng.gen_range(xplines);
            m.nt_store(t, base.add_xplines(x), &data);
        }
        m.sfence(t);
    };
    // Warm up to steady state.
    do_writes(&mut m, writes / 2);
    let before = m.metrics().dimms[0].write_buffer;
    do_writes(&mut m, writes);
    let after = m.metrics().dimms[0].write_buffer;
    after.delta(&before).hit_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_decays_gracefully_and_g2_turns_later() {
        let r = run(&E4Params {
            wss_points: vec![8 << 10, 14 << 10, 24 << 10, 32 << 10],
            writes: 8000,
        });
        let g1 = r.curve("G1 Optane").unwrap();
        let g2 = r.curve("G2 Optane").unwrap();
        // Below capacity: ~1.0 for both.
        assert!(g1.y_at((8 << 10) as f64).unwrap() > 0.95);
        assert!(g2.y_at((8 << 10) as f64).unwrap() > 0.95);
        // At 14 KB G1 (12 KB) has started dropping, G2 (16 KB) has not.
        let g1_14 = g1.y_at((14 << 10) as f64).unwrap();
        let g2_14 = g2.y_at((14 << 10) as f64).unwrap();
        assert!(g1_14 < 0.97, "G1 past capacity at 14KB: {g1_14}");
        assert!(g2_14 > 0.95, "G2 still within capacity at 14KB: {g2_14}");
        // Graceful decay, not a cliff: at 2x capacity the ratio is near
        // capacity/wss, well above zero.
        let g1_24 = g1.y_at((24 << 10) as f64).unwrap();
        assert!(
            (0.3..0.75).contains(&g1_24),
            "graceful decay at 2x capacity: {g1_24}"
        );
        // G2 stays above G1 throughout the tail.
        assert!(g2.y_at((32 << 10) as f64).unwrap() > g1.y_at((32 << 10) as f64).unwrap());
    }
}
