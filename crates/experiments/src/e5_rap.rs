//! E5 / Figure 7: read-after-persist (RAP) latency vs. distance.
//!
//! The paper's Algorithm 1: persist one cacheline (store+`clwb` or
//! nt-store, then a fence), then read a cacheline persisted `distance`
//! iterations earlier. Average per-iteration cycles are reported as the
//! distance grows (claim C5):
//!
//! - G1 PM, `clwb`+`mfence`: ~10x latency at small distances, decaying as
//!   the persist pipeline drains;
//! - G1 PM, `clwb`+`sfence`: fast at distance ≤ 1 (loads bypass the
//!   not-yet-visible flush), a jump at distance ~2, then convergence;
//! - nt-store: long RAP on both generations;
//! - G2 `clwb`: flat (the line stays in the cache);
//! - DRAM: the same shapes compressed to a ~2x gap;
//! - remote NUMA: everything shifted up.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig, MemRegion, ThreadId};
use simbase::{Addr, CACHELINE_BYTES};

use crate::common::{Curve, ExpError, ExpResult};

/// Persist instruction variants of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RapVariant {
    /// `mov` + `clwb` + `mfence`.
    ClwbMfence,
    /// `mov` + `clwb` + `sfence`.
    ClwbSfence,
    /// nt-store + `mfence`.
    NtStoreMfence,
}

impl RapVariant {
    fn label(&self, region: MemRegion) -> String {
        let mem = match region {
            MemRegion::Pm => "PM",
            MemRegion::Dram => "DRAM",
        };
        match self {
            RapVariant::ClwbMfence => format!("{mem}+clwb+mfence"),
            RapVariant::ClwbSfence => format!("{mem}+clwb+sfence"),
            RapVariant::NtStoreMfence => format!("{mem}+nt-store+mfence"),
        }
    }
}

/// Parameters for E5.
#[derive(Debug, Clone)]
pub struct E5Params {
    /// Which generation to model.
    pub generation: Generation,
    /// RAP distances (cachelines) to sweep.
    pub distances: Vec<u64>,
    /// Iterations per distance point.
    pub iters: u64,
}

impl Default for E5Params {
    fn default() -> Self {
        E5Params {
            generation: Generation::G1,
            distances: (0..=40).step_by(2).collect(),
            iters: 3000,
        }
    }
}

/// Runs E5: four panels (local/remote x PM/DRAM) per generation.
pub fn run(params: &E5Params) -> Result<Vec<ExpResult>, ExpError> {
    if params.distances.is_empty() {
        return Err(ExpError::BadParams("distances must be non-empty".into()));
    }
    if params.iters == 0 {
        return Err(ExpError::BadParams("iters must be nonzero".into()));
    }
    let mut out = Vec::new();
    for (locality, socket) in [("local", 0usize), ("remote", 1usize)] {
        for region in [MemRegion::Pm, MemRegion::Dram] {
            let mem = match region {
                MemRegion::Pm => "PM",
                MemRegion::Dram => "DRAM",
            };
            let mut result = ExpResult::new(
                format!(
                    "E5 / Figure 7: RAP on {locality} {mem} ({})",
                    params.generation
                ),
                "distance(cachelines)",
                "cycles per iteration",
            );
            let variants: &[RapVariant] = match region {
                MemRegion::Pm => &[
                    RapVariant::ClwbMfence,
                    RapVariant::ClwbSfence,
                    RapVariant::NtStoreMfence,
                ],
                MemRegion::Dram => &[RapVariant::ClwbMfence, RapVariant::ClwbSfence],
            };
            for &variant in variants {
                let mut curve = Curve::new(variant.label(region));
                for &d in &params.distances {
                    let lat = measure_point(params, socket, region, variant, d);
                    curve.push(d as f64, lat);
                }
                result.curves.push(curve);
            }
            out.push(result);
        }
    }
    Ok(out)
}

fn measure_point(
    params: &E5Params,
    socket: usize,
    region: MemRegion,
    variant: RapVariant,
    distance: u64,
) -> f64 {
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::none(), 1);
    let mut m = Machine::new(cfg);
    let t = m.spawn(socket);
    let wss: u64 = 4 << 10; // Algorithm 1 uses a 4 KB working set.
    let base = match region {
        MemRegion::Pm => m.alloc_pm(wss, CACHELINE_BYTES),
        MemRegion::Dram => m.alloc_dram(wss, CACHELINE_BYTES),
    };
    // Warm pass: touch and persist everything once so steady state begins
    // immediately.
    for i in 0..wss / CACHELINE_BYTES {
        iteration(&mut m, t, base, wss, i * CACHELINE_BYTES, distance, variant);
    }
    let start = m.now(t);
    for i in 0..params.iters {
        let offset = (i * CACHELINE_BYTES) % wss;
        iteration(&mut m, t, base, wss, offset, distance, variant);
    }
    (m.now(t) - start) as f64 / params.iters as f64
}

/// One iteration of the paper's Algorithm 1.
fn iteration(
    m: &mut Machine,
    t: ThreadId,
    base: Addr,
    wss: u64,
    offset: u64,
    distance: u64,
    variant: RapVariant,
) {
    let addr = base.add(offset);
    match variant {
        RapVariant::ClwbMfence => {
            m.store_u64(t, addr, 0);
            m.clwb(t, addr);
            m.mfence(t);
        }
        RapVariant::ClwbSfence => {
            m.store_u64(t, addr, 0);
            m.clwb(t, addr);
            m.sfence(t);
        }
        RapVariant::NtStoreMfence => {
            m.nt_store(t, addr, &0u64.to_le_bytes());
            m.mfence(t);
        }
    }
    let back = base.add((offset + wss - distance * CACHELINE_BYTES) % wss);
    m.load_u64(t, back);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests return Result and use the typed require_* accessors:
    // a missing panel, curve, or sample reads as a MissingData error
    // naming what was absent, instead of an unwrap panic.
    fn panel<'a>(results: &'a [ExpResult], name_contains: &str) -> Result<&'a ExpResult, ExpError> {
        results
            .iter()
            .find(|r| r.name.contains(name_contains))
            .ok_or_else(|| ExpError::MissingData(format!("no panel matching `{name_contains}`")))
    }

    fn quick(gen: Generation, distances: Vec<u64>) -> Result<Vec<ExpResult>, ExpError> {
        run(&E5Params {
            generation: gen,
            distances,
            iters: 400,
        })
    }

    #[test]
    fn degenerate_params_are_a_typed_error() {
        let no_distances = run(&E5Params {
            distances: vec![],
            ..E5Params::default()
        });
        assert!(matches!(no_distances, Err(ExpError::BadParams(_))));
        let no_iters = run(&E5Params {
            iters: 0,
            ..E5Params::default()
        });
        assert!(matches!(no_iters, Err(ExpError::BadParams(_))));
    }

    #[test]
    fn g1_clwb_mfence_rap_decays_with_distance() -> Result<(), ExpError> {
        let r = quick(Generation::G1, vec![0, 2, 40])?;
        let c = panel(&r, "local PM")?.require_curve("PM+clwb+mfence")?;
        let d0 = c.require_y(0.0)?;
        let d40 = c.require_y(40.0)?;
        assert!(d0 > 2000.0, "near-distance RAP is huge: {d0}");
        assert!(
            d40 < d0 / 2.5,
            "distance drains the pipeline: {d40} vs {d0}"
        );
        Ok(())
    }

    #[test]
    fn g1_sfence_is_fast_at_small_distance_then_jumps() -> Result<(), ExpError> {
        let r = quick(Generation::G1, vec![0, 2, 40])?;
        let pm = panel(&r, "local PM")?;
        let c = pm.require_curve("PM+clwb+sfence")?;
        let d0 = c.require_y(0.0)?;
        let d2 = c.require_y(2.0)?;
        assert!(d0 < 600.0, "bypass keeps distance 0 fast: {d0}");
        assert!(
            d2 > d0 + 50.0,
            "jump just past the bypass window: {d2} vs {d0}"
        );
        let mfence0 = pm.require_curve("PM+clwb+mfence")?.require_y(0.0)?;
        assert!(d2 < mfence0 / 2.0, "sfence waits only for the drain");
        Ok(())
    }

    #[test]
    fn g2_fixes_clwb_but_not_ntstore() -> Result<(), ExpError> {
        let r = quick(Generation::G2, vec![0, 40])?;
        let pm = panel(&r, "local PM")?;
        let clwb = pm.require_curve("PM+clwb+mfence")?;
        let nt = pm.require_curve("PM+nt-store+mfence")?;
        let spread = clwb.y_max() - clwb.y_min();
        assert!(
            spread < 200.0,
            "G2 clwb keeps the line cached, curve flat: spread {spread}"
        );
        assert!(nt.require_y(0.0)? > 2000.0, "nt-store RAP persists on G2");
        Ok(())
    }

    #[test]
    fn dram_gap_is_much_smaller_than_pm() -> Result<(), ExpError> {
        let r = quick(Generation::G1, vec![0])?;
        let pm = panel(&r, "local PM")?
            .require_curve("PM+clwb+mfence")?
            .require_y(0.0)?;
        let dram = panel(&r, "local DRAM")?
            .require_curve("DRAM+clwb+mfence")?
            .require_y(0.0)?;
        assert!(pm > dram * 2.0, "PM RAP dwarfs DRAM RAP: {pm} vs {dram}");
        Ok(())
    }

    #[test]
    fn remote_is_slower_than_local() -> Result<(), ExpError> {
        let r = quick(Generation::G1, vec![0])?;
        let local = panel(&r, "local PM")?
            .require_curve("PM+clwb+mfence")?
            .require_y(0.0)?;
        let remote = panel(&r, "remote PM")?
            .require_curve("PM+clwb+mfence")?
            .require_y(0.0)?;
        assert!(remote > local, "NUMA penalty: {remote} vs {local}");
        Ok(())
    }
}
