//! E6 / Figure 8: user-perceived latency through the whole hierarchy.
//!
//! The 256 B-element pointer-chase workload of §3.6, swept over working-set
//! sizes. Three panels (claim C6):
//!
//! (a) writes under strict persistency (barrier per element),
//! (b) writes under relaxed persistency (one fence per lap),
//! (c) pure reads vs. pure writes — read latency explodes past the
//!     LLC/AIT knee while write latency stays flat thanks to the
//!     asynchronous DDR-T pipeline.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig};
use pmds::{ChaseList, WriteKind};
use pmem::{PersistMode, SimEnv};
use simbase::XPLINE_BYTES;
use workloads::AccessOrder;

use crate::common::{log_sweep, Curve, ExpError, ExpResult};

/// Parameters for E6.
#[derive(Debug, Clone)]
pub struct E6Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Working-set sizes to sweep.
    pub wss_points: Vec<u64>,
    /// Measured laps per point (after one warm lap).
    pub laps: u64,
}

impl Default for E6Params {
    fn default() -> Self {
        E6Params {
            generation: Generation::G1,
            wss_points: log_sweep(4 << 10, 64 << 20, 1),
            laps: 2,
        }
    }
}

fn machine(gen: Generation) -> Machine {
    Machine::new(MachineConfig::for_generation(gen, PrefetchConfig::all(), 1))
}

/// Which measurement a panel-(a)/(b) curve performs.
fn write_curves() -> [(&'static str, AccessOrder, WriteKind); 4] {
    [
        ("seq_clwb", AccessOrder::Sequential, WriteKind::Clwb),
        ("rand_clwb", AccessOrder::Random, WriteKind::Clwb),
        ("seq_nt-store", AccessOrder::Sequential, WriteKind::NtStore),
        ("rand_nt-store", AccessOrder::Random, WriteKind::NtStore),
    ]
}

/// Runs E6: panels (a) strict, (b) relaxed, (c) pure read/write breakdown.
pub fn run(params: &E6Params) -> Result<Vec<ExpResult>, ExpError> {
    if params.wss_points.is_empty() {
        return Err(ExpError::BadParams("wss_points must be non-empty".into()));
    }
    if params.laps == 0 {
        return Err(ExpError::BadParams("laps must be nonzero".into()));
    }
    let mut out = Vec::new();
    for (panel, mode) in [
        ("(a) write with strict persistency", PersistMode::Strict),
        ("(b) write with relaxed persistency", PersistMode::Relaxed),
    ] {
        let mut result = ExpResult::new(
            format!("E6 / Figure 8 {panel} ({})", params.generation),
            "WSS(bytes)",
            "cycles per element",
        );
        for (label, order, kind) in write_curves() {
            let mut curve = Curve::new(label);
            for &wss in &params.wss_points {
                curve.push(wss as f64, chase_write(params, wss, order, kind, mode));
            }
            result.curves.push(curve);
        }
        out.push(result);
    }
    // Panel (c): pure reads and pure writes.
    let mut result = ExpResult::new(
        format!(
            "E6 / Figure 8 (c) latency breakdown of pure reads and writes ({})",
            params.generation
        ),
        "WSS(bytes)",
        "cycles per element",
    );
    for (label, order) in [
        ("seq_rd", AccessOrder::Sequential),
        ("rand_rd", AccessOrder::Random),
    ] {
        let mut curve = Curve::new(label);
        for &wss in &params.wss_points {
            curve.push(wss as f64, chase_read(params, wss, order));
        }
        result.curves.push(curve);
    }
    for (label, order, kind) in [
        ("seq_clwb", AccessOrder::Sequential, WriteKind::Clwb),
        ("rand_clwb", AccessOrder::Random, WriteKind::Clwb),
        ("seq_nt-store", AccessOrder::Sequential, WriteKind::NtStore),
        ("rand_nt-store", AccessOrder::Random, WriteKind::NtStore),
    ] {
        let mut curve = Curve::new(label);
        for &wss in &params.wss_points {
            curve.push(wss as f64, pure_write(params, wss, order, kind));
        }
        result.curves.push(curve);
    }
    out.push(result);
    Ok(out)
}

fn elements_of(wss: u64) -> u64 {
    (wss / XPLINE_BYTES).max(2)
}

fn chase_write(
    params: &E6Params,
    wss: u64,
    order: AccessOrder,
    kind: WriteKind,
    mode: PersistMode,
) -> f64 {
    let mut m = machine(params.generation);
    let t = m.spawn(0);
    let mut env = SimEnv::new(&mut m, t);
    let list = ChaseList::build(&mut env, elements_of(wss), order, 0xE6);
    list.lap_write(&mut env, kind, mode, 1); // warm
    let mut total = 0;
    for lap in 0..params.laps {
        total += list.lap_write(&mut env, kind, mode, lap + 2);
    }
    total as f64 / params.laps as f64
}

fn chase_read(params: &E6Params, wss: u64, order: AccessOrder) -> f64 {
    let mut m = machine(params.generation);
    let t = m.spawn(0);
    let mut env = SimEnv::new(&mut m, t);
    let list = ChaseList::build(&mut env, elements_of(wss), order, 0xE6);
    list.lap_read(&mut env); // warm
    let mut total = 0;
    for _ in 0..params.laps {
        total += list.lap_read(&mut env);
    }
    total as f64 / params.laps as f64
}

fn pure_write(params: &E6Params, wss: u64, order: AccessOrder, kind: WriteKind) -> f64 {
    let mut m = machine(params.generation);
    let t = m.spawn(0);
    let mut env = SimEnv::new(&mut m, t);
    let list = ChaseList::build(&mut env, elements_of(wss), order, 0xE6);
    list.lap_pure_write(&mut env, kind, PersistMode::Strict, 1); // warm
    let mut total = 0;
    for lap in 0..params.laps {
        total += list.lap_pure_write(&mut env, kind, PersistMode::Strict, lap + 2);
    }
    total as f64 / params.laps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    // Result-returning tests with typed require_* accessors: a missing
    // curve or sample names itself in a MissingData error instead of
    // panicking through unwrap.
    fn quick(wss: Vec<u64>) -> Result<Vec<ExpResult>, ExpError> {
        run(&E6Params {
            generation: Generation::G1,
            wss_points: wss,
            laps: 2,
        })
    }

    #[test]
    fn degenerate_params_are_a_typed_error() {
        let r = run(&E6Params {
            wss_points: vec![],
            ..E6Params::default()
        });
        assert!(matches!(r, Err(ExpError::BadParams(_))));
    }

    #[test]
    fn read_latency_explodes_past_llc_while_write_stays_flat() -> Result<(), ExpError> {
        let r = quick(vec![64 << 10, 64 << 20])?;
        let breakdown = &r[2];
        let rd = breakdown.require_curve("rand_rd")?;
        let small_rd = rd.require_y((64 << 10) as f64)?;
        let big_rd = rd.require_y((64 << 20) as f64)?;
        assert!(
            big_rd > small_rd * 5.0,
            "random read latency jumps past caches: {small_rd} -> {big_rd}"
        );
        let wr = breakdown.require_curve("rand_nt-store")?;
        let spread = wr.y_max() / wr.y_min().max(1.0);
        assert!(
            spread < 3.0,
            "pure write latency is flat across WSS: spread {spread}"
        );
        assert!(
            big_rd > wr.require_y((64 << 20) as f64)? * 2.0,
            "reads dominate writes at large WSS"
        );
        Ok(())
    }

    #[test]
    fn relaxed_is_cheaper_than_strict_for_writes() -> Result<(), ExpError> {
        let r = quick(vec![1 << 20])?;
        let strict = r[0]
            .require_curve("rand_clwb")?
            .require_y((1 << 20) as f64)?;
        let relaxed = r[1]
            .require_curve("rand_clwb")?
            .require_y((1 << 20) as f64)?;
        assert!(relaxed < strict, "relaxed < strict: {relaxed} vs {strict}");
        Ok(())
    }

    #[test]
    fn sequential_beats_random_beyond_llc() -> Result<(), ExpError> {
        let r = quick(vec![64 << 20])?;
        let breakdown = &r[2];
        let seq = breakdown
            .require_curve("seq_rd")?
            .require_y((64 << 20) as f64)?;
        let rand = breakdown
            .require_curve("rand_rd")?
            .require_y((64 << 20) as f64)?;
        assert!(
            seq < rand * 0.8,
            "prefetch makes sequential chase faster: {seq} vs {rand}"
        );
        Ok(())
    }
}
