//! E7 / Figure 10: speculative helper-thread prefetching for CCEH.
//!
//! Each worker inserts a partition of the key stream; with the
//! optimization, a sibling hyperthread runs the load-only prefetch trace
//! up to `depth` keys ahead, but only as fast as its own clock allows —
//! the pipeline effect is real, not assumed. On PM the helper hides the
//! segment-metadata and bucket media reads (up to ~35% gains, claim C7);
//! on DRAM the loads it hides are cheap, so hyperthread sharing and cache
//! pollution make it a small loss.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Interleaver, Machine, MachineConfig, SchedPolicy, Step, ThreadId};
use pmds::Cceh;
use pmem::SimEnv;
use workloads::YcsbGenerator;

use crate::common::{Curve, ExpError, ExpResult};

/// Memory backing for the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Optane persistent memory.
    Pm,
    /// DRAM (persistence barriers retained, as the paper's comparison).
    Dram,
}

/// Parameters for E7.
#[derive(Debug, Clone)]
pub struct E7Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Inserts per worker.
    pub inserts_per_worker: u64,
    /// Worker counts to sweep.
    pub workers: Vec<usize>,
    /// Prefetch depth (the paper found 8 best).
    pub depth: u64,
    /// DIMMs (the paper presents the single-DIMM case).
    pub dimms: usize,
    /// Clock frequency for Mops/s conversion.
    pub ghz: f64,
    /// Initial table depth; sized past the LLC by default so random reads
    /// behave as they do with the paper's 16 M-key table.
    pub initial_depth: u64,
}

impl Default for E7Params {
    fn default() -> Self {
        E7Params {
            generation: Generation::G1,
            inserts_per_worker: 20_000,
            workers: (1..=10).collect(),
            depth: 8,
            dimms: 1,
            ghz: 2.1,
            initial_depth: 12,
        }
    }
}

/// Outcome of one configuration.
#[derive(Debug, Clone, Copy)]
struct RunStats {
    /// Average cycles per insert.
    latency: f64,
    /// Throughput in Mops/s.
    throughput: f64,
}

/// Runs E7: four panels (latency/throughput x PM/DRAM), each with
/// baseline and prefetching curves.
pub fn run(params: &E7Params) -> Result<Vec<ExpResult>, ExpError> {
    if params.workers.is_empty() {
        return Err(ExpError::BadParams("workers must be non-empty".into()));
    }
    if params.workers.contains(&0) {
        return Err(ExpError::BadParams("worker counts must be nonzero".into()));
    }
    if params.inserts_per_worker == 0 {
        return Err(ExpError::BadParams(
            "inserts_per_worker must be nonzero".into(),
        ));
    }
    let mut out = Vec::new();
    for backing in [Backing::Pm, Backing::Dram] {
        let mem = match backing {
            Backing::Pm => "PM",
            Backing::Dram => "DRAM",
        };
        let mut latency = ExpResult::new(
            format!("E7 / Figure 10: latency on {mem} ({})", params.generation),
            "workers",
            "cycles per insert",
        );
        let mut throughput = ExpResult::new(
            format!(
                "E7 / Figure 10: throughput on {mem} ({})",
                params.generation
            ),
            "workers",
            "Mops/s",
        );
        for with_helper in [false, true] {
            let label = if with_helper {
                "CCEH with prefetching"
            } else {
                "CCEH"
            };
            let mut lat_curve = Curve::new(label);
            let mut thr_curve = Curve::new(label);
            for &workers in &params.workers {
                let stats = measure_case(params, backing, workers, with_helper);
                lat_curve.push(workers as f64, stats.latency);
                thr_curve.push(workers as f64, stats.throughput);
            }
            latency.curves.push(lat_curve);
            throughput.curves.push(thr_curve);
        }
        out.push(latency);
        out.push(throughput);
    }
    Ok(out)
}

fn measure_case(params: &E7Params, backing: Backing, workers: usize, helper: bool) -> RunStats {
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), params.dimms);
    let mut m = Machine::new(cfg);
    let worker_tids: Vec<ThreadId> = (0..workers).map(|_| m.spawn(0)).collect();
    let mut table = {
        let mut env = mk_env(&mut m, worker_tids[0], backing);
        Cceh::create(&mut env, params.initial_depth)
    };
    // Helpers are spawned after table creation so the creation phase does
    // not pay hyperthread-sharing costs.
    let helper_tids: Vec<ThreadId> = if helper {
        worker_tids.iter().map(|&w| m.spawn_sibling(w)).collect()
    } else {
        Vec::new()
    };
    // Pre-generate per-worker key streams.
    let n = params.inserts_per_worker;
    let streams: Vec<Vec<u64>> = (0..workers)
        .map(|w| {
            YcsbGenerator::load_keys(n * workers as u64)
                .skip(w)
                .step_by(workers)
                .map(|k| k.max(1))
                .collect()
        })
        .collect();
    // Helper progress per worker.
    let mut hpos = vec![0usize; workers];
    let mut total_cycles = 0u64;
    let start_times: Vec<u64> = worker_tids.iter().map(|&t| m.now(t)).collect();
    // One insert (plus helper catch-up) per executor step; round-robin
    // reproduces the legacy `for i { for w }` nesting byte-for-byte
    // (see `executor_matches_legacy_nested_loops`).
    let mut issued = vec![0usize; workers];
    Interleaver::new(SchedPolicy::RoundRobin).run(
        &mut m,
        &worker_tids,
        &mut |mm: &mut Machine, tid, w: usize| {
            let i = issued[w];
            if i == n as usize {
                return Step::Done;
            }
            issued[w] = i + 1;
            if helper {
                // The helper runs on its own clock: it prefetches ahead
                // only while it is not behind the worker's time, up to
                // `depth` keys ahead.
                let worker_now = mm.now(tid);
                mm.advance_to(helper_tids[w], worker_now.saturating_sub(1));
                while hpos[w] < (i + params.depth as usize).min(streams[w].len())
                    && mm.now(helper_tids[w]) <= worker_now
                {
                    let key = streams[w][hpos[w]];
                    let mut henv = mk_env(mm, helper_tids[w], backing);
                    table.prefetch_for_key(&mut henv, key);
                    hpos[w] += 1;
                }
                // Keys the worker already passed are useless to prefetch.
                hpos[w] = hpos[w].max(i + 1);
            }
            let key = streams[w][i];
            let t0 = mm.now(tid);
            let mut env = mk_env(mm, tid, backing);
            table.insert(&mut env, key, key);
            total_cycles += mm.now(tid) - t0;
            Step::Ran
        },
    );
    let ops = n * workers as u64;
    let latency = total_cycles as f64 / ops as f64;
    // `run` validated that the worker sweep has no zero entries, so the
    // fallback is unreachable; it exists to keep this path panic-free.
    let makespan = worker_tids
        .iter()
        .zip(&start_times)
        .map(|(&t, &s)| m.now(t) - s)
        .max()
        .unwrap_or(1);
    let throughput = ops as f64 / makespan as f64 * params.ghz * 1e3; // Mops/s
    RunStats {
        latency,
        throughput,
    }
}

fn mk_env<'a>(m: &'a mut Machine, tid: ThreadId, backing: Backing) -> SimEnv<'a> {
    match backing {
        Backing::Pm => SimEnv::new(m, tid),
        Backing::Dram => SimEnv::volatile_backed(m, tid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<ExpResult> {
        run(&E7Params {
            inserts_per_worker: 3000,
            workers: vec![1, 4],
            ..E7Params::default()
        })
        .expect("valid params")
    }

    /// The legacy hand-rolled nesting this module used before the
    /// executor migration, kept verbatim as the byte-identity reference.
    fn measure_legacy(
        params: &E7Params,
        backing: Backing,
        workers: usize,
        helper: bool,
    ) -> RunStats {
        let cfg =
            MachineConfig::for_generation(params.generation, PrefetchConfig::all(), params.dimms);
        let mut m = Machine::new(cfg);
        let worker_tids: Vec<ThreadId> = (0..workers).map(|_| m.spawn(0)).collect();
        let mut table = {
            let mut env = mk_env(&mut m, worker_tids[0], backing);
            Cceh::create(&mut env, params.initial_depth)
        };
        let helper_tids: Vec<ThreadId> = if helper {
            worker_tids.iter().map(|&w| m.spawn_sibling(w)).collect()
        } else {
            Vec::new()
        };
        let n = params.inserts_per_worker;
        let streams: Vec<Vec<u64>> = (0..workers)
            .map(|w| {
                YcsbGenerator::load_keys(n * workers as u64)
                    .skip(w)
                    .step_by(workers)
                    .map(|k| k.max(1))
                    .collect()
            })
            .collect();
        let mut hpos = vec![0usize; workers];
        let mut total_cycles = 0u64;
        let start_times: Vec<u64> = worker_tids.iter().map(|&t| m.now(t)).collect();
        for i in 0..n as usize {
            for w in 0..workers {
                if helper {
                    let worker_now = m.now(worker_tids[w]);
                    m.advance_to(helper_tids[w], worker_now.saturating_sub(1));
                    while hpos[w] < (i + params.depth as usize).min(streams[w].len())
                        && m.now(helper_tids[w]) <= worker_now
                    {
                        let key = streams[w][hpos[w]];
                        let mut henv = mk_env(&mut m, helper_tids[w], backing);
                        table.prefetch_for_key(&mut henv, key);
                        hpos[w] += 1;
                    }
                    hpos[w] = hpos[w].max(i + 1);
                }
                let key = streams[w][i];
                let t0 = m.now(worker_tids[w]);
                let mut env = mk_env(&mut m, worker_tids[w], backing);
                table.insert(&mut env, key, key);
                total_cycles += m.now(worker_tids[w]) - t0;
            }
        }
        let ops = n * workers as u64;
        let latency = total_cycles as f64 / ops as f64;
        let makespan = worker_tids
            .iter()
            .zip(&start_times)
            .map(|(&t, &s)| m.now(t) - s)
            .max()
            .unwrap_or(1);
        let throughput = ops as f64 / makespan as f64 * params.ghz * 1e3;
        RunStats {
            latency,
            throughput,
        }
    }

    #[test]
    fn executor_matches_legacy_nested_loops() {
        let params = E7Params {
            inserts_per_worker: 800,
            ..E7Params::default()
        };
        for &(workers, helper) in &[(1usize, false), (3, false), (3, true)] {
            let exec = measure_case(&params, Backing::Pm, workers, helper);
            let legacy = measure_legacy(&params, Backing::Pm, workers, helper);
            assert_eq!(
                (exec.latency.to_bits(), exec.throughput.to_bits()),
                (legacy.latency.to_bits(), legacy.throughput.to_bits()),
                "round-robin executor must be byte-identical to the legacy \
                 `for i {{ for w }}` loop ({workers} workers, helper={helper})"
            );
        }
    }

    #[test]
    fn degenerate_params_are_a_typed_error() {
        let empty = run(&E7Params {
            workers: vec![],
            ..E7Params::default()
        });
        assert!(matches!(empty, Err(ExpError::BadParams(_))));
        let zero = run(&E7Params {
            workers: vec![1, 0],
            ..E7Params::default()
        });
        assert!(matches!(zero, Err(ExpError::BadParams(_))));
    }

    #[test]
    fn prefetching_helps_on_pm_not_on_dram() {
        let r = quick();
        // Panel order: PM latency, PM throughput, DRAM latency, DRAM thr.
        let pm_lat = &r[0];
        let base = pm_lat.curve("CCEH").unwrap().y_at(1.0).unwrap();
        let pf = pm_lat
            .curve("CCEH with prefetching")
            .unwrap()
            .y_at(1.0)
            .unwrap();
        assert!(
            pf < base * 0.9,
            "PM latency should improve >10% with the helper: {pf} vs {base}"
        );
        let dram_lat = &r[2];
        let dbase = dram_lat.curve("CCEH").unwrap().y_at(1.0).unwrap();
        let dpf = dram_lat
            .curve("CCEH with prefetching")
            .unwrap()
            .y_at(1.0)
            .unwrap();
        assert!(
            dpf > dbase * 0.97,
            "DRAM should see no meaningful gain: {dpf} vs {dbase}"
        );
    }

    #[test]
    fn pm_throughput_improves_with_helper_then_fades() {
        let r = quick();
        let pm_thr = &r[1];
        // Clear gain at one worker.
        let base1 = pm_thr.curve("CCEH").unwrap().y_at(1.0).unwrap();
        let pf1 = pm_thr
            .curve("CCEH with prefetching")
            .unwrap()
            .y_at(1.0)
            .unwrap();
        assert!(
            pf1 > base1 * 1.05,
            "helper raises single-worker PM throughput: {pf1} vs {base1}"
        );
        // At higher worker counts on one DIMM the gain may fade (the
        // paper: "the improvement may fade away faster with fewer
        // DIMMs"), but it must not collapse.
        let base4 = pm_thr.curve("CCEH").unwrap().y_at(4.0).unwrap();
        let pf4 = pm_thr
            .curve("CCEH with prefetching")
            .unwrap()
            .y_at(4.0)
            .unwrap();
        assert!(
            pf4 > base4 * 0.85,
            "gain fades but does not collapse: {pf4} vs {base4}"
        );
    }
}
