//! E8 / Figure 12: FAST & FAIR insertions, in-place vs. out-of-place.
//!
//! YCSB-style inserts into the B+-tree with the two §4.2 strategies on
//! both generations (claim C8): out-of-place redo logging wins clearly on
//! G1 (it never reads a just-persisted cacheline), while on G2 — where
//! `clwb` retains the line — the two strategies converge, with the redo
//! variant paying slightly for its extra log writes at high thread counts.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Interleaver, Machine, MachineConfig, SchedPolicy, Step, ThreadId};
use pmds::{FastFair, UpdateStrategy};
use pmem::SimEnv;
use workloads::YcsbGenerator;

use crate::common::{Curve, ExpResult};

/// Parameters for E8.
#[derive(Debug, Clone)]
pub struct E8Params {
    /// Total inserts per configuration.
    pub inserts: u64,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Generations to run.
    pub generations: Vec<Generation>,
    /// DIMMs (the paper presents the single-DIMM case).
    pub dimms: usize,
}

impl Default for E8Params {
    fn default() -> Self {
        E8Params {
            inserts: 40_000,
            threads: vec![1, 3, 5, 7, 9],
            generations: vec![Generation::G1, Generation::G2],
            dimms: 1,
        }
    }
}

/// Runs E8: per generation, a throughput panel and a latency panel.
pub fn run(params: &E8Params) -> Vec<ExpResult> {
    let mut out = Vec::new();
    for &gen in &params.generations {
        let ghz = match gen {
            Generation::G1 => 2.1,
            Generation::G2 => 3.0,
        };
        let mut thr = ExpResult::new(
            format!("E8 / Figure 12: {gen} Optane throughput"),
            "threads",
            "Mops/s",
        );
        let mut lat = ExpResult::new(
            format!("E8 / Figure 12: {gen} Optane latency"),
            "threads",
            "cycles per insert",
        );
        for (label, strategy) in [
            ("Out-of-place update", UpdateStrategy::RedoLog),
            ("In-place update", UpdateStrategy::InPlace),
        ] {
            let mut thr_curve = Curve::new(label);
            let mut lat_curve = Curve::new(label);
            for &threads in &params.threads {
                let (latency, throughput) = measure_case(params, gen, ghz, strategy, threads);
                lat_curve.push(threads as f64, latency);
                thr_curve.push(threads as f64, throughput);
            }
            thr.curves.push(thr_curve);
            lat.curves.push(lat_curve);
        }
        out.push(thr);
        out.push(lat);
    }
    out
}

fn measure_case(
    params: &E8Params,
    gen: Generation,
    ghz: f64,
    strategy: UpdateStrategy,
    threads: usize,
) -> (f64, f64) {
    let cfg = MachineConfig::for_generation(gen, PrefetchConfig::all(), params.dimms);
    let mut m = Machine::new(cfg);
    let tids: Vec<ThreadId> = (0..threads).map(|_| m.spawn(0)).collect();
    let mut tree = {
        let mut env = SimEnv::new(&mut m, tids[0]);
        FastFair::create(&mut env, strategy)
    };
    let mut keys = YcsbGenerator::load_keys(params.inserts);
    let mut total_cycles = 0u64;
    let mut ops = 0u64;
    // Lanes drain one shared key stream, one insert per executor step;
    // round-robin draws keys in the same order as the legacy
    // `loop { for tid }` nesting, and a lane that finds the stream empty
    // retires without touching the machine, so the two are byte-identical
    // (see `executor_matches_legacy_round_robin`).
    Interleaver::new(SchedPolicy::RoundRobin).run(
        &mut m,
        &tids,
        &mut |mm: &mut Machine, tid, _lane: usize| {
            let Some(key) = keys.next() else {
                return Step::Done;
            };
            let t0 = mm.now(tid);
            let mut env = SimEnv::new(mm, tid);
            tree.insert(&mut env, key.max(1), key);
            total_cycles += mm.now(tid) - t0;
            ops += 1;
            Step::Ran
        },
    );
    let latency = total_cycles as f64 / ops as f64;
    let makespan = tids.iter().map(|&t| m.now(t)).max().expect("threads");
    let throughput = ops as f64 / makespan as f64 * ghz * 1e3; // Mops/s
    (latency, throughput)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The legacy hand-rolled nesting this module used before the
    /// executor migration, kept verbatim as the byte-identity reference.
    fn measure_legacy(
        params: &E8Params,
        gen: Generation,
        ghz: f64,
        strategy: UpdateStrategy,
        threads: usize,
    ) -> (f64, f64) {
        let cfg = MachineConfig::for_generation(gen, PrefetchConfig::all(), params.dimms);
        let mut m = Machine::new(cfg);
        let tids: Vec<ThreadId> = (0..threads).map(|_| m.spawn(0)).collect();
        let mut tree = {
            let mut env = SimEnv::new(&mut m, tids[0]);
            FastFair::create(&mut env, strategy)
        };
        let mut keys = YcsbGenerator::load_keys(params.inserts);
        let mut total_cycles = 0u64;
        let mut ops = 0u64;
        'outer: loop {
            for &tid in &tids {
                let Some(key) = keys.next() else {
                    break 'outer;
                };
                let t0 = m.now(tid);
                let mut env = SimEnv::new(&mut m, tid);
                tree.insert(&mut env, key.max(1), key);
                total_cycles += m.now(tid) - t0;
                ops += 1;
            }
        }
        let latency = total_cycles as f64 / ops as f64;
        let makespan = tids.iter().map(|&t| m.now(t)).max().expect("threads");
        let throughput = ops as f64 / makespan as f64 * ghz * 1e3;
        (latency, throughput)
    }

    #[test]
    fn executor_matches_legacy_round_robin() {
        let params = E8Params {
            inserts: 1000,
            ..E8Params::default()
        };
        // 3 threads with 1000 keys ends mid-round, covering the
        // partial-final-round retirement path.
        for &threads in &[1usize, 3] {
            let exec = measure_case(
                &params,
                Generation::G1,
                2.1,
                UpdateStrategy::RedoLog,
                threads,
            );
            let legacy = measure_legacy(
                &params,
                Generation::G1,
                2.1,
                UpdateStrategy::RedoLog,
                threads,
            );
            assert_eq!(
                (exec.0.to_bits(), exec.1.to_bits()),
                (legacy.0.to_bits(), legacy.1.to_bits()),
                "round-robin executor must be byte-identical to the legacy \
                 shared-stream loop ({threads} threads)"
            );
        }
    }

    #[test]
    fn redo_wins_on_g1_converges_on_g2() {
        let r = run(&E8Params {
            inserts: 6000,
            threads: vec![1],
            generations: vec![Generation::G1, Generation::G2],
            dimms: 1,
        });
        // Panels: [G1 thr, G1 lat, G2 thr, G2 lat].
        let g1_lat = &r[1];
        let redo = g1_lat
            .curve("Out-of-place update")
            .unwrap()
            .y_at(1.0)
            .unwrap();
        let inplace = g1_lat.curve("In-place update").unwrap().y_at(1.0).unwrap();
        assert!(
            redo < inplace * 0.85,
            "G1: redo should cut latency markedly: {redo} vs {inplace}"
        );
        let g2_lat = &r[3];
        let redo2 = g2_lat
            .curve("Out-of-place update")
            .unwrap()
            .y_at(1.0)
            .unwrap();
        let inplace2 = g2_lat.curve("In-place update").unwrap().y_at(1.0).unwrap();
        let ratio = redo2 / inplace2;
        assert!(
            (0.75..=1.3).contains(&ratio),
            "G2: strategies converge: {redo2} vs {inplace2}"
        );
        // The G1 relative win exceeds the G2 one.
        assert!(redo / inplace < ratio);
    }
}
