//! E9 / Figures 13 & 14: avoiding misprefetch with streaming copies.
//!
//! XPLine-aligned random blocks with all CPU prefetchers enabled. The
//! baseline reads blocks with ordinary loads (prefetchers run past every
//! block boundary, wasting media bandwidth); the optimization (the paper's
//! Algorithm 2) copies each XPLine into a DRAM buffer with streaming SIMD
//! loads that never train the prefetchers, then reads the buffer.
//!
//! Figure 13: read ratios vs. working-set size — the optimization pins the
//! media ratio back to ~1. Figure 14: latency and bandwidth vs. thread
//! count — the copy costs latency at low thread counts, but once the
//! media banks saturate, the reclaimed misprefetch bandwidth wins
//! (crossover around 12 threads, claim C9).

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig, ThreadId};
use simbase::{Addr, SplitMix64, XPLINE_BYTES};

use crate::common::{log_sweep, Curve, ExpResult};

/// Parameters for E9.
#[derive(Debug, Clone)]
pub struct E9Params {
    /// Which generation to model.
    pub generation: Generation,
    /// Working-set sweep for Figure 13.
    pub wss_points: Vec<u64>,
    /// Block visits per measurement point (Figure 13, single thread).
    pub visits: u64,
    /// Fixed working set for Figure 14.
    pub fig14_wss: u64,
    /// Thread counts for Figure 14.
    pub threads: Vec<usize>,
    /// Block visits per thread for Figure 14.
    pub visits_per_thread: u64,
    /// DIMM population.
    pub dimms: usize,
    /// Clock frequency for GB/s conversion.
    pub ghz: f64,
}

impl Default for E9Params {
    fn default() -> Self {
        E9Params {
            generation: Generation::G1,
            wss_points: log_sweep(4 << 10, 64 << 20, 1),
            visits: 40_000,
            fig14_wss: 32 << 20,
            threads: vec![1, 2, 4, 8, 12, 16],
            visits_per_thread: 8_000,
            dimms: 1,
            ghz: 2.1,
        }
    }
}

/// Access mode for one block visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Ordinary loads (prefetchers active).
    Plain,
    /// Streaming copy into a DRAM buffer (Algorithm 2).
    Redirect,
}

/// Visits one 256 B block and returns nothing; timing lands on the
/// thread's clock, counters on the machine.
fn visit_block(m: &mut Machine, t: ThreadId, block: Addr, dram_buf: Addr, mode: Mode) {
    match mode {
        Mode::Plain => {
            for cl in 0..4u64 {
                m.load_u64(t, block.add_cachelines(cl));
            }
            for cl in 0..4u64 {
                m.clflushopt(t, block.add_cachelines(cl));
            }
            m.sfence(t);
        }
        Mode::Redirect => {
            m.copy_xpline_streaming(t, block, dram_buf);
            for cl in 0..4u64 {
                m.load_u64(t, dram_buf.add_cachelines(cl));
            }
        }
    }
}

/// Runs the Figure 13 sweep: read ratios vs. WSS.
pub fn run_fig13(params: &E9Params) -> ExpResult {
    let mut result = ExpResult::new(
        format!(
            "E9 / Figure 13: misprefetch reduction ({})",
            params.generation
        ),
        "WSS(bytes)",
        "read ratio",
    );
    let mut imc_pf = Curve::new("iMC with prefetching");
    let mut pm_pf = Curve::new("PM with prefetching");
    let mut pm_opt = Curve::new("Optimized PM");
    for &wss in &params.wss_points {
        let (pm, imc) = measure_ratio(params, wss, Mode::Plain);
        let (pm_o, _) = measure_ratio(params, wss, Mode::Redirect);
        imc_pf.push(wss as f64, imc);
        pm_pf.push(wss as f64, pm);
        pm_opt.push(wss as f64, pm_o);
    }
    result.curves = vec![imc_pf, pm_pf, pm_opt];
    result
}

fn measure_ratio(params: &E9Params, wss: u64, mode: Mode) -> (f64, f64) {
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), params.dimms);
    let mut m = Machine::new(cfg);
    let t = m.spawn(0);
    let base = m.alloc_pm(wss, XPLINE_BYTES);
    let dram_buf = m.alloc_dram(XPLINE_BYTES, XPLINE_BYTES);
    let blocks = wss / XPLINE_BYTES;
    let mut rng = SplitMix64::new(0xE9 ^ wss);
    // Warm-up.
    for _ in 0..(params.visits / 4).min(blocks) {
        let b = base.add_xplines(rng.gen_range(blocks));
        visit_block(&mut m, t, b, dram_buf, mode);
    }
    let before = m.metrics().telemetry;
    for _ in 0..params.visits {
        let b = base.add_xplines(rng.gen_range(blocks));
        visit_block(&mut m, t, b, dram_buf, mode);
    }
    let d = m.metrics().telemetry.delta(&before);
    let demanded = (params.visits * XPLINE_BYTES) as f64;
    (d.media.read as f64 / demanded, d.imc.read as f64 / demanded)
}

/// Runs the Figure 14 sweep: latency and throughput vs. thread count.
///
/// Returns `[latency, throughput]` panels.
pub fn run_fig14(params: &E9Params) -> Vec<ExpResult> {
    let mut lat = ExpResult::new(
        format!("E9 / Figure 14: latency ({})", params.generation),
        "threads",
        "cycles per block",
    );
    let mut thr = ExpResult::new(
        format!("E9 / Figure 14: throughput ({})", params.generation),
        "threads",
        "GB/s",
    );
    for (label, mode) in [
        ("with prefetching", Mode::Plain),
        ("optimized", Mode::Redirect),
    ] {
        let mut lat_curve = Curve::new(label);
        let mut thr_curve = Curve::new(label);
        for &threads in &params.threads {
            let (latency, gbps) = measure_threads(params, threads, mode);
            lat_curve.push(threads as f64, latency);
            thr_curve.push(threads as f64, gbps);
        }
        lat.curves.push(lat_curve);
        thr.curves.push(thr_curve);
    }
    vec![lat, thr]
}

fn measure_threads(params: &E9Params, threads: usize, mode: Mode) -> (f64, f64) {
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), params.dimms);
    let mut m = Machine::new(cfg);
    let tids: Vec<ThreadId> = (0..threads).map(|_| m.spawn(0)).collect();
    let base = m.alloc_pm(params.fig14_wss, XPLINE_BYTES);
    let bufs: Vec<Addr> = (0..threads)
        .map(|_| m.alloc_dram(XPLINE_BYTES, XPLINE_BYTES))
        .collect();
    let blocks = params.fig14_wss / XPLINE_BYTES;
    let mut rngs: Vec<SplitMix64> = (0..threads)
        .map(|w| SplitMix64::new(0xF14 ^ w as u64))
        .collect();
    let mut total_cycles = 0u64;
    for _ in 0..params.visits_per_thread {
        for w in 0..threads {
            let b = base.add_xplines(rngs[w].gen_range(blocks));
            let t0 = m.now(tids[w]);
            visit_block(&mut m, tids[w], b, bufs[w], mode);
            total_cycles += m.now(tids[w]) - t0;
        }
    }
    let ops = params.visits_per_thread * threads as u64;
    let latency = total_cycles as f64 / ops as f64;
    let makespan = tids.iter().map(|&t| m.now(t)).max().expect("threads") as f64;
    let bytes = (ops * XPLINE_BYTES) as f64;
    let gbps = bytes / makespan * params.ghz; // B/cycle * Gcycle/s = GB/s
    (latency, gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirection_removes_media_waste() {
        let p = E9Params {
            wss_points: vec![4 << 20],
            visits: 6000,
            ..E9Params::default()
        };
        let r = run_fig13(&p);
        let pm = r
            .curve("PM with prefetching")
            .unwrap()
            .y_at((4 << 20) as f64)
            .unwrap();
        let opt = r
            .curve("Optimized PM")
            .unwrap()
            .y_at((4 << 20) as f64)
            .unwrap();
        assert!(pm > 1.4, "baseline wastes media bandwidth: {pm}");
        assert!(opt < 1.15, "redirection pins the ratio to ~1: {opt}");
    }

    #[test]
    fn crossover_appears_with_threads() {
        let p = E9Params {
            threads: vec![1, 16],
            visits_per_thread: 2500,
            fig14_wss: 8 << 20,
            ..E9Params::default()
        };
        let r = run_fig14(&p);
        let lat = &r[0];
        let base1 = lat.curve("with prefetching").unwrap().y_at(1.0).unwrap();
        let opt1 = lat.curve("optimized").unwrap().y_at(1.0).unwrap();
        assert!(
            opt1 > base1,
            "single-thread: the copy costs latency: {opt1} vs {base1}"
        );
        let thr = &r[1];
        let base16 = thr.curve("with prefetching").unwrap().y_at(16.0).unwrap();
        let opt16 = thr.curve("optimized").unwrap().y_at(16.0).unwrap();
        assert!(
            opt16 > base16,
            "at high thread count the optimization wins: {opt16} vs {base16}"
        );
    }
}
